#!/usr/bin/env python
"""Bench-trajectory regression gate: diff the two latest ``BENCH_<n>.json``.

The benchmark suite folds every ``benchmarks/results/*.json`` report into
a top-level ``BENCH_<n>.json`` snapshot per PR (see
``benchmarks/conftest.py``), so the repo accumulates a machine-readable
throughput trajectory.  This tool compares the two most recent snapshots
and **fails (exit 1) when any gated metric regressed by more than the
threshold** (default 10%), which lets CI catch a perf cliff the moment
the snapshot that introduces it is generated.

What counts as *gated*: a kernel opts its metrics into the gate by
carrying a ``gate_*`` key in its report ``params`` or ``metrics`` (e.g.
``gate_speedup`` on the GF(2) microbench, ``gate_min_speedup`` on the
batch engine).  Within a gated kernel only dimensionless ratio metrics —
names containing ``speedup`` or ending in ``_accuracy`` — are compared,
because absolute rates (msgs/s, Gbit/s, seconds) are machine-dependent:
CI runners differ run to run, but a *ratio* measured on one machine is
comparable to the same ratio measured on another.  Everything skipped is
listed in the diff artifact, so a shrinking gate surface is visible.

Usage::

    python tools/bench_diff.py                        # repo root, latest two
    python tools/bench_diff.py --threshold 0.2
    python tools/bench_diff.py --output bench-diff.json
    python tools/bench_diff.py BENCH_5.json BENCH_6.json   # explicit pair

Exit codes: 0 = no gated regression (including "fewer than two
snapshots", which is reported but cannot gate), 1 = regression found,
2 = usage/load error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Snapshot schema this tool understands.
TRAJECTORY_SCHEMA = "repro-bench-trajectory/1"

#: Default maximum tolerated relative drop in a gated metric.
DEFAULT_THRESHOLD = 0.10

_SNAPSHOT_RE = re.compile(r"BENCH_(\d+)\.json$")


def find_snapshots(root: Path) -> List[Path]:
    """``BENCH_<n>.json`` files under ``root``, ordered by index."""
    indexed: List[Tuple[int, Path]] = []
    for path in root.glob("BENCH_*.json"):
        match = _SNAPSHOT_RE.search(path.name)
        if match:
            indexed.append((int(match.group(1)), path))
    return [path for _, path in sorted(indexed)]


def load_snapshot(path: Path) -> dict:
    """Parse and schema-check one trajectory snapshot."""
    data = json.loads(path.read_text())
    if data.get("schema") != TRAJECTORY_SCHEMA:
        raise ValueError(
            f"{path}: unsupported trajectory schema {data.get('schema')!r}"
        )
    return data


def _is_gated_kernel(kernel: dict) -> bool:
    """A kernel opts in by carrying any ``gate_*`` param or metric."""
    keys = list(kernel.get("params", {})) + list(kernel.get("metrics", {}))
    return any(k.startswith("gate_") for k in keys)


def _is_comparable_metric(name: str) -> bool:
    """Dimensionless ratio metrics survive a machine change; rates don't."""
    if name.startswith("gate_"):
        return False  # the floor itself, not a measurement
    return "speedup" in name or name.endswith("_accuracy")


def diff_snapshots(
    old: dict, new: dict, threshold: float = DEFAULT_THRESHOLD
) -> dict:
    """Structured comparison of two trajectory snapshots.

    Returns a diff document with one entry per metric compared, plus
    explicit ``skipped`` records for everything the gate did *not*
    check — kernels without a gate opt-in, machine-dependent metrics,
    and kernels present on only one side — so silent coverage loss is
    impossible to miss in the artifact.
    """
    comparisons: List[dict] = []
    skipped: List[dict] = []
    for name in sorted(set(old.get("kernels", {})) | set(new.get("kernels", {}))):
        old_k = old.get("kernels", {}).get(name)
        new_k = new.get("kernels", {}).get(name)
        if old_k is None or new_k is None:
            skipped.append({
                "kernel": name,
                "reason": "only in one snapshot",
                "side": "new" if old_k is None else "old",
            })
            continue
        if not _is_gated_kernel(new_k):
            skipped.append({"kernel": name, "reason": "no gate_* opt-in"})
            continue
        for metric in sorted(set(old_k.get("metrics", {})) & set(new_k.get("metrics", {}))):
            old_v = old_k["metrics"][metric]
            new_v = new_k["metrics"][metric]
            if not _is_comparable_metric(metric):
                skipped.append({
                    "kernel": name,
                    "metric": metric,
                    "reason": "machine-dependent (not a ratio)",
                })
                continue
            if not isinstance(old_v, (int, float)) or old_v <= 0:
                skipped.append({
                    "kernel": name,
                    "metric": metric,
                    "reason": f"non-positive baseline {old_v!r}",
                })
                continue
            change = (new_v - old_v) / old_v
            comparisons.append({
                "kernel": name,
                "metric": metric,
                "old": old_v,
                "new": new_v,
                "change": change,
                "regressed": change < -threshold,
            })
    return {
        "schema": "repro-bench-diff/1",
        "old_pr": old.get("pr"),
        "new_pr": new.get("pr"),
        "threshold": threshold,
        "comparisons": comparisons,
        "skipped": skipped,
        "regressions": [c for c in comparisons if c["regressed"]],
    }


def format_diff(diff: dict) -> str:
    """Human-readable summary of a diff document."""
    lines = [
        f"bench trajectory: PR {diff['old_pr']} -> PR {diff['new_pr']} "
        f"(gate: >{diff['threshold']:.0%} drop in any gated ratio)"
    ]
    for c in diff["comparisons"]:
        marker = "REGRESSED" if c["regressed"] else "ok"
        lines.append(
            f"  {c['kernel']}.{c['metric']}: {c['old']:.4g} -> {c['new']:.4g} "
            f"({c['change']:+.1%})  [{marker}]"
        )
    if not diff["comparisons"]:
        lines.append("  (no gated metrics shared between the two snapshots)")
    if diff["skipped"]:
        lines.append(f"  skipped {len(diff['skipped'])} item(s):")
        for s in diff["skipped"]:
            what = f"{s['kernel']}.{s['metric']}" if "metric" in s else s["kernel"]
            lines.append(f"    {what}: {s['reason']}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; see the module docstring for semantics."""
    parser = argparse.ArgumentParser(
        description="diff the two latest BENCH_<n>.json trajectory snapshots"
    )
    parser.add_argument(
        "snapshots", nargs="*",
        help="explicit OLD NEW snapshot pair (default: the two "
        "highest-numbered BENCH_<n>.json under --root)",
    )
    parser.add_argument(
        "--root", default=".", help="directory holding BENCH_<n>.json files"
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="maximum tolerated relative drop (default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the JSON diff artifact here",
    )
    args = parser.parse_args(argv)

    if args.snapshots and len(args.snapshots) != 2:
        print("expected exactly two explicit snapshots (OLD NEW)", file=sys.stderr)
        return 2
    if args.snapshots:
        paths = [Path(p) for p in args.snapshots]
    else:
        paths = find_snapshots(Path(args.root))[-2:]
    if len(paths) < 2:
        print(
            f"found {len(paths)} trajectory snapshot(s) under {args.root}; "
            "need two to diff — nothing to gate"
        )
        return 0
    try:
        old, new = load_snapshot(paths[0]), load_snapshot(paths[1])
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot load snapshots: {exc}", file=sys.stderr)
        return 2

    diff = diff_snapshots(old, new, threshold=args.threshold)
    print(f"comparing {paths[0].name} -> {paths[1].name}")
    print(format_diff(diff))
    if args.output:
        Path(args.output).write_text(json.dumps(diff, indent=2, sort_keys=True) + "\n")
        print(f"diff artifact written to {args.output}")
    if diff["regressions"]:
        print(
            f"{len(diff['regressions'])} gated metric(s) regressed beyond "
            f"{args.threshold:.0%}", file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
