#!/usr/bin/env python
"""Docstring-coverage gate for the public API surface.

Walks the Python files under the given paths and fails (exit 1) if any
module, public class, or public function/method lacks a docstring.  "Public"
means the name has no leading underscore and none of its enclosing scopes
do; ``__init__`` and other dunders are exempt, as are trivial overrides
consisting of a bare ``raise NotImplementedError`` or ``pass`` (their
contract lives on the base class).

Usage::

    python tools/check_docstrings.py src/repro/engine src/repro/gf2

Run from the repository root; CI runs it over ``src/repro/engine`` and
``src/repro/gf2`` so the documented subsystems cannot silently grow
undocumented entry points.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple


def _is_trivial_body(node: ast.AST) -> bool:
    """A bare ``pass`` / ``...`` / ``raise NotImplementedError`` body."""
    body = getattr(node, "body", [])
    if len(body) != 1:
        return False
    stmt = body[0]
    if isinstance(stmt, ast.Pass):
        return True
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
        return stmt.value.value is Ellipsis
    if isinstance(stmt, ast.Raise) and stmt.exc is not None:
        exc = stmt.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        return isinstance(exc, ast.Name) and exc.id == "NotImplementedError"
    return False


def _walk_scopes(
    node: ast.AST, qualname: str = ""
) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(qualified_name, node)`` for public defs under ``node``."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            name = child.name
            if name.startswith("_") and not (
                name.startswith("__") and name.endswith("__")
            ):
                continue  # private scope: skip it and everything inside
            if name.startswith("__") and name.endswith("__"):
                continue  # dunders inherit their contract
            qual = f"{qualname}.{name}" if qualname else name
            yield qual, child
            if isinstance(child, ast.ClassDef):
                yield from _walk_scopes(child, qual)


def check_file(path: Path) -> List[str]:
    """Return a list of human-readable problems found in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    problems = []
    if not ast.get_docstring(tree):
        problems.append(f"{path}:1: module docstring missing")
    for qual, node in _walk_scopes(tree):
        if ast.get_docstring(node):
            continue
        if _is_trivial_body(node):
            continue
        kind = "class" if isinstance(node, ast.ClassDef) else "function"
        problems.append(f"{path}:{node.lineno}: {kind} {qual!r} docstring missing")
    return problems


def main(argv: List[str]) -> int:
    """CLI entry point: check every ``.py`` file under the given paths."""
    if not argv:
        print("usage: check_docstrings.py PATH [PATH ...]", file=sys.stderr)
        return 2
    files: List[Path] = []
    for arg in argv:
        root = Path(arg)
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        elif root.suffix == ".py":
            files.append(root)
        else:
            print(f"error: {arg} is not a directory or .py file", file=sys.stderr)
            return 2
    problems: List[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(
        f"check_docstrings: {len(files)} files, {len(problems)} problems",
        file=sys.stderr,
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
