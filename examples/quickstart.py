#!/usr/bin/env python3
"""Quickstart: offload the Ethernet CRC-32 onto the DREAM/PiCoGA model.

Walks the library's main path in a few lines:

1. pick a CRC standard from the catalog;
2. compile it onto PiCoGA at a look-ahead factor M (the mapper builds the
   Derby-transformed matrices, shares XOR patterns and packs cells);
3. compute CRCs through the simulated netlists, with cycle-accurate timing;
4. cross-check against the pure-software engines.

Run:  python examples/quickstart.py
"""

from repro.analysis import format_table
from repro.crc import BitwiseCRC, ETHERNET_CRC32
from repro.dream import CRCAccelerator


def main() -> None:
    # 1. The paper's test case: IEEE 802.3 CRC-32 (same generator as MPEG-2).
    spec = ETHERNET_CRC32
    print(f"Standard: {spec}")

    # 2. Compile at M = 128 bits/cycle — the largest factor PiCoGA fits.
    accelerator = CRCAccelerator(spec, M=128)
    report = accelerator.mapped.report
    print(
        f"\nMapped with the {report.method} method at M = {report.M}: "
        f"{report.update_cells}+{report.output_cells} cells, "
        f"update pipeline {report.update_rows} rows, II = {report.update_ii}, "
        f"pattern sharing saved {report.cse_savings} XOR taps"
    )
    print(f"Kernel bandwidth: {accelerator.kernel_bandwidth_gbps():.1f} Gbit/s")

    # 3. Run real frames through the simulated array.
    software = BitwiseCRC(spec)
    rows = []
    for payload in (b"hello, PiCoGA!", bytes(range(46)), bytes(range(256)) * 6):
        crc, perf = accelerator.compute_with_timing(payload)
        assert crc == software.compute(payload), "netlist disagrees with software!"
        rows.append(
            [len(payload), f"0x{crc:08X}", perf.total_cycles, f"{perf.throughput_gbps:.2f}"]
        )
    print()
    print(
        format_table(
            ["bytes", "crc", "cycles", "Gbit/s"],
            rows,
            title="CRC-32 on DREAM (executed netlist, single message)",
        )
    )

    # 4. The same accelerator in Kong-Parhi interleaved mode.
    frames = [bytes([i] * 46) for i in range(32)]
    crcs = accelerator.compute_batch(frames)
    assert crcs == [software.compute(f) for f in frames]
    perf = accelerator.predicted_interleaved(46 * 8, 32)
    print(
        f"\n32-way interleaved minimum-size frames: "
        f"{perf.throughput_gbps:.2f} Gbit/s "
        f"(vs {accelerator.predicted_performance(46 * 8).throughput_gbps:.2f} single)"
    )


if __name__ == "__main__":
    main()
