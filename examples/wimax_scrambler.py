#!/usr/bin/env python3
"""IEEE 802.16e (WiMax) randomizer on DREAM — the paper's Fig. 8 scenario.

The 802.16 PHY randomizes every downlink/uplink burst with the LFSR
``1 + x^14 + x^15``, reseeded per burst.  This script

* scrambles realistic burst sizes through the compiled single-PGAOP
  netlist at several block-parallelism factors,
* confirms the scramble/descramble involution and the whitening effect
  on a pathological all-zeros payload,
* reports throughput vs block length (the Fig. 8 axes).

Run:  python examples/wimax_scrambler.py
"""

import numpy as np

from repro.analysis import format_multi_series
from repro.dream import ScramblerAccelerator
from repro.scrambler import AdditiveScrambler, IEEE80216E

FACTORS = (16, 32, 64, 128)
BURST_BITS = (384, 1152, 4608, 18432)  # a few OFDMA burst sizes


def main() -> None:
    print(f"Scrambler: {IEEE80216E.name} — g(x) = {IEEE80216E.poly}, "
          f"seed 0x{IEEE80216E.seed:04X}\n")

    # --- functional path through the netlist ---------------------------
    rng = np.random.default_rng(7)
    payload = [int(b) for b in rng.integers(0, 2, size=1152)]
    acc = ScramblerAccelerator(IEEE80216E, M=128)
    scrambled, perf = acc.scramble_with_timing(payload)
    assert scrambled == AdditiveScrambler(IEEE80216E).scramble_bits(payload)
    assert acc.scramble_bits(scrambled) == payload  # involution
    print(
        f"1152-bit burst at M=128: {perf.total_cycles} cycles, "
        f"{perf.throughput_gbps:.2f} Gbit/s, involution verified."
    )

    # --- whitening: the reason scramblers exist (paper §1) -------------
    zeros = [0] * 1024
    whitened = acc.scramble_bits(zeros)
    ones_fraction = sum(whitened) / len(whitened)
    longest_run = max(
        len(run) for run in "".join(map(str, whitened)).replace("1", " ").split()
    )
    print(
        f"All-zeros payload whitened: {ones_fraction:.1%} ones, "
        f"longest zero-run {longest_run} (register width is 15)\n"
    )

    # --- Fig. 8 axes: throughput vs block length and M ------------------
    series = {}
    for M in FACTORS:
        acc_m = ScramblerAccelerator(IEEE80216E, M=M)
        series[f"M={M}"] = {
            bits: acc_m.predicted_performance(bits).throughput_gbps for bits in BURST_BITS
        }
    print(
        format_multi_series(
            BURST_BITS, series, "block bits",
            title="802.16e scrambler throughput (Gbit/s) — single PGAOP, no config switch",
        )
    )
    print(
        f"\nPeak output bandwidth at M=128: "
        f"{ScramblerAccelerator(IEEE80216E, M=128).kernel_bandwidth_gbps():.1f} Gbit/s "
        "(the array's maximum, as the paper reports)"
    )


if __name__ == "__main__":
    main()
