#!/usr/bin/env python3
"""Netlist bring-up flow: compile, prove, inspect, waveform-dump.

The EDA loop a developer porting the mapper (new polynomial, new cell
library, new array geometry) would run:

1. compile a CRC onto PiCoGA;
2. **prove** the netlist equivalent to the specification matrices — the
   linear-basis proof is a complete formal check for XOR netlists;
3. inspect the placement (rows, loop highlighting, routing demand,
   configuration size);
4. dump a VCD of a short burst for waveform debugging;
5. serialize the operation as a "firmware image" and reload it.

Run:  python examples/netlist_bringup.py
"""

import os
import tempfile

import numpy as np

from repro.crc import BitwiseCRC, get
from repro.mapping import map_crc, verify_mapped_crc
from repro.picoga import (
    describe,
    dump_burst_vcd,
    estimate_routing,
    op_dumps,
    op_loads,
    trace_burst,
)

SPEC = get("CRC-16/CCITT-FALSE")
M = 32


def main() -> None:
    # 1. compile ----------------------------------------------------------
    mapped = map_crc(SPEC, M)
    print(f"compiled {SPEC.name} at M={M}: "
          f"{mapped.report.total_cells} cells, II={mapped.report.update_ii}\n")

    # 2. formal equivalence ------------------------------------------------
    results = verify_mapped_crc(mapped)
    for result in results:
        print(f"  proof[{result.mode}]: checked {result.checked} vectors -> "
              f"{'PASS' if result.passed else 'FAIL'}")
    assert all(results)
    print("netlist formally equivalent to the specification matrices\n")

    # 3. physical inspection -----------------------------------------------
    print(describe(mapped.update_op))
    routing = estimate_routing(mapped.update_op)
    print(f"\nrouting: peak {routing.peak_crossings} crossings "
          f"({routing.peak_utilization:.0%} of channel), "
          f"congested={routing.congested}")
    trace = trace_burst(mapped.update_op, 20)
    print(f"pipeline utilization over a 20-block burst: {trace.utilization():.0%}\n")

    # 4. waveform dump -------------------------------------------------------
    rng = np.random.default_rng(3)
    blocks = [[int(b) for b in rng.integers(0, 2, size=M)] for _ in range(8)]
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "crc16_burst.vcd")
        dump_burst_vcd(mapped.update_op, [0] * SPEC.width, blocks, path)
        size = os.path.getsize(path)
        print(f"VCD waveform written ({size} bytes) — open in GTKWave to see the")
        print("single-level loop cells toggling once per block\n")

    # 5. firmware round-trip ---------------------------------------------------
    image = op_dumps(mapped.update_op)
    clone = op_loads(image)
    state = [0] * SPEC.width
    for block in blocks:
        _, state = clone.evaluate(state, block)
    ref_state = [0] * SPEC.width
    for block in blocks:
        _, ref_state = mapped.update_op.evaluate(ref_state, block)
    assert state == ref_state
    print(f"firmware image: {len(image)} bytes JSON, reload verified")

    # closing sanity: the whole thing still computes real CRCs
    payload = bytes(rng.integers(0, 256, size=100).tolist())
    assert mapped.compute(payload) == BitwiseCRC(SPEC).compute(payload)
    print("end-to-end CRC check against software: OK")


if __name__ == "__main__":
    main()
