#!/usr/bin/env python3
"""Multi-standard modem: the run-time flexibility the paper argues for.

§1's case for reconfigurable LFSR hardware is the multi-mode device: ~25
published CRC standards plus per-standard scramblers, each needed at a
different moment, with ASIC-per-standard area prohibitive.  This script
plays that scenario on one simulated DREAM:

* compile accelerators for three protocol personalities (Ethernet,
  Bluetooth-style CRC-16, WiMax scrambler + CRC-16/X-25);
* "retune" the same array between them at run time (configuration cache);
* verify every result against the software engines and report the cost of
  each personality switch.

Run:  python examples/multi_standard_modem.py
"""

import numpy as np

from repro.analysis import format_table
from repro.crc import BitwiseCRC, ETHERNET_CRC32, get
from repro.dream import DreamSystem
from repro.mapping import map_crc, map_scrambler
from repro.picoga import BUS_LOAD_CYCLES
from repro.scrambler import AdditiveScrambler, IEEE80216E

PERSONALITIES = {
    "ethernet": ETHERNET_CRC32,
    "bluetooth-ish": get("CRC-16/KERMIT"),
    "wimax-mac": get("CRC-16/X-25"),
}


def main() -> None:
    system = DreamSystem()
    rng = np.random.default_rng(1)

    # --- compile all personalities once (offline, like firmware) --------
    compiled = {name: map_crc(spec, 64) for name, spec in PERSONALITIES.items()}
    scrambler = map_scrambler(IEEE80216E, 64)

    rows = []
    for name, mapped in compiled.items():
        rows.append(
            [name, mapped.spec.name, mapped.report.total_cells,
             mapped.update_op.n_rows, f"{64 * 0.2:.1f}"]
        )
    rows.append(["wimax-phy", IEEE80216E.name, scrambler.report.update_cells,
                 scrambler.op.n_rows, f"{64 * 0.2:.1f}"])
    print(format_table(
        ["personality", "standard", "cells", "rows", "kernel Gbit/s"],
        rows, title="Compiled personalities (M = 64)",
    ))

    # --- run traffic through each personality in turn -------------------
    print("\nRun-time retuning:")
    for name, mapped in compiled.items():
        payload = bytes(rng.integers(0, 256, size=200).tolist())
        crc, perf = system.execute_crc(mapped, payload)
        assert crc == BitwiseCRC(mapped.spec).compute(payload)
        print(
            f"  {name:14s} {mapped.spec.name:16s} crc=0x{crc:0{mapped.spec.width // 4}X} "
            f"{perf.throughput_gbps:5.2f} Gbit/s"
        )

    bits = [int(b) for b in rng.integers(0, 2, size=640)]
    out, perf = system.execute_scrambler(scrambler, bits)
    assert out == AdditiveScrambler(IEEE80216E).scramble_bits(bits)
    print(f"  {'wimax-phy':14s} {IEEE80216E.name:16s} scrambled 640 bits "
          f"{perf.throughput_gbps:5.2f} Gbit/s")

    # --- what a personality switch costs ---------------------------------
    print(
        f"\nSwitch cost: {2} cycles between the {4} cached contexts, "
        f"{BUS_LOAD_CYCLES} cycles to stream a new personality from the bus — "
        "versus a mask respin for an ASIC-per-standard design."
    )
    print("A software-programmable datapath covers the whole catalog; that is")
    print("the flexibility x performance point the paper stakes out.")


if __name__ == "__main__":
    main()
