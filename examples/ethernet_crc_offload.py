#!/usr/bin/env python3
"""Gigabit-Ethernet CRC offload study (the paper's §4-5 scenario).

Models a NIC-style workload: a stream of Ethernet frames whose CRC-32 must
be computed at line rate.  The script

* sweeps the look-ahead factor over the paper's range (8..128),
* reports single-message and 32-way interleaved throughput across the
  Ethernet frame-size window (368..12144 bits),
* checks which configurations sustain 1/10/25 GbE line rates, and
* verifies every CRC against the software engine.

Run:  python examples/ethernet_crc_offload.py
"""

import numpy as np

from repro.analysis import (
    ETHERNET_MAX_BITS,
    ETHERNET_MIN_BITS,
    format_multi_series,
)
from repro.crc import BitwiseCRC, ETHERNET_CRC32
from repro.dream import CRCAccelerator, DreamSystem
from repro.mapping import map_crc

FACTORS = (8, 16, 32, 64, 128)
FRAME_BITS = (368, 1024, 4096, 12144)
LINE_RATES_GBPS = (1.0, 10.0, 25.0)


def main() -> None:
    system = DreamSystem()
    mappings = {M: map_crc(ETHERNET_CRC32, M) for M in FACTORS}

    # --- functional check on a realistic frame mix --------------------
    rng = np.random.default_rng(42)
    frames = [bytes(rng.integers(0, 256, size=int(n)).tolist()) for n in (46, 512, 1518)]
    software = BitwiseCRC(ETHERNET_CRC32)
    acc = CRCAccelerator(ETHERNET_CRC32, M=64, system=system)
    for frame in frames:
        assert acc.compute(frame) == software.compute(frame)
    print(f"Verified {len(frames)} frames against the software CRC.\n")

    # --- single-message throughput across the Ethernet window ---------
    single = {
        f"M={M}": {
            bits: system.crc_single_performance(mapped, bits).throughput_gbps
            for bits in FRAME_BITS
        }
        for M, mapped in mappings.items()
    }
    print(
        format_multi_series(
            FRAME_BITS,
            single,
            "bits",
            title=f"Single-message throughput (Gbit/s), Ethernet window "
            f"{ETHERNET_MIN_BITS}..{ETHERNET_MAX_BITS} bits",
        )
    )

    # --- interleaved (Kong-Parhi) mode ---------------------------------
    interleaved = {
        f"M={M}": {
            bits: system.crc_interleaved_performance(mapped, bits, 32).throughput_gbps
            for bits in FRAME_BITS
        }
        for M, mapped in mappings.items()
    }
    print()
    print(
        format_multi_series(
            FRAME_BITS,
            interleaved,
            "bits",
            title="32-way interleaved throughput (Gbit/s)",
        )
    )

    # --- line-rate feasibility -----------------------------------------
    print("\nLine-rate feasibility (minimum-size frames, interleaved mode):")
    for rate in LINE_RATES_GBPS:
        capable = [
            M
            for M, mapped in mappings.items()
            if system.crc_interleaved_performance(mapped, ETHERNET_MIN_BITS, 32).throughput_gbps
            >= rate
        ]
        label = ", ".join(f"M={M}" for M in capable) if capable else "none"
        print(f"  {rate:5.1f} GbE: {label}")


if __name__ == "__main__":
    main()
