#!/usr/bin/env python3
"""Serial-link qualification: PRBS patterns, BER testing and spreading.

A lab workflow built entirely from the library's LFSR substrate:

1. generate an ITU-T O.150 PRBS pattern and push it through a noisy
   "channel";
2. self-synchronize a checker on the received stream and count bit errors
   (no reference alignment needed — the Fibonacci window *is* the state);
3. protect the same payload with direct-sequence spreading and show the
   processing gain absorbing the channel errors;
4. use Berlekamp–Massey to confirm the pattern's linear complexity (and,
   as a contrast, a stream cipher's).

Run:  python examples/link_qualification.py
"""

import numpy as np

from repro.cipher import A51
from repro.lfsr import berlekamp_massey, linear_complexity
from repro.scrambler import (
    DirectSequenceSpreader,
    PRBS15,
    PRBS23,
    PRBSChecker,
    prbs_sequence,
)


def noisy_channel(bits, error_rate, rng):
    flips = rng.random(len(bits)) < error_rate
    return [b ^ int(f) for b, f in zip(bits, flips)]


def main() -> None:
    rng = np.random.default_rng(1234)

    # --- 1+2: raw PRBS BER test -----------------------------------------
    print("=== PRBS-15 BER test (raw link) ===")
    pattern = prbs_sequence(PRBS15, 20000)
    for ber_in in (0.0, 1e-3, 1e-2):
        received = noisy_channel(pattern, ber_in, rng)
        result = PRBSChecker(PRBS15).check(received)
        print(
            f"injected BER {ber_in:7.0%} -> synchronized={result.synchronized} "
            f"measured BER {result.bit_error_rate:8.5f} "
            f"({result.error_bits}/{result.checked_bits} bits)"
        )

    # --- 3: spreading beats the same channel -----------------------------
    print("\n=== Direct-sequence spreading (factor 16) over a 1% channel ===")
    payload = [int(b) for b in rng.integers(0, 2, size=500)]
    spreader = DirectSequenceSpreader(PRBS23, factor=16)
    chips = spreader.spread(payload)
    dirty = noisy_channel(chips, 0.01, rng)
    result = spreader.despread(dirty)
    bit_errors = sum(a != b for a, b in zip(result.bits, payload))
    print(f"chip stream: {len(chips)} chips, processing gain "
          f"{spreader.processing_gain_db():.1f} dB")
    print(f"payload errors after despreading: {bit_errors}/{len(payload)} "
          f"(raw channel would corrupt ~{len(payload) // 100 * 1} bits per 100)")

    # --- 4: linear complexity --------------------------------------------
    print("\n=== Linear complexity (Berlekamp-Massey) ===")
    lc = linear_complexity(pattern[:200])
    synthesis = berlekamp_massey(pattern[:64])
    predicted = synthesis.predict(pattern[:64], 100)
    print(f"PRBS-15: complexity {lc} (register width 15) — "
          f"prediction of next 100 bits correct: {predicted == pattern[64:164]}")

    key = bytes([0x12, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF])
    cipher_stream = A51(key, 0x134).keystream(600)
    print(f"A5/1:   complexity {linear_complexity(cipher_stream)} on a 600-bit "
          "sample — irregular clocking defeats linear prediction")


if __name__ == "__main__":
    main()
