#!/usr/bin/env python3
"""Reproduce the paper's §4 design-exploration phase.

The authors wrote a Matlab program that, given the CRC size and generator,
produced all the matrices, shared common 10-bit XOR patterns and mapped
them onto PiCoGA — then swept the look-ahead factor to find that the array
tops out at 128 bits/cycle.  This script runs the same investigation with
the library's mapper:

* sweep M for the Derby and direct (Pei-style) methods, printing
  resources, initiation interval and kernel bandwidth;
* show the feasibility cliff past M = 128;
* reproduce the f-vector sensitivity study (the paper: "we didn't find
  significant difference ... we selected f = [1 0 ... 0]").

Run:  python examples/design_space_exploration.py
"""

from repro.analysis import format_table
from repro.crc import ETHERNET_CRC32, get
from repro.mapping import DesignSpaceExplorer

SWEEP = (2, 4, 8, 16, 32, 64, 128, 256)


def sweep_method(explorer: DesignSpaceExplorer, method: str) -> None:
    rows = []
    for point in explorer.sweep(SWEEP, method=method):
        if point.feasible:
            rows.append(
                [point.M, point.cells, point.rows, point.initiation_interval,
                 f"{point.kernel_gbps:.1f}"]
            )
        else:
            rows.append([point.M, "-", "-", "-", f"infeasible: {point.reason[:40]}"])
    print(
        format_table(
            ["M", "cells", "rows", "II", "kernel Gbit/s"],
            rows,
            title=f"CRC-32 mapping sweep — {method} method",
        )
    )
    print()


def main() -> None:
    explorer = DesignSpaceExplorer(ETHERNET_CRC32)

    sweep_method(explorer, "derby")
    sweep_method(explorer, "direct")

    max_m = explorer.max_feasible_m(SWEEP)
    print(f"Maximum feasible look-ahead on PiCoGA: M = {max_m} "
          "(the paper's '128 bit per cycle').\n")

    # --- f-vector sensitivity (paper §4) --------------------------------
    study = explorer.f_vector_study(32, candidates=6)
    rows = [[label, taps] for label, taps in study.items()]
    print(format_table(["f", "nnz(T) + nnz(B_Mt)"], rows,
                       title="Transformation-vector sensitivity at M = 32"))
    values = list(study.values())
    spread = (max(values) - min(values)) / min(values)
    print(f"spread: {spread:.1%} -> f = e0 is as good as any (paper's choice)\n")

    # --- the flexibility argument: other standards map too --------------
    rows = []
    for name in ("CRC-16/CCITT-FALSE", "CRC-16/ARC", "CRC-24/OPENPGP", "CRC-32C"):
        point = DesignSpaceExplorer(get(name)).evaluate(64)
        rows.append([name, point.cells, point.rows, f"{point.kernel_gbps:.1f}"])
    print(format_table(["standard", "cells", "rows", "kernel Gbit/s"],
                       rows, title="Same flow, other catalog standards (M = 64)"))


if __name__ == "__main__":
    main()
