#!/usr/bin/env python3
"""DVB broadcast chain: energy dispersal + MPEG-2 CRC on one DREAM.

The paper's §1 points at digital broadcasting as a natural home for
reconfigurable LFSR hardware.  This script assembles the relevant chain
from the library:

* MPEG-2 transport packets get their PSI sections protected with
  CRC-32/MPEG-2 (the paper notes Ethernet's generator "is the same
  defined for MPEG-2");
* the stream is energy-dispersal scrambled per DVB (superframes of 8
  packets, inverted sync byte, PRBS 1 + x^14 + x^15);
* a receiver joins mid-stream, resynchronizes on the inverted sync byte
  and checks the section CRCs;
* both LFSR kernels are mapped onto the same simulated DREAM, sharing the
  configuration cache.

Run:  python examples/dvb_broadcast_chain.py
"""

import numpy as np

from repro.crc import BitwiseCRC, CodewordCodec, MPEG2_CRC32
from repro.dream import Job, WorkloadScheduler
from repro.mapping import map_crc, map_scrambler
from repro.scrambler import DVB
from repro.scrambler.dvb_ts import (
    TS_PACKET_BYTES,
    TransportStreamDescrambler,
    TransportStreamScrambler,
    make_transport_stream,
)


def main() -> None:
    rng = np.random.default_rng(2008)
    codec = CodewordCodec(MPEG2_CRC32)

    # --- transmitter -----------------------------------------------------
    sections = [bytes(rng.integers(0, 256, size=183).tolist()) for _ in range(24)]
    payloads = [codec.encode(s) for s in sections]  # 183 + 4 CRC bytes = 187
    packets = make_transport_stream(payloads)
    scrambled = TransportStreamScrambler().scramble_stream(packets)
    print(f"TX: {len(packets)} packets x {TS_PACKET_BYTES} bytes, "
          f"PSI sections protected with {MPEG2_CRC32.name}")

    # --- receiver joins 5 packets late ------------------------------------
    rx = TransportStreamDescrambler()
    received = rx.descramble_stream(scrambled[5:])
    good = 0
    for packet in received:
        if not rx.synchronized:
            continue
        payload = packet[1:]
        _, ok = codec.decode(payload)
        good += ok
    print(f"RX joined 5 packets late: {good}/{len(received)} sections pass CRC "
          "(packets before the first superframe marker are undecodable)")

    # --- corrupt one byte; the CRC catches it -----------------------------
    damaged = bytearray(scrambled[8])  # first packet of a superframe
    damaged[100] ^= 0x20
    rx2 = TransportStreamDescrambler()
    out = rx2.descramble_packet(bytes(damaged))
    _, ok = codec.decode(out[1:])
    print(f"single corrupted byte detected by CRC: {not ok}")

    # --- both kernels on one DREAM ---------------------------------------
    personalities = {
        "dispersal": map_scrambler(DVB, 64),
        "mpeg-crc": map_crc(MPEG2_CRC32, 64),
    }
    scheduler = WorkloadScheduler(personalities)
    trace = []
    for _ in range(len(packets)):
        trace.append(Job("dispersal", 8 * TS_PACKET_BYTES))
        trace.append(Job("mpeg-crc", 8 * 187))
    report = scheduler.run(trace)
    print(
        f"\nDREAM schedule: {report.jobs} jobs, {report.total_cycles} cycles, "
        f"{report.switches} context switches, "
        f"configuration overhead {report.configuration_overhead:.1%} "
        "(both personalities stay cache-resident)"
    )
    bps = report.throughput_bps(len(packets) * 8 * TS_PACKET_BYTES, 200e6)
    print(f"sustained chain throughput: {bps / 1e9:.2f} Gbit/s")

    software = BitwiseCRC(MPEG2_CRC32)
    for section, payload in zip(sections, payloads):
        message, ok = codec.decode(payload)
        assert ok and message == section and software.verify(section, codec.crc_from_bytes(payload[-4:]))
    print("\nAll section CRCs verified against the software engine.")


if __name__ == "__main__":
    main()
