#!/usr/bin/env python3
"""Stream ciphers from the paper's motivation (§1): A5/1, E0 and CSS.

The paper motivates run-time-reconfigurable LFSR hardware with three
security applications.  This script exercises all three on the library's
LFSR substrate and demonstrates *why* they resist the look-ahead
parallelization that works so well for CRCs and scramblers: irregular
clocking (A5/1) and nonlinear combiners (E0's carries, CSS's
add-with-carry) break the linear time-invariant structure the matrix
method needs.

Run:  python examples/stream_cipher_suite.py
"""

from repro.cipher import A51, CSS, E0


def gsm_frame_encryption() -> None:
    print("=== A5/1: GSM air-interface encryption ===")
    key = bytes([0x12, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF])
    frame_number = 0x134
    downlink, uplink = A51(key, frame_number).burst_pair()
    print(f"Kc = {key.hex()}  frame = 0x{frame_number:06X}")
    print(f"downlink keystream: {downlink.hex()}")
    print(f"uplink   keystream: {uplink.hex()}")
    # Encrypt a 114-bit burst: XOR with the keystream, decrypt likewise.
    burst = bytes(15)  # silence frame
    cipher = bytes(b ^ k for b, k in zip(burst, downlink))
    assert bytes(c ^ k for c, k in zip(cipher, downlink)) == burst
    print("burst encrypt/decrypt round-trip verified")

    # The parallelization blocker: majority clocking stalls registers.
    c = A51(key, frame_number)
    stalled = 0
    for _ in range(114):
        before = (c.r1, c.r2, c.r3)
        c.keystream(1)
        stalled += sum(a == b for a, b in zip(before, (c.r1, c.r2, c.r3)))
    print(f"register stalls in one burst: {stalled}/342 "
          "(data-dependent clocking -> no A^M look-ahead)\n")


def bluetooth_payload() -> None:
    print("=== E0: Bluetooth payload keystream ===")
    seed = bytes(range(16))
    cipher = E0.from_seed(seed)
    print(f"registers (25/31/33/39 bits): "
          f"{[hex(r) for r in cipher.registers]}")
    plaintext = b"DREAM @ 200 MHz"
    ciphertext = E0.from_seed(seed).encrypt(plaintext)
    recovered = E0.from_seed(seed).encrypt(ciphertext)
    assert recovered == plaintext
    print(f"plaintext : {plaintext!r}")
    print(f"ciphertext: {ciphertext.hex()}")
    print("the 2-bit carry FSM makes the combiner nonlinear -> the state-")
    print("space method applies per-register but not to the keystream\n")


def dvd_sector() -> None:
    print("=== CSS: 40-bit content scrambling ===")
    title_key = bytes([0x51, 0x67, 0x67, 0xC5, 0xE0])
    sector = bytes(range(256)) * 8  # one 2048-byte DVD sector
    scrambled = CSS(title_key, "data").scramble(sector)
    restored = CSS(title_key, "data").descramble(scrambled)
    assert restored == sector
    changed = sum(a != b for a, b in zip(sector, scrambled))
    print(f"sector scrambled: {changed}/2048 bytes changed, round-trip OK")
    print("byte-wise add-with-carry couples the two LFSR outputs outside")
    print("GF(2) — another structure the XOR look-ahead cannot absorb\n")


def main() -> None:
    gsm_frame_encryption()
    bluetooth_payload()
    dvd_sector()
    print("All three ciphers verified on the LFSR substrate.")


if __name__ == "__main__":
    main()
