"""Galois-form and word-oriented scramblers, catalog-wide.

Property battery over every spec in `repro.scrambler.specs.CATALOG`:
the shallow-feedback Galois forms must be bit-exact against their
Fibonacci/delay-line references (THEORY.md §7), and the word-oriented
additive path must round-trip and agree with its underlying σ-LFSR.
"""

import numpy as np
import pytest

from repro.errors import SpecError, ValidationError
from repro.lfsr import (
    WORD8,
    WORD32,
    WORD64,
    FibonacciLFSR,
    WordLFSR,
    galois_to_fibonacci_state,
    seed_words_from_bytes,
)
from repro.scrambler import (
    CATALOG,
    AdditiveScrambler,
    FibonacciAdditiveScrambler,
    GaloisFormAdditiveScrambler,
    GaloisMultiplicativeScrambler,
    MultiplicativeScrambler,
    WordAdditiveScrambler,
)
from repro.engine import BatchWordScrambler

PAYLOADS = [b"", b"\x00", b"123456789", bytes(range(64)), b"\xff" * 17]


class TestGaloisFormAdditive:
    @pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
    def test_keystream_matches_fibonacci(self, spec):
        fib = FibonacciAdditiveScrambler(spec)
        gal = GaloisFormAdditiveScrambler(spec)
        assert gal.keystream(6 * spec.poly.degree) == fib.keystream(
            6 * spec.poly.degree
        )

    @pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
    def test_catalog_engine_bridges_via_matching_state(self, spec):
        # The catalog `AdditiveScrambler` clocks `GaloisLFSR(poly, seed)`
        # directly; the matching-state machinery must connect it to its
        # Fibonacci twin (the reciprocal register, per library convention).
        reference = AdditiveScrambler(spec)
        fib = FibonacciLFSR(
            spec.poly.reciprocal(),
            galois_to_fibonacci_state(spec.poly, spec.seed),
        )
        assert fib.keystream(96) == reference.keystream(96)

    @pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
    def test_involution(self, spec):
        gal = GaloisFormAdditiveScrambler(spec)
        for payload in PAYLOADS:
            assert gal.descramble_bytes(gal.scramble_bytes(payload)) == payload

    def test_custom_seed_threads_through(self):
        spec = CATALOG[0]
        for seed in (1, 2, (1 << spec.poly.degree) - 1):
            fib = FibonacciAdditiveScrambler(spec, seed=seed)
            gal = GaloisFormAdditiveScrambler(spec, seed=seed)
            assert gal.keystream(48) == fib.keystream(48)

    def test_zero_seed_rejected(self):
        with pytest.raises(ValidationError):
            GaloisFormAdditiveScrambler(CATALOG[0], seed=0)


class TestGaloisMultiplicative:
    @pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
    def test_scramble_and_state_match_delay_line(self, spec):
        rng = np.random.default_rng(spec.poly.coeffs & 0xFFFF)
        bits = [int(b) for b in rng.integers(0, 2, 160)]
        m = MultiplicativeScrambler(spec.poly)
        g = GaloisMultiplicativeScrambler(spec.poly)
        assert g.scramble_bits(bits) == m.scramble_bits(bits)
        assert g.state == m.state  # mid-stream delay-line coordinates agree

    @pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
    def test_descramble_round_trip(self, spec):
        rng = np.random.default_rng(spec.poly.degree)
        bits = [int(b) for b in rng.integers(0, 2, 96)]
        scrambled = GaloisMultiplicativeScrambler(spec.poly).scramble_bits(bits)
        assert GaloisMultiplicativeScrambler(spec.poly).descramble_bits(
            scrambled
        ) == bits

    def test_self_synchronization(self):
        # A receiver seeded with garbage recovers after sync_length bits.
        poly = CATALOG[0].poly
        bits = [1, 0, 1, 1, 1, 0, 0, 1] * 8
        scrambled = GaloisMultiplicativeScrambler(poly).scramble_bits(bits)
        rx = GaloisMultiplicativeScrambler(poly, state=0x5A5A % (1 << poly.degree))
        out = rx.descramble_bits(scrambled)
        k = rx.sync_length()
        assert out[k:] == bits[k:]

    def test_state_round_trips_through_setter(self):
        poly = CATALOG[0].poly
        g = GaloisMultiplicativeScrambler(poly)
        for state in (0, 1, (1 << poly.degree) - 1):
            g.state = state
            assert g.state == state


class TestWordAdditiveScrambler:
    @pytest.mark.parametrize("spec", (WORD8, WORD32, WORD64), ids=lambda s: s.name)
    def test_round_trip(self, spec):
        w = WordAdditiveScrambler(spec, seed=b"round-trip")
        for payload in PAYLOADS:
            assert w.descramble_bytes(w.scramble_bytes(payload)) == payload

    def test_keystream_is_the_wordlfsr_stream(self):
        seed = seed_words_from_bytes(WORD64, b"agree")
        w = WordAdditiveScrambler(WORD64, seed=seed)
        assert w.keystream_bytes(48) == WordLFSR(WORD64, seed).keystream_bytes(48)

    def test_frame_synchronous(self):
        # Every scramble call restarts the keystream, like AdditiveScrambler.
        w = WordAdditiveScrambler(WORD32, seed=b"frames")
        assert w.scramble_bytes(b"payload") == w.scramble_bytes(b"payload")

    def test_scramble_accepts_memoryview_and_bytearray(self):
        w = WordAdditiveScrambler(WORD64, seed=b"views")
        data = bytearray(b"zero-copy input buffer \x00\xff\x80")
        want = w.scramble_bytes(bytes(data))
        assert w.scramble_bytes(data) == want
        assert w.scramble_bytes(memoryview(data)) == want

    def test_bad_seed_rejected(self):
        with pytest.raises(SpecError):
            WordAdditiveScrambler(WORD32, seed=b"")
        with pytest.raises(SpecError):
            WordAdditiveScrambler(WORD32, seed=[0, 0])


class TestBatchWordScrambler:
    def test_batch_matches_serial_streams(self):
        engine = BatchWordScrambler(WORD32)
        seeds = [b"stream-a", b"stream-b", b"stream-c"]
        ks = engine.keystream_batch(64, batch=3, seeds=seeds)
        assert ks.shape == (64, 3)
        for b, material in enumerate(seeds):
            words = seed_words_from_bytes(WORD32, material)
            serial = WordLFSR(WORD32, words).keystream_bits(64)
            assert np.array_equal(ks[:, b], serial)

    def test_scramble_descramble_batch(self):
        engine = BatchWordScrambler()
        rng = np.random.default_rng(7)
        streams = [
            [int(b) for b in rng.integers(0, 2, n)] for n in (88, 0, 201)
        ]
        scrambled = engine.scramble_batch(streams)
        assert engine.descramble_batch(scrambled) == streams

    def test_seed_count_mismatch_rejected(self):
        with pytest.raises(SpecError):
            BatchWordScrambler().keystream_batch(8, batch=2, seeds=[b"one"])
