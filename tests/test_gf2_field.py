"""Unit tests for repro.gf2.field (GF(2^m) and GFMAC)."""

import pytest

from repro.gf2 import GF2Polynomial, GF2mField

AES_FIELD = GF2mField(GF2Polynomial((1 << 8) | 0x1B))


class TestConstruction:
    def test_degree_and_size(self):
        assert AES_FIELD.degree == 8
        assert AES_FIELD.size == 256

    def test_rejects_reducible_modulus(self):
        with pytest.raises(ValueError):
            GF2mField(GF2Polynomial(0b101))  # (x+1)^2

    def test_rejects_constant(self):
        with pytest.raises(ValueError):
            GF2mField(GF2Polynomial(1))

    def test_skip_irreducibility_check(self):
        f = GF2mField(GF2Polynomial(0b101), check_irreducible=False)
        assert f.degree == 2


class TestArithmetic:
    def test_add_is_xor(self):
        assert AES_FIELD.add(0x57, 0x83) == 0xD4

    def test_known_aes_product(self):
        # The canonical AES example: 0x57 * 0x83 = 0xC1 in GF(2^8)/0x11B.
        assert AES_FIELD.mul(0x57, 0x83) == 0xC1

    def test_mul_identity(self):
        for a in (1, 0x53, 0xFF):
            assert AES_FIELD.mul(a, 1) == a

    def test_mul_zero(self):
        assert AES_FIELD.mul(0xAB, 0) == 0

    def test_mac(self):
        acc, a, b = 0x10, 0x57, 0x83
        assert AES_FIELD.mac(acc, a, b) == (0x10 ^ 0xC1)

    def test_element_out_of_range(self):
        with pytest.raises(ValueError):
            AES_FIELD.mul(0x100, 1)

    def test_inverse(self):
        # Another canonical AES pair: inverse of 0x53 is 0xCA.
        assert AES_FIELD.inverse(0x53) == 0xCA
        assert AES_FIELD.mul(0x53, 0xCA) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            AES_FIELD.inverse(0)

    def test_inverse_roundtrip_many(self):
        for a in range(1, 64):
            assert AES_FIELD.mul(a, AES_FIELD.inverse(a)) == 1

    def test_pow(self):
        assert AES_FIELD.pow(2, 0) == 1
        assert AES_FIELD.pow(2, 1) == 2
        assert AES_FIELD.pow(2, 8) == 0x1B  # x^8 = modulus tail

    def test_x_power_matches_pow(self):
        for e in (0, 1, 7, 8, 100):
            assert AES_FIELD.x_power(e) == AES_FIELD.pow(2, e)


class TestGroupStructure:
    def test_fermat(self):
        for a in (1, 2, 0x53, 0xFE):
            assert AES_FIELD.pow(a, 255) == 1

    def test_element_order_divides_group(self):
        field = GF2mField(GF2Polynomial(0b1011))  # GF(8)
        for a in range(1, 8):
            assert 7 % field.element_order(a) == 0

    def test_element_order_of_one(self):
        assert AES_FIELD.element_order(1) == 1

    def test_element_order_zero_raises(self):
        with pytest.raises(ValueError):
            AES_FIELD.element_order(0)

    def test_log_table_generator(self):
        field = GF2mField(GF2Polynomial(0b1011))  # x is primitive in GF(8)
        table = field.log_table(2)
        assert table[1] == 0
        assert table[2] == 1
        # log is a bijection on non-zero elements
        assert sorted(table[1:]) == list(range(7))

    def test_log_table_non_generator_raises(self):
        with pytest.raises(ValueError):
            AES_FIELD.log_table(1)
