"""Unit tests for netlist verification, VCD export and the memory model."""

import numpy as np
import pytest

from repro.crc import CRCSpec, ETHERNET_CRC32, get
from repro.dream import DREAM_MEMORY, LocalMemoryModel
from repro.gf2 import GF2Matrix
from repro.mapping import (
    map_crc,
    verify_exhaustive,
    verify_linear_basis,
    verify_mapped_crc,
    verify_random,
)
from repro.picoga import Net, PicogaOperation, dump_burst_vcd, xor_cell
from repro.picoga.vcd import VcdWriter


class TestLinearBasisProof:
    def test_mapped_crc32_verifies(self):
        results = verify_mapped_crc(map_crc(ETHERNET_CRC32, 32))
        assert len(results) == 3  # basis + random + output op
        assert all(results)

    def test_direct_method_verifies(self):
        results = verify_mapped_crc(map_crc(ETHERNET_CRC32, 16, method="direct"))
        assert len(results) == 2  # no output op
        assert all(results)

    def test_basis_proof_is_cheap(self):
        mapped = map_crc(ETHERNET_CRC32, 128)
        result = verify_mapped_crc(mapped, random_trials=1)[0]
        assert result.checked == 1 + 32 + 128  # zero + states + inputs

    def test_detects_wrong_matrix(self):
        """Feed the checker a deliberately wrong reference: it must fail
        with a counterexample."""
        mapped = map_crc(get("CRC-8"), 8)
        wrong = GF2Matrix.identity(8)
        result = verify_linear_basis(
            mapped.update_op, wrong, GF2Matrix.zeros(8, 8)
        )
        assert not result
        assert result.counterexample is not None

    def test_detects_constant_offset(self):
        """A netlist computing f(x) ^ 1 is caught by the zero probe."""
        cells = [xor_cell(0, [Net.input(0), Net.input(0)])]  # constant 0...
        # Build instead: output = NOT would need a LUT; emulate a buggy
        # netlist by checking against a matrix expecting 1 on zero input.
        op = PicogaOperation(
            name="buggy", n_inputs=1, n_state=1, cells=[
                xor_cell(0, [Net.state(0), Net.input(0)]),
            ],
            outputs=[], next_state=[Net.cell(0)],
        )
        # Correct reference passes ...
        ok = verify_linear_basis(op, GF2Matrix.identity(1), GF2Matrix.identity(1))
        assert ok
        # ... wrong input matrix fails on the input column.
        bad = verify_linear_basis(op, GF2Matrix.identity(1), GF2Matrix.zeros(1, 1))
        assert not bad
        assert bad.counterexample["kind"] == "input-column"

    def test_shape_validation(self):
        mapped = map_crc(get("CRC-8"), 8)
        with pytest.raises(ValueError):
            verify_linear_basis(mapped.update_op, GF2Matrix.identity(4), GF2Matrix.zeros(4, 8))


class TestExhaustive:
    def test_small_crc_exhaustive(self):
        """CRC-5 at M = 4: all 2^9 cases — validates the basis argument."""
        spec = get("CRC-5/USB")
        mapped = map_crc(spec, 4)
        from repro.lfsr.lookahead import expand_lookahead
        from repro.lfsr.statespace import crc_statespace

        dt = mapped.transform
        arr = dt.B_Mt.to_array()[:, ::-1]
        result = verify_exhaustive(mapped.update_op, dt.A_Mt, GF2Matrix(arr.copy()))
        assert result
        assert result.checked == 1 << 9

    def test_size_limit(self):
        mapped = map_crc(ETHERNET_CRC32, 32)
        with pytest.raises(ValueError):
            verify_exhaustive(
                mapped.update_op,
                mapped.transform.A_Mt,
                GF2Matrix(mapped.transform.B_Mt.to_array()[:, ::-1].copy()),
            )


class TestRandomVerification:
    def test_passes_on_correct(self):
        mapped = map_crc(get("CRC-16/CCITT-FALSE"), 16)
        arr = mapped.transform.B_Mt.to_array()[:, ::-1]
        assert verify_random(
            mapped.update_op, mapped.transform.A_Mt, GF2Matrix(arr.copy()), trials=50
        )


class TestVcdExport:
    @pytest.fixture
    def small_op(self):
        return map_crc(get("CRC-8"), 8).update_op

    def test_file_structure(self, tmp_path, small_op):
        path = tmp_path / "burst.vcd"
        rng = np.random.default_rng(1)
        blocks = [[int(b) for b in rng.integers(0, 2, size=8)] for _ in range(5)]
        final = dump_burst_vcd(small_op, [0] * 8, blocks, str(path))
        text = path.read_text()
        assert "$timescale 5ns $end" in text
        assert "$enddefinitions $end" in text
        assert text.count("$var wire 1") == 8 + 8 + small_op.n_cells
        assert "#4" in text  # five blocks -> timesteps 0..4 (+ final stamp)
        assert len(final) == 8

    def test_loop_cells_labelled(self, tmp_path, small_op):
        path = tmp_path / "loop.vcd"
        dump_burst_vcd(small_op, [0] * 8, [[1] * 8], str(path))
        assert "_loop" in path.read_text()

    def test_final_state_matches_evaluate(self, tmp_path, small_op):
        rng = np.random.default_rng(2)
        blocks = [[int(b) for b in rng.integers(0, 2, size=8)] for _ in range(3)]
        state = [0] * 8
        for b in blocks:
            _, state = small_op.evaluate(state, b)
        path = tmp_path / "cmp.vcd"
        assert dump_burst_vcd(small_op, [0] * 8, blocks, str(path)) == state

    def test_only_changes_are_emitted(self, tmp_path, small_op):
        """Constant-zero blocks after the first emit no value changes."""
        path = tmp_path / "quiet.vcd"
        dump_burst_vcd(small_op, [0] * 8, [[0] * 8] * 4, str(path))
        text = path.read_text()
        body = text.split("$enddefinitions $end")[1]
        # After timestep 0 dumps all-zeros, later timesteps add nothing.
        for stamp in ("#1", "#2", "#3"):
            idx = body.index(stamp)
            following = body[idx + len(stamp):].lstrip().splitlines()[0]
            assert following.startswith("#"), stamp


class TestMemoryModel:
    def test_dream_default_sustains_exactly_128(self):
        assert DREAM_MEMORY.max_sustained_m() == 128
        assert DREAM_MEMORY.sustains_lookahead(128)
        assert not DREAM_MEMORY.sustains_lookahead(256)

    def test_capacity_covers_max_ethernet_frame(self):
        assert DREAM_MEMORY.capacity_bits >= 12144

    def test_staging_cycles(self):
        model = LocalMemoryModel(dma_width_bits=64, dma_setup_cycles=12)
        assert model.staging_cycles(12144) == 12 + (12144 + 63) // 64

    def test_double_buffering_hides_dma(self):
        model = LocalMemoryModel()
        staging = model.staging_cycles(12144)
        # Compute at M = 128 takes ~179 cycles; staging ~202 -> partially
        # exposed; a long-enough compute hides it completely.
        assert model.exposed_staging_cycles(12144, staging + 10) == 0
        assert model.exposed_staging_cycles(12144, staging - 50) == 50

    def test_serialized_without_double_buffering(self):
        model = LocalMemoryModel(double_buffered=False)
        assert model.exposed_staging_cycles(1024, 10**6) == model.staging_cycles(1024)

    def test_effective_throughput_never_exceeds_compute_bound(self):
        model = LocalMemoryModel()
        compute = 179  # M = 128 single message, 12144 bits
        bps = model.effective_throughput_bps(12144, compute)
        assert bps <= 12144 * 200e6 / compute

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalMemoryModel(banks=0)
        with pytest.raises(ValueError):
            DREAM_MEMORY.staging_cycles(0)
        with pytest.raises(ValueError):
            DREAM_MEMORY.staging_cycles(DREAM_MEMORY.capacity_bits + 1)
        with pytest.raises(ValueError):
            DREAM_MEMORY.sustains_lookahead(0)
