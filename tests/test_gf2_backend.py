"""GF(2) backend registry behavior and cross-backend bit-exactness.

The packed backends are only useful if they are *indistinguishable* from
the pure-Python reference on every kernel and through every engine that
threads a ``backend=`` argument, so most tests here are parametrized over
backend names and compare against either the reference backend or the
bit-serial engines.
"""

import numpy as np
import pytest

from repro.crc import BitwiseCRC, DerbyCRC, LookaheadCRC, get as get_crc
from repro.engine import BatchAdditiveScrambler, BatchCRC, BatchMultiplicativeScrambler
from repro.errors import ValidationError
from repro.gf2.backend import (
    BACKEND_ENV,
    GF2Backend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.gf2.polynomial import GF2Polynomial
from repro.scrambler import AdditiveScrambler
from repro.scrambler.multiplicative import MultiplicativeScrambler
from repro.scrambler.specs import get as get_scrambler

BACKENDS = ["reference", "packed", "packed-int"]
PACKED = ["packed", "packed-int"]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_available(self):
        names = available_backends()
        for expected in BACKENDS:
            assert expected in names

    def test_get_backend_memoizes(self):
        assert get_backend("packed") is get_backend("packed")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            get_backend("no-such-backend")

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "reference")
        assert default_backend_name() == "reference"
        assert get_backend().name == "reference"
        monkeypatch.delenv(BACKEND_ENV)
        assert default_backend_name() == "packed"

    def test_env_var_unknown_name_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "typo")
        with pytest.raises(ValidationError):
            get_backend()

    def test_register_refuses_silent_shadowing(self):
        with pytest.raises(ValidationError):
            register_backend("packed", lambda: get_backend("reference"))

    def test_resolve_accepts_instance_name_and_none(self):
        instance = get_backend("reference")
        assert resolve_backend(instance) is instance
        assert resolve_backend("reference") is instance
        assert isinstance(resolve_backend(None), GF2Backend)


# ----------------------------------------------------------------------
# Kernel parity against the reference backend
# ----------------------------------------------------------------------
@pytest.fixture(params=PACKED)
def packed_backend(request):
    return get_backend(request.param)


class TestKernelParity:
    @pytest.fixture(scope="class")
    def rng(self):
        return np.random.default_rng(0xC0FFEE)

    def _random(self, rng, *shape):
        return rng.integers(0, 2, size=shape).astype(np.uint8)

    @pytest.mark.parametrize("n", [1, 7, 32, 43])
    def test_matvec(self, packed_backend, rng, n):
        ref = get_backend("reference")
        a = self._random(rng, n, n)
        x = self._random(rng, n)
        assert packed_backend.matvec(a, x).tolist() == ref.matvec(a, x).tolist()

    @pytest.mark.parametrize("shape", [(4, 9, 5), (32, 32, 32), (1, 1, 1)])
    def test_matmul(self, packed_backend, rng, shape):
        r, inner, c = shape
        ref = get_backend("reference")
        a = self._random(rng, r, inner)
        b = self._random(rng, inner, c)
        assert packed_backend.matmul(a, b).tolist() == ref.matmul(a, b).tolist()

    @pytest.mark.parametrize("e", [0, 1, 2, 13])
    def test_matpow(self, packed_backend, rng, e):
        ref = get_backend("reference")
        a = self._random(rng, 16, 16)
        assert packed_backend.matpow(a, e).tolist() == ref.matpow(a, e).tolist()

    def test_matpow_rejects_negative_and_rectangular(self, packed_backend):
        with pytest.raises(ValidationError):
            packed_backend.matpow(np.zeros((3, 3), dtype=np.uint8), -1)
        with pytest.raises(ValidationError):
            packed_backend.matpow(np.zeros((2, 3), dtype=np.uint8), 2)

    @pytest.mark.parametrize("batch", [1, 63, 64, 65, 1000])
    def test_pack_unpack_round_trip(self, packed_backend, rng, batch):
        bits = self._random(rng, 24, batch)
        packed = packed_backend.pack(bits)
        assert packed_backend.unpack(packed, batch).tolist() == bits.tolist()

    @pytest.mark.parametrize("batch", [1, 64, 200])
    def test_matvec_batch(self, packed_backend, rng, batch):
        ref = get_backend("reference")
        a = self._random(rng, 32, 48)
        block = self._random(rng, 48, batch)
        got = packed_backend.unpack(
            packed_backend.matvec_batch(a, packed_backend.pack(block)), batch
        )
        expected = ref.unpack(ref.matvec_batch(a, ref.pack(block)), batch)
        assert got.tolist() == expected.tolist()

    def test_concat_and_from_rows(self, packed_backend, rng):
        top = self._random(rng, 5, 70)
        bottom = self._random(rng, 3, 70)
        joined = packed_backend.concat(
            [packed_backend.pack(top), packed_backend.pack(bottom)]
        )
        assert packed_backend.unpack(joined, 70).tolist() == np.vstack(
            [top, bottom]
        ).tolist()
        rebuilt = packed_backend.from_rows([row for row in joined])
        assert packed_backend.unpack(rebuilt, 70).tolist() == np.vstack(
            [top, bottom]
        ).tolist()


# ----------------------------------------------------------------------
# Engines under explicit backend selection
# ----------------------------------------------------------------------
MESSAGES = [b"", b"\x00", b"123456789", bytes(range(64)), b"\xff" * 17]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("standard", ["CRC-32", "CRC-16/CCITT-FALSE", "CRC-8"])
class TestCRCEnginesAcrossBackends:
    def test_derby_crc_matches_bitwise(self, backend, standard):
        spec = get_crc(standard)
        serial = BitwiseCRC(spec)
        engine = DerbyCRC(spec, 8, backend=backend)
        assert engine.backend.name == backend
        for msg in MESSAGES:
            assert engine.compute(msg) == serial.compute(msg)

    def test_lookahead_crc_matches_bitwise(self, backend, standard):
        spec = get_crc(standard)
        serial = BitwiseCRC(spec)
        engine = LookaheadCRC(spec, 16, backend=backend)
        for msg in MESSAGES:
            assert engine.compute(msg) == serial.compute(msg)

    def test_batch_crc_matches_bitwise(self, backend, standard):
        spec = get_crc(standard)
        serial = BitwiseCRC(spec)
        engine = BatchCRC(spec, 32, backend=backend)
        assert engine.compute_batch(list(MESSAGES)) == [
            serial.compute(m) for m in MESSAGES
        ]


@pytest.mark.parametrize("backend", BACKENDS)
class TestScramblersAcrossBackends:
    def test_additive_keystream_and_involution(self, backend):
        spec = get_scrambler("DVB")
        serial = AdditiveScrambler(spec, backend="reference")
        engine = AdditiveScrambler(spec, backend=backend)
        for n in (0, 1, 63, 64, 65, 130):
            assert engine.keystream(n) == serial.keystream(n)
        bits = [(i * 5 + 1) % 2 for i in range(100)]
        assert engine.descramble_bits(engine.scramble_bits(bits)) == bits

    def test_batch_additive_matches_serial(self, backend):
        spec = get_scrambler("SONET")
        engine = BatchAdditiveScrambler(spec, 16, backend=backend)
        streams = [[1, 0, 1] * 10, [0] * 17, []]
        expected = [AdditiveScrambler(spec).scramble_bits(s) for s in streams]
        assert engine.scramble_batch(streams) == expected

    def test_multiplicative_descramble_and_state(self, backend):
        poly = GF2Polynomial((1 << 7) | (1 << 4) | 1)
        data = [(3 * i + 1) % 2 for i in range(90)]
        scrambled = MultiplicativeScrambler(poly, 0x55).scramble_bits(data)
        serial = MultiplicativeScrambler(poly, 0x55, backend="reference")
        engine = MultiplicativeScrambler(poly, 0x55, backend=backend)
        assert engine.descramble_bits(scrambled) == serial.descramble_bits(scrambled)
        assert engine.state == serial.state

    def test_batch_multiplicative_matches_serial(self, backend):
        poly = GF2Polynomial((1 << 5) | (1 << 2) | 1)
        engine = BatchMultiplicativeScrambler(poly, backend=backend)
        streams = [[1, 1, 0, 1] * 8, [0, 1] * 3]
        states = [0b10101, 0]
        expected = [
            MultiplicativeScrambler(poly, state=st).scramble_bits(s)
            for s, st in zip(streams, states)
        ]
        assert engine.scramble_batch(streams, states=states) == expected


# ----------------------------------------------------------------------
# Env-var plumbing end to end
# ----------------------------------------------------------------------
class TestEnvSelection:
    def test_engines_follow_env_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "reference")
        assert BatchCRC(get_crc("CRC-16/ARC"), 8).backend.name == "reference"
        monkeypatch.setenv(BACKEND_ENV, "packed")
        assert DerbyCRC(get_crc("CRC-16/ARC"), 8).backend.name == "packed"

    def test_fuzz_smoke_under_packed_env(self, monkeypatch):
        from repro.verify import run_fuzz

        monkeypatch.setenv(BACKEND_ENV, "packed")
        report = run_fuzz(seed=3, max_cases=20)
        assert report.ok
        assert report.cases == 20

    def test_cli_backend_flag(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.delenv(BACKEND_ENV, raising=False)
        # main() sets the process default; put it back after the test.
        monkeypatch.setattr(
            "repro.gf2.backend._DEFAULT_NAME", default_backend_name()
        )
        for backend in ("reference", "packed"):
            assert (
                main(
                    [
                        "crc",
                        "--standard",
                        "CRC-32",
                        "--text",
                        "123456789",
                        "--backend",
                        backend,
                    ]
                )
                == 0
            )
            assert "0xCBF43926" in capsys.readouterr().out
