"""Property-based tests of the full mapping chain.

The mapper's pipeline (equations -> CSE -> packing -> PicogaOperation) is
driven with *random* linear systems, and the resulting netlist is proven
against the source matrices with the linear-basis checker.  If any stage
(pattern extraction, tree packing, loop separation) ever mangles a
function, these tests find it without needing a CRC interpretation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2 import GF2Matrix
from repro.mapping import (
    extract_common_patterns,
    no_cse,
    pack_equations,
    recurrence_equations,
    verify_linear_basis,
)
from repro.picoga import PicogaArchitecture, PicogaOperation

dims = st.integers(min_value=1, max_value=10)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _build_op(state_matrix: GF2Matrix, input_matrix: GF2Matrix, use_cse: bool) -> PicogaOperation:
    eqs = recurrence_equations(state_matrix, input_matrix)
    # Reject systems with an identically-zero next-state bit (no leaves):
    # real LFSR systems never produce them, and packing requires a net.
    cse = extract_common_patterns(eqs) if use_cse else no_cse(eqs)
    packed = pack_equations(cse, fanin=10)
    arch = PicogaArchitecture(rows=200, cells_per_row=16, input_ports=32)
    return PicogaOperation(
        name="random",
        n_inputs=input_matrix.ncols,
        n_state=state_matrix.nrows,
        cells=packed.cells,
        outputs=[],
        next_state=packed.output_nets,
        arch=arch,
    )


def _nonzero_rows(k: int, m: int, seed: int):
    rng = np.random.default_rng(seed)
    while True:
        s = rng.integers(0, 2, size=(k, k), dtype=np.uint8)
        u = rng.integers(0, 2, size=(k, m), dtype=np.uint8)
        if ((s.sum(axis=1) + u.sum(axis=1)) > 0).all():
            return GF2Matrix(s), GF2Matrix(u)


class TestRandomLinearSystems:
    @given(k=dims, m=dims, seed=seeds, use_cse=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_packed_netlist_equals_matrices(self, k, m, seed, use_cse):
        state_matrix, input_matrix = _nonzero_rows(k, m, seed)
        op = _build_op(state_matrix, input_matrix, use_cse)
        assert verify_linear_basis(op, state_matrix, input_matrix)

    @given(k=dims, m=dims, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_cse_and_raw_netlists_agree(self, k, m, seed):
        state_matrix, input_matrix = _nonzero_rows(k, m, seed)
        with_cse = _build_op(state_matrix, input_matrix, True)
        without = _build_op(state_matrix, input_matrix, False)
        rng = np.random.default_rng(seed ^ 0xFFFF)
        for _ in range(5):
            state = [int(b) for b in rng.integers(0, 2, size=k)]
            inputs = [int(b) for b in rng.integers(0, 2, size=m)]
            assert with_cse.evaluate(state, inputs) == without.evaluate(state, inputs)

    @given(k=dims, m=dims, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_fanin_limit_always_respected(self, k, m, seed):
        state_matrix, input_matrix = _nonzero_rows(k, m, seed)
        op = _build_op(state_matrix, input_matrix, True)
        assert all(cell.fanin <= 10 for cell in op.cells)

    @given(k=st.integers(min_value=1, max_value=6), seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_serialize_roundtrip_random_netlists(self, k, seed):
        from repro.picoga import op_dumps
        from repro.picoga.serialize import loads

        state_matrix, input_matrix = _nonzero_rows(k, k, seed)
        op = _build_op(state_matrix, input_matrix, True)
        clone = loads(op_dumps(op), arch=op.arch)
        rng = np.random.default_rng(seed)
        state = [int(b) for b in rng.integers(0, 2, size=k)]
        inputs = [int(b) for b in rng.integers(0, 2, size=k)]
        assert clone.evaluate(state, inputs) == op.evaluate(state, inputs)
