"""Shared test fixtures: canned host profiles, a fake clock, and
deterministic parallel-engine scaffolding.

The planner's cost tables are plain data, so tests never need to time
anything: ``host_profiles`` provides a stable menu of synthetic hosts
(the BENCH_5 1-CPU container, a 16-core server, a slow-spawn process
pool, ...) and ``fake_clock`` replaces ``time.perf_counter`` wherever a
probe or threshold check would otherwise be timing-flaky.  The
``lagged_pipeline`` factory builds the hand-imbalanced sharded pipeline
the scheduler-stealing tests exercise, and ``crashing_worker`` supplies
the deterministic failing shard function for crash-containment tests.
"""

import pytest

from repro.engine.planner import HostProfile


class FakeClock:
    """Deterministic ``time.perf_counter`` stand-in.

    Every read returns the current time and then advances it by ``step``
    — so any code that brackets work with two reads observes exactly one
    step of "elapsed" time, independent of host load.  ``advance``
    injects extra elapsed time between reads for tests that model slow
    operations.
    """

    def __init__(self, start: float = 0.0, step: float = 0.001):
        self.now = start
        self.step = step
        self.reads = 0

    def __call__(self) -> float:
        t = self.now
        self.now += self.step
        self.reads += 1
        return t

    def advance(self, dt: float) -> None:
        """Inject ``dt`` seconds of elapsed time before the next read."""
        self.now += dt


@pytest.fixture
def fake_clock():
    """A fresh deterministic clock (1 ms per read)."""
    return FakeClock()


def make_host_profiles():
    """The canned synthetic host menu (plain dict, importable directly).

    Each entry is a :class:`~repro.engine.planner.HostProfile` shaped to
    force one corner of the plan space; tests assert decisions against
    them without timing anything.
    """
    return {
        # The BENCH_5 container: one CPU, fast packed kernels.  Parallel
        # can never pay here — the planner must return serial.
        "bench5-1cpu": HostProfile.synthetic(cpus=1, fingerprint="bench5-1cpu"),
        # A small laptop: two cores, ordinary pool costs.
        "laptop-2cpu": HostProfile.synthetic(cpus=2, fingerprint="laptop-2cpu"),
        # A desktop: four cores, cheap threads.
        "desktop-4cpu": HostProfile.synthetic(
            cpus=4,
            fingerprint="desktop-4cpu",
            thread_spawn_s=1e-4,
            thread_dispatch_s=2e-5,
        ),
        # A big server: sixteen cores, very cheap pool machinery.
        "server-16cpu": HostProfile.synthetic(
            cpus=16,
            fingerprint="server-16cpu",
            thread_spawn_s=5e-5,
            thread_dispatch_s=5e-6,
        ),
        # Many cores but a pathologically slow pool: spawn and dispatch
        # dominate, so sharding only pays for very large workloads.
        "slow-spawn-8cpu": HostProfile.synthetic(
            cpus=8,
            fingerprint="slow-spawn-8cpu",
            thread_spawn_s=0.05,
            thread_dispatch_s=5e-3,
            process_spawn_s=2.0,
            process_dispatch_s=0.05,
        ),
        # A GIL-bound host: only the pure-Python reference backend, which
        # shards onto a process pool with heavy serialization costs.
        "gil-bound-4cpu": HostProfile(
            fingerprint="gil-bound-4cpu",
            cpus=4,
            backend_bits_per_s={"reference": 8.0e6},
            backend_mode={"reference": "process"},
            spawn_s={"thread": 2e-4, "process": 0.25},
            dispatch_s={"thread": 5e-5, "process": 2e-3},
            recombine_s=2e-5,
            pickle_bits_per_s=5.0e8,
            # Reference backend only, so the only keystream source this
            # host measured is the bit-serial register (partial table).
            keystream_bits_per_s={"galois-bitserial": 2.0e6},
        ),
    }


@pytest.fixture(scope="session")
def host_profiles():
    """Canned synthetic host profiles, keyed by a descriptive name."""
    return make_host_profiles()


@pytest.fixture
def lagged_pipeline():
    """Factory: a 2-shard CRC pipeline with all load piled on one shard.

    Returns ``(pipe, streams)`` where ``streams`` maps ``"a"``/``"b"``/
    ``"c"`` to stream ids — ``a`` and ``b`` carry the given bit loads on
    the *same* shard (forced by hand-migration), ``c`` is an empty
    stream on the other shard.  ``pipe.shard_pending()`` is therefore
    maximally imbalanced on return, deterministically, with no sleeps or
    cross-thread races involved.
    """
    from repro.engine import CompileCache, ShardedCRCPipeline, ShardScheduler
    from repro.crc import get as get_crc

    pipes = []

    def build(heavy_bits=2000, light_bits=1564, steal_ratio=1.0):
        spec = get_crc("CRC-16/ARC")
        cache = CompileCache()
        sched = ShardScheduler(2, steal_ratio=steal_ratio)
        pipe = ShardedCRCPipeline(spec, 8, workers=2, cache=cache, scheduler=sched)
        a = pipe.open("a")
        b = pipe.open("b")
        pipe.feed_bits(a, [1] * heavy_bits, pump=False)
        pipe.feed_bits(b, [0] * 64, pump=False)
        c = pipe.open("c")  # lands on the lighter shard
        # Force every loaded stream onto a's shard so one shard holds
        # all pending bits and the other none.
        home_a = pipe._home[a]
        heavy_shard = pipe.shards[home_a]
        for sid in (b, c):
            if pipe._home[sid] != home_a:
                pipe.shards[pipe._home[sid]].migrate(sid, heavy_shard)
                pipe._home[sid] = home_a
        pipe.feed_bits(b, [1] * (light_bits - 64), pump=False)
        pipes.append(pipe)
        return pipe, {"a": a, "b": b, "c": c}

    yield build
    for pipe in pipes:
        pipe.close()


@pytest.fixture
def crashing_worker():
    """A deterministic failing shard function (with its error message)."""

    def boom(*args):
        raise RuntimeError("kaboom (injected shard crash)")

    return boom
