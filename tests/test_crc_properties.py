"""Unit tests for repro.crc.properties (error-detection analysis)."""

import pytest

from repro.crc import CRCSpec, ETHERNET_CRC32, get
from repro.crc.properties import (
    detects_all_burst_errors,
    detects_error_pattern,
    minimum_distance,
    undetected_fraction_exhaustive,
    weight_spectrum,
)

CRC8 = get("CRC-8")
CRC16 = get("CRC-16/XMODEM")


class TestErrorPatterns:
    def test_zero_pattern_rejected(self):
        with pytest.raises(ValueError):
            detects_error_pattern(CRC8, 0)

    def test_single_bit_always_detected(self):
        for pos in range(64):
            assert detects_error_pattern(ETHERNET_CRC32, 1 << pos)

    def test_generator_multiple_undetected(self):
        """An error equal to the generator polynomial itself slips through
        — the defining failure mode of a CRC."""
        g = CRC8.generator().coeffs
        assert not detects_error_pattern(CRC8, g)

    def test_generator_times_x_undetected(self):
        g = CRC16.generator().coeffs
        assert not detects_error_pattern(CRC16, g << 3)

    def test_presets_do_not_change_detectability(self):
        """Detectability is a property of the raw linear code (linearity),
        so reflected/preset variants agree with their raw cousins."""
        raw = CRCSpec("RAW", 16, 0x1021)
        for pattern in (0b1, 0b101 << 7, CRC16.generator().coeffs):
            assert detects_error_pattern(raw, pattern) == detects_error_pattern(
                get("CRC-16/CCITT-FALSE"), pattern
            )


class TestBurstCoverage:
    def test_crc8_catches_bursts_up_to_width(self):
        assert detects_all_burst_errors(CRC8, burst_length=8, message_bits=24)

    def test_crc16_catches_bursts_up_to_width(self):
        assert detects_all_burst_errors(CRC16, burst_length=12, message_bits=24)

    def test_validation(self):
        with pytest.raises(ValueError):
            detects_all_burst_errors(CRC8, 0, 8)

    def test_weak_generator_misses_long_bursts(self):
        """g(x) = x^4 + 1 is reducible and misses some short patterns."""
        weak = CRCSpec("WEAK-4", 4, 0x1)  # x^4 + 1
        # x^4+1 divides x^8+... specifically pattern (x^4+1) is a burst of
        # length 5 that it cannot see.
        assert not detects_error_pattern(weak, 0b10001)


class TestMinimumDistance:
    def test_crc8_distance_over_short_blocks(self):
        report = minimum_distance(CRC8, message_bits=16, max_weight=4)
        assert report.hamming_distance is not None
        assert report.hamming_distance >= 2

    def test_crc32_no_low_weight_codewords_short_block(self):
        """CRC-32 has Hamming distance >= 5 well beyond this block size."""
        report = minimum_distance(ETHERNET_CRC32, message_bits=24, max_weight=4)
        assert report.hamming_distance is None
        assert report.checked_up_to_weight == 4

    def test_distance_is_even_for_even_weight_generators(self):
        """Generators divisible by (x+1) — even tap count — detect all
        odd-weight errors, so the first undetected weight is even."""
        spec = get("CRC-16/ARC")  # 0x8005: x^16+x^15+x^2+1, divisible by x+1
        report = minimum_distance(spec, message_bits=20, max_weight=4)
        if report.hamming_distance is not None:
            assert report.hamming_distance % 2 == 0


class TestUndetectedFraction:
    def test_matches_closed_form(self):
        """Fraction = (2^(N-W) - 1) / (2^N - 1) for N > W."""
        n = 12
        measured = undetected_fraction_exhaustive(CRC8, n)
        expected = ((1 << (n - 8)) - 1) / ((1 << n) - 1)
        assert measured == pytest.approx(expected)

    def test_all_detected_when_shorter_than_width(self):
        assert undetected_fraction_exhaustive(CRC8, 8) == 0.0

    def test_size_limit(self):
        with pytest.raises(ValueError):
            undetected_fraction_exhaustive(CRC8, 20)


class TestWeightSpectrum:
    def test_counts_positions(self):
        spectrum = weight_spectrum(CRC8, 32)
        assert sum(spectrum.values()) == 32

    def test_no_zero_weight(self):
        """Single-bit errors always leave a non-zero syndrome."""
        spectrum = weight_spectrum(ETHERNET_CRC32, 128)
        assert 0 not in spectrum
