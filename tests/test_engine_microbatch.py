"""Contract of the micro-batching scheduler (:mod:`repro.engine.microbatch`).

What matters and gets direct coverage:

* **Coalescing** — concurrent submitters land in one executor round
  (occupancy tracked), and a lone submitter still completes promptly
  (eager flush below the linger threshold).
* **Grouping** — a mixed queue routes each op to the runner registered
  for its key, results scatter back to exactly the right futures, and
  per-op failures stay contained to their future.
* **Lifecycle** — flushing an idle batcher counts an ``empty_flush``;
  ``aclose`` drains then refuses new work with the dedicated
  :class:`~repro.engine.microbatch.BatcherClosed`; an abandoned
  submitter (cancelled mid-round) never wedges the round.
* **Engine composition** — ``finalize_many`` matches per-stream
  ``finalize`` bit-exactly on :class:`~repro.engine.CRCPipeline` and on
  a ``workers>1`` :class:`~repro.engine.ShardedCRCPipeline`, including
  through the batcher with the server's grouped-runner pattern.

No pytest-asyncio in the toolchain: each test drives its own event loop
through ``asyncio.run``.
"""

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.crc import TableCRC, get
from repro.engine import (
    CRCPipeline,
    MicroBatcher,
    ShardedCRCPipeline,
    run_ops,
    submit_all,
)
from repro.engine.microbatch import BatcherClosed
from repro.errors import StreamError, ValidationError

SPEC = get("CRC-32")
ORACLE = TableCRC(SPEC)


def run(coro):
    return asyncio.run(coro)


def make_batcher(**kwargs):
    executor = ThreadPoolExecutor(max_workers=1)
    batcher = MicroBatcher(executor, **kwargs)
    return batcher, executor


# ----------------------------------------------------------------------
# Coalescing and scatter
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_concurrent_submitters_share_rounds(self):
        async def scenario():
            batcher, executor = make_batcher(max_batch=64)
            batcher.register("k", run_ops)
            batcher.start()
            try:
                results = await submit_all(
                    batcher, "k", [lambda i=i: i * 10 for i in range(32)]
                )
            finally:
                await batcher.aclose()
                executor.shutdown()
            return results, batcher.stats

        results, stats = run(scenario())
        assert results == [i * 10 for i in range(32)]
        assert stats.ops == 32
        # Far fewer rounds than ops — work actually coalesced.
        assert stats.batches < 32
        assert stats.max_occupancy > 1

    def test_single_submitter_is_not_delayed_by_linger(self):
        """Below ``linger_min_depth`` the round flushes eagerly, so one
        caller never waits out the straggler window."""
        async def scenario():
            batcher, executor = make_batcher(
                max_batch=64, linger_s=5.0, linger_min_depth=2
            )
            batcher.register("k", run_ops)
            batcher.start()
            try:
                return await asyncio.wait_for(
                    batcher.submit("k", lambda: "fast"), timeout=1.0
                )
            finally:
                await batcher.aclose()
                executor.shutdown()

        assert run(scenario()) == "fast"

    def test_max_batch_caps_round_occupancy(self):
        async def scenario():
            batcher, executor = make_batcher(max_batch=4)
            batcher.register("k", run_ops)
            batcher.start()
            try:
                await submit_all(batcher, "k", [lambda: None] * 16)
            finally:
                await batcher.aclose()
                executor.shutdown()
            return batcher.stats

        stats = run(scenario())
        assert stats.ops == 16
        assert stats.max_occupancy <= 4


# ----------------------------------------------------------------------
# Mixed-key grouping and failure containment
# ----------------------------------------------------------------------
class TestGrouping:
    def test_mixed_spec_queue_groups_by_key(self):
        """Two specs' ops interleave in one queue; each group runs its
        own runner and results land on the right futures."""
        seen = {"a": [], "b": []}

        def runner_a(ops):
            seen["a"].append(len(ops))
            return [("a", op) for op in ops]

        def runner_b(ops):
            seen["b"].append(len(ops))
            return [("b", op) for op in ops]

        async def scenario():
            batcher, executor = make_batcher(max_batch=64)
            batcher.register("spec-a", runner_a)
            batcher.register("spec-b", runner_b)
            batcher.start()
            try:
                results = await asyncio.gather(*(
                    batcher.submit("spec-a" if i % 2 == 0 else "spec-b", i)
                    for i in range(20)
                ))
            finally:
                await batcher.aclose()
                executor.shutdown()
            return results

        results = run(scenario())
        for i, (key, op) in enumerate(results):
            assert key == ("a" if i % 2 == 0 else "b")
            assert op == i
        assert sum(seen["a"]) == 10 and sum(seen["b"]) == 10

    def test_unregistered_key_rejected(self):
        async def scenario():
            batcher, executor = make_batcher()
            batcher.register("known", run_ops)
            batcher.start()
            try:
                with pytest.raises(ValidationError, match="no runner"):
                    await batcher.submit("unknown", lambda: None)
            finally:
                await batcher.aclose()
                executor.shutdown()

        run(scenario())

    def test_per_op_failure_contained_to_its_future(self):
        def boom():
            raise StreamError("stream gone")

        async def scenario():
            batcher, executor = make_batcher()
            batcher.register("k", run_ops)
            batcher.start()
            try:
                results = await asyncio.gather(
                    batcher.submit("k", lambda: 1),
                    batcher.submit("k", boom),
                    batcher.submit("k", lambda: 3),
                    return_exceptions=True,
                )
            finally:
                await batcher.aclose()
                executor.shutdown()
            return results

        one, err, three = run(scenario())
        assert one == 1 and three == 3
        assert isinstance(err, StreamError)

    def test_runner_result_length_mismatch_is_validation_error(self):
        async def scenario():
            batcher, executor = make_batcher()
            batcher.register("bad", lambda ops: [])
            batcher.start()
            try:
                with pytest.raises(ValidationError, match="results for"):
                    await batcher.submit("bad", lambda: None)
            finally:
                await batcher.aclose()
                executor.shutdown()

        run(scenario())


# ----------------------------------------------------------------------
# Lifecycle: flush, drain, close
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_empty_flush_on_drain_is_counted_and_legal(self):
        async def scenario():
            batcher, executor = make_batcher()
            batcher.register("k", run_ops)
            batcher.start()
            await batcher.flush()  # nothing queued: still legal
            stats_mid = batcher.stats.empty_flushes
            await batcher.aclose()  # drain path flushes again
            executor.shutdown()
            return stats_mid, batcher.stats

        flushed_mid, stats = run(scenario())
        assert flushed_mid == 1
        assert stats.empty_flushes >= 2
        assert stats.batches == 0

    def test_submit_after_close_raises_batcher_closed(self):
        async def scenario():
            batcher, executor = make_batcher()
            batcher.register("k", run_ops)
            batcher.start()
            await batcher.aclose()
            with pytest.raises(BatcherClosed):
                await batcher.submit("k", lambda: None)
            executor.shutdown()

        run(scenario())

    def test_submit_before_start_raises_batcher_closed(self):
        async def scenario():
            batcher, executor = make_batcher()
            batcher.register("k", run_ops)
            with pytest.raises(BatcherClosed):
                await batcher.submit("k", lambda: None)
            executor.shutdown()

        run(scenario())

    def test_aclose_drains_queued_work_first(self):
        done = []

        async def scenario():
            batcher, executor = make_batcher(max_batch=2)
            batcher.register("k", run_ops)
            batcher.start()
            tasks = [
                asyncio.create_task(
                    batcher.submit("k", lambda i=i: done.append(i))
                )
                for i in range(8)
            ]
            await asyncio.sleep(0)  # let submissions enqueue
            await batcher.aclose()
            await asyncio.gather(*tasks)
            executor.shutdown()

        run(scenario())
        assert sorted(done) == list(range(8))

    def test_abandoned_submitter_does_not_wedge_the_round(self):
        """A submitter cancelled while its op is in flight (connection
        drop mid-batch) must not break the other futures in the round."""
        import threading

        release = threading.Event()

        def slow():
            release.wait(timeout=5)
            return "slow"

        async def scenario():
            batcher, executor = make_batcher(max_batch=2)
            batcher.register("k", run_ops)
            batcher.start()
            victim = asyncio.create_task(batcher.submit("k", slow))
            survivor = asyncio.create_task(batcher.submit("k", slow))
            await asyncio.sleep(0.05)  # round is now executing
            victim.cancel()
            release.set()
            with pytest.raises(asyncio.CancelledError):
                await victim
            result = await asyncio.wait_for(survivor, timeout=5)
            await batcher.aclose()
            executor.shutdown()
            return result

        assert run(scenario()) == "slow"


# ----------------------------------------------------------------------
# Engine composition: finalize_many and sharded pipelines
# ----------------------------------------------------------------------
class TestEngineComposition:
    def _messages(self, n):
        return [bytes([i]) * (17 + 13 * i) for i in range(n)]

    def test_finalize_many_matches_finalize_bit_exact(self):
        messages = self._messages(12)
        pipe = CRCPipeline(SPEC, 64)
        ids = []
        for i, msg in enumerate(messages):
            pipe.open(f"s{i}")
            pipe.feed(f"s{i}", msg, pump=False)
            ids.append(f"s{i}")
        digests = pipe.finalize_many(ids)
        assert digests == [ORACLE.compute(m) for m in messages]
        assert pipe.stream_count == 0

    def test_finalize_many_validates_before_consuming(self):
        pipe = CRCPipeline(SPEC, 64)
        pipe.open("a")
        pipe.feed("a", b"payload", pump=False)
        with pytest.raises(StreamError):
            pipe.finalize_many(["a", "ghost"])
        with pytest.raises(ValidationError, match="duplicate"):
            pipe.finalize_many(["a", "a"])
        # "a" must have survived both failed calls intact.
        assert pipe.finalize("a") == ORACLE.compute(b"payload")

    def test_sharded_finalize_many_with_workers(self):
        """workers>1 composition: ids group by home shard, results come
        back in input order, homes are released."""
        messages = self._messages(16)
        with ShardedCRCPipeline(SPEC, 64, workers=2) as pipe:
            ids = []
            for i, msg in enumerate(messages):
                pipe.open(f"s{i}")
                pipe.feed(f"s{i}", msg, pump=False)
                ids.append(f"s{i}")
            digests = pipe.finalize_many(ids)
            assert digests == [ORACLE.compute(m) for m in messages]
            assert pipe.stream_count == 0
            with pytest.raises(StreamError):
                pipe.finalize_many(["s0"])

    def test_batched_stream_ops_through_sharded_pipeline(self):
        """The server's grouped-runner pattern over a workers=2 pipeline:
        abort-inside-a-batch coexists with finalizes, all bit-exact."""
        messages = self._messages(10)

        def runner(pipe):
            def _run(ops):
                results = [None] * len(ops)
                finals = []
                for i, (kind, sid, *rest) in enumerate(ops):
                    try:
                        if kind == "open":
                            results[i] = pipe.open(sid)
                        elif kind == "feed":
                            pipe.feed(sid, rest[0], pump=False)
                            results[i] = True
                        elif kind == "abort":
                            pipe.abort(sid)
                            results[i] = True
                        else:
                            finals.append((i, sid))
                    except Exception as exc:  # noqa: BLE001
                        results[i] = exc
                if finals:
                    digests = pipe.finalize_many([sid for _, sid in finals])
                    for (i, _), digest in zip(finals, digests):
                        results[i] = digest
                return results
            return _run

        async def scenario():
            with ShardedCRCPipeline(SPEC, 64, workers=2) as pipe:
                batcher, executor = make_batcher(max_batch=32)
                batcher.register("crc", runner(pipe))
                batcher.start()
                try:
                    await submit_all(
                        batcher, "crc",
                        [("open", f"s{i}") for i in range(len(messages))],
                    )
                    await submit_all(
                        batcher, "crc",
                        [("feed", f"s{i}", m) for i, m in enumerate(messages)],
                    )
                    # One stream aborts in the same round the rest digest.
                    ops = [("abort", "s0")] + [
                        ("digest", f"s{i}") for i in range(1, len(messages))
                    ]
                    results = await submit_all(batcher, "crc", ops)
                finally:
                    await batcher.aclose()
                    executor.shutdown()
                return results, pipe.stream_count

        results, leftover = run(scenario())
        assert results[0] is True  # the abort
        assert results[1:] == [ORACLE.compute(m) for m in messages[1:]]
        assert leftover == 0
