"""Contract of the async network service layer (:mod:`repro.serve`).

Four properties matter and each gets direct coverage:

* **Framing** — the length-prefixed JSON+binary wire format round-trips
  exactly and every malformation (truncation, oversize, non-JSON header,
  bad ``blen``) raises :class:`~repro.errors.ProtocolError`, never
  garbage decode.
* **Correctness under multiplexing** — digests served over the wire are
  bit-exact against a serial oracle, for whole messages, chunked feeds,
  and many interleaved connections, and stream ids are namespaced per
  connection.
* **Backpressure** — a connection that outruns the pipeline pauses on
  the pending-bits watermark (counted), and resumes; memory never
  balloons with unread frames.
* **Drain** — while draining, open streams complete bit-exact and new
  work is refused with code ``"draining"``; afterwards the server is
  closed and its pipeline released.

No pytest-asyncio in the toolchain: each test drives its own event loop
through ``asyncio.run``.
"""

import asyncio
import struct

import pytest

from repro.crc import BitwiseCRC, TableCRC, get
from repro.engine import CRCPipeline
from repro.errors import DrainingError, ProtocolError, StreamError
from repro.serve import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ReproServer,
    ServeClient,
    decode_frame,
    encode_frame,
    encode_frame_parts,
    run_loadgen,
)
from repro.serve.loadgen import IMIX_MIX, LoadgenReport, percentile
from repro.serve.protocol import error_response

SPEC = get("CRC-32")
ORACLE = TableCRC(SPEC)


def run(coro):
    return asyncio.run(coro)


def make_server(**kwargs):
    kwargs.setdefault("M", 64)
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("auto", False)
    return ReproServer(SPEC, **kwargs)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
class TestProtocolFraming:
    def test_round_trip_with_payload(self):
        frame = encode_frame({"op": "feed-chunk", "id": "s"}, b"\x00\x01payload")
        header, payload, used = decode_frame(frame)
        assert header["op"] == "feed-chunk"
        assert header["blen"] == len(b"\x00\x01payload")
        assert payload == b"\x00\x01payload"
        assert used == len(frame)

    def test_round_trip_without_payload(self):
        frame = encode_frame({"op": "stats"})
        header, payload, used = decode_frame(frame)
        assert header == {"op": "stats"}
        assert payload == b""
        assert used == len(frame)

    def test_truncations_raise_protocol_error(self):
        frame = encode_frame({"op": "feed-chunk"}, b"abcdef")
        for cut in (0, 2, 6, len(frame) - 1):
            with pytest.raises(ProtocolError):
                decode_frame(frame[:cut])

    def test_non_json_header_rejected(self):
        raw = b"not json!!"
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_frame(struct.pack("!I", len(raw)) + raw)

    def test_non_object_header_rejected(self):
        raw = b"[1,2,3]"
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(struct.pack("!I", len(raw)) + raw)

    def test_oversize_header_length_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(struct.pack("!I", MAX_FRAME_BYTES + 1) + b"x")

    def test_bad_blen_rejected(self):
        for blen in (-1, "9", True, MAX_FRAME_BYTES + 1):
            raw = encode_frame({"op": "feed-chunk"})
            header, _, _ = decode_frame(raw)
            header["blen"] = blen
            import json

            encoded = json.dumps(header).encode()
            with pytest.raises(ProtocolError):
                decode_frame(struct.pack("!I", len(encoded)) + encoded)

    def test_oversized_payload_refused_at_encode(self):
        with pytest.raises(ProtocolError, match="too large"):
            encode_frame({"op": "feed-chunk"}, b"x" * (MAX_FRAME_BYTES + 1))

    def test_error_response_shape(self):
        header = error_response("open-stream", "draining", "nope")
        assert header == {
            "ok": False, "code": "draining", "error": "nope", "op": "open-stream",
        }


# ----------------------------------------------------------------------
# Frame-size boundary: exactly at the 1 MiB cap and one byte over
# ----------------------------------------------------------------------
class TestFrameSizeBoundary:
    """The cap is inclusive: == MAX_FRAME_BYTES is legal, +1 is typed
    ProtocolError on every path (encode, decode, async read, live server)."""

    def test_payload_at_exact_cap_round_trips(self):
        payload = b"\xa5" * MAX_FRAME_BYTES
        frame = encode_frame({"op": "feed-chunk", "id": "s"}, payload)
        header, decoded, used = decode_frame(frame)
        assert header["blen"] == MAX_FRAME_BYTES
        assert decoded == payload
        assert used == len(frame)

    def test_payload_one_byte_over_cap_refused_at_encode(self):
        with pytest.raises(ProtocolError, match="too large"):
            encode_frame_parts(
                {"op": "feed-chunk", "id": "s"}, b"\xa5" * (MAX_FRAME_BYTES + 1)
            )

    def test_declared_blen_one_over_cap_refused_at_decode(self):
        import json

        raw = json.dumps(
            {"op": "feed-chunk", "blen": MAX_FRAME_BYTES + 1}
        ).encode()
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(struct.pack("!I", len(raw)) + raw)

    def test_read_frame_boundary(self):
        """The asyncio reader accepts == cap and rejects cap+1 by header
        alone, before buffering any payload bytes."""
        import json

        from repro.serve.protocol import read_frame

        async def scenario():
            reader = asyncio.StreamReader()
            payload = b"\x5a" * MAX_FRAME_BYTES
            reader.feed_data(encode_frame({"op": "feed-chunk"}, payload))
            header, got = await read_frame(reader)
            assert header["blen"] == MAX_FRAME_BYTES
            assert got == payload

            reader = asyncio.StreamReader()
            raw = json.dumps({"blen": MAX_FRAME_BYTES + 1}).encode()
            reader.feed_data(struct.pack("!I", len(raw)) + raw)
            with pytest.raises(ProtocolError, match="exceeds"):
                await read_frame(reader)

        run(scenario())

    def test_server_digests_exact_cap_payload_bit_exact(self):
        payload = bytes(range(256)) * (MAX_FRAME_BYTES // 256)
        assert len(payload) == MAX_FRAME_BYTES

        async def scenario():
            async with make_server(M=1024) as server:
                async with await ServeClient.connect(server.host, server.port) as c:
                    return await c.compute(payload)

        assert run(scenario()) == ORACLE.compute(payload)

    def test_server_refuses_oversized_blen_then_hangs_up(self):
        """A frame *declaring* cap+1 payload bytes draws one typed
        ``protocol`` error response and a closed connection."""
        import json

        async def scenario():
            async with make_server() as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                hello, _ = await decode_stream(reader)
                assert hello["op"] == "hello"
                raw = json.dumps(
                    {"op": "feed-chunk", "id": "s", "blen": MAX_FRAME_BYTES + 1}
                ).encode()
                writer.write(struct.pack("!I", len(raw)) + raw)
                await writer.drain()
                response, _ = await decode_stream(reader)
                assert response["ok"] is False
                assert response["code"] == "protocol"
                assert await reader.read() == b""  # server hung up
                writer.close()

        async def decode_stream(reader):
            from repro.serve.protocol import read_frame

            return await read_frame(reader)

        run(scenario())


# ----------------------------------------------------------------------
# Server round trips
# ----------------------------------------------------------------------
class TestServerRoundTrip:
    def test_digest_matches_serial_oracle(self):
        async def scenario():
            async with make_server() as server:
                async with await ServeClient.connect(server.host, server.port) as c:
                    assert c.standard == SPEC.name
                    assert c.width == SPEC.width
                    return await c.compute(b"123456789")

        assert run(scenario()) == ORACLE.compute(b"123456789")

    def test_chunked_feeds_compose(self):
        payload = bytes(range(256)) * 5

        async def scenario():
            async with make_server() as server:
                async with await ServeClient.connect(server.host, server.port) as c:
                    whole = await c.compute(payload)
                    chunked = await c.compute(payload, chunk_bytes=17)
                    return whole, chunked

        whole, chunked = run(scenario())
        assert whole == chunked == ORACLE.compute(payload)

    def test_empty_message_digest(self):
        async def scenario():
            async with make_server() as server:
                async with await ServeClient.connect(server.host, server.port) as c:
                    return await c.compute(b"")

        assert run(scenario()) == ORACLE.compute(b"")

    def test_register_override_honoured(self):
        async def scenario():
            async with make_server() as server:
                async with await ServeClient.connect(server.host, server.port) as c:
                    sid = await c.open_stream(register=0)
                    await c.feed(sid, b"abc")
                    return await c.read_digest(sid)

        expected = SPEC.finalize(
            BitwiseCRC(SPEC).process_bits(0, SPEC.message_bits(b"abc"))
        )
        assert run(scenario()) == expected

    def test_stream_ids_namespaced_per_connection(self):
        async def scenario():
            async with make_server() as server:
                a = await ServeClient.connect(server.host, server.port)
                b = await ServeClient.connect(server.host, server.port)
                try:
                    await a.open_stream("same-name")
                    await b.open_stream("same-name")  # no collision
                    await a.feed("same-name", b"aaa")
                    await b.feed("same-name", b"bbbb")
                    return (
                        await a.read_digest("same-name"),
                        await b.read_digest("same-name"),
                    )
                finally:
                    await a.aclose()
                    await b.aclose()

        da, db = run(scenario())
        assert da == ORACLE.compute(b"aaa")
        assert db == ORACLE.compute(b"bbbb")

    def test_many_interleaved_connections_bit_exact(self):
        messages = [bytes([i]) * (13 * i + 1) for i in range(12)]

        async def one(server, payload):
            async with await ServeClient.connect(server.host, server.port) as c:
                sid = await c.open_stream()
                for start in range(0, len(payload), 97):
                    await c.feed(sid, payload[start:start + 97])
                return await c.read_digest(sid)

        async def scenario():
            async with make_server() as server:
                return await asyncio.gather(*(one(server, m) for m in messages))

        digests = run(scenario())
        assert digests == [ORACLE.compute(m) for m in messages]

    def test_stats_verb_reports_counters(self):
        async def scenario():
            async with make_server() as server:
                async with await ServeClient.connect(server.host, server.port) as c:
                    await c.compute(b"stats-me")
                    return await c.stats()

        stats = run(scenario())
        assert stats["state"] == "serving"
        assert stats["standard"] == SPEC.name
        assert stats["counters"]["digests_total"] == 1
        assert stats["counters"]["protocol_errors_total"] == 0

    def test_disconnect_aborts_orphan_streams(self):
        async def scenario():
            async with make_server() as server:
                client = await ServeClient.connect(server.host, server.port)
                sid = await client.open_stream()
                await client.feed(sid, b"orphaned")
                await client.aclose()
                for _ in range(50):
                    if server.stream_count == 0:
                        break
                    await asyncio.sleep(0.01)
                return server.stream_count, server.pipeline.stream_count

        serve_streams, pipeline_streams = run(scenario())
        assert serve_streams == 0
        assert pipeline_streams == 0


# ----------------------------------------------------------------------
# Error handling
# ----------------------------------------------------------------------
class TestServerErrors:
    def test_unknown_stream_is_recoverable(self):
        async def scenario():
            async with make_server() as server:
                async with await ServeClient.connect(server.host, server.port) as c:
                    with pytest.raises(StreamError):
                        await c.feed("never-opened", b"x")
                    # connection survives the stream error
                    return await c.compute(b"recovered")

        assert run(scenario()) == ORACLE.compute(b"recovered")

    def test_duplicate_stream_id_is_stream_error(self):
        async def scenario():
            async with make_server() as server:
                async with await ServeClient.connect(server.host, server.port) as c:
                    await c.open_stream("dup")
                    with pytest.raises(StreamError):
                        await c.open_stream("dup")

        run(scenario())

    def test_unknown_verb_drops_connection(self):
        from repro.serve.protocol import read_frame, write_frame

        async def scenario():
            async with make_server() as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                await read_frame(reader)  # hello
                await write_frame(writer, {"op": "no-such-verb"})
                response, _ = await read_frame(reader)
                assert response["ok"] is False
                assert response["code"] == "protocol"
                with pytest.raises(asyncio.IncompleteReadError):
                    await read_frame(reader)
                writer.close()

        run(scenario())

    def test_close_stream_aborts_without_digest(self):
        async def scenario():
            async with make_server() as server:
                async with await ServeClient.connect(server.host, server.port) as c:
                    sid = await c.open_stream()
                    await c.feed(sid, b"to be dropped")
                    await c.close_stream(sid)
                    with pytest.raises(StreamError):
                        await c.read_digest(sid)
                    stats = await c.stats()
                    return stats["streams"], stats["counters"]["digests_total"]

        assert run(scenario()) == (0, 0)


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_watermark_pauses_are_counted_and_recover(self):
        payload = b"\xa5" * 4096

        async def scenario():
            async with make_server(
                high_watermark_bits=1024, low_watermark_bits=256
            ) as server:
                async with await ServeClient.connect(server.host, server.port) as c:
                    digests = []
                    for _ in range(4):
                        digests.append(await c.compute(payload, chunk_bytes=512))
                    stats = await c.stats()
                    return digests, stats["counters"]["backpressure_pauses_total"]

        digests, pauses = run(scenario())
        assert digests == [ORACLE.compute(payload)] * 4
        assert pauses > 0

    def test_feed_ack_carries_pending_gauge(self):
        async def scenario():
            async with make_server() as server:
                async with await ServeClient.connect(server.host, server.port) as c:
                    sid = await c.open_stream()
                    pending = await c.feed(sid, b"12345")
                    await c.read_digest(sid)
                    return pending

        assert run(scenario()) == 40  # 5 bytes buffered, below one M-block


# ----------------------------------------------------------------------
# Micro-batched dispatch
# ----------------------------------------------------------------------
class TestMicroBatchedServe:
    def test_default_server_batches_and_stays_bit_exact(self):
        """32 concurrent connections: every digest matches the oracle
        and the ops actually flowed through multi-op batch rounds."""
        payloads = [bytes([i]) * (50 + i) for i in range(32)]

        async def one(server, payload):
            async with await ServeClient.connect(server.host, server.port) as c:
                return await c.compute(payload)

        async def scenario():
            async with make_server() as server:
                assert server.batching
                digests = await asyncio.gather(*(
                    one(server, p) for p in payloads
                ))
                stats = server.batcher.stats
                return digests, stats.ops, stats.max_occupancy

        digests, batched_ops, max_occupancy = run(scenario())
        assert digests == [ORACLE.compute(p) for p in payloads]
        assert batched_ops > 0
        assert max_occupancy > 1  # cross-connection coalescing happened

    def test_no_batch_pin_serves_identically_on_serial_path(self):
        payload = bytes(range(120))

        async def scenario():
            async with make_server(batching=False) as server:
                assert not server.batching
                assert server.batcher is None
                async with await ServeClient.connect(server.host, server.port) as c:
                    digest = await c.compute(payload)
                    stats = await c.stats()
                return digest, stats

        digest, stats = run(scenario())
        assert digest == ORACLE.compute(payload)
        assert stats["batching"] is False
        assert stats["counters"]["batches_total"] == 0
        assert "batch" not in stats

    def test_lone_client_takes_depth_zero_fast_path(self):
        """A single caller never has anything to coalesce with, so its
        ops bypass the batcher entirely (serial-path latency) — and the
        digest is still exact."""
        payload = bytes(range(90))

        async def scenario():
            async with make_server() as server:
                async with await ServeClient.connect(server.host, server.port) as c:
                    digest = await c.compute(payload)
                stats = server.batcher.stats
                return digest, stats.batches, stats.ops

        digest, batches, ops = run(scenario())
        assert digest == ORACLE.compute(payload)
        assert batches == 0 and ops == 0  # every op went direct

    def test_stats_verb_reports_batch_block(self):
        async def scenario():
            async with make_server(batch_max=16) as server:
                # A concurrent burst so ops overlap and rounds form (a
                # lone client would ride the depth-zero fast path).
                async def one(i):
                    async with await ServeClient.connect(
                        server.host, server.port
                    ) as c:
                        for _ in range(4):
                            await c.compute(bytes([i]) * 64)

                await asyncio.gather(*(one(i) for i in range(8)))
                async with await ServeClient.connect(server.host, server.port) as c:
                    return await c.stats()

        stats = run(scenario())
        assert stats["batching"] is True
        batch = stats["batch"]
        assert batch["max_batch"] == 16
        assert batch["ops"] >= 3  # most of the burst flowed through rounds
        assert batch["depth"] == 0  # idle at stats time
        assert stats["counters"]["batched_ops_total"] == batch["ops"]

    def test_connection_drop_with_op_in_flight_aborts_cleanly(self):
        """A client that vanishes mid-stream must not wedge the batcher
        or leak its stream."""
        async def scenario():
            async with make_server() as server:
                client = await ServeClient.connect(server.host, server.port)
                sid = await client.open_stream()
                await client.feed(sid, b"half a message")
                # Hard-drop the transport (no close-stream, no digest).
                client._writer.transport.abort()
                await client.aclose()
                for _ in range(200):
                    if server.stream_count == 0:
                        break
                    await asyncio.sleep(0.01)
                # The batcher must still serve new work afterwards.
                async with await ServeClient.connect(server.host, server.port) as c:
                    digest = await c.compute(b"still alive")
                return server.stream_count, digest

        leftover, digest = run(scenario())
        assert leftover == 0
        assert digest == ORACLE.compute(b"still alive")


# ----------------------------------------------------------------------
# Drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_open_streams_finish_bit_exact_while_new_work_refused(self):
        payload_a = bytes(range(200))
        payload_b = b"drain me" * 33

        async def scenario():
            server = make_server()
            await server.start()
            client = await ServeClient.connect(server.host, server.port)
            await client.open_stream("a")
            await client.open_stream("b")
            await client.feed("a", payload_a[:100])
            await client.feed("b", payload_b[:50])

            drain = asyncio.create_task(server.drain())
            while server.state != "draining":
                await asyncio.sleep(0.001)

            # New streams are refused with the dedicated retryable type
            # (a StreamError subclass, so broad handlers still work)...
            with pytest.raises(DrainingError, match="draining") as exc_info:
                await client.open_stream("c")
            assert exc_info.value.retryable is True
            assert exc_info.value.code == "draining"
            assert isinstance(exc_info.value, StreamError)
            refused_conn = False
            try:
                await ServeClient.connect(server.host, server.port)
            except (ConnectionRefusedError, OSError, ProtocolError,
                    asyncio.IncompleteReadError):
                refused_conn = True

            # ...but in-flight streams keep feeding and finalize exactly.
            await client.feed("a", payload_a[100:])
            await client.feed("b", payload_b[50:])
            digest_a = await client.read_digest("a")
            digest_b = await client.read_digest("b")
            await asyncio.wait_for(drain, timeout=10)
            state = server.state
            pipeline_closed = server.pipeline.closed
            await client.aclose()
            return digest_a, digest_b, refused_conn, state, pipeline_closed

        digest_a, digest_b, refused_conn, state, pipeline_closed = run(scenario())
        assert digest_a == ORACLE.compute(payload_a)
        assert digest_b == ORACLE.compute(payload_b)
        assert refused_conn
        assert state == "closed"
        assert pipeline_closed

    def test_drain_timeout_aborts_stragglers(self):
        async def scenario():
            server = make_server(drain_timeout_s=0.05)
            await server.start()
            client = await ServeClient.connect(server.host, server.port)
            await client.open_stream("straggler")
            await client.feed("straggler", b"never finalized")
            await asyncio.wait_for(server.drain(), timeout=10)
            await client.aclose()
            return server.state, server.pipeline.stream_count

        state, streams = run(scenario())
        assert state == "closed"
        assert streams == 0

    def test_drain_is_idempotent(self):
        async def scenario():
            server = make_server()
            await server.start()
            await server.drain()
            await server.drain()  # second call returns immediately
            return server.state

        assert run(scenario()) == "closed"

    def test_drain_flushes_telemetry_and_flight_dump(self, tmp_path):
        from repro.telemetry import (
            FlightRecorder,
            default_flight_recorder,
            read_json_lines,
            set_default_flight_recorder,
        )

        telemetry = tmp_path / "telemetry.jsonl"
        flight = tmp_path / "flight.jsonl"

        async def scenario():
            server = make_server(
                telemetry_path=telemetry, flightrec_path=flight
            )
            await server.start()
            async with await ServeClient.connect(server.host, server.port) as c:
                await c.compute(b"flush me")
            await server.drain()

        previous = set_default_flight_recorder(FlightRecorder())
        try:
            run(scenario())
        finally:
            set_default_flight_recorder(previous)
        assert telemetry.exists()
        read_json_lines(telemetry)  # parses as a valid snapshot
        events = FlightRecorder.load(flight)
        kinds = {e["kind"] for e in events}
        assert {"serve-start", "serve-drain", "serve-stop"} <= kinds
        anchor = FlightRecorder.load_anchor(flight)
        assert anchor is not None and "wall_unix" in anchor


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------
class TestLoadgen:
    def test_percentile_interpolation(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 4.0
        assert percentile(samples, 50) == pytest.approx(2.5)
        assert percentile([], 99) == 0.0
        assert percentile([7.0], 42) == 7.0

    def test_report_rates_and_dict(self):
        report = LoadgenReport(
            standard="CRC-32", duration_s=2.0, connections=3,
            messages=100, bytes=6400, latencies_s=[0.001] * 100,
        )
        assert report.msgs_per_s == pytest.approx(50.0)
        assert report.bytes_per_s == pytest.approx(3200.0)
        assert report.p50_ms == pytest.approx(1.0)
        doc = report.to_dict()
        assert doc["errors"] == 0 and doc["digest_mismatches"] == 0

    def test_imix_mix_shape(self):
        assert IMIX_MIX == ((64, 7), (594, 4), (1518, 1))

    def test_short_run_verifies_every_digest(self):
        async def scenario():
            async with make_server(M=512) as server:
                return await run_loadgen(
                    server.host, server.port,
                    duration_s=0.4, connections=2, seed=11,
                )

        report = run(scenario())
        assert report.messages > 0
        assert report.errors == 0
        assert report.digest_mismatches == 0
        assert len(report.latencies_s) == report.messages


# ----------------------------------------------------------------------
# Zero-copy feeds
# ----------------------------------------------------------------------
class TestZeroCopy:
    """Bytes-like objects travel the hot paths without an intermediate copy.

    Three layers promise it: `encode_frame_parts` leaves the payload
    object untouched, `CRCPipeline.feed` expands any buffer in place via
    `np.frombuffer`, and `ServeClient` ships memoryview slices to the
    wire.  Digests must stay bit-exact regardless of buffer type.
    """

    def test_encode_frame_parts_leaves_payload_untouched(self):
        payload = bytearray(b"bulk payload that must not be copied")
        head, body = encode_frame_parts({"op": "feed-chunk", "id": "s"}, payload)
        assert body is payload  # the exact object, not a copy
        view = memoryview(payload)[4:20]
        head2, body2 = encode_frame_parts({"op": "feed-chunk", "id": "s"}, view)
        assert body2 is view

    def test_encode_frame_parts_matches_encode_frame(self):
        for payload in (b"", b"x", bytes(range(256))):
            head, body = encode_frame_parts({"op": "feed-chunk", "id": "s"}, payload)
            assert head + bytes(body) == encode_frame(
                {"op": "feed-chunk", "id": "s"}, payload
            )
        # Empty payload: no blen key, no body part.
        head, body = encode_frame_parts({"op": "stats"})
        header, _, _ = decode_frame(head)
        assert header == {"op": "stats"}
        assert body == b""

    @pytest.mark.parametrize("standard", ["CRC-32", "CRC-16/CCITT-FALSE"])
    def test_pipeline_feed_accepts_any_buffer(self, standard):
        # CRC-32 reflects its input, CCITT-FALSE does not: both unpackbits
        # orders must read bytearray and memoryview buffers bit-exact.
        spec = get(standard)
        message = bytes(range(256)) * 3
        digests = []
        for data in (message, bytearray(message), memoryview(message)):
            pipe = CRCPipeline(spec, 64)
            sid = pipe.open()
            pipe.feed(sid, data)
            digests.append(pipe.finalize(sid))
        assert len(set(digests)) == 1
        assert digests[0] == TableCRC(spec).compute(message)

    def test_pipeline_feed_accepts_memoryview_slices(self):
        message = bytes(range(200))
        pipe = CRCPipeline(SPEC, 64)
        sid = pipe.open()
        view = memoryview(message)
        for start in range(0, len(message), 33):
            pipe.feed(sid, view[start:start + 33])
        assert pipe.finalize(sid) == ORACLE.compute(message)

    def test_client_feeds_memoryview_chunks_over_the_wire(self):
        payload = bytes(range(256)) * 4

        async def scenario():
            async with make_server() as server:
                async with await ServeClient.connect(server.host, server.port) as c:
                    sid = await c.open_stream()
                    view = memoryview(payload)
                    for start in range(0, len(payload), 100):
                        await c.feed(sid, view[start:start + 100])
                    direct = await c.read_digest(sid)
                    mutable = await c.compute(bytearray(payload))
                    return direct, mutable

        direct, mutable = run(scenario())
        assert direct == mutable == ORACLE.compute(payload)
