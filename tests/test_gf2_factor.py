"""Unit tests for repro.gf2.factor (polynomial factorization)."""

import random

import pytest

from repro.gf2 import GF2Polynomial, factorize, is_square_free, polynomial_order, product
from repro.gf2.factor import derivative, poly_sqrt


class TestDerivative:
    def test_constant(self):
        assert derivative(1) == 0

    def test_x(self):
        assert derivative(0b10) == 1

    def test_even_exponents_vanish(self):
        # d/dx (x^4 + x^2 + 1) = 0 over GF(2)
        assert derivative(0b10101) == 0

    def test_mixed(self):
        # d/dx (x^3 + x^2 + x) = x^2 + 1
        assert derivative(0b1110) == 0b101


class TestSqrt:
    def test_perfect_square(self):
        # (x^2 + x + 1)^2 = x^4 + x^2 + 1
        assert poly_sqrt(0b10101) == 0b111

    def test_not_a_square(self):
        with pytest.raises(ValueError):
            poly_sqrt(0b110)


class TestFactorize:
    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            factorize(GF2Polynomial(0))

    def test_unit(self):
        assert factorize(GF2Polynomial(1)) == {}

    def test_x_powers(self):
        factors = factorize(GF2Polynomial(0b1000))  # x^3
        assert factors == {GF2Polynomial(0b10): 3}

    def test_square(self):
        factors = factorize(GF2Polynomial(0b101))  # (x+1)^2
        assert factors == {GF2Polynomial(0b11): 2}

    def test_cube(self):
        # (x+1)^3 = x^3 + x^2 + x + 1
        factors = factorize(GF2Polynomial(0b1111))
        assert factors == {GF2Polynomial(0b11): 3}

    def test_distinct_irreducibles(self):
        # (x^3+x+1)(x^3+x^2+1)
        p = GF2Polynomial(0b1011) * GF2Polynomial(0b1101)
        factors = factorize(p)
        assert factors == {GF2Polynomial(0b1011): 1, GF2Polynomial(0b1101): 1}

    def test_equal_degree_split(self):
        """Two degree-4 irreducibles — exercises Cantor–Zassenhaus."""
        a, b = GF2Polynomial(0b10011), GF2Polynomial(0b11001)
        assert a.is_irreducible() and b.is_irreducible()
        factors = factorize(a * b)
        assert factors == {a: 1, b: 1}

    def test_crc16_arc_structure(self):
        """0x18005 = (x + 1)(x^15 + x + 1) — the classic CRC-16 split."""
        factors = factorize(GF2Polynomial(0x18005))
        assert factors == {
            GF2Polynomial(0b11): 1,
            GF2Polynomial.from_exponents([15, 1, 0]): 1,
        }

    def test_crc32_irreducible(self):
        factors = factorize(GF2Polynomial((1 << 32) | 0x04C11DB7))
        assert list(factors.values()) == [1]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_roundtrip(self, seed):
        rng = random.Random(seed)
        for _ in range(30):
            value = rng.getrandbits(20)
            if value < 2:
                continue
            poly = GF2Polynomial(value)
            factors = factorize(poly)
            assert product(factors) == poly
            for factor in factors:
                assert factor.degree >= 1
                assert factor.is_irreducible()

    def test_deterministic_for_fixed_seed(self):
        p = GF2Polynomial(0xDEAD)
        assert factorize(p, seed=5) == factorize(p, seed=5)


class TestSquareFree:
    def test_squarefree(self):
        assert is_square_free(GF2Polynomial(0b1011))

    def test_not_squarefree(self):
        assert not is_square_free(GF2Polynomial(0b101))

    def test_constant(self):
        assert is_square_free(GF2Polynomial(1))

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            is_square_free(GF2Polynomial(0))


class TestPolynomialOrder:
    def test_matches_direct_computation(self):
        for coeffs in (0b1011, 0b111, 0b11111, 0x18005):
            poly = GF2Polynomial(coeffs)
            assert polynomial_order(poly) == poly.order()

    def test_large_reducible_is_fast(self):
        """CRC-24/OPENPGP's reducible generator: order via factorization
        (brute search would take ~8M iterations)."""
        poly = GF2Polynomial((1 << 24) | 0x864CFB)
        order = polynomial_order(poly)
        assert order == (1 << 23) - 1  # (x+1) * primitive degree-23 factor

    def test_squared_factor_lifting(self):
        # (x^3+x+1)^2: order = 7 * 2
        p = GF2Polynomial(0b1011)
        assert polynomial_order(p * p) == 14

    def test_requires_constant_term(self):
        with pytest.raises(ValueError):
            polynomial_order(GF2Polynomial(0b110))
