"""Behavioral contract of :class:`repro.engine.cache.CompileCache`.

Covers the LRU discipline (touch order, eviction order, bounded size),
the hit/miss/eviction counters the benchmarks assert on, and the
same-object guarantee: a cached compile handed to a
:class:`~repro.picoga.array.PicogaArray` is the identical netlist object
on every hit — the model analogue of the DREAM configuration cache
serving the same bitstream to repeated contexts.
"""

import pytest

from repro.crc import ETHERNET_CRC32, get as get_crc
from repro.dream.system import DreamSystem
from repro.engine import BatchCRC, CompileCache, default_cache
from repro.picoga.array import PicogaArray


def test_capacity_validation():
    with pytest.raises(ValueError):
        CompileCache(capacity=0)


def test_builder_runs_once_and_result_is_identical():
    cache = CompileCache(capacity=4)
    calls = []

    def build():
        calls.append(1)
        return object()

    first = cache.get("k", build)
    second = cache.get("k", build)
    assert first is second
    assert len(calls) == 1
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.5


def test_lru_eviction_order():
    cache = CompileCache(capacity=3)
    for key in "abc":
        cache.get(key, lambda k=key: k.upper())
    assert cache.keys() == ["a", "b", "c"]  # LRU first

    # Touching "a" promotes it; inserting "d" must evict "b", the LRU.
    cache.get("a", lambda: pytest.fail("hit must not rebuild"))
    cache.get("d", lambda: "D")
    assert cache.keys() == ["c", "a", "d"]
    assert "b" not in cache
    assert cache.stats.evictions == 1

    # Two more inserts evict in strict LRU order: "c" then "a".
    cache.get("e", lambda: "E")
    cache.get("f", lambda: "F")
    assert cache.keys() == ["d", "e", "f"]
    assert cache.stats.evictions == 3
    assert len(cache) == 3


def test_counters_and_reset():
    cache = CompileCache(capacity=2)
    cache.get("x", lambda: 1)
    cache.get("x", lambda: 1)
    cache.get("y", lambda: 2)
    assert (cache.stats.hits, cache.stats.misses) == (1, 2)
    assert cache.stats.lookups == 3
    cache.stats.reset()
    assert cache.stats.lookups == 0 and cache.stats.hit_rate == 0.0
    cache.clear()
    assert len(cache) == 0


def test_typed_helpers_share_sub_compiles():
    cache = CompileCache(capacity=32)
    spec = get_crc("CRC-16/ARC")
    la = cache.lookahead(spec, 8)
    assert cache.lookahead(spec, 8) is la
    # The look-ahead builder reuses the cached state space.
    assert cache.crc_statespace(spec) is cache.crc_statespace(spec)
    # Different method/M are distinct entries.
    assert cache.derby(spec, 8) is not la
    assert cache.lookahead(spec, 16) is not la


def test_mapped_crc_same_object_reaches_picoga_array():
    cache = CompileCache(capacity=16)
    mapped = cache.mapped_crc(ETHERNET_CRC32, 8)
    assert cache.mapped_crc(ETHERNET_CRC32, 8) is mapped

    array = PicogaArray()
    array.load_operation(mapped.update_op, slot=0)
    array.run_burst(mapped.update_op.name, [[0] * 8])
    # The op resident and active in the array IS the cached netlist object.
    assert array.cache.active_op is mapped.update_op
    assert array.cache.slot_of(mapped.update_op.name) == 0


def test_dream_system_reuses_cached_compile():
    cache = CompileCache(capacity=16)
    system = DreamSystem(cache=cache)
    mapped = system.compile_crc(ETHERNET_CRC32, 16)
    assert system.compile_crc(ETHERNET_CRC32, 16) is mapped
    assert cache.stats.hits > 0
    # The analytic shortcut rides the same entry: no new misses.
    misses = cache.stats.misses
    system.predict_crc(ETHERNET_CRC32, 16, message_bits=512)
    assert cache.stats.misses == misses


def test_empty_explicit_cache_is_respected():
    """Regression: an empty CompileCache is falsy (it defines __len__), so
    ``cache or default_cache()`` would silently discard it."""
    cache = CompileCache(capacity=8)
    BatchCRC(ETHERNET_CRC32, 8, cache=cache)
    assert cache.stats.misses > 0
    assert len(cache) > 0


def test_default_cache_is_shared_singleton():
    assert default_cache() is default_cache()


def test_init_fold_zero_init_short_circuits():
    import dataclasses

    cache = CompileCache(capacity=4)
    spec = get_crc("CRC-32/MPEG-2")  # init = 0xFFFFFFFF
    folded = cache.init_fold(spec, 64)
    assert cache.init_fold(spec, 64) == folded
    assert cache.stats.hits == 1
    zero_spec = dataclasses.replace(get_crc("CRC-32C"), init=0)
    lookups = cache.stats.lookups
    assert cache.init_fold(zero_spec, 64) == 0
    assert cache.stats.lookups == lookups  # early return, no lookup


def test_racing_cold_key_compiles_keep_one_identity():
    """Regression: two threads racing on the same cold key used to each
    insert their own artifact, the second silently replacing the first —
    so earlier callers held an object the cache no longer served,
    breaking the same-object netlist guarantee.  The first insert must
    win and every caller must receive the identical object."""
    import threading

    cache = CompileCache(capacity=8)
    gate = threading.Barrier(2)
    results = []

    def build():
        # Hold both threads inside the (unlocked) builder section so both
        # definitely compile before either inserts.
        gate.wait(timeout=5)
        return object()

    def worker():
        results.append(cache.get("hot-key", build))

    threads = [threading.Thread(target=worker) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert len(results) == 2
    assert results[0] is results[1]
    # Later hits serve that same object too.
    assert cache.get("hot-key", build) is results[0]
    assert len(cache) == 1


class TestByteAccounting:
    """The cache bounds resident *bytes* (matrix cost), not just entries."""

    def test_estimate_scales_with_matrix_size(self):
        from repro.engine import estimate_entry_bytes

        spec32 = get_crc("CRC-32")
        cache = CompileCache(capacity=32)
        small = estimate_entry_bytes(cache.lookahead(spec32, 8))
        large = estimate_entry_bytes(cache.lookahead(spec32, 128))
        # An M=128 system carries a 32x128 injection matrix; its byte cost
        # must dominate the M=8 system's, not collapse to a flat per-entry
        # constant.
        assert large > small >= 64

    def test_size_bytes_tracks_inserts_and_clear(self):
        cache = CompileCache(capacity=8)
        assert cache.size_bytes == 0
        cache.get("a", lambda: bytes(1000))
        first = cache.size_bytes
        assert first >= 1000
        cache.get("b", lambda: bytes(3000))
        assert cache.size_bytes >= first + 3000
        cache.clear()
        assert cache.size_bytes == 0

    def test_max_bytes_evicts_lru_until_under_budget(self):
        cache = CompileCache(capacity=100, max_bytes=5000)
        cache.get("a", lambda: bytes(2000))
        cache.get("b", lambda: bytes(2000))
        cache.get("c", lambda: bytes(2000))  # 6000 > 5000: "a" must go
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert cache.size_bytes <= 5000
        assert cache.stats.evictions == 1

    def test_single_oversized_entry_stays_resident(self):
        """An artifact larger than the whole budget must still be served
        (and resident, preserving the same-object guarantee) — the bound
        trims the tail, it cannot refuse the workload."""
        cache = CompileCache(capacity=100, max_bytes=100)
        big = cache.get("big", lambda: bytes(10_000))
        assert cache.get("big", lambda: pytest.fail("must hit")) is big
        assert len(cache) == 1

    def test_byte_gauge_reconciles(self):
        from repro.telemetry import default_registry

        gauge = default_registry().get("engine_compile_cache_bytes")
        before = gauge.value
        cache = CompileCache(capacity=4, max_bytes=4096)
        cache.get("a", lambda: bytes(1024))
        assert gauge.value == before + cache.size_bytes
        cache.clear()
        assert gauge.value == before


def test_racing_cold_keys_entry_gauge_stays_exact():
    """The loser of a cold-key race must not bump the resident-entries
    gauge for an artifact that was never stored."""
    import threading

    from repro.telemetry import default_registry

    gauge = default_registry().get("engine_compile_cache_entries")
    before = gauge.value
    cache = CompileCache(capacity=8)
    gate = threading.Barrier(2)

    def build():
        gate.wait(timeout=5)
        return object()

    threads = [
        threading.Thread(target=lambda: cache.get("k", build)) for _ in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert gauge.value == before + 1
