"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestStandards:
    def test_lists_catalog(self, capsys):
        assert main(["standards"]) == 0
        out = capsys.readouterr().out
        assert "CRC-32" in out
        assert "CRC-16/X-25" in out


class TestCrcCommand:
    def test_default_check_input(self, capsys):
        assert main(["crc"]) == 0
        assert "0xCBF43926" in capsys.readouterr().out

    def test_hex_payload(self, capsys):
        assert main(["crc", "--hex", "313233343536373839"]) == 0
        assert "0xCBF43926" in capsys.readouterr().out

    def test_text_payload(self, capsys):
        assert main(["crc", "--text", "123456789", "--standard", "CRC-16/XMODEM"]) == 0
        assert "0x31C3" in capsys.readouterr().out

    def test_file_payload(self, tmp_path, capsys):
        path = tmp_path / "payload.bin"
        path.write_bytes(b"123456789")
        assert main(["crc", "--file", str(path)]) == 0
        assert "0xCBF43926" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["bitwise", "table", "slicing", "gfmac", "derby"])
    def test_all_engines(self, engine, capsys):
        assert main(["crc", "--engine", engine]) == 0
        assert "0xCBF43926" in capsys.readouterr().out

    def test_verify_ok(self, capsys):
        assert main(["crc", "--verify", "0xCBF43926"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_mismatch_exit_code(self, capsys):
        assert main(["crc", "--verify", "0xDEADBEEF"]) == 1
        assert "MISMATCH" in capsys.readouterr().out


class TestMapCommand:
    def test_summary(self, capsys):
        assert main(["map", "--standard", "CRC-32", "-m", "16"]) == 0
        out = capsys.readouterr().out
        assert "M=16" in out
        assert "II=1" in out

    def test_placement_report(self, capsys):
        assert main(["map", "-m", "16", "--report"]) == 0
        out = capsys.readouterr().out
        assert "row  level  cells" in out
        assert "crc32_output_M16" in out

    def test_direct_method(self, capsys):
        assert main(["map", "-m", "16", "--method", "direct"]) == 0
        assert "direct" in capsys.readouterr().out


class TestExploreCommand:
    def test_sweep_with_infeasible(self, capsys):
        assert main(["explore", "--factors", "16", "256"]) == 0
        out = capsys.readouterr().out
        assert "16" in out
        assert "infeasible" in out


class TestAnalyzeCommand:
    def test_selected_standards(self, capsys):
        assert main(["analyze", "--standards", "CRC-32", "CRC-16/ARC"]) == 0
        out = capsys.readouterr().out
        assert "1+15" in out  # ARC factor structure
        assert "4294967295" in out  # CRC-32 period

    def test_default_set(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "CRC-24/OPENPGP" in out


class TestPerfCommand:
    def test_throughput_table(self, capsys):
        assert main(["perf", "--bits", "12144", "--factors", "32", "128"]) == 0
        out = capsys.readouterr().out
        assert "interleaved" in out
        assert "12144" in out
