"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    default_flight_recorder,
    default_tracer,
    write_json_lines,
)


class TestStandards:
    def test_lists_catalog(self, capsys):
        assert main(["standards"]) == 0
        out = capsys.readouterr().out
        assert "CRC-32" in out
        assert "CRC-16/X-25" in out


class TestCrcCommand:
    def test_default_check_input(self, capsys):
        assert main(["crc"]) == 0
        assert "0xCBF43926" in capsys.readouterr().out

    def test_hex_payload(self, capsys):
        assert main(["crc", "--hex", "313233343536373839"]) == 0
        assert "0xCBF43926" in capsys.readouterr().out

    def test_text_payload(self, capsys):
        assert main(["crc", "--text", "123456789", "--standard", "CRC-16/XMODEM"]) == 0
        assert "0x31C3" in capsys.readouterr().out

    def test_file_payload(self, tmp_path, capsys):
        path = tmp_path / "payload.bin"
        path.write_bytes(b"123456789")
        assert main(["crc", "--file", str(path)]) == 0
        assert "0xCBF43926" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["bitwise", "table", "slicing", "gfmac", "derby"])
    def test_all_engines(self, engine, capsys):
        assert main(["crc", "--engine", engine]) == 0
        assert "0xCBF43926" in capsys.readouterr().out

    def test_verify_ok(self, capsys):
        assert main(["crc", "--verify", "0xCBF43926"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_mismatch_exit_code(self, capsys):
        assert main(["crc", "--verify", "0xDEADBEEF"]) == 1
        assert "MISMATCH" in capsys.readouterr().out


class TestMapCommand:
    def test_summary(self, capsys):
        assert main(["map", "--standard", "CRC-32", "-m", "16"]) == 0
        out = capsys.readouterr().out
        assert "M=16" in out
        assert "II=1" in out

    def test_placement_report(self, capsys):
        assert main(["map", "-m", "16", "--report"]) == 0
        out = capsys.readouterr().out
        assert "row  level  cells" in out
        assert "crc32_output_M16" in out

    def test_direct_method(self, capsys):
        assert main(["map", "-m", "16", "--method", "direct"]) == 0
        assert "direct" in capsys.readouterr().out


class TestExploreCommand:
    def test_sweep_with_infeasible(self, capsys):
        assert main(["explore", "--factors", "16", "256"]) == 0
        out = capsys.readouterr().out
        assert "16" in out
        assert "infeasible" in out


class TestAnalyzeCommand:
    def test_selected_standards(self, capsys):
        assert main(["analyze", "--standards", "CRC-32", "CRC-16/ARC"]) == 0
        out = capsys.readouterr().out
        assert "1+15" in out  # ARC factor structure
        assert "4294967295" in out  # CRC-32 period

    def test_default_set(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "CRC-24/OPENPGP" in out


class TestPerfCommand:
    def test_throughput_table(self, capsys):
        assert main(["perf", "--bits", "12144", "--factors", "32", "128"]) == 0
        out = capsys.readouterr().out
        assert "interleaved" in out
        assert "12144" in out


@pytest.fixture
def snapshot_env(tmp_path, monkeypatch):
    """Point the telemetry snapshot and flight-recorder dump at temp files
    and restore the default tracer/recorder afterward (``--telemetry``
    leaves them enabled for the process)."""
    path = tmp_path / "telemetry.jsonl"
    monkeypatch.setenv("REPRO_TELEMETRY_PATH", str(path))
    monkeypatch.setenv("REPRO_FLIGHTREC_PATH", str(tmp_path / "flightrec.jsonl"))
    tracer = default_tracer()
    recorder = default_flight_recorder()
    was_enabled = tracer.enabled
    yield path
    tracer.clear()
    recorder.clear()
    if not was_enabled:
        tracer.disable()


class TestStatsCommand:
    def test_reads_snapshot_as_prometheus(self, snapshot_env, capsys):
        reg = MetricsRegistry()
        reg.counter("demo_total", "demo counter").inc(3)
        write_json_lines(reg, snapshot_env)
        assert main(["stats", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE demo_total counter" in out
        assert "demo_total 3" in out

    def test_reads_snapshot_as_json(self, snapshot_env, capsys):
        reg = MetricsRegistry()
        reg.gauge("demo_gauge").set(7)
        write_json_lines(reg, snapshot_env)
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert '"demo_gauge"' in out and '"value": 7.0' in out

    def test_empty_snapshot_prometheus_placeholder(self, snapshot_env, capsys):
        write_json_lines(MetricsRegistry(), snapshot_env)
        assert main(["stats", "--format", "prometheus"]) == 0
        assert "# (no metrics recorded)" in capsys.readouterr().out

    def test_explicit_input_path(self, tmp_path, capsys):
        reg = MetricsRegistry()
        reg.counter("explicit_total").inc()
        path = write_json_lines(reg, tmp_path / "snap.jsonl")
        assert main(["stats", "--input", str(path), "--format", "prometheus"]) == 0
        assert "explicit_total 1" in capsys.readouterr().out

    def _write_traced_snapshot(self, path):
        reg = MetricsRegistry()
        reg.counter("traced_total").inc(2)
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner", worker="7"):
                pass
        write_json_lines(reg, path, tracer=tracer)

    def test_jsonl_format_round_trips(self, snapshot_env, capsys):
        import json

        self._write_traced_snapshot(snapshot_env)
        assert main(["stats", "--format", "jsonl"]) == 0
        out = capsys.readouterr().out
        records = [json.loads(line) for line in out.splitlines()]
        assert records[0]["schema"].startswith("repro-telemetry/")
        assert any(r.get("name") == "traced_total" for r in records)

    def test_chrome_format_loads_as_trace_events(self, snapshot_env, capsys):
        import json

        self._write_traced_snapshot(snapshot_env)
        assert main(["stats", "--format", "chrome"]) == 0
        doc = json.loads(capsys.readouterr().out)
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"outer", "inner"} <= names

    def test_spans_flag_prints_tree(self, snapshot_env, capsys):
        self._write_traced_snapshot(snapshot_env)
        assert main(["stats", "--spans"]) == 0
        out = capsys.readouterr().out
        assert "outer" in out and "inner" in out


class TestDumpCommand:
    def _write_dump(self, path, n=3):
        from repro.telemetry import FlightRecorder

        rec = FlightRecorder()
        for i in range(n):
            rec.record("compile", f"built entry {i}", worker=str(i))
        rec.save(path)

    def test_reads_dump_as_text(self, snapshot_env, tmp_path, capsys):
        self._write_dump(tmp_path / "flightrec.jsonl")
        assert main(["dump"]) == 0
        out = capsys.readouterr().out
        assert "compile" in out and "built entry 0" in out

    def test_json_format(self, snapshot_env, tmp_path, capsys):
        import json

        self._write_dump(tmp_path / "flightrec.jsonl")
        assert main(["dump", "--format", "json"]) == 0
        events = json.loads(capsys.readouterr().out)
        assert [e["kind"] for e in events] == ["compile"] * 3

    def test_limit_keeps_most_recent(self, snapshot_env, tmp_path, capsys):
        self._write_dump(tmp_path / "flightrec.jsonl", n=5)
        assert main(["dump", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "built entry 4" in out and "built entry 0" not in out

    def test_explicit_input_path(self, tmp_path, capsys):
        path = tmp_path / "elsewhere.jsonl"
        self._write_dump(path)
        assert main(["dump", "--input", str(path)]) == 0
        assert "built entry 2" in capsys.readouterr().out

    def test_no_dump_falls_back_to_live_recorder(self, snapshot_env, capsys):
        recorder = default_flight_recorder()
        recorder.clear()
        recorder.record("probe", "live event")
        assert main(["dump"]) == 0
        assert "live event" in capsys.readouterr().out


class TestTelemetryFlag:
    def test_crc_prints_span_tree_and_writes_snapshot(self, snapshot_env, capsys):
        assert main(["crc", "--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "0xCBF43926" in out
        assert "telemetry spans:" in out
        assert "cli.crc" in out
        assert snapshot_env.exists()

    def test_batch_bench_snapshot_feeds_stats(self, snapshot_env, capsys):
        assert main([
            "batch-bench", "--batch", "8", "--bytes", "8",
            "--baseline-sample", "4", "--repeats", "1", "--telemetry",
        ]) == 0
        capsys.readouterr()
        assert main(["stats", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "engine_compile_cache_lookups_total" in out
        assert "engine_batch_throughput_mbps_count" in out

    def test_run_writes_flight_recorder_dump(self, snapshot_env, tmp_path, capsys):
        from repro.engine.cache import default_cache

        default_cache().clear()  # force compile events into the recorder
        assert main([
            "batch-bench", "--batch", "8", "--bytes", "8",
            "--baseline-sample", "4", "--repeats", "1", "--telemetry",
        ]) == 0
        out = capsys.readouterr().out
        assert "flight-recorder dump written to" in out
        dump = tmp_path / "flightrec.jsonl"
        assert dump.exists()
        assert main(["dump", "--input", str(dump)]) == 0
        assert "compile" in capsys.readouterr().out


class TestFuzzCommand:
    def test_case_budget_run(self, capsys):
        assert main(["fuzz", "--cases", "20", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "20 cases" in out
        assert "OK (no mismatches)" in out

    def test_json_report_written(self, tmp_path, capsys):
        path = tmp_path / "fuzz.json"
        assert main(["fuzz", "--cases", "10", "--json", str(path)]) == 0
        assert "report written" in capsys.readouterr().out
        from repro.verify import FuzzReport

        report = FuzzReport.load(str(path))
        assert report.ok
        assert report.cases == 10

    def test_seed_replay_matches(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["fuzz", "--cases", "15", "--seed", "4", "--json", str(a)]) == 0
        assert main(["fuzz", "--cases", "15", "--seed", "4", "--json", str(b)]) == 0
        from repro.verify import FuzzReport

        ra, rb = FuzzReport.load(str(a)), FuzzReport.load(str(b))
        assert ra.pair_cases == rb.pair_cases
        assert ra.checks == rb.checks

    def test_seconds_budget_stops(self, capsys):
        assert main(["fuzz", "--seconds", "0.5", "--seed", "1"]) == 0
        assert "OK" in capsys.readouterr().out


class TestParallelOptions:
    def test_batch_bench_with_workers_adds_parallel_row(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert main([
            "batch-bench", "--batch", "16", "--bytes", "8",
            "--baseline-sample", "4", "--repeats", "1", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "ParallelBatchCRC x2" in out

    def test_workers_flag_exports_environment(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert main([
            "batch-bench", "--batch", "4", "--bytes", "4",
            "--baseline-sample", "2", "--repeats", "1", "--workers", "3",
        ]) == 0
        assert os.environ.get("REPRO_WORKERS") == "3"

    def test_invalid_workers_rejected(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            main([
                "batch-bench", "--batch", "4", "--bytes", "4",
                "--baseline-sample", "2", "--repeats", "1",
                "--workers", "many",
            ])

    def test_cache_dir_flag_persists_compiles(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        cache_dir = tmp_path / "artifacts"
        # Cold-start the in-process default cache: only cold compiles
        # reach the disk layer (memory hits are not re-persisted).
        from repro.engine import default_cache

        default_cache().clear()
        assert main([
            "batch-bench", "--batch", "8", "--bytes", "8",
            "--baseline-sample", "2", "--repeats", "1",
            "--cache-dir", str(cache_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "disk cache" in out
        assert any(cache_dir.glob("*.pkl"))
        # Detach so later tests don't write into this (deleted) tmp dir.
        default_cache().attach_disk(None)


class TestPlanCommand:
    def test_prints_decision_trace(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["plan", "--standard", "CRC-32", "--bytes", "64",
                     "--batch", "32"]) == 0
        out = capsys.readouterr().out
        assert "decision:" in out
        assert "predicted:" in out
        assert "workers=" in out

    def test_json_artifact_has_plan_profile_candidates(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        path = tmp_path / "plan.json"
        assert main(["plan", "--bytes", "64", "--batch", "32",
                     "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"plan", "profile", "candidates"}
        assert payload["plan"]["workers"] >= 1
        assert payload["profile"]["fingerprint"]
        assert payload["candidates"]  # the explored design space
        assert "written" in capsys.readouterr().out

    def test_trace_lists_candidates(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["plan", "--bytes", "64", "--batch", "32",
                     "--trace"]) == 0
        out = capsys.readouterr().out
        assert "candidates explored" in out
        assert "serial" in out

    def test_profile_persists_across_invocations(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        cache_dir = tmp_path / "planner"
        args = ["plan", "--bytes", "64", "--batch", "32",
                "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        from repro.engine import DiskCompileCache

        disk = DiskCompileCache(cache_dir)
        stores = len(disk)
        assert stores >= 2  # profile + plan persisted
        assert main(args) == 0  # second run loads, doesn't duplicate
        assert len(DiskCompileCache(cache_dir)) == stores

    def test_batch_bench_auto_adds_plan_row(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main([
            "batch-bench", "--batch", "16", "--bytes", "8",
            "--baseline-sample", "4", "--repeats", "1", "--auto",
        ]) == 0
        out = capsys.readouterr().out
        assert "auto plan [" in out
        assert "planner:" in out


class TestCacheCommand:
    def test_reports_entries_and_clears(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        from repro.engine import CompileCache, DiskCompileCache

        cache_dir = tmp_path / "cc"
        CompileCache(disk=DiskCompileCache(cache_dir)).lookahead(
            __import__("repro.crc", fromlist=["get"]).get("CRC-8"), 8
        )
        assert main(["cache", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and str(cache_dir) in out
        assert main(["cache", "--cache-dir", str(cache_dir), "--clear"]) == 0
        assert "cleared" in capsys.readouterr().out
        assert not any(cache_dir.glob("*.pkl"))

    def test_no_directory_is_an_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache"]) == 1
        assert "cache-dir" in capsys.readouterr().out


class TestKeystreamCommand:
    def test_word_source_with_verify(self, capsys):
        assert main(
            ["keystream", "--source", "word32", "--bytes", "32", "--verify"]
        ) == 0
        out = capsys.readouterr().out
        assert "verified" in out
        hex_line = out.strip().splitlines()[-1]
        assert len(hex_line) == 64
        int(hex_line, 16)  # valid hex

    def test_deterministic_for_a_seed(self, capsys):
        assert main(["keystream", "--source", "word64", "--seed", "alpha"]) == 0
        first = capsys.readouterr().out
        assert main(["keystream", "--source", "word64", "--seed", "alpha"]) == 0
        assert capsys.readouterr().out == first
        assert main(["keystream", "--source", "word64", "--seed", "beta"]) == 0
        assert capsys.readouterr().out != first

    def test_galois_bitserial_source(self, capsys):
        assert main(
            ["keystream", "--source", "galois-bitserial", "--bytes", "16"]
        ) == 0
        hex_line = capsys.readouterr().out.strip().splitlines()[-1]
        assert len(hex_line) == 32

    def test_auto_plans_and_reports(self, tmp_path, capsys):
        assert main(
            ["keystream", "--source", "auto", "--bytes", "16",
             "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "planner picked" in out

    def test_json_artifact(self, tmp_path, capsys):
        path = tmp_path / "keystream.json"
        assert main(
            ["keystream", "--source", "word64", "--bytes", "24",
             "--json", str(path)]
        ) == 0
        import json

        record = json.loads(path.read_text())
        assert record["source"] == "word64"
        assert record["bytes"] == 24
        assert len(record["hex"]) == 48
        assert record["plan"] is None
