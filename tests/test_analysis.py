"""Unit tests for repro.analysis (throughput, speedup, energy, tables)."""

import pytest

from repro.analysis import (
    ETHERNET_MAX_BITS,
    ETHERNET_MIN_BITS,
    EnergyModel,
    RISC_PJ_PER_BIT,
    as_table,
    bps_from_cycles,
    efficiency,
    format_multi_series,
    format_series,
    format_table,
    gbps,
    in_ethernet_window,
    kernel_speedup,
    message_length_sweep,
    speedup_grid,
)
from repro.crc import ETHERNET_CRC32
from repro.dream import DreamSystem
from repro.mapping import map_crc


@pytest.fixture(scope="module")
def system():
    return DreamSystem()


@pytest.fixture(scope="module")
def mapped():
    return map_crc(ETHERNET_CRC32, 32)


class TestThroughputHelpers:
    def test_ethernet_window_constants(self):
        """Fig. 4 marks the 368..12144-bit Ethernet message window."""
        assert ETHERNET_MIN_BITS == 368
        assert ETHERNET_MAX_BITS == 12144

    def test_bps_from_cycles(self):
        assert bps_from_cycles(1000, 100, 200e6) == pytest.approx(2e9)

    def test_bps_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            bps_from_cycles(1, 0, 1e6)

    def test_gbps(self):
        assert gbps(25.6e9) == pytest.approx(25.6)

    def test_efficiency(self):
        assert efficiency(12.8e9, 25.6e9) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            efficiency(1.0, 0.0)

    def test_sweep_includes_window_markers(self):
        lengths = message_length_sweep(64, 65536)
        assert ETHERNET_MIN_BITS in lengths
        assert ETHERNET_MAX_BITS in lengths
        assert lengths == sorted(lengths)

    def test_sweep_validation(self):
        with pytest.raises(ValueError):
            message_length_sweep(100, 50)

    def test_window_predicate(self):
        assert in_ethernet_window(368)
        assert in_ethernet_window(1500)
        assert not in_ethernet_window(100)


class TestSpeedup:
    def test_grid_entries(self, system, mapped):
        entries = speedup_grid(system, [mapped], [1024, 12144])
        assert len(entries) == 2
        for e in entries:
            assert e.speedup == pytest.approx(e.risc_cycles / e.dream_cycles)
            assert e.speedup > 1

    def test_speedup_grows_with_length(self, system, mapped):
        entries = speedup_grid(system, [mapped], [368, 12144, 65536])
        speeds = [e.speedup for e in entries]
        assert speeds == sorted(speeds)

    def test_kernel_speedup_three_orders(self, system):
        """§1/§5: kernel vs bit-serial software is ~3 orders of magnitude."""
        m128 = map_crc(ETHERNET_CRC32, 128)
        s = kernel_speedup(system, m128, algorithm="bitwise")
        assert 500 <= s <= 2000
        assert s == pytest.approx(1024)

    def test_as_table_layout(self, system, mapped):
        entries = speedup_grid(system, [mapped], [1024])
        table = as_table(entries)
        assert 32 in table[1024]


class TestEnergy:
    def test_band_matches_paper(self, system):
        """Fig. 7: DREAM is 5-60x more efficient than the 400 pJ/bit RISC."""
        model = EnergyModel()
        advantages = []
        for M in (32, 64, 128):
            mapped = map_crc(ETHERNET_CRC32, M)
            for bits in (368, 12144, 262144):
                perf = system.crc_single_performance(mapped, bits)
                pj = model.crc_pj_per_bit(mapped, perf)
                advantages.append(model.advantage_vs_risc(pj))
        assert all(5 <= a <= 60 for a in advantages), advantages
        assert max(advantages) > 40  # long messages, M = 128
        assert min(advantages) < 12  # short messages

    def test_energy_decreases_with_length(self, system):
        model = EnergyModel()
        mapped = map_crc(ETHERNET_CRC32, 128)
        pj = [
            model.crc_pj_per_bit(mapped, system.crc_single_performance(mapped, bits))
            for bits in (368, 4096, 65536)
        ]
        assert pj == sorted(pj, reverse=True)

    def test_risc_reference(self):
        assert RISC_PJ_PER_BIT == 400.0

    def test_validation(self):
        model = EnergyModel()
        with pytest.raises(ValueError):
            model.advantage_vs_risc(0)


class TestTables:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], [30, 0.001]], title="T")
        assert "T" in text
        assert "2.50" in text
        assert "30" in text

    def test_format_series(self):
        text = format_series({1: 2.0}, "x", "y")
        assert "x" in text and "y" in text

    def test_format_multi_series(self):
        text = format_multi_series([1, 2], {"s": {1: 1.0, 2: 2.0}}, "M")
        assert "s" in text
        lines = text.strip().splitlines()
        assert len(lines) == 4  # header, separator, two rows
