"""Unit tests for repro.picoga.activity, report and serialize."""

import numpy as np
import pytest

from repro.crc import BitwiseCRC, ETHERNET_CRC32
from repro.mapping import map_crc
from repro.picoga import (
    ActivityMonitor,
    Net,
    PicogaArchitecture,
    PicogaOperation,
    config_size_bytes,
    describe,
    measure_crc_activity,
    op_dumps,
    op_loads,
    operation_from_dict,
    operation_to_dict,
    placement,
    utilization,
    xor_cell,
)
from repro.picoga.cell import lut_cell


def _toggle_op() -> PicogaOperation:
    """state' = state ^ in0; output mirrors the state bit."""
    cells = [xor_cell(0, [Net.state(0), Net.input(0)])]
    return PicogaOperation(
        name="t", n_inputs=1, n_state=1, cells=cells,
        outputs=[Net.cell(0)], next_state=[Net.cell(0)],
    )


class TestActivityMonitor:
    def test_functional_equivalence(self):
        op = _toggle_op()
        monitor = ActivityMonitor(op)
        state = [0]
        for bit in (1, 0, 1, 1):
            expected = op.evaluate(state, [bit])
            got = monitor.step(state, [bit])
            assert got == expected
            state = expected[1]

    def test_constant_input_settles(self):
        """After the first block, feeding constant zeros toggles nothing."""
        monitor = ActivityMonitor(_toggle_op())
        state = [0]
        for _ in range(10):
            _, state = monitor.step(state, [0])
        # First block charged fully; the other 9 toggle nothing.
        assert monitor.report.cell_toggles == 1
        assert monitor.report.blocks == 10

    def test_alternating_input_toggles_every_block(self):
        monitor = ActivityMonitor(_toggle_op())
        state = [0]
        for bit in (1, 1, 1, 1):  # state alternates 1,0,1,0
            _, state = monitor.step(state, [bit])
        assert monitor.report.cell_toggles == 4

    def test_activity_factor_bounds(self):
        rng = np.random.default_rng(1)
        mapped = map_crc(ETHERNET_CRC32, 32)
        data = bytes(rng.integers(0, 256, size=256).tolist())
        report = measure_crc_activity(mapped, data)
        assert 0.0 < report.activity_factor <= 1.0

    def test_random_data_activity_near_half(self):
        """XOR networks over random data toggle ~50% of nets per block."""
        rng = np.random.default_rng(2)
        mapped = map_crc(ETHERNET_CRC32, 64)
        data = bytes(rng.integers(0, 256, size=2048).tolist())
        report = measure_crc_activity(mapped, data)
        assert 0.35 < report.activity_factor < 0.65

    def test_zero_data_low_activity(self):
        mapped = map_crc(ETHERNET_CRC32, 64)
        report = measure_crc_activity(mapped, bytes(2048))
        # Zero stream from zero state: the datapath stays quiet.
        assert report.activity_factor < 0.1

    def test_reset(self):
        monitor = ActivityMonitor(_toggle_op())
        monitor.step([0], [1])
        monitor.reset()
        assert monitor.report.blocks == 0

    def test_merge(self):
        from repro.picoga import ActivityReport

        a = ActivityReport(blocks=1, cell_evaluations=10, cell_toggles=5)
        b = ActivityReport(blocks=2, cell_evaluations=20, cell_toggles=5)
        merged = a.merge(b)
        assert merged.blocks == 3
        assert merged.activity_factor == pytest.approx(10 / 30)


class TestPlacementReport:
    @pytest.fixture(scope="class")
    def mapped(self):
        return map_crc(ETHERNET_CRC32, 32)

    def test_placement_covers_all_cells(self, mapped):
        rows = placement(mapped.update_op)
        assert sum(r.cells for r in rows) == mapped.update_op.n_cells
        assert len(rows) == mapped.update_op.n_rows

    def test_row_width_respected(self, mapped):
        for row in placement(mapped.update_op):
            assert row.cells <= mapped.update_op.arch.cells_per_row

    def test_loop_rows_flagged(self, mapped):
        rows = placement(mapped.update_op)
        assert any(r.is_loop_row for r in rows)

    def test_output_op_has_no_loop_rows(self, mapped):
        rows = placement(mapped.output_op)
        assert not any(r.is_loop_row for r in rows)

    def test_utilization_fractions(self, mapped):
        util = utilization(mapped.update_op)
        assert 0 < util["cells"] <= 1
        assert 0 < util["rows"] <= 1
        assert util["outputs"] == 0  # derby update op drives no ports

    def test_config_size_positive_and_monotone(self):
        small = map_crc(ETHERNET_CRC32, 8).update_op
        large = map_crc(ETHERNET_CRC32, 128).update_op
        assert 0 < config_size_bytes(small) < config_size_bytes(large)

    def test_describe_text(self, mapped):
        text = describe(mapped.update_op)
        assert mapped.update_op.name in text
        assert "II=1" in text
        assert "LOOP" in text


class TestSerialization:
    def test_roundtrip_identity(self):
        op = _toggle_op()
        clone = op_loads(op_dumps(op))
        assert clone.name == op.name
        assert clone.n_cells == op.n_cells
        assert clone.evaluate([1], [1]) == op.evaluate([1], [1])

    def test_roundtrip_real_mapping(self):
        mapped = map_crc(ETHERNET_CRC32, 32)
        clone = op_loads(op_dumps(mapped.update_op))
        rng = np.random.default_rng(3)
        state = [int(b) for b in rng.integers(0, 2, size=32)]
        chunk = [int(b) for b in rng.integers(0, 2, size=32)]
        assert clone.evaluate(state, chunk) == mapped.update_op.evaluate(state, chunk)
        assert clone.initiation_interval == mapped.update_op.initiation_interval

    def test_lut_cells_roundtrip(self):
        cells = [lut_cell(0, [Net.input(0), Net.input(1)], 0b1000)]
        op = PicogaOperation(
            name="and", n_inputs=2, n_state=0, cells=cells,
            outputs=[Net.cell(0)], next_state=[],
        )
        clone = op_loads(op_dumps(op))
        assert clone.evaluate([], [1, 1]) == ([1], [])
        assert clone.evaluate([], [1, 0]) == ([0], [])

    def test_version_check(self):
        data = operation_to_dict(_toggle_op())
        data["version"] = 99
        with pytest.raises(ValueError):
            operation_from_dict(data)

    def test_bad_token_rejected(self):
        data = operation_to_dict(_toggle_op())
        data["outputs"] = ["z0"]
        with pytest.raises(ValueError):
            operation_from_dict(data)

    def test_validation_still_applies(self):
        """Deserialization revalidates against the target architecture."""
        op = _toggle_op()
        data = operation_to_dict(op)
        tiny = PicogaArchitecture(rows=24, cells_per_row=16, input_ports=12,
                                  output_ports=4, xor_fanin=1)
        with pytest.raises(ValueError):
            operation_from_dict(data, arch=tiny)
