"""Unit tests for repro.picoga.architecture."""

import pytest

from repro.picoga import DREAM_PICOGA, PicogaArchitecture


class TestDreamInstance:
    def test_paper_parameters(self):
        """§3: 24-row pipelined matrix, 4 contexts, 2-cycle switch, 200 MHz."""
        assert DREAM_PICOGA.rows == 24
        assert DREAM_PICOGA.cells_per_row == 16
        assert DREAM_PICOGA.contexts == 4
        assert DREAM_PICOGA.context_switch_cycles == 2
        assert DREAM_PICOGA.clock_hz == 200e6

    def test_io_bandwidth(self):
        assert DREAM_PICOGA.input_bits == 384
        assert DREAM_PICOGA.output_bits == 128

    def test_total_cells(self):
        assert DREAM_PICOGA.total_cells == 384

    def test_xor_primitive(self):
        """§4: a 10-bit XOR fits a single logic cell."""
        assert DREAM_PICOGA.xor_fanin == 10

    def test_cycle_time(self):
        assert DREAM_PICOGA.cycle_seconds == pytest.approx(5e-9)

    def test_area_and_tech(self):
        assert DREAM_PICOGA.area_mm2 == pytest.approx(11.0)
        assert "90nm" in DREAM_PICOGA.technology

    def test_peak_bandwidth_at_128(self):
        """The paper's headline: 128 bits/cycle at 200 MHz ≈ 25.6 Gbit/s."""
        assert DREAM_PICOGA.peak_bandwidth_bps(128) == pytest.approx(25.6e9)


class TestValidation:
    def test_rejects_zero_rows(self):
        with pytest.raises(ValueError):
            PicogaArchitecture(rows=0)

    def test_rejects_negative_switch(self):
        with pytest.raises(ValueError):
            PicogaArchitecture(context_switch_cycles=-1)

    def test_rejects_zero_clock(self):
        with pytest.raises(ValueError):
            PicogaArchitecture(clock_hz=0)

    def test_custom_instance(self):
        big = PicogaArchitecture(rows=48, input_ports=24)
        assert big.total_cells == 768
        assert big.input_bits == 768
