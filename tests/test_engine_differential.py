"""Differential test harness: batch engine vs the serial ground truth.

Randomized draws of ``(spec, M, batch size, message length)`` must agree
bit-for-bit across every implementation chain:

* CRC: ``BatchCRC`` (both bases) == ``BitwiseCRC`` == ``DerbyCRC``;
* additive scrambler: ``BatchAdditiveScrambler`` == ``AdditiveScrambler``
  (including per-stream seeds) and the ``ScramblerPipeline``;
* multiplicative scrambler: ``BatchMultiplicativeScrambler`` ==
  ``MultiplicativeScrambler`` with random initial states;
* streaming: ``CRCPipeline`` fed in random chunk sizes == ``BitwiseCRC``.

Message lengths deliberately cover the tail edge cases — zero-length,
shorter than M, and non-multiple-of-M — and every assertion is per-message,
so one run checks well over 200 randomized cases with zero tolerance.
"""

import numpy as np
import pytest

from repro.crc import BitwiseCRC, DerbyCRC, get as get_crc
from repro.engine import (
    BatchAdditiveScrambler,
    BatchCRC,
    BatchMultiplicativeScrambler,
    CompileCache,
    CRCPipeline,
    ScramblerPipeline,
)
from repro.gf2.polynomial import GF2Polynomial
from repro.scrambler import AdditiveScrambler
from repro.scrambler.multiplicative import MultiplicativeScrambler
from repro.scrambler.specs import CATALOG as SCRAMBLER_CATALOG

# Mixed widths and reflection conventions; all support the Derby transform
# at every factor below (DECT's non-cyclic generators are excluded).
CRC_NAMES = (
    "CRC-8",
    "CRC-16/CCITT-FALSE",
    "CRC-16/ARC",
    "CRC-32",
    "CRC-32/MPEG-2",
    "CRC-32C",
)
FACTORS = (4, 8, 16, 32)
N_DRAWS = 18
BATCH_RANGE = (1, 12)
MAX_BYTES = 24  # spans zero-length, < M, and non-multiple-of-M messages


@pytest.fixture(scope="module")
def cache():
    return CompileCache(capacity=256)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0xD1FF)


def _draw_messages(rng, batch):
    return [
        bytes(rng.integers(0, 256, size=int(n)).tolist())
        for n in rng.integers(0, MAX_BYTES + 1, size=batch)
    ]


@pytest.mark.parametrize("method", ["lookahead", "derby"])
def test_crc_differential(method, cache, rng):
    """>= 200 randomized messages per method, three engines, 0 mismatches."""
    serial_engines = {}
    derby_engines = {}
    checked = 0
    for _ in range(N_DRAWS):
        spec = get_crc(CRC_NAMES[int(rng.integers(len(CRC_NAMES)))])
        M = int(FACTORS[int(rng.integers(len(FACTORS)))])
        batch = int(rng.integers(*BATCH_RANGE)) + 8
        messages = _draw_messages(rng, batch)
        engine = BatchCRC(spec, M, method=method, cache=cache)
        got = engine.compute_batch(messages)
        serial = serial_engines.setdefault(spec.name, BitwiseCRC(spec))
        expected = [serial.compute(m) for m in messages]
        assert got == expected, (spec.name, M, method)
        # DerbyCRC is the slow per-message reference: spot-check two
        # messages per draw rather than the whole batch.
        derby = derby_engines.setdefault((spec.name, M), DerbyCRC(spec, M))
        for m in messages[:2]:
            assert derby.compute(m) == serial.compute(m), (spec.name, M)
        checked += len(messages)
    assert checked >= 200


def test_crc_bit_level_differential(cache, rng):
    """Raw bit streams of non-byte lengths against the serial engine."""
    checked = 0
    for _ in range(8):
        spec = get_crc(CRC_NAMES[int(rng.integers(len(CRC_NAMES)))])
        M = int(FACTORS[int(rng.integers(len(FACTORS)))])
        streams = [
            [int(b) for b in rng.integers(0, 2, size=int(n))]
            for n in rng.integers(0, 6 * M, size=10)
        ]
        engine = BatchCRC(spec, M, cache=cache)
        serial = BitwiseCRC(spec)
        assert engine.compute_bits_batch(streams) == [
            serial.compute_bits(s) for s in streams
        ], (spec.name, M)
        checked += len(streams)
    assert checked >= 80


def test_crc_pipeline_differential(cache, rng):
    """Chunked feeds in random sizes must match the one-shot serial CRC."""
    for method in ("lookahead", "derby"):
        spec = get_crc("CRC-32")
        pipe = CRCPipeline(spec, 32, method=method, cache=cache)
        serial = BitwiseCRC(spec)
        messages = _draw_messages(rng, 30)
        ids = [pipe.open() for _ in messages]
        cursors = {sid: (m, 0) for sid, m in zip(ids, messages)}
        # Interleave chunk deliveries across all streams in random order.
        while cursors:
            sid = list(cursors)[int(rng.integers(len(cursors)))]
            m, off = cursors[sid]
            step = int(rng.integers(1, 9))
            pipe.feed(sid, m[off : off + step])
            off += step
            if off >= len(m):
                del cursors[sid]
            else:
                cursors[sid] = (m, off)
        assert [pipe.finalize(sid) for sid in ids] == [
            serial.compute(m) for m in messages
        ], method


def test_additive_scrambler_differential(cache, rng):
    checked = 0
    additive_specs = [s for s in SCRAMBLER_CATALOG if s.degree >= 7]
    for _ in range(10):
        spec = additive_specs[int(rng.integers(len(additive_specs)))]
        M = int(FACTORS[int(rng.integers(len(FACTORS)))])
        batch = int(rng.integers(4, 12))
        streams = [
            [int(b) for b in rng.integers(0, 2, size=int(n))]
            for n in rng.integers(0, 5 * M, size=batch)
        ]
        seeds = [int(s) or 1 for s in rng.integers(1, 1 << spec.degree, size=batch)]
        engine = BatchAdditiveScrambler(spec, M, cache=cache)
        got = engine.scramble_batch(streams, seeds=seeds)
        expected = [
            AdditiveScrambler(spec, seed).scramble_bits(s)
            for s, seed in zip(streams, seeds)
        ]
        assert got == expected, (spec.name, M)
        # Involution: descrambling recovers the plaintext bit-for-bit.
        assert engine.descramble_batch(got, seeds=seeds) == streams
        checked += batch
    assert checked >= 40


def test_scrambler_pipeline_differential(cache, rng):
    spec = next(s for s in SCRAMBLER_CATALOG if s.name == "IEEE-802.16e")
    pipe = ScramblerPipeline(spec, 16, cache=cache)
    for _ in range(6):
        bits = [int(b) for b in rng.integers(0, 2, size=int(rng.integers(1, 300)))]
        sid = pipe.open()
        out = []
        off = 0
        while off < len(bits):
            step = int(rng.integers(1, 23))
            out.extend(pipe.feed(sid, bits[off : off + step]))
            off += step
        pipe.close(sid)
        assert out == AdditiveScrambler(spec).scramble_bits(bits)


def test_multiplicative_scrambler_differential(rng):
    polys = [
        GF2Polynomial.from_exponents(e)
        for e in ([7, 6, 0], [15, 14, 0], [23, 18, 0], [43, 0])
    ]
    checked = 0
    for _ in range(8):
        poly = polys[int(rng.integers(len(polys)))]
        batch = int(rng.integers(4, 10))
        streams = [
            [int(b) for b in rng.integers(0, 2, size=int(n))]
            for n in rng.integers(0, 150, size=batch)
        ]
        states = [int(s) for s in rng.integers(0, 1 << min(poly.degree, 30), size=batch)]
        engine = BatchMultiplicativeScrambler(poly)
        got = engine.scramble_batch(streams, states=states)
        expected = []
        for s, st in zip(streams, states):
            expected.append(MultiplicativeScrambler(poly, state=st).scramble_bits(s))
        assert got == expected, poly
        back = engine.descramble_batch(got, states=states)
        assert back == streams, poly
        checked += batch
    assert checked >= 32
