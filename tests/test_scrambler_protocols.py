"""Unit tests for the protocol layers: DVB-TS, 802.11 frames, Bluetooth."""

import numpy as np
import pytest

from repro.scrambler.bluetooth import (
    dewhiten_bits,
    dewhiten_bytes,
    whiten_bits,
    whiten_bytes,
    whitening_seed,
    whitening_sequence,
)
from repro.scrambler.dvb_ts import (
    INVERTED_SYNC_BYTE,
    SUPERFRAME_PACKETS,
    SYNC_BYTE,
    TS_PACKET_BYTES,
    TransportStreamDescrambler,
    TransportStreamScrambler,
    make_transport_stream,
)
from repro.scrambler.ieee80211_frame import (
    Ieee80211Scrambler,
    descramble_frame,
    recover_seed,
)


def _payloads(count, seed=0):
    rng = np.random.default_rng(seed)
    return [bytes(rng.integers(0, 256, size=TS_PACKET_BYTES - 1).tolist()) for _ in range(count)]


class TestTransportStream:
    def test_framing(self):
        packets = make_transport_stream(_payloads(3))
        assert all(p[0] == SYNC_BYTE and len(p) == TS_PACKET_BYTES for p in packets)

    def test_framing_validation(self):
        with pytest.raises(ValueError):
            make_transport_stream([b"\x00" * 10])

    def test_superframe_sync_inversion(self):
        packets = make_transport_stream(_payloads(17))
        scrambled = TransportStreamScrambler().scramble_stream(packets)
        for i, pkt in enumerate(scrambled):
            if i % SUPERFRAME_PACKETS == 0:
                assert pkt[0] == INVERTED_SYNC_BYTE
            else:
                assert pkt[0] == SYNC_BYTE

    def test_roundtrip(self):
        packets = make_transport_stream(_payloads(24, seed=1))
        scrambled = TransportStreamScrambler().scramble_stream(packets)
        restored = TransportStreamDescrambler().descramble_stream(scrambled)
        assert restored == packets

    def test_receiver_joins_mid_stream(self):
        """A receiver tuning in mid-stream recovers at the next superframe."""
        packets = make_transport_stream(_payloads(24, seed=2))
        scrambled = TransportStreamScrambler().scramble_stream(packets)
        rx = TransportStreamDescrambler()
        # Join 3 packets late: packets 3..7 stay garbled, 8 onward recover.
        out = rx.descramble_stream(scrambled[3:])
        assert out[5:] == packets[8:]
        assert out[0] != packets[3]

    def test_payload_is_whitened(self):
        packets = make_transport_stream([bytes(TS_PACKET_BYTES - 1)])
        scrambled = TransportStreamScrambler().scramble_stream(packets)
        payload = scrambled[0][1:]
        ones = sum(bin(b).count("1") for b in payload)
        assert 0.35 < ones / (8 * len(payload)) < 0.65

    def test_packet_length_checked(self):
        with pytest.raises(ValueError):
            TransportStreamScrambler().scramble_packet(b"\x47" + b"\x00" * 10)

    def test_sync_byte_checked(self):
        with pytest.raises(ValueError):
            TransportStreamScrambler().scramble_packet(b"\x00" * TS_PACKET_BYTES)


class TestIeee80211Frames:
    @pytest.fixture
    def psdu(self):
        rng = np.random.default_rng(4)
        return [int(b) for b in rng.integers(0, 2, size=500)]

    @pytest.mark.parametrize("seed", [1, 0x5D, 0x7F])
    def test_seed_recovery(self, seed, psdu):
        frame = Ieee80211Scrambler(seed).scramble_frame(psdu)
        assert recover_seed(frame) == seed

    def test_blind_descramble(self, psdu):
        frame = Ieee80211Scrambler(0x2B).scramble_frame(psdu)
        seed, recovered = descramble_frame(frame)
        assert seed == 0x2B
        assert recovered == psdu

    def test_every_seed_recoverable(self):
        psdu = [1, 0, 1]
        for seed in range(1, 128):
            frame = Ieee80211Scrambler(seed).scramble_frame(psdu)
            assert recover_seed(frame) == seed

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            Ieee80211Scrambler(0)

    def test_short_frame_rejected(self):
        with pytest.raises(ValueError):
            recover_seed([1, 0, 1])

    def test_corrupted_reserved_service_detected(self, psdu):
        """Flipping one of the 9 reserved SERVICE bits breaks the
        descrambled-to-zero check deterministically."""
        frame = Ieee80211Scrambler(0x11).scramble_frame(psdu)
        frame[10] ^= 1
        with pytest.raises(ValueError):
            descramble_frame(frame)

    def test_corrupted_seed_bit_changes_recovery(self, psdu):
        frame = Ieee80211Scrambler(0x11).scramble_frame(psdu)
        frame[2] ^= 1
        assert recover_seed(frame) != 0x11


class TestBluetoothWhitening:
    def test_seed_rule(self):
        assert whitening_seed(0) == 0b1000000
        assert whitening_seed(37) == 0b1000000 | 37

    def test_channel_range(self):
        with pytest.raises(ValueError):
            whitening_seed(40)

    def test_bit_involution(self):
        rng = np.random.default_rng(5)
        bits = [int(b) for b in rng.integers(0, 2, size=320)]
        assert dewhiten_bits(whiten_bits(bits, 17), 17) == bits

    def test_byte_involution(self):
        data = bytes(range(64))
        assert dewhiten_bytes(whiten_bytes(data, 5), 5) == data

    def test_channels_differ(self):
        assert whitening_sequence(0, 64) != whitening_sequence(1, 64)

    def test_byte_and_bit_paths_agree(self):
        data = b"\xa5\x3c"
        bits = [(data[i // 8] >> (i % 8)) & 1 for i in range(16)]
        via_bits = whiten_bits(bits, 9)
        via_bytes = whiten_bytes(data, 9)
        packed = [(via_bytes[i // 8] >> (i % 8)) & 1 for i in range(16)]
        assert packed == via_bits

    def test_period_127(self):
        seq = whitening_sequence(3, 254)
        assert seq[:127] == seq[127:]
