"""Unit tests for repro.mapping.xor_network and repro.mapping.cse."""

import numpy as np
import pytest

from repro.gf2 import GF2Matrix
from repro.mapping.cse import extract_common_patterns, no_cse
from repro.mapping.xor_network import (
    XorEquation,
    equations_from_matrix,
    recurrence_equations,
    split_by_kind,
    total_xor_taps,
    weight_histogram,
)
from repro.picoga.cell import Net, NetKind


def _eq(name, *nets):
    return XorEquation(name=name, leaves=frozenset(nets))


class TestXorNetwork:
    def test_equations_from_matrix(self):
        m = GF2Matrix([[1, 0, 1], [0, 1, 1]])
        eqs = equations_from_matrix(m, NetKind.INPUT, "r")
        assert eqs[0].leaves == {Net.input(0), Net.input(2)}
        assert eqs[1].leaves == {Net.input(1), Net.input(2)}

    def test_recurrence_equations_merge(self):
        s = GF2Matrix([[1, 0], [0, 1]])
        b = GF2Matrix([[1, 1], [0, 0]])
        eqs = recurrence_equations(s, b)
        assert eqs[0].leaves == {Net.state(0), Net.input(0), Net.input(1)}
        assert eqs[1].leaves == {Net.state(1)}

    def test_recurrence_shape_check(self):
        with pytest.raises(ValueError):
            recurrence_equations(GF2Matrix.identity(2), GF2Matrix.zeros(3, 2))

    def test_total_taps(self):
        eqs = [_eq("a", Net.input(0), Net.input(1), Net.input(2)), _eq("b", Net.input(0))]
        assert total_xor_taps(eqs) == 2

    def test_split_by_kind(self):
        state, other = split_by_kind(
            frozenset({Net.state(1), Net.input(0), Net.state(0), Net.cell(2)})
        )
        assert [n.index for n in state] == [0, 1]
        assert len(other) == 2

    def test_weight_histogram(self):
        eqs = [_eq("a", Net.input(0)), _eq("b", Net.input(0), Net.input(1))]
        assert weight_histogram(eqs) == {1: 1, 2: 1}


def _verify_semantics(original, result, n_inputs, n_state=0, trials=20):
    """The optimized DAG must compute the same parities as the originals."""
    rng = np.random.default_rng(5)
    for _ in range(trials):
        inputs = rng.integers(0, 2, size=max(n_inputs, 1))
        states = rng.integers(0, 2, size=max(n_state, 1))

        def leaf_value(net, shared_values):
            if net.kind is NetKind.INPUT:
                return int(inputs[net.index])
            if net.kind is NetKind.STATE:
                return int(states[net.index])
            return shared_values[net]

        shared_values = {}
        for term in result.shared:
            v = 0
            for net in term.operands:
                v ^= leaf_value(net, shared_values)
            shared_values[term.net] = v

        for orig, opt in zip(original, result.equations):
            expected = 0
            for net in orig.leaves:
                expected ^= leaf_value(net, shared_values)
            got = 0
            for net in opt.leaves:
                got ^= leaf_value(net, shared_values)
            assert got == expected, orig.name


class TestCSE:
    def test_simple_shared_pair(self):
        eqs = [
            _eq("a", Net.input(0), Net.input(1), Net.input(2)),
            _eq("b", Net.input(0), Net.input(1), Net.input(3)),
        ]
        result = extract_common_patterns(eqs)
        assert len(result.shared) == 1
        assert result.shared[0].operands == {Net.input(0), Net.input(1)}
        assert result.savings == 1
        _verify_semantics(eqs, result, n_inputs=4)

    def test_wide_pattern_preferred(self):
        common = [Net.input(i) for i in range(5)]
        eqs = [
            _eq("a", *common, Net.input(10)),
            _eq("b", *common, Net.input(11)),
            _eq("c", *common, Net.input(12)),
        ]
        result = extract_common_patterns(eqs)
        assert any(len(t.operands) == 5 for t in result.shared)
        assert result.savings == 8  # (5-1) * (3-1)
        _verify_semantics(eqs, result, n_inputs=13)

    def test_pattern_width_capped(self):
        common = [Net.input(i) for i in range(15)]
        eqs = [_eq("a", *common, Net.input(20)), _eq("b", *common, Net.input(21))]
        result = extract_common_patterns(eqs, max_width=10)
        assert all(len(t.operands) <= 10 for t in result.shared)
        _verify_semantics(eqs, result, n_inputs=22)

    def test_state_leaves_not_shared_by_default(self):
        eqs = [
            _eq("a", Net.state(0), Net.state(1), Net.input(0)),
            _eq("b", Net.state(0), Net.state(1), Net.input(1)),
        ]
        result = extract_common_patterns(eqs)
        for term in result.shared:
            assert all(n.kind is not NetKind.STATE for n in term.operands)
        _verify_semantics(eqs, result, n_inputs=2, n_state=2)

    def test_state_sharing_opt_in(self):
        eqs = [
            _eq("a", Net.state(0), Net.state(1), Net.input(0)),
            _eq("b", Net.state(0), Net.state(1), Net.input(1)),
        ]
        result = extract_common_patterns(eqs, share_state=True)
        assert result.savings == 1
        _verify_semantics(eqs, result, n_inputs=2, n_state=2)

    def test_no_sharing_possible(self):
        eqs = [_eq("a", Net.input(0), Net.input(1)), _eq("b", Net.input(2), Net.input(3))]
        result = extract_common_patterns(eqs)
        assert result.shared == []
        assert result.savings == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            extract_common_patterns([], max_width=1)

    def test_no_cse_identity(self):
        eqs = [_eq("a", Net.input(0), Net.input(1))]
        result = no_cse(eqs)
        assert result.savings == 0
        assert result.equations == eqs

    def test_crc32_b_matrix_savings(self):
        """On the real B_Mt the paper's pattern sharing must pay off."""
        from repro.crc import ETHERNET_CRC32
        from repro.lfsr import crc_statespace, derby_transform
        from repro.mapping.xor_network import equations_from_matrix

        dt = derby_transform(crc_statespace(ETHERNET_CRC32.generator()), 32)
        eqs = equations_from_matrix(dt.B_Mt, NetKind.INPUT, "b")
        result = extract_common_patterns(eqs)
        assert result.savings > 0.2 * result.taps_before  # >20% reduction
        _verify_semantics(eqs, result, n_inputs=32)
