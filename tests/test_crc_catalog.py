"""Catalog-wide validation: every published check value must reproduce."""

import binascii
import zlib

import pytest

from repro.crc import BitwiseCRC, CATALOG, ETHERNET_CRC32, TableCRC
from repro.crc.catalog import BY_NAME, get

CHECK_INPUT = b"123456789"


@pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
def test_published_check_value(spec):
    assert BitwiseCRC(spec).compute(CHECK_INPUT) == spec.check


@pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
def test_table_engine_check_value(spec):
    assert TableCRC(spec).compute(CHECK_INPUT) == spec.check


class TestIndependentAnchors:
    """Cross-check against CRC implementations from the standard library."""

    def test_crc32_matches_zlib(self):
        engine = BitwiseCRC(ETHERNET_CRC32)
        for data in (b"", b"a", CHECK_INPUT, bytes(range(256))):
            assert engine.compute(data) == zlib.crc32(data)

    def test_xmodem_matches_binascii(self):
        engine = BitwiseCRC(get("CRC-16/XMODEM"))
        for data in (b"", b"a", CHECK_INPUT, bytes(range(256))):
            assert engine.compute(data) == binascii.crc_hqx(data, 0)

    def test_crc32_incremental_matches_zlib(self):
        engine = BitwiseCRC(ETHERNET_CRC32)
        part1, part2 = b"hello ", b"world"
        reg = engine.raw_register(part1)
        reg = engine.raw_register(part2, reg)
        assert ETHERNET_CRC32.finalize(reg) == zlib.crc32(part1 + part2)


class TestCatalogHygiene:
    def test_names_unique(self):
        assert len(BY_NAME) == len(CATALOG)

    def test_lookup(self):
        assert get("CRC-32") is ETHERNET_CRC32

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            get("CRC-99/NOPE")

    def test_coverage_matches_paper_claim(self):
        """Paper §1: '~25 standards are reported' — our catalog covers at
        least that many distinct parameter sets."""
        assert len(CATALOG) >= 25

    def test_width_diversity(self):
        widths = {spec.width for spec in CATALOG}
        assert {5, 7, 8, 10, 15, 16, 24, 32, 64} <= widths

    def test_all_generators_have_x_term_weighting(self):
        """Every published generator here has a non-zero constant term
        (required for burst detection and for LFSR invertibility)."""
        for spec in CATALOG:
            assert spec.poly & 1, spec.name
