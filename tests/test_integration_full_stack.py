"""Full-stack integration tests: the complete equivalence chain.

These tie every layer together in single tests, the way DESIGN.md §5
promises: for one message, the bit-serial reference, the software engines,
the matrix engines, the GFMAC formulation and the netlist *executed on the
PiCoGA simulator inside the DREAM system model* must all agree — and the
executed cycle count must equal the analytic model.
"""

import numpy as np
import pytest

from repro.crc import (
    BitwiseCRC,
    DerbyCRC,
    ETHERNET_CRC32,
    GFMACCRC,
    InterleavedCRC,
    LookaheadCRC,
    SlicingCRC,
    TableCRC,
    get,
)
from repro.dream import CRCAccelerator, DreamSystem, ScramblerAccelerator
from repro.mapping import map_crc, map_scrambler
from repro.scrambler import AdditiveScrambler, IEEE80216E, ParallelScrambler


@pytest.fixture(scope="module")
def system():
    return DreamSystem()


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(0xE7)
    return [bytes(rng.integers(0, 256, size=n).tolist()) for n in (46, 333, 1518)]


class TestSevenWayEquivalence:
    @pytest.mark.parametrize("spec_name", ["CRC-32", "CRC-32/MPEG-2", "CRC-16/X-25"])
    def test_all_engines_and_hardware_agree(self, spec_name, frames, system):
        spec = get(spec_name)
        engines = [
            BitwiseCRC(spec),
            TableCRC(spec),
            SlicingCRC(spec, 8),
            LookaheadCRC(spec, 32),
            DerbyCRC(spec, 32),
            GFMACCRC(spec, 32),
        ]
        mapped = map_crc(spec, 32)
        for frame in frames:
            values = {engine.compute(frame) for engine in engines}
            values.add(mapped.compute(frame))  # netlist, direct evaluation
            crc, _ = system.execute_crc(mapped, frame)  # netlist on the array
            values.add(crc)
            assert len(values) == 1, f"{spec_name} diverged on {len(frame)}-byte frame"

    def test_interleaved_engine_and_hardware_agree(self, frames, system):
        il = InterleavedCRC(ETHERNET_CRC32, 64, ways=8)
        mapped = map_crc(ETHERNET_CRC32, 64)
        software = il.compute_batch(frames)
        hardware, _ = system.execute_crc_interleaved(mapped, frames)
        reference = [BitwiseCRC(ETHERNET_CRC32).compute(f) for f in frames]
        assert software == hardware == reference


class TestScramblerChain:
    def test_serial_block_netlist_agree(self, system):
        rng = np.random.default_rng(3)
        bits = [int(b) for b in rng.integers(0, 2, size=1000)]
        serial = AdditiveScrambler(IEEE80216E).scramble_bits(bits)
        block = ParallelScrambler(IEEE80216E, 64).scramble_bits(bits)
        mapped = map_scrambler(IEEE80216E, 64)
        netlist = mapped.scramble_bits(bits)
        hardware, _ = system.execute_scrambler(mapped, bits)
        assert serial == block == netlist == hardware

    def test_hardware_roundtrip(self, system):
        acc = ScramblerAccelerator(IEEE80216E, M=32, system=system)
        data = [1, 1, 0, 1] * 100
        assert acc.scramble_bits(acc.scramble_bits(data)) == data


class TestTimingConsistency:
    @pytest.mark.parametrize("M", [8, 32, 128])
    @pytest.mark.parametrize("nbytes", [46, 151, 1518])
    def test_executed_cycles_equal_analytic(self, M, nbytes, system):
        mapped = map_crc(ETHERNET_CRC32, M)
        data = bytes(i % 256 for i in range(nbytes))
        _, executed = system.execute_crc(mapped, data)
        predicted = system.crc_single_performance(mapped, 8 * nbytes)
        assert executed.total_cycles == predicted.total_cycles

    def test_ledger_composition(self, system):
        """The executed ledger decomposes into the documented causes."""
        mapped = map_crc(ETHERNET_CRC32, 64)
        _, perf = system.execute_crc(mapped, bytes(200))
        assert set(perf.cycles) == {"fill", "issue", "switch", "load", "control"}
        assert perf.cycles["load"] == 0  # configuration preloaded
        assert perf.cycles["switch"] == 2  # one break to the output op
        assert perf.cycles["control"] == 60


class TestAcceleratorUserJourney:
    def test_full_offload_story(self, frames):
        """A downstream user's path: pick a standard, compile, verify,
        measure, interleave — one test, end to end."""
        acc = CRCAccelerator(get("CRC-16/CCITT-FALSE"), M=64)
        reference = BitwiseCRC(get("CRC-16/CCITT-FALSE"))
        for frame in frames:
            crc, perf = acc.compute_with_timing(frame)
            assert crc == reference.compute(frame)
            assert perf.throughput_bps > 0
        batch = acc.compute_batch(frames)
        assert batch == [reference.compute(f) for f in frames]
        assert acc.kernel_bandwidth_gbps() == pytest.approx(12.8)
