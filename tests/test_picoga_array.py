"""Unit tests for repro.picoga.array and repro.picoga.config."""

import pytest

from repro.picoga import (
    BUS_LOAD_CYCLES,
    ConfigCache,
    Net,
    PicogaArray,
    PicogaOperation,
    xor_cell,
)


def _op(name: str) -> PicogaOperation:
    cells = [xor_cell(0, [Net.state(0), Net.input(0)])]
    return PicogaOperation(
        name=name, n_inputs=1, n_state=1, cells=cells,
        outputs=[Net.cell(0)], next_state=[Net.cell(0)],
    )


class TestConfigCache:
    def test_load_and_lookup(self):
        cache = ConfigCache()
        cost = cache.load(_op("a"), slot=0)
        assert cost == BUS_LOAD_CYCLES
        assert cache.slot_of("a") == 0

    def test_first_activation_free(self):
        cache = ConfigCache()
        cache.load(_op("a"), slot=0)
        assert cache.activate("a") == 0

    def test_cached_switch_costs_two_cycles(self):
        cache = ConfigCache()
        cache.load(_op("a"), slot=0)
        cache.load(_op("b"), slot=1)
        cache.activate("a")
        assert cache.activate("b") == 2
        assert cache.activate("b") == 0  # already active

    def test_switch_count(self):
        cache = ConfigCache()
        cache.load(_op("a"), slot=0)
        cache.load(_op("b"), slot=1)
        cache.activate("a")
        cache.activate("b")
        cache.activate("a")
        assert cache.switch_count == 2

    def test_four_contexts(self):
        cache = ConfigCache()
        for i in range(4):
            cache.load(_op(f"op{i}"), slot=i)
        assert len(cache.loaded_ops()) == 4

    def test_eviction_on_fifth_load(self):
        cache = ConfigCache()
        for i in range(4):
            cache.load(_op(f"op{i}"))
        cache.activate("op3")
        cache.load(_op("op4"))
        assert cache.slot_of("op4") is not None
        assert len(cache.loaded_ops()) == 4
        assert cache.slot_of("op3") is not None  # active op survives

    def test_activate_missing_raises(self):
        with pytest.raises(KeyError):
            ConfigCache().activate("ghost")

    def test_bad_slot(self):
        with pytest.raises(ValueError):
            ConfigCache().load(_op("a"), slot=9)


class TestArrayExecution:
    def test_burst_functional(self):
        array = PicogaArray()
        array.load_operation(_op("acc"), slot=0)
        array.set_state("acc", [0])
        outs = array.run_burst("acc", [[1], [0], [1]])
        assert [o[0] for o in outs] == [1, 1, 0]
        assert array.get_state("acc") == [0]

    def test_state_persists_between_bursts(self):
        array = PicogaArray()
        array.load_operation(_op("acc"), slot=0)
        array.set_state("acc", [0])
        array.run_burst("acc", [[1]])
        array.run_burst("acc", [[0]])
        assert array.get_state("acc") == [1]

    def test_ledger_fill_and_issue(self):
        array = PicogaArray()
        array.load_operation(_op("acc"), slot=0)
        array.reset_ledger()
        array.run_burst("acc", [[1], [1], [1]])
        assert array.ledger.fill == 1  # 1-row op
        assert array.ledger.issue == 3  # II = 1
        assert array.ledger.switch == 0  # first activation is free

    def test_ledger_switch_on_op_change(self):
        array = PicogaArray()
        array.load_operation(_op("a"), slot=0)
        array.load_operation(_op("b"), slot=1)
        array.reset_ledger()
        array.run_burst("a", [[1]])
        array.run_burst("b", [[1]])
        assert array.ledger.switch == 2

    def test_control_charge(self):
        array = PicogaArray()
        array.charge_control(40)
        assert array.ledger.control == 40
        with pytest.raises(ValueError):
            array.charge_control(-1)

    def test_elapsed_seconds(self):
        array = PicogaArray()
        array.charge_control(200)
        assert array.elapsed_seconds() == pytest.approx(1e-6)

    def test_unknown_op(self):
        with pytest.raises(KeyError):
            PicogaArray().run_burst("ghost", [[1]])

    def test_set_state_arity(self):
        array = PicogaArray()
        array.load_operation(_op("acc"), slot=0)
        with pytest.raises(ValueError):
            array.set_state("acc", [0, 1])

    def test_empty_burst_costs_nothing(self):
        array = PicogaArray()
        array.load_operation(_op("acc"), slot=0)
        array.reset_ledger()
        assert array.run_burst("acc", []) == []
        assert array.ledger.issue == 0

    def test_ledger_arithmetic(self):
        from repro.picoga import CycleLedger

        a = CycleLedger(fill=1, issue=2)
        b = CycleLedger(switch=3, control=4)
        total = a + b
        assert total.total == 10
        assert total.as_dict()["total"] == 10


class TestInterleavedExecution:
    def test_slot_states_isolated(self):
        array = PicogaArray()
        array.load_operation(_op("acc"), slot=0)
        array.reset_ledger()
        states = {0: [0], 1: [0]}
        results = array.run_interleaved_burst(
            "acc", [(0, [1]), (1, [1]), (0, [1]), (1, [0])], states
        )
        assert states[0] == [0]  # two ones -> parity 0
        assert states[1] == [1]
        assert len(results) == 4

    def test_interleaved_issue_is_one_per_block(self):
        array = PicogaArray()
        array.load_operation(_op("acc"), slot=0)
        array.reset_ledger()
        states = {0: [0], 1: [0]}
        array.run_interleaved_burst("acc", [(0, [1]), (1, [1])], states)
        assert array.ledger.issue == 2
