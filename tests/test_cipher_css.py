"""Unit tests for repro.cipher.css (40-bit Content Scramble System)."""

import pytest

from repro.cipher import CSS, LFSR17_POLY, LFSR25_POLY, MODES

KEY = bytes([0x51, 0x67, 0x67, 0xC5, 0xE0])


class TestPolynomials:
    def test_lfsr17_primitive(self):
        """Maximal period 2^17 - 1 — verified with our own machinery."""
        assert LFSR17_POLY.is_primitive()

    def test_lfsr25_primitive(self):
        assert LFSR25_POLY.is_primitive()

    def test_degrees(self):
        assert LFSR17_POLY.degree == 17
        assert LFSR25_POLY.degree == 25


class TestSeeding:
    def test_key_length(self):
        with pytest.raises(ValueError):
            CSS(b"\x00" * 4)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            CSS(KEY, mode="bogus")

    def test_forced_bits_prevent_null_registers(self):
        cipher = CSS(b"\x00" * 5)
        r17, r25 = cipher.registers
        assert r17 == 0x100  # forced 1 at bit 8
        assert r25 == 0x8  # forced 1 at bit 3

    def test_registers_in_range(self):
        r17, r25 = CSS(b"\xff" * 5).registers
        assert r17 < (1 << 17)
        assert r25 < (1 << 25)

    def test_modes_enumerated(self):
        assert set(MODES) == {"data", "key", "title", "challenge"}


class TestKeystream:
    def test_deterministic(self):
        assert CSS(KEY).keystream_bytes(64) == CSS(KEY).keystream_bytes(64)

    def test_key_sensitivity(self):
        other = bytes([0x51, 0x67, 0x67, 0xC5, 0xE1])
        assert CSS(KEY).keystream_bytes(64) != CSS(other).keystream_bytes(64)

    def test_modes_differ(self):
        streams = {mode: CSS(KEY, mode).keystream_bytes(32) for mode in MODES}
        assert len(set(streams.values())) == 4

    def test_carry_propagates(self):
        """The add-with-carry combiner is not byte-wise independent: the
        keystream differs from carry-free addition somewhere."""
        cipher = CSS(KEY)
        with_carry = cipher.keystream_bytes(256)
        c2 = CSS(KEY)
        free = bytes((c2._byte17() + c2._byte25()) & 0xFF for _ in range(256))
        assert with_carry != free

    def test_keystream_bits_packing(self):
        bits = CSS(KEY).keystream_bits(16)
        data = CSS(KEY).keystream_bytes(2)
        assert bits == [(data[i // 8] >> (i % 8)) & 1 for i in range(16)]


class TestScrambling:
    def test_roundtrip(self):
        sector = bytes(range(256)) * 8  # 2048-byte DVD sector
        scrambled = CSS(KEY, "data").scramble(sector)
        assert scrambled != sector
        assert CSS(KEY, "data").descramble(scrambled) == sector

    def test_title_mode_roundtrip(self):
        payload = b"title key payload"
        assert CSS(KEY, "title").descramble(CSS(KEY, "title").scramble(payload)) == payload
