"""Unit tests for repro.lfsr.statespace."""

import numpy as np
import pytest

from repro.gf2 import GF2Matrix, GF2Polynomial
from repro.lfsr import crc_statespace, scrambler_statespace
from repro.lfsr.reference import GaloisLFSR
from repro.lfsr.statespace import LFSRStateSpace

CRC32 = GF2Polynomial((1 << 32) | 0x04C11DB7)
WIMAX = GF2Polynomial.from_exponents([15, 14, 0])


class TestConstruction:
    def test_crc_shape(self):
        ss = crc_statespace(CRC32)
        assert ss.order == 32
        assert ss.output_width == 32
        assert ss.C == GF2Matrix.identity(32)
        assert not ss.d.any()

    def test_scrambler_shape(self):
        ss = scrambler_statespace(WIMAX)
        assert ss.order == 15
        assert ss.output_width == 1
        assert not ss.b.any()
        assert ss.d.tolist() == [1]

    def test_scrambler_custom_tap(self):
        ss = scrambler_statespace(WIMAX, output_tap=3)
        assert ss.C.to_array()[0].tolist() == [0, 0, 0, 1] + [0] * 11

    def test_scrambler_bad_tap(self):
        with pytest.raises(ValueError):
            scrambler_statespace(WIMAX, output_tap=15)

    def test_validation_rejects_bad_b(self):
        ss = crc_statespace(CRC32)
        with pytest.raises(ValueError):
            LFSRStateSpace(A=ss.A, b=np.zeros(3, dtype=np.uint8), C=ss.C, d=ss.d)

    def test_validation_rejects_bad_c(self):
        ss = crc_statespace(CRC32)
        with pytest.raises(ValueError):
            LFSRStateSpace(A=ss.A, b=ss.b, C=GF2Matrix.identity(5), d=np.zeros(5, dtype=np.uint8))


class TestCRCStepping:
    def test_step_matches_galois_register(self):
        ss = crc_statespace(CRC32)
        reg = GaloisLFSR(CRC32, 0xFFFFFFFF)
        state = ss.state_from_int(0xFFFFFFFF)
        rng = np.random.default_rng(7)
        for u in rng.integers(0, 2, size=200):
            state, _ = ss.step(state, int(u))
            reg.clock(int(u))
            assert ss.state_to_int(state) == reg.state

    def test_zero_state_zero_input_is_fixed_point(self):
        ss = crc_statespace(CRC32)
        state = np.zeros(32, dtype=np.uint8)
        nxt, _ = ss.step(state, 0)
        assert not nxt.any()

    def test_output_is_state(self):
        ss = crc_statespace(CRC32)
        state = ss.state_from_int(0x12345678)
        _, y = ss.step(state, 1)
        # CRC output map is the identity on the *current* state
        assert (y == state).all()

    def test_simulate_returns_outputs_per_step(self):
        ss = crc_statespace(CRC32)
        state = ss.state_from_int(1)
        final, outs = ss.simulate(state, [1, 0, 1])
        assert len(outs) == 3
        assert final.shape == (32,)


class TestScramblerStepping:
    def test_keystream_matches_galois_msb(self):
        ss = scrambler_statespace(WIMAX)
        seed = 0x4A80
        state = ss.state_from_int(seed)
        expected = GaloisLFSR(WIMAX, seed).keystream(64)
        _, outs = ss.simulate(state, [0] * 64)
        assert [int(o[0]) for o in outs] == expected

    def test_output_xors_input(self):
        ss = scrambler_statespace(WIMAX)
        state = ss.state_from_int(0x1234)
        _, y0 = ss.step(state, 0)
        _, y1 = ss.step(state, 1)
        assert int(y0[0]) ^ int(y1[0]) == 1

    def test_autonomous_state_independent_of_input(self):
        ss = scrambler_statespace(WIMAX)
        state = ss.state_from_int(0x7FFF)
        n0, _ = ss.step(state, 0)
        n1, _ = ss.step(state, 1)
        assert (n0 == n1).all()

    def test_run_autonomous(self):
        ss = scrambler_statespace(WIMAX)
        state = ss.state_from_int(1)
        final, outs = ss.run_autonomous(state, 15)
        assert len(outs) == 15


class TestStatePacking:
    def test_roundtrip(self):
        ss = crc_statespace(CRC32)
        for v in (0, 1, 0xFFFFFFFF, 0xDEADBEEF):
            assert ss.state_to_int(ss.state_from_int(v)) == v

    def test_msb_is_last_element(self):
        ss = crc_statespace(CRC32)
        state = ss.state_from_int(1 << 31)
        assert state[31] == 1
        assert state[:31].sum() == 0
