"""Tail edge cases across every parallel CRC/scrambler path.

The look-ahead recurrence only sees whole M-bit blocks, so the three
dangerous message shapes are: zero-length (no blocks at all), shorter
than M (a single partial block), and a non-multiple-of-M tail.  Each
engine handles them differently — ``DerbyCRC`` finishes serially,
``BatchCRC``/``DreamSystem`` head-zero-pad and fold the init back —
but all of them must agree with :class:`repro.crc.bitwise.BitwiseCRC`.
"""

import pytest

from repro.crc import BitwiseCRC, DerbyCRC, get as get_crc
from repro.dream.system import DreamSystem
from repro.engine import (
    BatchAdditiveScrambler,
    BatchCRC,
    BatchMultiplicativeScrambler,
    CompileCache,
    CRCPipeline,
)
from repro.gf2.polynomial import GF2Polynomial
from repro.scrambler import AdditiveScrambler, IEEE80216E
from repro.scrambler.multiplicative import MultiplicativeScrambler

SPEC_NAMES = ("CRC-8", "CRC-16/CCITT-FALSE", "CRC-32")
# For M=32: b"" is empty, b"a"/b"abc" are shorter than one block, and the
# 5/9/13-byte messages leave 8/8/8-bit tails (40, 72, 104 bits mod 32).
EDGE_MESSAGES = (b"", b"a", b"abc", b"edge!", b"stressful", b"thirteen bytes"[:13])


@pytest.fixture(scope="module")
def cache():
    return CompileCache(capacity=128)


@pytest.mark.parametrize("name", SPEC_NAMES)
@pytest.mark.parametrize("M", [4, 8, 32])
def test_derby_crc_edges(name, M):
    spec = get_crc(name)
    serial = BitwiseCRC(spec)
    engine = DerbyCRC(spec, M)
    for m in EDGE_MESSAGES:
        assert engine.compute(m) == serial.compute(m), (name, M, m)


@pytest.mark.parametrize("name", SPEC_NAMES)
@pytest.mark.parametrize("method", ["lookahead", "derby"])
def test_batch_crc_edges(name, method, cache):
    spec = get_crc(name)
    serial = BitwiseCRC(spec)
    for M in (4, 8, 32):
        engine = BatchCRC(spec, M, method=method, cache=cache)
        got = engine.compute_batch(list(EDGE_MESSAGES))
        assert got == [serial.compute(m) for m in EDGE_MESSAGES], (name, M)
        # Singleton API agrees with the batch path.
        assert engine.compute(b"") == serial.compute(b"")


def test_batch_crc_empty_batch(cache):
    engine = BatchCRC(get_crc("CRC-32"), 8, cache=cache)
    assert engine.compute_batch([]) == []
    assert engine.compute_bits_batch([]) == []


def test_crc_pipeline_edges(cache):
    spec = get_crc("CRC-32")
    serial = BitwiseCRC(spec)
    for method in ("lookahead", "derby"):
        pipe = CRCPipeline(spec, 32, method=method, cache=cache)
        ids = [pipe.open() for _ in EDGE_MESSAGES]
        for sid, m in zip(ids, EDGE_MESSAGES):
            pipe.feed(sid, m)
        assert [pipe.finalize(sid) for sid in ids] == [
            serial.compute(m) for m in EDGE_MESSAGES
        ], method
        # A stream finalized with no data at all is the CRC of b"".
        sid = pipe.open()
        assert pipe.finalize(sid) == serial.compute(b"")


def test_dream_executed_crc_edges(cache):
    system = DreamSystem(cache=cache)
    for name in SPEC_NAMES:
        spec = get_crc(name)
        serial = BitwiseCRC(spec)
        for M in (8, 32):
            mapped = system.compile_crc(spec, M)
            for m in EDGE_MESSAGES:
                crc, _ = system.execute_crc(mapped, m)
                assert crc == serial.compute(m), (name, M, m)


def test_dream_executed_interleaved_mixed_lengths(cache):
    system = DreamSystem(cache=cache)
    spec = get_crc("CRC-32")
    serial = BitwiseCRC(spec)
    mapped = system.compile_crc(spec, 32)
    messages = list(EDGE_MESSAGES) + [b"x" * 64]
    crcs, _ = system.execute_crc_interleaved(mapped, messages)
    assert crcs == [serial.compute(m) for m in messages]


def test_dream_executed_scrambler_edges(cache):
    system = DreamSystem(cache=cache)
    mapped = system.compile_scrambler(IEEE80216E, 16)
    serial = AdditiveScrambler(IEEE80216E)
    for nbits in (0, 1, 15, 16, 17, 100):
        bits = [(i * 5 + 1) % 2 for i in range(nbits)]
        out, _ = system.execute_scrambler(mapped, bits)
        assert out == serial.scramble_bits(bits), nbits


def test_batch_scrambler_edges(cache):
    engine = BatchAdditiveScrambler(IEEE80216E, 16, cache=cache)
    serial = AdditiveScrambler(IEEE80216E)
    streams = [[], [1], [0, 1] * 7, [1] * 16, [0] * 17, [1, 0] * 50]
    got = engine.scramble_batch(streams)
    assert got == [serial.scramble_bits(s) for s in streams]
    assert engine.descramble_batch(got) == streams
    assert engine.scramble_batch([]) == []


def test_multiplicative_scrambler_edges():
    poly = GF2Polynomial.from_exponents([7, 6, 0])
    engine = BatchMultiplicativeScrambler(poly)
    streams = [[], [1], [0] * 6, [1] * 7, [1, 0, 1] * 5]
    got = engine.scramble_batch(streams)
    expected = [MultiplicativeScrambler(poly).scramble_bits(s) for s in streams]
    assert got == expected
    assert engine.descramble_batch(got) == streams
    assert engine.scramble_batch([]) == []
