"""Unit tests for repro.crc.spec."""

import pytest

from repro.crc import CRCSpec, ETHERNET_CRC32, MPEG2_CRC32
from repro.crc.catalog import get


class TestValidation:
    def test_basic_construction(self):
        spec = CRCSpec("T", 8, 0x07)
        assert spec.mask == 0xFF
        assert spec.top_bit == 0x80

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            CRCSpec("T", 0, 0)

    def test_rejects_wide_poly(self):
        with pytest.raises(ValueError):
            CRCSpec("T", 8, 0x100)

    def test_rejects_wide_init(self):
        with pytest.raises(ValueError):
            CRCSpec("T", 8, 0x07, init=0x1FF)

    def test_rejects_wide_xorout(self):
        with pytest.raises(ValueError):
            CRCSpec("T", 8, 0x07, xorout=0x100)

    def test_rejects_wide_check(self):
        with pytest.raises(ValueError):
            CRCSpec("T", 8, 0x07, check=0x100)

    def test_frozen(self):
        with pytest.raises(Exception):
            ETHERNET_CRC32.width = 16


class TestGenerator:
    def test_full_polynomial(self):
        assert ETHERNET_CRC32.generator().coeffs == (1 << 32) | 0x04C11DB7

    def test_generator_degree(self):
        assert ETHERNET_CRC32.generator().degree == 32

    def test_reflected_poly(self):
        assert ETHERNET_CRC32.reflected_poly() == 0xEDB88320

    def test_ethernet_and_mpeg2_share_generator(self):
        """The paper: 'the same defined for MPEG-2'."""
        assert ETHERNET_CRC32.generator() == MPEG2_CRC32.generator()


class TestBitPreparation:
    def test_reflected_message_bits(self):
        assert ETHERNET_CRC32.message_bits(b"\x80") == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_forward_message_bits(self):
        assert MPEG2_CRC32.message_bits(b"\x80") == [1, 0, 0, 0, 0, 0, 0, 0]


class TestFinalize:
    def test_finalize_unfinalize_roundtrip(self):
        for spec in (ETHERNET_CRC32, MPEG2_CRC32, get("CRC-16/X-25")):
            for reg in (0, 1, spec.mask, 0x5A5A5A5A & spec.mask):
                assert spec.unfinalize(spec.finalize(reg)) == reg

    def test_finalize_range_check(self):
        with pytest.raises(ValueError):
            ETHERNET_CRC32.finalize(1 << 32)

    def test_non_reflected_no_xorout_is_identity(self):
        spec = get("CRC-16/XMODEM")
        assert spec.finalize(0x1234) == 0x1234

    def test_xorout_applied(self):
        spec = get("CRC-16/GENIBUS")
        assert spec.finalize(0) == 0xFFFF


class TestResidue:
    def test_residue_is_message_independent(self):
        from repro.crc.bitwise import BitwiseCRC

        spec = get("CRC-16/X-25")
        engine = BitwiseCRC(spec)
        values = set()
        for message in (b"", b"a", b"hello world", bytes(range(50))):
            crc = engine.compute(message)
            codeword = message + crc.to_bytes(2, "little")
            values.add(engine.raw_register(codeword))
        assert len(values) == 1

    def test_residue_helper_matches_manual(self):
        from repro.crc.bitwise import BitwiseCRC

        spec = get("CRC-16/X-25")
        engine = BitwiseCRC(spec)
        crc = engine.compute(b"\x01\x02\x03")
        manual = engine.raw_register(b"\x01\x02\x03" + crc.to_bytes(2, "little"))
        assert spec.residue() == manual

    def test_residue_rejects_odd_widths(self):
        with pytest.raises(ValueError):
            get("CRC-15/CAN").residue()

    def test_x25_known_residue(self):
        # CRC-16/X-25 residue is the well-known 0xF0B8 constant — in the
        # reflected register domain; our raw register is its reflection.
        from repro.gf2.bits import reflect_bits

        assert reflect_bits(get("CRC-16/X-25").residue(), 16) == 0xF0B8
