"""Unit tests for the bench-trajectory regression gate (tools/bench_diff.py)."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from bench_diff import (  # noqa: E402
    DEFAULT_THRESHOLD,
    TRAJECTORY_SCHEMA,
    diff_snapshots,
    find_snapshots,
    format_diff,
    load_snapshot,
    main,
)


def _snapshot(pr, kernels):
    return {"schema": TRAJECTORY_SCHEMA, "pr": pr, "kernels": kernels}


def _gated(metrics, params=None):
    params = dict(params or {})
    params.setdefault("gate_speedup", 1.0)
    return {"params": params, "metrics": metrics}


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


class TestDiffSnapshots:
    def test_regression_beyond_threshold_flagged(self):
        old = _snapshot(1, {"k": _gated({"speedup": 10.0})})
        new = _snapshot(2, {"k": _gated({"speedup": 8.0})})  # -20%
        diff = diff_snapshots(old, new, threshold=0.10)
        assert [c["metric"] for c in diff["regressions"]] == ["speedup"]
        assert diff["regressions"][0]["change"] == pytest.approx(-0.2)

    def test_drop_within_threshold_passes(self):
        old = _snapshot(1, {"k": _gated({"speedup": 10.0})})
        new = _snapshot(2, {"k": _gated({"speedup": 9.5})})  # -5%
        diff = diff_snapshots(old, new, threshold=0.10)
        assert diff["regressions"] == []
        assert diff["comparisons"][0]["regressed"] is False

    def test_improvement_never_regresses(self):
        old = _snapshot(1, {"k": _gated({"speedup": 2.0, "prediction_accuracy": 0.5})})
        new = _snapshot(2, {"k": _gated({"speedup": 9.0, "prediction_accuracy": 0.9})})
        diff = diff_snapshots(old, new)
        assert diff["regressions"] == []
        assert len(diff["comparisons"]) == 2

    def test_ungated_kernel_skipped_with_reason(self):
        old = _snapshot(1, {"free": {"params": {}, "metrics": {"speedup": 10.0}}})
        new = _snapshot(2, {"free": {"params": {}, "metrics": {"speedup": 1.0}}})
        diff = diff_snapshots(old, new)
        assert diff["comparisons"] == []
        (skip,) = diff["skipped"]
        assert skip["kernel"] == "free" and "gate" in skip["reason"]

    def test_machine_dependent_metrics_skipped(self):
        old = _snapshot(1, {"k": _gated({"speedup": 2.0, "rate_mbps": 900.0})})
        new = _snapshot(2, {"k": _gated({"speedup": 2.0, "rate_mbps": 100.0})})
        diff = diff_snapshots(old, new)
        assert [c["metric"] for c in diff["comparisons"]] == ["speedup"]
        reasons = {s.get("metric"): s["reason"] for s in diff["skipped"]}
        assert "not a ratio" in reasons["rate_mbps"]

    def test_gate_floor_values_not_compared(self):
        # gate_min_speedup is the opt-in floor itself, not a measurement.
        old = _snapshot(1, {"k": _gated({"gate_min_speedup": 2.0, "speedup": 3.0})})
        new = _snapshot(2, {"k": _gated({"gate_min_speedup": 1.0, "speedup": 3.0})})
        diff = diff_snapshots(old, new)
        assert [c["metric"] for c in diff["comparisons"]] == ["speedup"]

    def test_kernel_on_one_side_only_skipped(self):
        old = _snapshot(1, {"gone": _gated({"speedup": 2.0})})
        new = _snapshot(2, {"fresh": _gated({"speedup": 2.0})})
        diff = diff_snapshots(old, new)
        sides = {s["kernel"]: s["side"] for s in diff["skipped"]}
        assert sides == {"gone": "old", "fresh": "new"}

    def test_non_positive_baseline_skipped(self):
        old = _snapshot(1, {"k": _gated({"speedup": 0.0})})
        new = _snapshot(2, {"k": _gated({"speedup": 5.0})})
        diff = diff_snapshots(old, new)
        assert diff["comparisons"] == []
        assert "non-positive baseline" in diff["skipped"][0]["reason"]

    def test_format_diff_mentions_every_skip(self):
        old = _snapshot(1, {"k": _gated({"speedup": 4.0, "rate_mbps": 1.0})})
        new = _snapshot(2, {"k": _gated({"speedup": 2.0, "rate_mbps": 1.0})})
        text = format_diff(diff_snapshots(old, new))
        assert "REGRESSED" in text and "rate_mbps" in text


class TestSnapshotDiscovery:
    def test_find_snapshots_numeric_order(self, tmp_path):
        for n in (10, 2, 7):
            _write(tmp_path, f"BENCH_{n}.json", _snapshot(n, {}))
        _write(tmp_path, "not_a_snapshot.json", {})
        names = [p.name for p in find_snapshots(tmp_path)]
        assert names == ["BENCH_2.json", "BENCH_7.json", "BENCH_10.json"]

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = _write(tmp_path, "BENCH_1.json", {"schema": "other/1"})
        with pytest.raises(ValueError, match="unsupported trajectory schema"):
            load_snapshot(path)


class TestMain:
    def test_exit_zero_when_clean(self, tmp_path, capsys):
        _write(tmp_path, "BENCH_1.json", _snapshot(1, {"k": _gated({"speedup": 2.0})}))
        _write(tmp_path, "BENCH_2.json", _snapshot(2, {"k": _gated({"speedup": 2.1})}))
        assert main(["--root", str(tmp_path)]) == 0
        assert "BENCH_1.json -> BENCH_2.json" in capsys.readouterr().out

    def test_exit_one_on_regression_and_writes_artifact(self, tmp_path, capsys):
        _write(tmp_path, "BENCH_1.json", _snapshot(1, {"k": _gated({"speedup": 4.0})}))
        _write(tmp_path, "BENCH_2.json", _snapshot(2, {"k": _gated({"speedup": 1.0})}))
        out = tmp_path / "diff.json"
        assert main(["--root", str(tmp_path), "--output", str(out)]) == 1
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-bench-diff/1"
        assert len(doc["regressions"]) == 1

    def test_fewer_than_two_snapshots_is_not_a_failure(self, tmp_path, capsys):
        _write(tmp_path, "BENCH_1.json", _snapshot(1, {}))
        assert main(["--root", str(tmp_path)]) == 0
        assert "nothing to gate" in capsys.readouterr().out

    def test_explicit_pair(self, tmp_path):
        a = _write(tmp_path, "BENCH_3.json", _snapshot(3, {"k": _gated({"speedup": 2.0})}))
        b = _write(tmp_path, "BENCH_4.json", _snapshot(4, {"k": _gated({"speedup": 1.0})}))
        assert main([str(a), str(b)]) == 1
        assert main([str(b), str(a)]) == 0  # reversed: an improvement

    def test_wrong_arity_is_usage_error(self, tmp_path, capsys):
        assert main(["one.json"]) == 2
        assert "exactly two" in capsys.readouterr().err

    def test_unreadable_snapshot_is_load_error(self, tmp_path, capsys):
        bad = _write(tmp_path, "BENCH_1.json", {"schema": "nope"})
        ok = _write(tmp_path, "BENCH_2.json", _snapshot(2, {}))
        assert main([str(bad), str(ok)]) == 2
        assert "cannot load snapshots" in capsys.readouterr().err

    def test_custom_threshold(self, tmp_path):
        a = _write(tmp_path, "BENCH_1.json", _snapshot(1, {"k": _gated({"speedup": 10.0})}))
        b = _write(tmp_path, "BENCH_2.json", _snapshot(2, {"k": _gated({"speedup": 8.5})}))
        assert main([str(a), str(b)]) == 1  # -15% vs default 10%
        assert main([str(a), str(b), "--threshold", "0.2"]) == 0

    def test_default_threshold_constant(self):
        assert DEFAULT_THRESHOLD == pytest.approx(0.10)

    def test_committed_trajectory_passes_gate(self, capsys):
        """The repo's own committed BENCH_<n>.json history must be clean."""
        root = Path(__file__).resolve().parent.parent
        if len(find_snapshots(root)) < 2:
            pytest.skip("fewer than two committed trajectory snapshots")
        assert main(["--root", str(root)]) == 0
