"""The differential fuzz harness: determinism, shrinking, reporting.

The battery itself is exercised in CI's fuzz-smoke job; here we pin the
harness mechanics — a fixed seed replays the identical case sequence, an
injected fault is caught and shrunk to a minimal reproducer, and reports
survive a JSON round-trip.
"""

import pytest

from repro.engine import CompileCache
from repro.errors import ValidationError
from repro.telemetry import default_registry
from repro.verify import (
    CaseGenerator,
    Discrepancy,
    FuzzCase,
    FuzzReport,
    Mismatch,
    Oracle,
    default_oracles,
    run_fuzz,
    shrink,
)
from repro.verify.cases import KIND_CRC, KINDS


class TestCaseGeneration:
    def test_same_seed_same_cases(self):
        a = CaseGenerator(seed=42)
        b = CaseGenerator(seed=42)
        assert [a.draw() for _ in range(50)] == [b.draw() for _ in range(50)]

    def test_different_seeds_diverge(self):
        a = [CaseGenerator(seed=1).draw() for _ in range(20)]
        b = [CaseGenerator(seed=2).draw() for _ in range(20)]
        assert a != b

    def test_all_kinds_drawn(self):
        gen = CaseGenerator(seed=0)
        kinds = {gen.draw().kind for _ in range(100)}
        assert kinds == set(KINDS)

    def test_case_dict_round_trip(self):
        gen = CaseGenerator(seed=7)
        for _ in range(30):
            case = gen.draw()
            assert FuzzCase.from_dict(case.to_dict()) == case

    def test_malformed_case_record(self):
        with pytest.raises(ValidationError, match="malformed"):
            FuzzCase.from_dict({"kind": "crc"})  # missing required fields

    def test_chunk_plans_cover_payloads(self):
        gen = CaseGenerator(seed=3)
        for _ in range(50):
            case = gen.draw()
            if not case.chunks:
                continue
            for i, m in enumerate(case.messages):
                assert sum(case.chunk_plan(i)) == len(m) // 2


class _FaultInjector(Oracle):
    """Test-only oracle: 'fails' whenever the case carries >= `threshold`
    total payload bytes, so the minimal reproducer is known a priori."""

    name = "test:fault-injector"
    kinds = KINDS

    def __init__(self, threshold=8):
        self.threshold = threshold
        self.calls = 0

    def check(self, case, cache):
        self.calls += 1
        total = sum(len(m) // 2 for m in case.messages)
        if total >= self.threshold:
            return Discrepancy(
                detail=f"{total} bytes", expected="<small>", got=f"{total}"
            )
        return None


class TestShrinking:
    def test_shrinker_converges_to_threshold(self):
        oracle = _FaultInjector(threshold=8)
        cache = CompileCache()
        gen = CaseGenerator(seed=0)
        case = gen.draw()
        while oracle.check(case, cache) is None:
            case = gen.draw()
        minimal, probes = shrink(
            case, lambda c: oracle.check(c, cache) is not None
        )
        total = sum(len(m) // 2 for m in minimal.messages)
        # Locally minimal: exactly at the failure threshold, single stream,
        # no leftover schedule complexity.
        assert total == 8
        assert minimal.batch == 1
        assert minimal.seeds == ()
        assert minimal.aborts == ()
        assert probes > 0

    def test_probe_budget_bounds_work(self):
        oracle = _FaultInjector(threshold=1)
        cache = CompileCache()
        case = CaseGenerator(seed=5).draw()
        _, probes = shrink(
            case, lambda c: oracle.check(c, cache) is not None, max_probes=3
        )
        assert probes <= 3

    def test_crashing_candidate_does_not_hijack(self):
        case = CaseGenerator(seed=1).draw()

        def predicate(c):
            if c is not case and c.batch < case.batch:
                raise RuntimeError("engine blew up on the variant")
            return c is case

        minimal, _ = shrink(case, predicate, max_probes=50)
        assert minimal == case  # crashes treated as not-failing


class TestRunFuzz:
    def test_clean_run_is_deterministic(self):
        a = run_fuzz(seed=11, max_cases=30)
        b = run_fuzz(seed=11, max_cases=30)
        assert a.ok and b.ok
        assert a.cases == b.cases == 30
        assert a.pair_cases == b.pair_cases
        assert a.checks == b.checks

    def test_exercises_at_least_four_pairs(self):
        report = run_fuzz(seed=0, max_cases=40)
        assert report.ok
        assert report.pairs_exercised >= 4

    def test_injected_fault_is_caught_and_shrunk(self):
        oracle = _FaultInjector(threshold=8)
        report = run_fuzz(
            seed=0, max_cases=100, oracles=[oracle], max_failures=1
        )
        assert not report.ok
        assert len(report.mismatches) == 1
        m = report.mismatches[0]
        assert m.oracle == "test:fault-injector"
        shrunk_total = sum(len(s) // 2 for s in m.shrunk.messages)
        case_total = sum(len(s) // 2 for s in m.case.messages)
        assert shrunk_total == 8 <= case_total
        assert m.probes > 0

    def test_max_failures_stops_early(self):
        oracle = _FaultInjector(threshold=0)  # every case fails
        report = run_fuzz(
            seed=0, max_cases=100, oracles=[oracle],
            max_failures=2, shrink_failures=False,
        )
        assert len(report.mismatches) == 2
        assert report.cases < 100

    def test_telemetry_counters_advance(self):
        registry = default_registry()
        pairs = [o.name for o in default_oracles()]

        def total():
            family = registry.get("verify_fuzz_cases_total")
            if family is None:
                return 0.0
            return sum(family.labels(pair=p).value for p in pairs)

        before = total()
        report = run_fuzz(seed=0, max_cases=10)
        assert total() - before == report.checks

    def test_default_battery_names_are_unique(self):
        names = [o.name for o in default_oracles()]
        assert len(names) == len(set(names))
        assert len(names) == 12
        assert "parallel:workers1-vs-workersN" in names
        assert "planner:auto-vs-serial" in names
        assert "galois:fibonacci-vs-galois" in names
        assert "word:wordlfsr-vs-reference" in names


class TestReports:
    def _failing_report(self):
        oracle = _FaultInjector(threshold=4)
        return run_fuzz(
            seed=9, max_cases=50, oracles=[oracle], max_failures=1
        )

    def test_json_round_trip(self):
        report = self._failing_report()
        assert not report.ok
        back = FuzzReport.from_json(report.to_json())
        assert back.to_dict() == report.to_dict()
        assert back.mismatches[0].shrunk == report.mismatches[0].shrunk

    def test_save_and_load(self, tmp_path):
        report = run_fuzz(seed=3, max_cases=5)
        path = tmp_path / "report.json"
        report.save(str(path))
        assert FuzzReport.load(str(path)).to_dict() == report.to_dict()

    def test_bad_json_rejected(self):
        with pytest.raises(ValidationError, match="not valid JSON"):
            FuzzReport.from_json("{nope")
        with pytest.raises(ValidationError, match="version"):
            FuzzReport.from_json('{"version": 99, "seed": 0}')
        with pytest.raises(ValidationError, match="malformed"):
            Mismatch.from_dict({"oracle": "x"})

    def test_summary_lines_name_failures(self):
        report = self._failing_report()
        text = "\n".join(report.summary_lines())
        assert "MISMATCH" in text
        assert "test:fault-injector" in text
        assert report.repro_command() in text

    def test_clean_summary(self):
        report = run_fuzz(seed=2, max_cases=5)
        assert "OK" in "\n".join(report.summary_lines())
