"""Contract of the sharded execution layer and the persistent disk cache.

Three properties matter and each gets direct coverage:

* **Invisibility** — any shard plan (batch-dimension, time-axis, or
  pipeline assignment) reproduces the serial result bit-exactly,
  including lengths that do not divide evenly and ``workers=1``
  degenerating to the serial path object-for-object.
* **Containment** — a worker crash surfaces as
  :class:`~repro.errors.StreamError` at the call site, never a hang; a
  corrupt disk-cache entry degrades to a recompile with the corruption
  counted, never a wrong artifact.
* **Persistence** — compile artifacts round-trip through the
  content-addressed disk cache and a second cache warms from it without
  invoking the builder.
"""

import pickle
import threading

import pytest

from repro.crc import BitwiseCRC, get as get_crc
from repro.engine import (
    CompileCache,
    CRCPipeline,
    DiskCompileCache,
    ParallelBatchAdditiveScrambler,
    ParallelBatchCRC,
    BatchCRC,
    BatchAdditiveScrambler,
    ShardedCRCPipeline,
    ShardScheduler,
    WorkerPool,
    plan_shards,
    resolve_workers,
)
from repro.engine.diskcache import cache_key_string
from repro.errors import StreamError, ValidationError
from repro.scrambler.specs import get as get_scrambler

SPEC = get_crc("CRC-32")
SPEC16 = get_crc("CRC-16/ARC")


class TestWorkerResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers(None) == 1

    def test_auto_maps_to_cpu_count(self, monkeypatch):
        import os

        assert resolve_workers("auto") == max(1, os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        assert resolve_workers(None) >= 1

    @pytest.mark.parametrize("bad", ["three", "-2", -1, 2.5, True])
    def test_invalid_counts_rejected(self, bad):
        with pytest.raises(ValidationError):
            resolve_workers(bad)


class TestShardPlanning:
    def test_balanced_contiguous_cover(self):
        assert plan_shards(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert plan_shards(12, 4) == [(0, 3), (3, 6), (6, 9), (9, 12)]

    def test_more_shards_than_items_drops_empties(self):
        assert plan_shards(2, 5) == [(0, 1), (1, 2)]
        assert plan_shards(0, 4) == []

    def test_every_plan_partitions_exactly(self):
        for n in range(0, 40):
            for w in range(1, 9):
                bounds = plan_shards(n, w)
                covered = [i for a, b in bounds for i in range(a, b)]
                assert covered == list(range(n))
                assert all(b > a for a, b in bounds)

    def test_invalid_shard_count(self):
        with pytest.raises(ValidationError):
            plan_shards(4, 0)


@pytest.fixture(scope="module")
def corpus():
    import random

    rng = random.Random(0xD5B)
    return [
        bytes(rng.randrange(256) for _ in range(rng.randrange(0, 97)))
        for _ in range(41)
    ]


class TestParallelBatchCRC:
    def test_workers1_is_serial_object_for_object(self, corpus):
        engine = ParallelBatchCRC(SPEC, 16, workers=1)
        # No pool exists, and the batch path is literally the serial engine.
        assert engine.pool is None
        assert engine.workers == 1
        serial = engine.serial_engine
        assert isinstance(serial, BatchCRC)
        assert engine.compute_batch(corpus) == serial.compute_batch(corpus)

    def test_thread_sharding_matches_serial(self, corpus):
        ref = BitwiseCRC(SPEC)
        expected = [ref.compute(m) for m in corpus]
        with ParallelBatchCRC(SPEC, 16, workers=3, min_shard_bits=1) as engine:
            assert engine.mode == "thread"
            assert engine.compute_batch(corpus) == expected
            bit_streams = [SPEC.message_bits(m) for m in corpus]
            assert engine.compute_bits_batch(bit_streams) == expected

    def test_process_sharding_matches_serial(self, corpus):
        sample = corpus[:9]
        expected = [BitwiseCRC(SPEC).compute(m) for m in sample]
        with ParallelBatchCRC(
            SPEC, 16, workers=2, mode="process", min_shard_bits=1
        ) as engine:
            assert engine.mode == "process"
            assert engine.compute_batch(sample) == expected

    @pytest.mark.parametrize("n_bits", [1, 17, 64, 127, 333, 1024, 4097])
    def test_time_axis_sharding_is_exact(self, n_bits):
        """Single-message sharding with x^k recombination, at lengths that
        are prime, power-of-two, and everything between — none a multiple
        of the worker count."""
        import random

        rng = random.Random(n_bits)
        bits = [rng.randrange(2) for _ in range(n_bits)]
        want = BatchCRC(SPEC, 16).compute_bits_batch([bits])[0]
        with ParallelBatchCRC(SPEC, 16, workers=3, min_shard_bits=1) as engine:
            assert engine.compute_sharded_bits(bits) == want

    def test_compute_matches_bitwise_reference(self):
        data = bytes(range(256)) * 9
        with ParallelBatchCRC(SPEC, 32, workers=4, min_shard_bits=1) as engine:
            assert engine.compute(data) == BitwiseCRC(SPEC).compute(data)

    def test_small_batches_bypass_the_pool(self, corpus):
        with ParallelBatchCRC(SPEC, 16, workers=3) as engine:
            # Default min_shard_bits keeps tiny work serial: the executor
            # is never started.
            engine.compute_batch(corpus[:2])
            assert engine.pool is not None and not engine.pool.started

    def test_worker_crash_surfaces_as_stream_error(
        self, corpus, monkeypatch, crashing_worker
    ):
        with ParallelBatchCRC(SPEC, 16, workers=2, min_shard_bits=1) as engine:
            monkeypatch.setattr(
                engine.serial_engine, "compute_batch", crashing_worker
            )
            with pytest.raises(StreamError, match="kaboom"):
                engine.compute_batch(corpus)


class TestParallelScrambler:
    def test_sharded_scramble_matches_serial_and_inverts(self):
        import random

        rng = random.Random(3)
        spec = get_scrambler("DVB")
        streams = [
            [rng.randrange(2) for _ in range(rng.randrange(1, 150))]
            for _ in range(17)
        ]
        seeds = [rng.randrange(1, 1 << spec.degree) for _ in streams]
        serial = BatchAdditiveScrambler(spec, 8)
        with ParallelBatchAdditiveScrambler(
            spec, 8, workers=3, min_shard_bits=1
        ) as engine:
            got = engine.scramble_batch(streams, seeds=seeds)
            assert got == serial.scramble_batch(streams, seeds=seeds)
            assert engine.descramble_batch(got, seeds=seeds) == streams

    def test_workers1_has_no_pool(self):
        engine = ParallelBatchAdditiveScrambler(get_scrambler("DVB"), 8, workers=1)
        assert engine.pool is None


class TestShardScheduler:
    def test_assign_prefers_least_pending(self):
        sched = ShardScheduler(3)
        assert sched.assign([100, 5, 50]) == 1

    def test_assign_breaks_ties_round_robin(self):
        sched = ShardScheduler(3)
        picks = [sched.assign([0, 0, 0]) for _ in range(6)]
        assert sorted(set(picks)) == [0, 1, 2]  # all shards get arrivals

    def test_plan_steals_moves_streams_off_laggard(self):
        sched = ShardScheduler(2, steal_ratio=2.0)
        stream_bits = [{"a": 600, "b": 500, "c": 400}, {"d": 100}]
        moves = sched.plan_steals([1500, 100], stream_bits, min_gap=64)
        assert moves  # the laggard sheds work
        for sid, src, dst in moves:
            assert (src, dst) == (0, 1)
        # Post-plan imbalance is below the steal threshold.
        p0 = sum(stream_bits[0].values())
        p1 = sum(stream_bits[1].values())
        assert p0 < 2.0 * max(p1, 1) or p0 - p1 < 64

    def test_balanced_load_plans_nothing(self):
        sched = ShardScheduler(2)
        moves = sched.plan_steals(
            [500, 480], [{"a": 500}, {"b": 480}], min_gap=64
        )
        assert moves == []

    def test_validation(self):
        with pytest.raises(ValidationError):
            ShardScheduler(0)
        with pytest.raises(ValidationError):
            ShardScheduler(2, steal_ratio=0.5)
        with pytest.raises(ValidationError):
            ShardScheduler(2).assign([1, 2, 3])


class TestShardedPipeline:
    def test_matches_serial_pipeline_under_chunked_delivery(self):
        import random

        rng = random.Random(11)
        cache = CompileCache()
        sharded = ShardedCRCPipeline(SPEC16, 8, workers=3, cache=cache)
        serial = CRCPipeline(SPEC16, 8, cache=cache)
        ids = [f"s{i}" for i in range(10)]
        for sid in ids:
            sharded.open(sid)
            serial.open(sid)
        for sid in ids:
            bits = [rng.randrange(2) for _ in range(rng.randrange(0, 400))]
            i = 0
            while i < len(bits):
                n = rng.randrange(1, 50)
                sharded.feed_bits(sid, bits[i : i + n], pump=(rng.random() < 0.4))
                serial.feed_bits(sid, bits[i : i + n], pump=False)
                i += n
        sharded.pump()
        aborted = set(ids[::4])
        for sid in ids:
            if sid in aborted:
                sharded.abort(sid)
                serial.abort(sid)
            else:
                assert sharded.finalize(sid) == serial.finalize(sid)
        assert sharded.stream_count == 0
        sharded.close()

    def test_rebalance_steals_from_lagging_shard(self, lagged_pipeline):
        # The fixture hand-builds the imbalance (no sleeps, no pump-order
        # races): streams a and b loaded on one shard, c empty on the
        # other, steal_ratio=1.0 so any worthwhile gap triggers a steal.
        pipe, streams = lagged_pipeline(heavy_bits=2000, light_bits=1564)
        before = pipe.shard_pending()
        assert min(before) == 0  # all load on one shard
        moved = pipe.rebalance()
        assert moved >= 1
        after = pipe.shard_pending()
        assert max(after) < max(before)
        # Results stay exact after migration.
        pipe.pump()
        serial = BatchCRC(SPEC16, 8)
        assert pipe.finalize(streams["a"]) == serial.compute_bits_batch(
            [[1] * 2000]
        )[0]
        assert pipe.finalize(streams["b"]) == serial.compute_bits_batch(
            [[0] * 64 + [1] * 1500]
        )[0]
        pipe.abort(streams["c"])

    def test_rebalance_leaves_balanced_load_alone(self, lagged_pipeline):
        # A steal threshold beyond the total pending load turns the same
        # imbalance into a no-op: the scheduler only steals past
        # steal_ratio x the lightest shard (floored at 1 bit), so nothing
        # moves and nothing is disturbed mid-stream.
        pipe, streams = lagged_pipeline(steal_ratio=1e6)
        assert pipe.rebalance() == 0
        pipe.pump()
        serial = BatchCRC(SPEC16, 8)
        assert pipe.finalize(streams["a"]) == serial.compute_bits_batch(
            [[1] * 2000]
        )[0]
        pipe.abort(streams["b"])
        pipe.abort(streams["c"])

    def test_finalize_after_migration_is_exact(self):
        cache = CompileCache()
        pipe = ShardedCRCPipeline(SPEC16, 8, workers=2, cache=cache)
        sid = pipe.open("x")
        payload = bytes(range(200))
        pipe.feed(sid, payload, pump=False)
        # Migrate mid-stream by hand, then finish.
        src = pipe._home[sid]
        dst = 1 - src
        pipe.shards[src].migrate(sid, pipe.shards[dst])
        pipe._home[sid] = dst
        pipe.feed(sid, payload, pump=True)
        assert pipe.finalize(sid) == BitwiseCRC(SPEC16).compute(payload * 2)
        pipe.close()

    def test_unknown_stream_raises_stream_error(self):
        pipe = ShardedCRCPipeline(SPEC16, 8, workers=2)
        with pytest.raises(StreamError):
            pipe.finalize("ghost")
        pipe.open("dup")
        with pytest.raises(StreamError):
            pipe.open("dup")
        pipe.abort("dup")
        pipe.close()

    def test_scheduler_shard_count_must_match(self):
        with pytest.raises(ValidationError):
            ShardedCRCPipeline(SPEC16, 8, workers=2, scheduler=ShardScheduler(3))


class TestWorkerPool:
    def test_crash_is_stream_error_not_hang(self, crashing_worker):
        with WorkerPool(2, mode="thread") as pool:
            with pytest.raises(StreamError, match="kaboom"):
                pool.run(crashing_worker, [(1,), (2,), (3,)])

    def test_library_errors_pass_through_untyped(self):
        def raise_validation(_):
            raise ValidationError("bad shard input")

        with WorkerPool(2, mode="thread") as pool:
            with pytest.raises(ValidationError, match="bad shard input"):
                pool.run(raise_validation, [(1,)])

    def test_results_keep_shard_order(self):
        with WorkerPool(3, mode="thread") as pool:
            out = pool.run(lambda x: x * x, [(i,) for i in range(10)])
        assert out == [i * i for i in range(10)]

    def test_close_is_idempotent(self):
        pool = WorkerPool(2, mode="thread")
        pool.run(len, [("ab",)])
        pool.close()
        pool.close()
        assert not pool.started

    def test_validation(self):
        with pytest.raises(ValidationError):
            WorkerPool(0)
        with pytest.raises(ValidationError):
            WorkerPool(2, mode="fiber")


class TestDiskCompileCache:
    def test_round_trip(self, tmp_path):
        disk = DiskCompileCache(tmp_path)
        key = ("lookahead", SPEC, 32)
        assert disk.load(key) == (False, None)
        path = disk.store(key, {"payload": list(range(50))})
        assert path is not None and path.exists()
        found, value = disk.load(key)
        assert found and value == {"payload": list(range(50))}
        assert disk.stats.snapshot()["hits"] == 1
        assert len(disk) == 1 and disk.size_bytes() > 0

    def test_corruption_degrades_to_counted_miss(self, tmp_path):
        disk = DiskCompileCache(tmp_path)
        key = ("lookahead", SPEC, 32)
        path = disk.store(key, "artifact")
        path.write_bytes(b"\x80garbage-not-a-pickle")
        found, value = disk.load(key)
        assert not found and value is None
        assert disk.stats.corrupt == 1
        assert not path.exists()  # bad entry removed for rewrite

    def test_truncated_entry_is_corrupt(self, tmp_path):
        disk = DiskCompileCache(tmp_path)
        key = ("derby", SPEC, 64)
        path = disk.store(key, bytes(4096))
        path.write_bytes(path.read_bytes()[:100])
        assert disk.load(key) == (False, None)
        assert disk.stats.corrupt == 1

    def test_key_mismatch_inside_envelope_is_corrupt(self, tmp_path):
        """A renamed/copied entry file must not satisfy a different key."""
        disk = DiskCompileCache(tmp_path)
        key_a = ("lookahead", SPEC, 8)
        key_b = ("lookahead", SPEC, 16)
        path_a = disk.store(key_a, "A")
        disk.path_for(key_b).write_bytes(path_a.read_bytes())
        assert disk.load(key_b) == (False, None)
        assert disk.stats.corrupt == 1

    def test_version_skew_isolates_entries(self, tmp_path):
        old = DiskCompileCache(tmp_path, version=1)
        new = DiskCompileCache(tmp_path, version=2)
        key = ("lookahead", SPEC, 32)
        old.store(key, "v1-artifact")
        assert new.load(key) == (False, None)  # different content address
        assert old.load(key) == (True, "v1-artifact")

    def test_key_string_is_deterministic(self):
        key = ("lookahead", SPEC, 32)
        assert cache_key_string(key) == cache_key_string(("lookahead", SPEC, 32))
        assert cache_key_string(key, version=1) != cache_key_string(key, version=2)

    def test_concurrent_stores_stay_atomic(self, tmp_path):
        disk = DiskCompileCache(tmp_path)
        key = ("statespace", SPEC)
        value = bytes(100_000)
        threads = [
            threading.Thread(target=lambda: disk.store(key, value))
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert disk.load(key) == (True, value)
        assert len(disk) == 1  # one entry, no stray temp leftovers visible
        assert disk.clear() == 1


class TestDiskWarmedCompileCache:
    def test_second_cache_warms_from_disk_without_builder(self, tmp_path):
        disk = DiskCompileCache(tmp_path)
        cold = CompileCache(disk=disk)
        artifact = cold.lookahead(SPEC, 32)
        stores = disk.stats.stores
        assert stores > 0

        warm = CompileCache(disk=DiskCompileCache(tmp_path))
        loaded = warm.lookahead(SPEC, 32)
        assert warm.disk.stats.hits > 0
        # Same mathematical content arrives without recompiling.
        assert loaded.A_M.to_array().tolist() == artifact.A_M.to_array().tolist()

    def test_corrupt_disk_entry_falls_back_to_recompile(self, tmp_path):
        disk = DiskCompileCache(tmp_path)
        CompileCache(disk=disk).lookahead(SPEC, 16)
        # Garble every entry on disk.
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"not a pickle at all")
        fresh_disk = DiskCompileCache(tmp_path)
        fresh = CompileCache(disk=fresh_disk)
        rebuilt = fresh.lookahead(SPEC, 16)  # must not raise
        assert rebuilt.A_M.to_array().shape == (SPEC.width, SPEC.width)
        assert fresh_disk.stats.corrupt >= 1  # warning counter fired

    def test_engine_end_to_end_with_disk_cache(self, tmp_path, corpus):
        expected = [BitwiseCRC(SPEC).compute(m) for m in corpus[:10]]
        cache = CompileCache(disk=DiskCompileCache(tmp_path))
        with ParallelBatchCRC(
            SPEC, 32, workers=2, cache=cache, min_shard_bits=1
        ) as engine:
            assert engine.compute_batch(corpus[:10]) == expected
        assert len(cache.disk) > 0


class TestLifecycleClose:
    """Satellite regression: close is idempotent and safe with work in flight.

    These are the drain-path invariants ``repro.serve`` depends on: a
    double close (or a close racing a dispatch) must raise nothing and
    never hang, and a pool closed mid-dispatch must surface a contained
    :class:`StreamError` at the call site rather than wedging.
    """

    def test_worker_pool_double_close_raises_nothing(self):
        pool = WorkerPool(2, mode="thread")
        pool.run(len, [("warm",)])
        pool.close()
        pool.close()
        pool.close()
        assert not pool.started

    def test_worker_pool_concurrent_closes_are_safe(self):
        pool = WorkerPool(4, mode="thread")
        pool.run(len, [("warm",)] * 4)
        errors = []

        def closer():
            try:
                pool.close()
            except BaseException as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        assert errors == []
        assert not pool.started

    def test_close_during_dispatch_is_contained_stream_error(self):
        pool = WorkerPool(2, mode="thread")
        release = threading.Event()
        entered = threading.Event()

        def slow_shard(tag):
            entered.set()
            release.wait(timeout=30)
            return tag

        result = {}

        def runner():
            try:
                result["out"] = pool.run(slow_shard, [(i,) for i in range(64)])
            except StreamError as exc:
                result["error"] = exc

        thread = threading.Thread(target=runner)
        thread.start()
        entered.wait(timeout=30)
        closer = threading.Thread(target=pool.close)
        closer.start()
        release.set()
        thread.join(timeout=30)
        closer.join(timeout=30)
        assert not thread.is_alive() and not closer.is_alive()  # never hangs
        # Either the dispatch won the race and completed, or the close
        # did and the submit failure surfaced as a contained StreamError.
        if "error" in result:
            assert "closed during dispatch" in str(result["error"])
        else:
            assert result["out"] == list(range(64))

    def test_pool_restarts_lazily_after_close(self):
        pool = WorkerPool(2, mode="thread")
        assert pool.run(len, [("ab",), ("cdef",)]) == [2, 4]
        pool.close()
        assert pool.run(len, [("xyz",)]) == [3]
        pool.close()

    def test_sharded_pipeline_double_close(self):
        pipe = ShardedCRCPipeline(SPEC, 32, workers=2)
        pipe.open("s")
        pipe.feed("s", b"held open")
        pipe.close()
        pipe.close()
        assert pipe.closed

    def test_close_during_feed_storm_stays_bit_exact(self):
        """Drain scenario: close() lands while feeds are in flight; every
        stream must still finalize to the serial oracle's digest."""
        messages = {f"m{i}": bytes([i]) * (29 * i + 3) for i in range(8)}
        pipe = ShardedCRCPipeline(SPEC, 32, workers=2)
        for sid in messages:
            pipe.open(sid)
        barrier = threading.Barrier(3)

        def feeder(items):
            barrier.wait(timeout=30)
            for sid, payload in items:
                for start in range(0, len(payload), 17):
                    pipe.feed(sid, payload[start:start + 17])

        items = sorted(messages.items())
        feeders = [
            threading.Thread(target=feeder, args=(items[:4],)),
            threading.Thread(target=feeder, args=(items[4:],)),
        ]
        for t in feeders:
            t.start()
        barrier.wait(timeout=30)
        pipe.close()  # races the feeds; must raise nothing, never hang
        for t in feeders:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in feeders)
        assert pipe.closed
        oracle = BitwiseCRC(SPEC)
        for sid, payload in messages.items():
            assert pipe.finalize(sid) == oracle.compute(payload)

    def test_streams_survive_close_and_pump_serially(self):
        pipe = ShardedCRCPipeline(SPEC, 32, workers=2)
        pipe.open("keep")
        pipe.feed("keep", b"before close ")
        pipe.close()
        pipe.feed("keep", b"after close")
        expected = BitwiseCRC(SPEC).compute(b"before close after close")
        assert pipe.finalize("keep") == expected


class TestDiskCacheFullDisk:
    """Satellite regression: a full disk must raise, not silently skip."""

    def _store_with_failing_replace(self, tmp_path, monkeypatch, error):
        import os as os_module

        disk = DiskCompileCache(tmp_path)

        def failing_replace(src, dst):
            raise error

        monkeypatch.setattr(os_module, "replace", failing_replace)
        return disk

    def test_enospc_propagates_from_store(self, tmp_path, monkeypatch):
        import errno

        disk = self._store_with_failing_replace(
            tmp_path, monkeypatch,
            OSError(errno.ENOSPC, "No space left on device"),
        )
        with pytest.raises(OSError) as info:
            disk.store(("kind", "key"), {"value": 1})
        assert info.value.errno == errno.ENOSPC
        assert disk.stats.errors == 1
        # The failed temp file was cleaned up, not leaked.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_read_only_filesystem_propagates(self, tmp_path, monkeypatch):
        import errno

        disk = self._store_with_failing_replace(
            tmp_path, monkeypatch,
            OSError(errno.EROFS, "Read-only file system"),
        )
        with pytest.raises(OSError):
            disk.store(("kind", "key"), {"value": 1})

    def test_transient_oserror_stays_soft(self, tmp_path, monkeypatch):
        import errno

        disk = self._store_with_failing_replace(
            tmp_path, monkeypatch,
            OSError(errno.EACCES, "Permission denied"),
        )
        assert disk.store(("kind", "key"), {"value": 1}) is None
        assert disk.stats.errors == 1

    def test_unpicklable_value_stays_soft(self, tmp_path):
        disk = DiskCompileCache(tmp_path)
        assert disk.store(("kind", "key"), lambda: None) is None
        assert disk.stats.errors == 1


class TestMigrateConcurrency:
    """Satellite coverage: migrate racing feeds, and gauge reconciliation."""

    def test_migrate_racing_concurrent_feeds_stays_bit_exact(self):
        """Feeder threads hammer streams while another thread forces
        rebalance/migration rounds; every digest must match the serial
        oracle (the pipeline lock makes the interleaving invisible)."""
        messages = {f"s{i}": bytes([40 + i]) * (211 * (i + 1)) for i in range(6)}
        pipe = ShardedCRCPipeline(SPEC, 32, workers=2)
        for sid in messages:
            pipe.open(sid)
        stop = threading.Event()

        def migrator():
            while not stop.is_set():
                pipe.rebalance()
                pipe.pump()

        def feeder(items):
            for sid, payload in items:
                for start in range(0, len(payload), 23):
                    pipe.feed(sid, payload[start:start + 23], pump=False)

        items = sorted(messages.items())
        threads = [
            threading.Thread(target=migrator),
            threading.Thread(target=feeder, args=(items[:3],)),
            threading.Thread(target=feeder, args=(items[3:],)),
        ]
        for t in threads[1:]:
            t.start()
        threads[0].start()
        for t in threads[1:]:
            t.join(timeout=60)
        stop.set()
        threads[0].join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        oracle = BitwiseCRC(SPEC)
        for sid, payload in messages.items():
            assert pipe.finalize(sid) == oracle.compute(payload)
        pipe.close()

    def test_gauges_reconcile_when_migrated_stream_closes_on_target(
        self, lagged_pipeline
    ):
        """A stream that opens on one shard, migrates, and finalizes on
        the target must leave the aggregate stream/pending gauges at the
        values it found them — no double-decrement, no leak."""
        from repro.telemetry import MetricsRegistry, set_default_registry

        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        try:
            pipe, streams = lagged_pipeline(heavy_bits=2048, light_bits=64)
            moved = pipe.rebalance()
            assert moved >= 1  # the laggard's stream migrated
            for sid in (streams["a"], streams["b"], streams["c"]):
                pipe.finalize(sid)
            snapshot = registry.snapshot()

            def series_total(name):
                family = snapshot.get(name)
                if family is None:
                    return 0
                return sum(s["value"] for s in family["samples"])

            assert series_total("engine_pipeline_streams") == 0
            assert series_total("engine_pipeline_pending_bits") == 0
            pipe.close()
        finally:
            set_default_registry(previous)
