"""Unit tests for repro.lfsr.correlation (PN-sequence statistics)."""

import numpy as np
import pytest

from repro.gf2 import GF2Polynomial
from repro.lfsr import GaloisLFSR
from repro.lfsr.correlation import (
    autocorrelation_profile,
    golomb_check,
    periodic_autocorrelation,
    periodic_cross_correlation,
    run_lengths,
)

WIFI = GF2Polynomial.from_exponents([7, 4, 0])
PERIOD = 127


@pytest.fixture(scope="module")
def m_sequence():
    return GaloisLFSR(WIFI, 1).keystream(PERIOD)


class TestAutocorrelation:
    def test_zero_shift_is_one(self, m_sequence):
        assert periodic_autocorrelation(m_sequence, 0) == pytest.approx(1.0)

    def test_m_sequence_two_valued(self, m_sequence):
        """The defining PN property: -1/N at every non-zero shift."""
        for shift in range(1, PERIOD):
            assert periodic_autocorrelation(m_sequence, shift) == pytest.approx(-1 / PERIOD)

    def test_profile_length(self, m_sequence):
        profile = autocorrelation_profile(m_sequence)
        assert len(profile) == PERIOD
        assert profile[0] == pytest.approx(1.0)

    def test_shift_wraps(self, m_sequence):
        assert periodic_autocorrelation(m_sequence, PERIOD) == pytest.approx(1.0)

    def test_non_pn_sequence_is_not_two_valued(self):
        bits = [0, 0, 1, 1, 0, 1, 0, 0]
        values = {round(periodic_autocorrelation(bits, k), 6) for k in range(1, 8)}
        assert len(values) > 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            periodic_autocorrelation([], 0)


class TestCrossCorrelation:
    def test_self_cross_equals_auto(self, m_sequence):
        for shift in (0, 5, 60):
            assert periodic_cross_correlation(
                m_sequence, m_sequence, shift
            ) == pytest.approx(periodic_autocorrelation(m_sequence, shift))

    def test_shifted_phase_low_correlation(self, m_sequence):
        other = m_sequence[13:] + m_sequence[:13]
        assert periodic_cross_correlation(m_sequence, other, 0) == pytest.approx(-1 / PERIOD)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            periodic_cross_correlation([1, 0], [1], 0)


class TestRunLengths:
    def test_m_sequence_run_structure(self, m_sequence):
        """2^(k-1) cyclic runs; counts halve per extra length."""
        hist = run_lengths(m_sequence)
        assert sum(hist.values()) == 64
        assert hist[1] == 32
        assert hist[2] == 16
        assert hist[3] == 8

    def test_longest_runs(self, m_sequence):
        hist = run_lengths(m_sequence)
        assert hist[7] == 1  # the run of 7 ones
        assert hist[6] == 1  # the run of 6 zeros

    def test_constant_sequence(self):
        assert run_lengths([1, 1, 1]) == {3: 1}

    def test_cyclic_counting(self):
        # 1,1,0,1 cyclically: runs are (1,1,1) and (0) -> {3:1, 1:1}
        assert run_lengths([1, 1, 0, 1]) == {3: 1, 1: 1}


class TestGolomb:
    def test_m_sequence_is_pseudo_noise(self, m_sequence):
        report = golomb_check(m_sequence)
        assert report.balanced
        assert report.run_distribution_ok
        assert report.two_valued_autocorrelation
        assert report.is_pseudo_noise
        assert report.ones == 64
        assert report.zeros == 63

    def test_all_catalog_scramblers_are_pn(self):
        """Every scrambler polynomial in the catalog generates a true PN
        sequence — the §1 'statistical properties' claim, verified."""
        from repro.scrambler import IEEE80211, PRBS9, SONET

        for spec in (IEEE80211, PRBS9, SONET):
            period = (1 << spec.degree) - 1
            seq = GaloisLFSR(spec.poly, 1).keystream(period)
            assert golomb_check(seq).is_pseudo_noise, spec.name

    def test_biased_sequence_fails_balance(self):
        report = golomb_check([1, 1, 1, 1, 0, 1, 1])
        assert not report.balanced

    def test_alternating_fails_runs(self):
        report = golomb_check([1, 0, 1, 0, 1, 0])
        assert not report.run_distribution_ok or not report.two_valued_autocorrelation

    def test_short_sequence_rejected(self):
        with pytest.raises(ValueError):
            golomb_check([1, 0])

    def test_random_data_usually_fails_g3(self):
        rng = np.random.default_rng(5)
        bits = [int(b) for b in rng.integers(0, 2, size=127)]
        assert not golomb_check(bits).two_valued_autocorrelation
