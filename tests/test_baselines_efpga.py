"""Unit tests for the embedded-FPGA baseline and the §1 platform ordering."""

import pytest

from repro.baselines import EmbeddedFpgaModel, RiscCostModel, UcrcModel
from repro.crc import ETHERNET_CRC32


@pytest.fixture(scope="module")
def efpga():
    return EmbeddedFpgaModel(ETHERNET_CRC32)


@pytest.fixture(scope="module")
def efpga_direct():
    return EmbeddedFpgaModel(ETHERNET_CRC32, method="direct")


@pytest.fixture(scope="module")
def asic():
    return UcrcModel(ETHERNET_CRC32)


class TestModel:
    def test_serial_frequency_band(self, efpga):
        """90 nm embedded FPGA serial CRC: a few hundred MHz."""
        assert 150e6 < efpga.frequency_hz(1) < 400e6

    def test_frequency_decreases_with_m(self, efpga):
        freqs = [efpga.frequency_hz(M) for M in (1, 8, 32, 128)]
        assert freqs == sorted(freqs, reverse=True)

    def test_derby_loop_fanin_constant(self, efpga):
        assert efpga.loop_fanin(1) == efpga.loop_fanin(128) == 3

    def test_direct_loop_fanin_grows(self, efpga_direct):
        assert efpga_direct.loop_fanin(64) > efpga_direct.loop_fanin(4)

    def test_derby_beats_direct_on_fpga_too(self, efpga, efpga_direct):
        for M in (16, 64, 128):
            assert efpga.throughput_bps(M) > efpga_direct.throughput_bps(M)

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            EmbeddedFpgaModel(ETHERNET_CRC32, method="fancy")

    def test_invalid_m(self, efpga):
        with pytest.raises(ValueError):
            efpga.frequency_hz(0)

    def test_sweep_keys(self, efpga):
        assert set(efpga.sweep((2, 4))) == {2, 4}


class TestPaperPlatformOrdering:
    """§1's positioning: processors << eFPGA < reconfigurable datapath
    (DREAM) / ASIC at the interesting design points."""

    def test_efpga_slower_than_asic_everywhere(self, efpga, asic):
        for M in (1, 8, 32, 128):
            assert efpga.throughput_bps(M) < asic.throughput_bps(M), M

    def test_efpga_beats_processors(self, efpga):
        sw_peak = RiscCostModel().peak_throughput_bps("slicing8")
        assert efpga.throughput_bps(8) > sw_peak

    def test_dream_beats_efpga_at_the_design_point(self, efpga):
        dream_m128 = 128 * 200e6
        assert dream_m128 > efpga.throughput_bps(128)

    def test_efpga_competitive_at_small_m(self, efpga):
        """Below DREAM's fixed-frequency knee, the eFPGA's higher serial
        clock makes it the faster programmable option."""
        assert efpga.throughput_bps(2) > 2 * 200e6
