"""The adaptive execution planner: decisions as pure functions of data.

Everything here runs without timing anything: cost tables come from the
canned synthetic hosts in ``conftest.py`` (plus a few built inline), the
probe pass runs against the deterministic fake clock, and plan selection
is asserted table-driven — profile in, expected decision out.  The
BENCH_5 regression class gets a named row: on a 1-CPU profile the
planner must return ``workers=1``/serial, by construction.
"""

import pytest

from repro.engine import CompileCache, DiskCompileCache
from repro.engine.planner import (
    PLANNER_VERSION,
    PROFILE_KEY,
    ExecutionPlan,
    HostProfile,
    PlanCandidate,
    Planner,
    WorkloadDescriptor,
    get_profile,
    host_fingerprint,
    probe_host,
)
from repro.errors import ValidationError


def _workload(message_bits=2048, batch=1024, **kw):
    kw.setdefault("kind", "crc-batch")
    kw.setdefault("standard", "CRC-32")
    return WorkloadDescriptor(
        message_bits=message_bits, batch=batch, **kw
    )


class TestPlanSelection:
    """Table-driven: one row per synthetic host, decision fully pinned."""

    # (profile name, workload, expected strategy, expected workers)
    TABLE = [
        # The BENCH_5 container: 1 CPU -> parallel can never pay.  This
        # row is the regression the planner exists to eliminate.
        ("bench5-1cpu", _workload(), "serial", 1),
        ("laptop-2cpu", _workload(), "shard-batch", 2),
        ("desktop-4cpu", _workload(), "shard-batch", 4),
        ("server-16cpu", _workload(), "shard-batch", 16),
        # Many cores but a 50 ms pool spawn: overhead dominates a ~1.3 ms
        # compute, so the solver must refuse to shard.
        ("slow-spawn-8cpu", _workload(), "serial", 1),
        # GIL-bound reference backend on a big workload: process-pool
        # sharding pays despite spawn + pickle costs.
        ("gil-bound-4cpu", _workload(message_bits=65536), "shard-batch", 4),
        # Single long message on a big host: time-axis sharding with
        # x^k mod G recombination.
        ("server-16cpu", _workload(message_bits=1_000_000, batch=1),
         "shard-time", 4),
    ]

    @pytest.mark.parametrize("profile_name,workload,strategy,workers", TABLE)
    def test_decision_table(
        self, host_profiles, profile_name, workload, strategy, workers
    ):
        plan = Planner(profile=host_profiles[profile_name]).plan(workload)
        assert (plan.strategy, plan.workers) == (strategy, workers), (
            f"{profile_name}: expected {strategy} x{workers}, "
            f"got {plan.strategy} x{plan.workers}"
        )

    def test_bench5_profile_is_serial_by_construction(self, host_profiles):
        """The headline acceptance criterion: 1 CPU -> workers=1."""
        planner = Planner(profile=host_profiles["bench5-1cpu"])
        for workload in (
            _workload(),
            _workload(message_bits=1_000_000, batch=1),
            _workload(message_bits=65536, batch=4096),
        ):
            plan = planner.plan(workload)
            assert plan.is_serial
            assert plan.workers == 1
            assert plan.predicted_speedup == pytest.approx(1.0)

    def test_parallel_needs_min_speedup_margin(self, host_profiles):
        """A parallel candidate predicted barely faster still loses."""
        profile = host_profiles["laptop-2cpu"]
        plan = Planner(profile=profile, min_speedup=1.05).plan(_workload())
        assert plan.strategy == "shard-batch"
        # The same host under an extreme margin falls back to serial.
        strict = Planner(profile=profile, min_speedup=100.0).plan(_workload())
        assert strict.is_serial

    def test_tiny_workloads_stay_serial_everywhere(self, host_profiles):
        tiny = _workload(message_bits=8, batch=4)
        for name, profile in host_profiles.items():
            plan = Planner(profile=profile).plan(tiny)
            assert plan.is_serial, f"{name} sharded a 32-bit workload"

    def test_pinned_M_is_respected(self, host_profiles):
        plan = Planner(profile=host_profiles["server-16cpu"]).plan(
            _workload(M=16)
        )
        assert plan.M == 16

    def test_backend_choice_follows_rates(self, host_profiles):
        plan = Planner(profile=host_profiles["desktop-4cpu"]).plan(_workload())
        assert plan.backend == "packed"  # 2 Gbit/s vs 8 Mbit/s reference
        gil = Planner(profile=host_profiles["gil-bound-4cpu"]).plan(_workload())
        assert gil.backend == "reference"  # the only one the host has

    def test_candidates_are_sorted_and_deterministic(self, host_profiles):
        planner = Planner(profile=host_profiles["server-16cpu"])
        a = planner.candidates(_workload())
        b = planner.candidates(_workload())
        assert a == b
        assert all(
            x.predicted_s <= y.predicted_s for x, y in zip(a, a[1:])
        )
        assert any(c.workers == 1 for c in a)  # serial always explored


class TestMonotonicity:
    """More cores never produce a strictly slower predicted decision."""

    CPUS = (1, 2, 4, 8, 16, 32, 64)

    def test_predicted_time_non_increasing_in_cores(self):
        workload = _workload()
        times = [
            Planner(
                profile=HostProfile.synthetic(cpus=c, fingerprint=f"mono-{c}")
            ).plan(workload).predicted_s
            for c in self.CPUS
        ]
        for prev, cur in zip(times, times[1:]):
            assert cur <= prev + 1e-12, f"{times}"

    def test_predicted_speedup_non_decreasing_in_cores(self):
        workload = _workload(message_bits=65536, batch=512)
        speedups = [
            Planner(
                profile=HostProfile.synthetic(cpus=c, fingerprint=f"mono-{c}")
            ).plan(workload).predicted_speedup
            for c in self.CPUS
        ]
        for prev, cur in zip(speedups, speedups[1:]):
            assert cur >= prev - 1e-12, f"{speedups}"


class TestPlanCache:
    def test_plan_round_trips_through_disk(self, tmp_path, host_profiles):
        profile = host_profiles["desktop-4cpu"]
        disk = DiskCompileCache(tmp_path)
        workload = _workload()
        first = Planner(profile=profile, disk=disk).plan(workload)
        assert disk.stats.stores >= 1
        # A fresh planner on the same host loads the persisted plan
        # instead of re-solving.
        reread = Planner(profile=profile, disk=disk).plan(workload)
        assert reread == first
        assert disk.stats.hits >= 1

    def test_in_memory_memo_returns_same_object(self, host_profiles):
        planner = Planner(profile=host_profiles["laptop-2cpu"])
        workload = _workload()
        assert planner.plan(workload) is planner.plan(workload)

    def test_stale_fingerprint_plan_is_ignored(self, tmp_path, host_profiles):
        disk = DiskCompileCache(tmp_path)
        workload = _workload()
        old = Planner(profile=host_profiles["bench5-1cpu"], disk=disk)
        old_plan = old.plan(workload)
        # Same workload on a different host: the persisted plan's key
        # embeds the fingerprint, so the new host solves fresh.
        new = Planner(profile=host_profiles["server-16cpu"], disk=disk)
        new_plan = new.plan(workload)
        assert new_plan.fingerprint != old_plan.fingerprint
        assert new_plan.workers != old_plan.workers

    def test_plan_dict_round_trip(self, host_profiles):
        plan = Planner(profile=host_profiles["server-16cpu"]).plan(_workload())
        back = ExecutionPlan.from_dict(plan.to_dict())
        assert back == plan

    def test_malformed_plan_record_rejected(self):
        with pytest.raises(ValidationError, match="malformed"):
            ExecutionPlan.from_dict({"version": PLANNER_VERSION})
        with pytest.raises(ValidationError, match="version"):
            ExecutionPlan.from_dict({"version": 99})


class TestHostProfilePersistence:
    def test_profile_round_trips(self, host_profiles):
        for profile in host_profiles.values():
            assert HostProfile.from_dict(profile.to_dict()) == profile

    def test_get_profile_stores_and_reloads(self, tmp_path):
        disk = DiskCompileCache(tmp_path)
        probed = []

        def prober():
            probed.append(True)
            return HostProfile.synthetic(
                cpus=2, fingerprint=host_fingerprint()
            )

        first = get_profile(disk=disk, prober=prober)
        assert len(probed) == 1
        # Second call: fingerprint matches, no re-probe.
        second = get_profile(disk=disk, prober=prober)
        assert len(probed) == 1
        assert second == first

    def test_fingerprint_mismatch_triggers_reprobe(self, tmp_path):
        disk = DiskCompileCache(tmp_path)
        # Seed the cache with a profile from "another machine".
        stale = HostProfile.synthetic(cpus=64, fingerprint="other-host")
        disk.store(PROFILE_KEY, stale.to_dict())
        probed = []

        def prober():
            probed.append(True)
            return HostProfile.synthetic(
                cpus=1, fingerprint=host_fingerprint()
            )

        profile = get_profile(disk=disk, prober=prober)
        assert probed  # mismatch forced a fresh probe
        assert profile.fingerprint == host_fingerprint()
        # The fresh result replaced the stale entry.
        found, data = disk.load(PROFILE_KEY)
        assert found and data["fingerprint"] == host_fingerprint()

    def test_refresh_forces_reprobe(self, tmp_path):
        disk = DiskCompileCache(tmp_path)
        calls = []

        def prober():
            calls.append(True)
            return HostProfile.synthetic(
                cpus=1, fingerprint=host_fingerprint()
            )

        get_profile(disk=disk, prober=prober)
        get_profile(disk=disk, prober=prober, refresh=True)
        assert len(calls) == 2

    def test_corrupt_profile_record_degrades_to_reprobe(self, tmp_path):
        disk = DiskCompileCache(tmp_path)
        disk.store(PROFILE_KEY, {"not": "a profile"})
        profile = get_profile(
            disk=disk,
            prober=lambda: HostProfile.synthetic(
                cpus=1, fingerprint=host_fingerprint()
            ),
        )
        assert profile.cpus == 1


class TestProbing:
    def test_probe_host_with_fake_clock_is_deterministic(self, fake_clock):
        a = probe_host(backends=("packed",), timer=fake_clock, reps=2)
        b = probe_host(
            backends=("packed",), timer=FakeClockLike(fake_clock), reps=2
        )
        assert a.backend_bits_per_s == b.backend_bits_per_s
        assert a.backend_mode == {"packed": "thread"}
        assert a.cpus >= 1
        assert a.fingerprint == host_fingerprint()
        assert all(v > 0 for v in a.backend_bits_per_s.values())

    def test_probe_rejects_bad_reps(self):
        with pytest.raises(ValidationError, match="reps"):
            probe_host(backends=("packed",), reps=0)

    def test_real_probe_yields_usable_profile(self):
        profile = probe_host(backends=("packed",))
        plan = Planner(profile=profile).plan(_workload())
        assert plan.predicted_s > 0
        assert plan.serial_s > 0


class FakeClockLike:
    """A fresh clock with the same cadence as an existing fake clock."""

    def __init__(self, other):
        self._now = 0.0
        self._step = other.step

    def __call__(self):
        t = self._now
        self._now += self._step
        return t


class TestValidation:
    def test_workload_validation(self):
        with pytest.raises(ValidationError, match="kind"):
            _workload(kind="warp-drive")
        with pytest.raises(ValidationError, match="message_bits"):
            _workload(message_bits=-1)
        with pytest.raises(ValidationError):
            _workload(batch=0)
        with pytest.raises(ValidationError, match="M"):
            _workload(M=0)

    def test_profile_validation(self):
        with pytest.raises(ValidationError, match="cpu"):
            HostProfile.synthetic(cpus=0)
        with pytest.raises(ValidationError, match="rate"):
            HostProfile(
                fingerprint="x", cpus=1,
                backend_bits_per_s={"packed": -1.0},
                backend_mode={"packed": "thread"},
            )
        with pytest.raises(ValidationError, match="mode"):
            HostProfile(
                fingerprint="x", cpus=1,
                backend_bits_per_s={"packed": 1.0},
                backend_mode={"packed": "teleport"},
            )

    def test_planner_validation(self, host_profiles):
        with pytest.raises(ValidationError, match="min_speedup"):
            Planner(profile=host_profiles["bench5-1cpu"], min_speedup=0.5)
        with pytest.raises(ValidationError, match="M candidate"):
            Planner(profile=host_profiles["bench5-1cpu"], m_candidates=())

    def test_record_actual_validation(self, host_profiles):
        planner = Planner(profile=host_profiles["bench5-1cpu"])
        plan = planner.plan(_workload())
        with pytest.raises(ValidationError, match="actual_s"):
            planner.record_actual(plan, 0.0)
        ratio = planner.record_actual(plan, plan.predicted_s)
        assert ratio == pytest.approx(1.0)


class TestEngineWiring:
    def test_plan_flows_into_parallel_engine(self, host_profiles):
        from repro.crc import BitwiseCRC, get as get_crc
        from repro.engine import ParallelBatchCRC

        spec = get_crc("CRC-32")
        plan = Planner(profile=host_profiles["desktop-4cpu"]).plan(
            _workload(M=32)
        )
        assert plan.workers == 4
        with ParallelBatchCRC(spec, 32, plan=plan, min_shard_bits=1) as engine:
            assert engine.workers == plan.workers
            assert engine.plan is plan
            msgs = [bytes([i] * 40) for i in range(8)]
            ref = BitwiseCRC(spec)
            assert engine.compute_batch(msgs) == [ref.compute(m) for m in msgs]

    def test_explicit_arguments_beat_the_plan(self, host_profiles):
        from repro.crc import get as get_crc
        from repro.engine import ParallelBatchCRC

        plan = Planner(profile=host_profiles["server-16cpu"]).plan(_workload())
        assert plan.workers > 1
        engine = ParallelBatchCRC(get_crc("CRC-32"), 32, workers=1, plan=plan)
        assert engine.workers == 1  # caller's explicit choice wins

    def test_dream_system_auto_uses_injected_planner(self, host_profiles):
        from repro.crc import get as get_crc
        from repro.dream.system import DreamSystem

        system = DreamSystem(cache=CompileCache())
        planner = Planner(profile=host_profiles["bench5-1cpu"])
        engine = system.batch_crc(get_crc("CRC-32"), auto=True, planner=planner)
        assert engine.workers == 1
        assert engine.plan.strategy == "serial"
        assert engine.M == engine.plan.M
        pipe = system.crc_pipeline(get_crc("CRC-32"), auto=True, planner=planner)
        assert pipe.workers == 1

    def test_dream_system_requires_m_or_plan(self):
        from repro.crc import get as get_crc
        from repro.dream.system import DreamSystem

        with pytest.raises(ValueError, match="M="):
            DreamSystem(cache=CompileCache()).batch_crc(get_crc("CRC-32"))


class TestTelemetry:
    def test_plan_decisions_are_counted_and_traced(self, host_profiles):
        from repro.telemetry import default_registry, default_tracer

        registry, tracer = default_registry(), default_tracer()
        reg_was, tr_was = registry.enabled, tracer.enabled
        registry.enable()
        tracer.enable()
        try:
            planner = Planner(profile=host_profiles["bench5-1cpu"])
            planner.plan(_workload(message_bits=4096, batch=64))
            family = registry.get("engine_planner_plans_total")
            assert family is not None
            assert family.labels(strategy="serial").value >= 1
            def walk(spans):
                for sp in spans:
                    yield sp
                    yield from walk(sp.children)

            spans = [
                s for s in walk(tracer.roots()) if s.name == "planner.plan"
            ]
            assert spans
            assert spans[-1].attributes["strategy"] == "serial"
        finally:
            registry.set_enabled(reg_was)
            if not tr_was:
                tracer.disable()


class TestKeystreamWorkloads:
    """The v2 cost model: keystream rates + the `keystream` workload kind."""

    def _workload(self, message_bits=8 * (1 << 20)):
        from repro.engine.planner import KIND_KEYSTREAM

        return WorkloadDescriptor(
            kind=KIND_KEYSTREAM, standard="keystream", message_bits=message_bits
        )

    def test_synthetic_profile_carries_keystream_rates(self, host_profiles):
        from repro.engine.planner import KEYSTREAM_SOURCES

        for profile in host_profiles.values():
            # Every canned host measured at least one source (the
            # gil-bound host carries a partial, reference-only table).
            assert profile.keystream_bits_per_s
            assert set(profile.keystream_bits_per_s) <= set(KEYSTREAM_SOURCES)
            assert all(r > 0 for r in profile.keystream_bits_per_s.values())

    def test_partial_rate_table_still_plans(self, host_profiles):
        plan = Planner(host_profiles["gil-bound-4cpu"]).plan(self._workload())
        assert plan.backend == "galois-bitserial"

    def test_plan_picks_the_fastest_source(self, host_profiles):
        plan = Planner(host_profiles["bench5-1cpu"]).plan(self._workload())
        assert plan.strategy == "serial"
        assert plan.backend == "word64"  # fastest synthetic rate

    def test_plan_follows_the_cost_table(self):
        slow_word = HostProfile.synthetic(
            cpus=4,
            fingerprint="slow-word",
            keystream_bits_per_s={
                "galois-bitserial": 5.0e7,
                "word32": 1.0e6,
                "word64": 2.0e6,
            },
        )
        plan = Planner(slow_word).plan(self._workload())
        assert plan.backend == "galois-bitserial"

    def test_candidates_are_sorted_and_serial_only(self, host_profiles):
        cands = Planner(host_profiles["server-16cpu"]).candidates(
            self._workload()
        )
        assert len(cands) == 3
        assert all(c.strategy == "serial" and c.workers == 1 for c in cands)
        predictions = [c.predicted_s for c in cands]
        assert predictions == sorted(predictions)

    def test_profile_without_rates_raises(self):
        bare = HostProfile.synthetic(cpus=2, fingerprint="bare")
        object.__setattr__(bare, "keystream_bits_per_s", {})
        with pytest.raises(ValidationError, match="keystream rates"):
            Planner(bare).plan(self._workload())

    def test_profile_round_trip_keeps_rates(self, host_profiles):
        profile = host_profiles["laptop-2cpu"]
        back = HostProfile.from_dict(profile.to_dict())
        assert back.keystream_bits_per_s == profile.keystream_bits_per_s

    def test_version_1_profile_is_rejected(self, host_profiles):
        record = host_profiles["laptop-2cpu"].to_dict()
        record["version"] = PLANNER_VERSION - 1
        with pytest.raises(ValidationError):
            HostProfile.from_dict(record)
