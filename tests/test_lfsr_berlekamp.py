"""Unit tests for repro.lfsr.berlekamp (Berlekamp–Massey synthesis)."""

import numpy as np
import pytest

from repro.cipher import A51, E0
from repro.gf2 import GF2Polynomial
from repro.lfsr import (
    FibonacciLFSR,
    berlekamp_massey,
    linear_complexity,
    linear_complexity_profile,
)

WIFI = GF2Polynomial.from_exponents([7, 4, 0])


class TestBasics:
    def test_zero_sequence(self):
        result = berlekamp_massey([0] * 20)
        assert result.linear_complexity == 0
        assert result.connection == GF2Polynomial(1)

    def test_single_one_needs_full_length(self):
        # 0...01 has complexity n for a length-n prefix ending in the 1.
        seq = [0] * 9 + [1]
        assert linear_complexity(seq) == 10

    def test_alternating_sequence(self):
        # 1,0,1,0,... satisfies s[n] = s[n-2]; BM finds complexity 2.
        assert linear_complexity([1, 0] * 10) == 2

    def test_constant_ones(self):
        # 1,1,1,... satisfies s[n] = s[n-1].
        assert linear_complexity([1] * 16) == 1


class TestLFSRRecovery:
    @pytest.mark.parametrize("exponents", [[3, 1, 0], [7, 4, 0], [9, 5, 0]])
    def test_recovers_generator_degree(self, exponents):
        poly = GF2Polynomial.from_exponents(exponents)
        k = poly.degree
        ks = FibonacciLFSR(poly, 1).keystream(4 * k)
        result = berlekamp_massey(ks)
        assert result.linear_complexity == k

    def test_recovers_exact_polynomial(self):
        """For a Fibonacci LFSR the synthesized generator is the
        reciprocal of the feedback polynomial (shift-direction duality)."""
        ks = FibonacciLFSR(WIFI, 1).keystream(64)
        result = berlekamp_massey(ks)
        assert result.generator() in (WIFI, WIFI.reciprocal())

    def test_prediction_continues_keystream(self):
        full = FibonacciLFSR(WIFI, 0x55).keystream(200)
        result = berlekamp_massey(full[:50])
        predicted = result.predict(full[:50], 150)
        assert predicted == full[50:]

    def test_prediction_needs_history(self):
        result = berlekamp_massey(FibonacciLFSR(WIFI, 1).keystream(64))
        with pytest.raises(ValueError):
            result.predict([1, 0], 10)

    def test_feedback_taps(self):
        ks = FibonacciLFSR(GF2Polynomial(0b1011), 1).keystream(24)
        result = berlekamp_massey(ks)
        assert result.linear_complexity == 3
        assert all(1 <= t <= 3 for t in result.feedback_taps())


class TestProfile:
    def test_profile_monotone(self):
        rng = np.random.default_rng(6)
        seq = [int(b) for b in rng.integers(0, 2, size=100)]
        profile = linear_complexity_profile(seq)
        assert all(a <= b for a, b in zip(profile, profile[1:]))
        assert profile[-1] == linear_complexity(seq)

    def test_random_profile_tracks_half_n(self):
        rng = np.random.default_rng(13)
        seq = [int(b) for b in rng.integers(0, 2, size=400)]
        profile = linear_complexity_profile(seq)
        assert abs(profile[-1] - 200) < 20

    def test_lfsr_profile_saturates(self):
        ks = FibonacciLFSR(WIFI, 1).keystream(300)
        profile = linear_complexity_profile(ks)
        assert profile[-1] == 7  # complexity stops growing at the register size


class TestCipherComplexity:
    """Why stream ciphers combine LFSRs: linear complexity explodes."""

    def test_a51_exceeds_any_single_register(self):
        key = bytes([0x12, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF])
        ks = A51(key, 0x134).keystream(600)
        lc = linear_complexity(ks)
        assert lc > 64  # far beyond the 19/22/23-bit registers

    def test_e0_exceeds_register_sum_fraction(self):
        ks = E0.from_seed(bytes(range(16))).keystream(600)
        lc = linear_complexity(ks)
        assert lc > 128  # beyond the total linear state

    def test_scrambler_is_linear_hence_weak(self):
        """The contrast: a scrambler keystream is fully predictable from
        2k bits — the reason scrambling is not encryption (paper §1)."""
        from repro.scrambler import AdditiveScrambler, IEEE80216E

        ks = AdditiveScrambler(IEEE80216E).keystream(500)
        result = berlekamp_massey(ks[:60])  # 4k bits suffice
        assert result.linear_complexity == 15
        assert result.predict(ks[:60], 440) == ks[60:]
