"""Unit tests for repro.gf2.matrix."""

import numpy as np
import pytest

from repro.gf2 import GF2Matrix, GF2Polynomial
from repro.lfsr.companion import companion_matrix


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestConstruction:
    def test_from_lists(self):
        m = GF2Matrix([[1, 0], [0, 1]])
        assert m.shape == (2, 2)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            GF2Matrix([[0, 2]])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            GF2Matrix(np.zeros(3, dtype=np.uint8))

    def test_identity(self):
        assert GF2Matrix.identity(3) == GF2Matrix([[1, 0, 0], [0, 1, 0], [0, 0, 1]])

    def test_zeros(self):
        assert GF2Matrix.zeros(2, 3).nnz() == 0

    def test_from_columns(self):
        m = GF2Matrix.from_columns([[1, 0], [1, 1]])
        assert m.column(0).tolist() == [1, 0]
        assert m.column(1).tolist() == [1, 1]

    def test_from_int_rows_roundtrip(self):
        rows = [0b101, 0b011, 0b110]
        m = GF2Matrix.from_int_rows(rows, 3)
        assert m.rows_as_ints() == rows

    def test_from_int_rows_overflow(self):
        with pytest.raises(ValueError):
            GF2Matrix.from_int_rows([0b1000], 3)


class TestArithmetic:
    def test_addition_is_xor(self):
        a = GF2Matrix([[1, 1], [0, 1]])
        b = GF2Matrix([[1, 0], [1, 1]])
        assert (a + b) == GF2Matrix([[0, 1], [1, 0]])

    def test_addition_self_is_zero(self, rng):
        a = GF2Matrix.random(5, 5, rng)
        assert (a + a).nnz() == 0

    def test_addition_shape_mismatch(self):
        with pytest.raises(ValueError):
            GF2Matrix.identity(2) + GF2Matrix.identity(3)

    def test_matmul_identity(self, rng):
        a = GF2Matrix.random(4, 4, rng)
        assert a @ GF2Matrix.identity(4) == a
        assert GF2Matrix.identity(4) @ a == a

    def test_matmul_mod2(self):
        # [1 1] @ [1; 1] = 2 = 0 over GF(2)
        a = GF2Matrix([[1, 1]])
        v = np.array([1, 1], dtype=np.uint8)
        assert (a @ v).tolist() == [0]

    def test_matmul_inner_mismatch(self):
        with pytest.raises(ValueError):
            GF2Matrix.identity(2) @ GF2Matrix.zeros(3, 2)

    def test_matvec_wrong_length(self):
        with pytest.raises(ValueError):
            GF2Matrix.identity(3) @ np.array([1, 0])

    def test_power_zero_is_identity(self, rng):
        a = GF2Matrix.random(4, 4, rng)
        assert a ** 0 == GF2Matrix.identity(4)

    def test_power_matches_repeated_product(self, rng):
        a = GF2Matrix.random(5, 5, rng)
        expected = GF2Matrix.identity(5)
        for _ in range(7):
            expected = expected @ a
        assert a ** 7 == expected

    def test_power_requires_square(self):
        with pytest.raises(ValueError):
            GF2Matrix.zeros(2, 3) ** 2

    def test_negative_power_is_inverse_power(self):
        a = companion_matrix(GF2Polynomial(0b1011))  # x^3+x+1, invertible
        assert a ** -1 == a.inverse()
        assert (a ** -2) @ (a ** 2) == GF2Matrix.identity(3)

    def test_transpose(self):
        m = GF2Matrix([[1, 0, 1], [0, 1, 1]])
        assert m.transpose() == GF2Matrix([[1, 0], [0, 1], [1, 1]])

    def test_stacking(self):
        a = GF2Matrix.identity(2)
        assert a.hstack(a).shape == (2, 4)
        assert a.vstack(a).shape == (4, 2)


class TestLinearAlgebra:
    def test_rank_identity(self):
        assert GF2Matrix.identity(6).rank() == 6

    def test_rank_zero(self):
        assert GF2Matrix.zeros(4, 4).rank() == 0

    def test_rank_dependent_rows(self):
        m = GF2Matrix([[1, 0, 1], [0, 1, 1], [1, 1, 0]])  # row3 = row1+row2
        assert m.rank() == 2

    def test_inverse_roundtrip(self):
        a = companion_matrix(GF2Polynomial((1 << 8) | 0x1D))
        assert a @ a.inverse() == GF2Matrix.identity(8)
        assert a.inverse() @ a == GF2Matrix.identity(8)

    def test_inverse_singular_raises(self):
        with pytest.raises(ValueError):
            GF2Matrix([[1, 1], [1, 1]]).inverse()

    def test_inverse_requires_square(self):
        with pytest.raises(ValueError):
            GF2Matrix.zeros(2, 3).inverse()

    def test_solve(self):
        a = companion_matrix(GF2Polynomial(0b10011))
        x = np.array([1, 0, 1, 1], dtype=np.uint8)
        rhs = a @ x
        assert (a.solve(rhs) == x).all()

    def test_null_space_of_singular(self):
        m = GF2Matrix([[1, 1], [1, 1]])
        basis = m.null_space_basis()
        assert len(basis) == 1
        assert (m @ basis[0]).tolist() == [0, 0]

    def test_null_space_trivial_for_invertible(self):
        a = companion_matrix(GF2Polynomial(0b1011))
        assert a.null_space_basis() == []


class TestStructure:
    def test_companion_detection(self):
        a = companion_matrix(GF2Polynomial((1 << 32) | 0x04C11DB7))
        assert a.is_companion()

    def test_identity_not_companion(self):
        assert not GF2Matrix.identity(3).is_companion()

    def test_non_square_not_companion(self):
        assert not GF2Matrix.zeros(2, 3).is_companion()

    def test_characteristic_polynomial_of_companion(self):
        poly = GF2Polynomial((1 << 16) | 0x1021)
        a = companion_matrix(poly)
        assert a.characteristic_polynomial() == poly.coeffs

    def test_characteristic_polynomial_identity(self):
        # det(xI + I) = (x+1)^n
        n = 4
        expected = GF2Polynomial(0b11)
        acc = GF2Polynomial(1)
        for _ in range(n):
            acc = acc * expected
        assert GF2Matrix.identity(n).characteristic_polynomial() == acc.coeffs

    def test_similarity_invariant(self):
        poly = GF2Polynomial((1 << 8) | 0x07)
        a = companion_matrix(poly)
        p = companion_matrix(GF2Polynomial((1 << 8) | 0x1D))  # invertible basis change
        b = p.inverse() @ a @ p
        assert a.is_similar_to(b)

    def test_row_as_int(self):
        m = GF2Matrix([[1, 0, 1]])
        assert m.row_as_int(0) == 0b101

    def test_density_and_nnz(self):
        m = GF2Matrix([[1, 0], [0, 1]])
        assert m.nnz() == 2
        assert m.density() == pytest.approx(0.5)

    def test_hash_consistent_with_eq(self):
        a = GF2Matrix.identity(3)
        b = GF2Matrix.identity(3)
        assert hash(a) == hash(b)
        assert a == b
