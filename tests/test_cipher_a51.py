"""Unit tests for repro.cipher.a51 — including the published test vector."""

import pytest

from repro.cipher import A51

# The reference test vector shipped with the Briceno/Goldberg/Wagner
# implementation: Kc = 12 23 45 67 89 AB CD EF, frame number 0x134.
REF_KEY = bytes([0x12, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF])
REF_FRAME = 0x134
REF_ATOB = bytes.fromhex("534eaa582fe8151ab6e1855a728c00")
REF_BTOA = bytes.fromhex("24fd35a35d5fb6526d32f906df1ac0")


class TestReferenceVector:
    def test_downlink_burst(self):
        down, _ = A51(REF_KEY, REF_FRAME).burst_pair()
        assert down == REF_ATOB

    def test_uplink_burst(self):
        _, up = A51(REF_KEY, REF_FRAME).burst_pair()
        assert up == REF_BTOA

    def test_burst_lengths(self):
        down, up = A51(REF_KEY, REF_FRAME).burst_pair()
        assert len(down) == len(up) == 15
        # 114 bits -> the last 6 bits of byte 15 are padding zeros.
        assert down[-1] & 0x3F == 0
        assert up[-1] & 0x3F == 0


class TestValidation:
    def test_key_length(self):
        with pytest.raises(ValueError):
            A51(b"\x00" * 7, 0)

    def test_frame_range(self):
        with pytest.raises(ValueError):
            A51(REF_KEY, 1 << 22)


class TestKeystreamBehaviour:
    def test_deterministic(self):
        a = A51(REF_KEY, REF_FRAME).keystream(100)
        b = A51(REF_KEY, REF_FRAME).keystream(100)
        assert a == b

    def test_frame_changes_keystream(self):
        a = A51(REF_KEY, 0x134).keystream(100)
        b = A51(REF_KEY, 0x135).keystream(100)
        assert a != b

    def test_key_changes_keystream(self):
        a = A51(REF_KEY, REF_FRAME).keystream(100)
        b = A51(b"\x00" * 8, REF_FRAME).keystream(100)
        assert a != b

    def test_register_widths_respected(self):
        c = A51(REF_KEY, REF_FRAME)
        c.keystream(500)
        assert c.r1 < (1 << 19)
        assert c.r2 < (1 << 22)
        assert c.r3 < (1 << 23)

    def test_keystream_roughly_balanced(self):
        ks = A51(REF_KEY, REF_FRAME).keystream(2000)
        assert 800 < sum(ks) < 1200

    def test_irregular_clocking_occurs(self):
        """Majority clocking must sometimes hold a register still —
        the property that defeats linear look-ahead."""
        c = A51(REF_KEY, REF_FRAME)
        stalls = 0
        for _ in range(200):
            before = (c.r1, c.r2, c.r3)
            c.keystream(1)
            after = (c.r1, c.r2, c.r3)
            stalls += sum(1 for x, y in zip(before, after) if x == y)
        assert stalls > 0
        # On average each register stalls 1/4 of the time.
        assert 50 < stalls < 250
