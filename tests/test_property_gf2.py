"""Property-based tests (hypothesis) for the GF(2) substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2 import GF2Matrix, GF2Polynomial, bits_to_int, int_to_bits, reflect_bits
from repro.gf2.clmul import cldeg, cldivmod, clgcd, clmod, clmul

polys = st.integers(min_value=0, max_value=(1 << 64) - 1)
nonzero_polys = st.integers(min_value=1, max_value=(1 << 64) - 1)
dims = st.integers(min_value=1, max_value=8)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _random_matrix(n: int, seed: int) -> GF2Matrix:
    return GF2Matrix.random(n, n, np.random.default_rng(seed))


class TestClmulProperties:
    @given(a=polys, b=polys)
    def test_commutative(self, a, b):
        assert clmul(a, b) == clmul(b, a)

    @given(a=polys, b=polys, c=polys)
    @settings(max_examples=50)
    def test_distributive_over_xor(self, a, b, c):
        assert clmul(a, b ^ c) == clmul(a, b) ^ clmul(a, c)

    @given(a=polys, b=nonzero_polys)
    def test_divmod_invariant(self, a, b):
        q, r = cldivmod(a, b)
        assert clmul(q, b) ^ r == a
        assert cldeg(r) < cldeg(b)

    @given(a=nonzero_polys, b=nonzero_polys)
    @settings(max_examples=50)
    def test_gcd_divides_both(self, a, b):
        g = clgcd(a, b)
        assert clmod(a, g) == 0
        assert clmod(b, g) == 0

    @given(a=polys, b=polys)
    @settings(max_examples=50)
    def test_degree_of_product(self, a, b):
        if a and b:
            assert cldeg(clmul(a, b)) == cldeg(a) + cldeg(b)


class TestBitProperties:
    @given(v=st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_reflect_involution(self, v):
        assert reflect_bits(reflect_bits(v, 32), 32) == v

    @given(v=st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_int_bits_roundtrip(self, v):
        assert bits_to_int(int_to_bits(v, 48)) == v

    @given(a=st.integers(min_value=0, max_value=255), b=st.integers(min_value=0, max_value=255))
    def test_reflect_is_gf2_linear(self, a, b):
        assert reflect_bits(a ^ b, 8) == reflect_bits(a, 8) ^ reflect_bits(b, 8)


class TestMatrixProperties:
    @given(n=dims, s1=seeds, s2=seeds)
    @settings(max_examples=40)
    def test_matmul_associative(self, n, s1, s2):
        a, b = _random_matrix(n, s1), _random_matrix(n, s2)
        c = GF2Matrix.identity(n)
        assert (a @ b) @ c == a @ (b @ c)

    @given(n=dims, s1=seeds, s2=seeds)
    @settings(max_examples=40)
    def test_transpose_antihomomorphism(self, n, s1, s2):
        a, b = _random_matrix(n, s1), _random_matrix(n, s2)
        assert (a @ b).transpose() == b.transpose() @ a.transpose()

    @given(n=dims, s=seeds, e=st.integers(min_value=0, max_value=16))
    @settings(max_examples=40)
    def test_power_additivity(self, n, s, e):
        a = _random_matrix(n, s)
        assert (a ** e) @ (a ** 3) == a ** (e + 3)

    @given(n=dims, s=seeds)
    @settings(max_examples=40)
    def test_rank_bounds(self, n, s):
        a = _random_matrix(n, s)
        assert 0 <= a.rank() <= n

    @given(n=dims, s=seeds)
    @settings(max_examples=30)
    def test_inverse_when_full_rank(self, n, s):
        a = _random_matrix(n, s)
        if a.is_invertible():
            assert a @ a.inverse() == GF2Matrix.identity(n)

    @given(n=dims, s=seeds)
    @settings(max_examples=30)
    def test_null_space_dimension(self, n, s):
        a = _random_matrix(n, s)
        assert len(a.null_space_basis()) == n - a.rank()


class TestPolynomialProperties:
    @given(a=polys, b=polys)
    @settings(max_examples=50)
    def test_mul_degree(self, a, b):
        pa, pb = GF2Polynomial(a), GF2Polynomial(b)
        if a and b:
            assert (pa * pb).degree == pa.degree + pb.degree

    @given(a=nonzero_polys)
    def test_reciprocal_involution_when_constant_term(self, a):
        p = GF2Polynomial(a | 1)  # force constant term so degree is stable
        assert p.reciprocal().reciprocal() == p

    @given(a=st.integers(min_value=2, max_value=(1 << 16) - 1))
    @settings(max_examples=30)
    def test_irreducible_has_no_small_roots(self, a):
        p = GF2Polynomial(a)
        if p.degree >= 2 and p.is_irreducible():
            assert p.evaluate(0) == 1  # x is not a factor
            assert p.evaluate(1) == 1  # x+1 is not a factor
