"""Unit tests for repro.lfsr.jump (logarithmic fast-forward)."""

import pytest

from repro.gf2 import GF2Polynomial
from repro.lfsr import GaloisLFSR, jump_back, jump_state, keystream_slice, lfsr_at
from repro.lfsr.statespace import scrambler_statespace

WIFI = GF2Polynomial.from_exponents([7, 4, 0])
WIMAX = GF2Polynomial.from_exponents([15, 14, 0])


class TestJumpState:
    @pytest.mark.parametrize("steps", [0, 1, 7, 127, 1000, 10**9])
    def test_matches_clocking(self, steps):
        seed = 0x55
        jumped = jump_state(WIFI, seed, steps)
        reg = GaloisLFSR(WIFI, seed)
        for _ in range(steps % 127):  # clock only within one period
            reg.clock()
        # jump and modular clocking agree because the state sequence has
        # period dividing 127 for this primitive polynomial.
        assert jump_state(WIFI, seed, steps % 127) == reg.state
        assert jumped == jump_state(WIFI, seed, steps % 127)

    def test_direct_small_jump(self):
        seed = 0x41
        reg = GaloisLFSR(WIMAX, seed)
        for _ in range(500):
            reg.clock()
        assert jump_state(WIMAX, seed, 500) == reg.state

    def test_zero_state_stays_zero(self):
        assert jump_state(WIFI, 0, 12345) == 0

    def test_negative_steps(self):
        with pytest.raises(ValueError):
            jump_state(WIFI, 1, -1)

    def test_wide_state(self):
        with pytest.raises(ValueError):
            jump_state(WIFI, 1 << 7, 1)

    def test_agrees_with_matrix_lookahead(self):
        """Polynomial-domain x^N and matrix-domain A^N are the same map."""
        ss = scrambler_statespace(WIMAX)
        seed = 0x1357
        n = 777
        matrix_state = (ss.A ** n) @ ss.state_from_int(seed)
        assert jump_state(WIMAX, seed, n) == ss.state_to_int(matrix_state)


class TestJumpBack:
    def test_inverse_of_forward(self):
        seed = 0x2F
        forward = jump_state(WIFI, seed, 1000)
        assert jump_back(WIFI, forward, 1000) == seed

    def test_needs_constant_term(self):
        with pytest.raises(ValueError):
            jump_back(GF2Polynomial(0b1010), 1, 1)

    def test_negative(self):
        with pytest.raises(ValueError):
            jump_back(WIFI, 1, -2)


class TestKeystreamSlice:
    def test_slice_matches_prefix_generation(self):
        seed = 0x77
        full = GaloisLFSR(WIMAX, seed).keystream(5000)
        assert keystream_slice(WIMAX, seed, 0, 100) == full[:100]
        assert keystream_slice(WIMAX, seed, 4321, 200) == full[4321:4521]

    def test_parallel_workers_tile_the_stream(self):
        """Four workers each produce a quarter; together = serial stream."""
        seed = 0x1234
        total = 4000
        serial = GaloisLFSR(WIMAX, seed).keystream(total)
        tiled = []
        for worker in range(4):
            tiled.extend(keystream_slice(WIMAX, seed, worker * 1000, 1000))
        assert tiled == serial

    def test_lfsr_at(self):
        reg = lfsr_at(WIFI, 1, 50)
        expected = GaloisLFSR(WIFI, 1)
        for _ in range(50):
            expected.clock()
        assert reg.state == expected.state
