"""Unit tests for repro.scrambler.sonet_frame."""

import numpy as np
import pytest

from repro.scrambler.sonet_frame import (
    A1,
    A2,
    SonetFrameScrambler,
    build_frame,
    frame_bytes,
    framing_overhead_bytes,
)


def _payload(sts_n, seed=0):
    rng = np.random.default_rng(seed)
    size = frame_bytes(sts_n) - framing_overhead_bytes(sts_n)
    return bytes(rng.integers(0, 256, size=size).tolist())


class TestFrameConstruction:
    def test_sts1_geometry(self):
        assert frame_bytes(1) == 810
        assert framing_overhead_bytes(1) == 3

    def test_sts3_geometry(self):
        assert frame_bytes(3) == 2430
        assert framing_overhead_bytes(3) == 9

    def test_build_frame_prefix(self):
        frame = build_frame(3, _payload(3))
        assert list(frame[:6]) == [A1, A1, A1, A2, A2, A2]
        assert list(frame[6:9]) == [1, 2, 3]  # J0/Z0 trace bytes

    def test_payload_size_check(self):
        with pytest.raises(ValueError):
            build_frame(1, b"\x00" * 10)


class TestScrambling:
    @pytest.mark.parametrize("sts_n", [1, 3])
    def test_roundtrip(self, sts_n):
        frame = build_frame(sts_n, _payload(sts_n, seed=1))
        scrambler = SonetFrameScrambler(sts_n)
        scrambled = scrambler.scramble_frame(frame)
        assert scrambled != frame
        assert scrambler.descramble_frame(scrambled) == frame

    def test_framing_bytes_stay_clear(self):
        frame = build_frame(1, _payload(1, seed=2))
        scrambled = SonetFrameScrambler(1).scramble_frame(frame)
        assert scrambled[:3] == frame[:3]

    def test_scrambler_resets_per_frame(self):
        """Identical frames scramble identically (frame-synchronous)."""
        frame = build_frame(1, _payload(1, seed=3))
        scrambler = SonetFrameScrambler(1)
        assert scrambler.scramble_frame(frame) == scrambler.scramble_frame(frame)

    def test_all_zero_payload_is_whitened(self):
        frame = build_frame(1, bytes(807))
        scrambled = SonetFrameScrambler(1).scramble_frame(frame)
        payload = scrambled[3:]
        ones = sum(bin(b).count("1") for b in payload)
        assert 0.35 < ones / (8 * len(payload)) < 0.65

    def test_frame_size_check(self):
        with pytest.raises(ValueError):
            SonetFrameScrambler(1).scramble_frame(b"\x00" * 100)

    def test_sts_level_check(self):
        with pytest.raises(ValueError):
            SonetFrameScrambler(0)


class TestAlignment:
    def test_find_alignment_in_scrambled_stream(self):
        scrambler = SonetFrameScrambler(1)
        frames = [
            scrambler.scramble_frame(build_frame(1, _payload(1, seed=s)))
            for s in range(3)
        ]
        rng = np.random.default_rng(9)
        # Byte stream joined mid-frame with random garbage ahead.
        junk = bytes(rng.integers(0, 256, size=53).tolist())
        # Avoid a fake A1A2 in the junk for determinism.
        junk = bytes(b if b not in (A1,) else 0 for b in junk)
        stream = junk + b"".join(frames)
        offset = scrambler.find_frame_alignment(stream)
        assert offset == len(junk)

    def test_no_alignment_in_noise(self):
        assert SonetFrameScrambler(3).find_frame_alignment([0] * 500) is None

    def test_alignment_respects_sts_width(self):
        """STS-3 needs three A1s then three A2s; a single A1A2 is not it."""
        stream = [0] * 10 + [A1, A2] + [0] * 10
        assert SonetFrameScrambler(3).find_frame_alignment(stream) is None
