"""Unit tests for repro.mapping.packing, mapper and explorer."""

import numpy as np
import pytest

from repro.crc import BitwiseCRC, ETHERNET_CRC32, MPEG2_CRC32, get
from repro.mapping import (
    DesignSpaceExplorer,
    extract_common_patterns,
    map_crc,
    map_scrambler,
    pack_equations,
)
from repro.mapping.xor_network import XorEquation
from repro.picoga.cell import Net
from repro.scrambler import AdditiveScrambler, IEEE80211, IEEE80216E


@pytest.fixture(scope="module")
def messages():
    rng = np.random.default_rng(77)
    return [bytes(rng.integers(0, 256, size=n).tolist()) for n in (4, 46, 100, 257)]


class TestPacking:
    def test_wide_equation_tree(self):
        eq = XorEquation(name="w", leaves=frozenset(Net.input(i) for i in range(25)))
        cse = extract_common_patterns([eq])
        packed = pack_equations(cse, fanin=10)
        assert all(c.fanin <= 10 for c in packed.cells)
        # 25 leaves -> 3 first-level cells + 1 combiner.
        assert len(packed.cells) == 4

    def test_state_terms_stay_at_final_cell(self):
        eq = XorEquation(
            name="x",
            leaves=frozenset([Net.state(0), Net.state(1)] + [Net.input(i) for i in range(20)]),
        )
        packed = pack_equations(extract_common_patterns([eq]), fanin=10)
        final = packed.cells[-1]
        state_inputs = [n for n in final.inputs if n.kind.value == "state"]
        assert len(state_inputs) == 2

    def test_empty_equation_rejected_without_zero_net(self):
        eq = XorEquation(name="z", leaves=frozenset())
        with pytest.raises(ValueError):
            pack_equations(extract_common_patterns([eq]), fanin=10)


class TestCRCMapping:
    @pytest.mark.parametrize("method", ["derby", "direct"])
    @pytest.mark.parametrize("M", [8, 32])
    def test_netlist_matches_software(self, method, M, messages):
        mapped = map_crc(ETHERNET_CRC32, M, method=method)
        bw = BitwiseCRC(ETHERNET_CRC32)
        for m in messages:
            assert mapped.compute(m) == bw.compute(m)

    def test_non_reflected_spec(self, messages):
        mapped = map_crc(MPEG2_CRC32, 16)
        bw = BitwiseCRC(MPEG2_CRC32)
        for m in messages:
            assert mapped.compute(m) == bw.compute(m)

    def test_crc16_mapping(self, messages):
        spec = get("CRC-16/CCITT-FALSE")
        mapped = map_crc(spec, 64)
        bw = BitwiseCRC(spec)
        for m in messages:
            assert mapped.compute(m) == bw.compute(m)

    def test_derby_loop_is_single_cell(self):
        """The paper's central property: II = 1 at every look-ahead."""
        for M in (8, 32, 64, 128):
            mapped = map_crc(ETHERNET_CRC32, M, method="derby")
            assert mapped.update_op.initiation_interval == 1, M

    def test_direct_loop_deepens(self):
        """Pei-style mapping pays in the loop: II = 2 once A^M rows exceed
        the 10-input cell."""
        assert map_crc(ETHERNET_CRC32, 64, method="direct").update_op.initiation_interval > 1

    def test_two_operation_partitioning(self):
        """§4: CRC partitioned into a status-update op and an output op."""
        mapped = map_crc(ETHERNET_CRC32, 32, method="derby")
        assert mapped.output_op is not None
        assert mapped.update_op.n_state == 32
        assert mapped.output_op.n_state == 0

    def test_direct_method_single_operation(self):
        assert map_crc(ETHERNET_CRC32, 32, method="direct").output_op is None

    def test_cse_reduces_cells(self):
        with_cse = map_crc(ETHERNET_CRC32, 32, use_cse=True)
        without = map_crc(ETHERNET_CRC32, 32, use_cse=False)
        assert with_cse.report.taps_after_cse < without.report.taps_after_cse

    def test_cse_preserves_function(self, messages):
        bw = BitwiseCRC(ETHERNET_CRC32)
        mapped = map_crc(ETHERNET_CRC32, 32, use_cse=False)
        for m in messages:
            assert mapped.compute(m) == bw.compute(m)

    def test_m128_fits_the_array(self):
        """§4: 'PiCoGA is able to elaborate up to 128 bit per cycle'."""
        mapped = map_crc(ETHERNET_CRC32, 128)
        assert mapped.update_op.n_rows <= 24
        assert mapped.report.total_cells <= 384

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            map_crc(ETHERNET_CRC32, 8, method="magic")

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            map_crc(ETHERNET_CRC32, 0)

    def test_report_contents(self):
        report = map_crc(ETHERNET_CRC32, 32).report
        assert report.M == 32
        assert report.method == "derby"
        assert report.cse_savings > 0
        assert report.total_cells == report.update_cells + report.output_cells


class TestScramblerMapping:
    @pytest.mark.parametrize("M", [8, 32, 128])
    def test_matches_serial_scrambler(self, M):
        rng = np.random.default_rng(9)
        bits = [int(b) for b in rng.integers(0, 2, size=777)]
        mapped = map_scrambler(IEEE80216E, M)
        assert mapped.scramble_bits(bits) == AdditiveScrambler(IEEE80216E).scramble_bits(bits)

    def test_untransformed_variant(self):
        rng = np.random.default_rng(10)
        bits = [int(b) for b in rng.integers(0, 2, size=300)]
        mapped = map_scrambler(IEEE80211, 16, use_transform=False)
        assert mapped.scramble_bits(bits) == AdditiveScrambler(IEEE80211).scramble_bits(bits)

    def test_single_operation(self):
        """§5: the scrambler 'requires a single operation on PiCoGA'."""
        mapped = map_scrambler(IEEE80216E, 128)
        assert mapped.op.initiation_interval == 1
        assert mapped.op.n_rows <= 24

    def test_seed_override(self):
        mapped = map_scrambler(IEEE80216E, 32)
        bits = [0] * 64
        assert mapped.scramble_bits(bits, seed=0x1234) == AdditiveScrambler(
            IEEE80216E, seed=0x1234
        ).scramble_bits(bits)


class TestExplorer:
    @pytest.fixture(scope="class")
    def explorer(self):
        return DesignSpaceExplorer(ETHERNET_CRC32)

    def test_paper_max_factor(self, explorer):
        """The sweep must discover the paper's M = 128 ceiling."""
        assert explorer.max_feasible_m((32, 64, 128, 256)) == 128

    def test_m256_infeasible(self, explorer):
        point = explorer.evaluate(256)
        assert not point.feasible
        assert point.reason

    def test_kernel_bandwidth(self, explorer):
        point = explorer.evaluate(128)
        assert point.kernel_gbps == pytest.approx(25.6)

    def test_sweep_structure(self, explorer):
        points = explorer.sweep((8, 16, 32))
        assert [p.M for p in points] == [8, 16, 32]
        assert all(p.feasible for p in points)

    def test_f_vector_study_low_spread(self, explorer):
        """§4: different f vectors give no significant complexity change."""
        results = explorer.f_vector_study(32, candidates=5)
        assert len(results) >= 3
        values = list(results.values())
        spread = (max(values) - min(values)) / min(values)
        assert spread < 0.25
