"""Property-based tests for the LFSR state-space machinery.

These pin the paper's §2 algebra as executable properties: M serial steps
== one block step, the Derby transform commutes with the dynamics, and
the transformed loop is always companion when it exists.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.gf2 import GF2Polynomial
from repro.lfsr import (
    crc_statespace,
    derby_transform,
    expand_lookahead,
    scrambler_statespace,
)
from repro.lfsr.transform import TransformError

# Monic polynomials of degree 3..12 with a constant term (invertible A).
@st.composite
def lfsr_polys(draw):
    degree = draw(st.integers(min_value=3, max_value=12))
    body = draw(st.integers(min_value=0, max_value=(1 << (degree - 1)) - 1))
    return GF2Polynomial((1 << degree) | (body << 1) | 1)


@st.composite
def poly_and_state(draw):
    poly = draw(lfsr_polys())
    state = draw(st.integers(min_value=0, max_value=(1 << poly.degree) - 1))
    return poly, state


class TestLookaheadProperties:
    @given(ps=poly_and_state(), M=st.integers(min_value=1, max_value=24), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_block_equals_serial_crc(self, ps, M, seed):
        poly, state_int = ps
        ss = crc_statespace(poly)
        rng = np.random.default_rng(seed)
        bits = [int(b) for b in rng.integers(0, 2, size=2 * M)]
        x0 = ss.state_from_int(state_int)
        serial, _ = ss.simulate(x0, bits)
        la = expand_lookahead(ss, M)
        assert (la.run(x0, bits) == serial).all()

    @given(ps=poly_and_state(), M=st.integers(min_value=1, max_value=24))
    @settings(max_examples=40, deadline=None)
    def test_autonomous_block_step(self, ps, M):
        poly, state_int = ps
        ss = scrambler_statespace(poly)
        x0 = ss.state_from_int(state_int)
        serial, _ = ss.run_autonomous(x0, M)
        la = expand_lookahead(ss, M)
        assert (la.block_step(x0, [0] * M) == serial).all()

    @given(poly=lfsr_polys(), M=st.integers(min_value=1, max_value=16))
    @settings(max_examples=40, deadline=None)
    def test_power_consistency(self, poly, M):
        """A^M computed by repeated squaring equals M applications of A."""
        ss = crc_statespace(poly)
        la = expand_lookahead(ss, M)
        acc = ss.A ** 0
        for _ in range(M):
            acc = ss.A @ acc
        assert la.A_M == acc


class TestDerbyProperties:
    @given(ps=poly_and_state(), M=st.integers(min_value=1, max_value=16), seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_transform_preserves_dynamics(self, ps, M, seed):
        poly, state_int = ps
        ss = crc_statespace(poly)
        try:
            dt = derby_transform(ss, M)
        except TransformError:
            assume(False)  # A^M not cyclic for this poly/M; skip
            return
        rng = np.random.default_rng(seed)
        bits = [int(b) for b in rng.integers(0, 2, size=3 * M)]
        x0 = ss.state_from_int(state_int)
        serial, _ = ss.simulate(x0, bits)
        assert (dt.run(x0, bits) == serial).all()

    @given(poly=lfsr_polys(), M=st.integers(min_value=1, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_transformed_loop_companion_and_similar(self, poly, M):
        ss = crc_statespace(poly)
        try:
            dt = derby_transform(ss, M)
        except TransformError:
            assume(False)
            return
        assert dt.A_Mt.is_companion()
        assert dt.A_Mt.is_similar_to(dt.lookahead.A_M)

    @given(poly=lfsr_polys(), M=st.integers(min_value=1, max_value=16), seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_basis_change_roundtrip(self, poly, M, seed):
        ss = crc_statespace(poly)
        try:
            dt = derby_transform(ss, M)
        except TransformError:
            assume(False)
            return
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 2, size=poly.degree).astype(np.uint8)
        assert (dt.from_transformed(dt.to_transformed(x)) == x).all()

    @given(poly=lfsr_polys(), M=st.integers(min_value=1, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_loop_complexity_bounded(self, poly, M):
        """Companion loops have at most k-1 + popcount(charpoly) taps."""
        ss = crc_statespace(poly)
        try:
            dt = derby_transform(ss, M)
        except TransformError:
            assume(False)
            return
        k = poly.degree
        assert dt.loop_complexity() <= (k - 1) + k
