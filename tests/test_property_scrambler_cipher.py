"""Property-based tests for scramblers, spreading and ciphers."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cipher import CSS, E0
from repro.gf2.polynomial import GF2Polynomial
from repro.lfsr.jump import jump_back, jump_state
from repro.scrambler import (
    AdditiveScrambler,
    CATALOG,
    DirectSequenceSpreader,
    MultiplicativeScrambler,
    ParallelScrambler,
)

spec_idx = st.integers(min_value=0, max_value=len(CATALOG) - 1)
bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=300)


class TestScramblerProperties:
    @given(idx=spec_idx, bits=bit_lists)
    @settings(max_examples=40, deadline=None)
    def test_additive_involution(self, idx, bits):
        spec = CATALOG[idx]
        out = AdditiveScrambler(spec).scramble_bits(bits)
        assert AdditiveScrambler(spec).scramble_bits(out) == bits

    @given(idx=spec_idx, bits=bit_lists, M=st.sampled_from([1, 3, 8, 17, 64]))
    @settings(max_examples=30, deadline=None)
    def test_parallel_equals_serial(self, idx, bits, M):
        spec = CATALOG[idx]
        assert (
            ParallelScrambler(spec, M).scramble_bits(bits)
            == AdditiveScrambler(spec).scramble_bits(bits)
        )

    @given(idx=spec_idx, seed_raw=st.integers(min_value=1, max_value=(1 << 31) - 1),
           bits=bit_lists)
    @settings(max_examples=40, deadline=None)
    def test_multiplicative_self_sync(self, idx, seed_raw, bits):
        spec = CATALOG[idx]
        k = spec.degree
        wrong_state = seed_raw & ((1 << k) - 1)
        scrambled = MultiplicativeScrambler(spec.poly, 0).scramble_bits(bits)
        rx = MultiplicativeScrambler(spec.poly, wrong_state)
        out = rx.descramble_bits(scrambled)
        assert out[k:] == bits[k:]

    @given(idx=spec_idx, bits=bit_lists, factor=st.integers(min_value=1, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_spreading_roundtrip(self, idx, bits, factor):
        spec = CATALOG[idx]
        spreader = DirectSequenceSpreader(spec, factor)
        result = spreader.despread(spreader.spread(bits))
        assert result.bits == bits


class TestJumpProperties:
    @given(idx=spec_idx,
           seed_raw=st.integers(min_value=1, max_value=(1 << 31) - 1),
           a=st.integers(min_value=0, max_value=10**6),
           b=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_jump_additivity(self, idx, seed_raw, a, b):
        poly = CATALOG[idx].poly
        seed = seed_raw & ((1 << poly.degree) - 1)
        assume(seed != 0)
        one_hop = jump_state(poly, seed, a + b)
        two_hops = jump_state(poly, jump_state(poly, seed, a), b)
        assert one_hop == two_hops

    @given(idx=spec_idx,
           seed_raw=st.integers(min_value=1, max_value=(1 << 31) - 1),
           steps=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_jump_back_inverts(self, idx, seed_raw, steps):
        poly = CATALOG[idx].poly
        seed = seed_raw & ((1 << poly.degree) - 1)
        assume(seed != 0)
        assert jump_back(poly, jump_state(poly, seed, steps), steps) == seed


class TestCipherProperties:
    @given(seed=st.binary(min_size=16, max_size=16), data=st.binary(min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_e0_roundtrip(self, seed, data):
        encrypted = E0.from_seed(seed).encrypt(data)
        assert E0.from_seed(seed).encrypt(encrypted) == data

    @given(key=st.binary(min_size=5, max_size=5), data=st.binary(min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_css_roundtrip(self, key, data):
        scrambled = CSS(key).scramble(data)
        assert CSS(key).descramble(scrambled) == data

    @given(key=st.binary(min_size=5, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_css_registers_never_null(self, key):
        cipher = CSS(key)
        r17, r25 = cipher.registers
        assert r17 != 0 and r25 != 0
        cipher.keystream_bytes(32)
        r17, r25 = cipher.registers
        assert r17 != 0 and r25 != 0

    @given(seed=st.binary(min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_e0_carry_stays_two_bits(self, seed):
        cipher = E0.from_seed(seed)
        for _ in range(200):
            cipher.clock()
            assert 0 <= cipher.carry <= 3
