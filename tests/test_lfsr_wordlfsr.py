"""Word-oriented σ-LFSR kernels: specs, fast-vs-reference, periods.

The two realizations under test: `WordLFSR` (the integer hot path, one
machine word of keystream per step) and `WordLFSRReference` (the
GF(2) state-matrix oracle clocking one bit of the nw-bit state at a
time).  The `word:wordlfsr-vs-reference` fuzz oracle keeps the pair
standing on random cases; here the mechanics are pinned.
"""

import pytest

from repro.errors import SpecError
from repro.lfsr import (
    WORD8,
    WORD32,
    WORD64,
    WordLFSR,
    WordLFSRReference,
    WordLFSRSpec,
    check_maximal_period,
    seed_words_from_bytes,
    sigma_matrix,
)
from repro.lfsr.wordlfsr import CURATED, get


class TestSpecs:
    def test_curated_specs_are_consistent(self):
        for spec in CURATED:
            assert spec.sigma_poly.degree == spec.word_bits
            assert spec.state_bits == spec.words * spec.word_bits
            assert spec.characteristic_polynomial().degree == spec.state_bits

    def test_get_by_name(self):
        assert get("word64") is WORD64
        assert get("WORD32") is WORD32
        with pytest.raises(SpecError, match="unknown word-LFSR spec"):
            get("word128")

    def test_word8_is_maximal_period(self):
        # Small enough to verify the multiplicative order exhaustively.
        assert check_maximal_period(WORD8)
        assert WORD8.period == (1 << 16) - 1

    def test_wide_specs_have_primitive_characteristic_polynomials(self):
        for spec in (WORD32, WORD64):
            assert check_maximal_period(spec)

    def test_sigma_matrix_matches_shift_xor_step(self):
        # σ is multiply-by-x mod p: column j of the matrix must equal
        # x^(j+1) mod p as a bit vector.
        for spec in CURATED:
            sig = sigma_matrix(spec.sigma_poly)
            w = spec.word_bits
            for j in range(w):
                value = 1 << j
                msb = (value >> (w - 1)) & 1
                shifted = (value << 1) & ((1 << w) - 1)
                if msb:
                    shifted ^= spec.sigma_poly.coeffs & ((1 << w) - 1)
                col = sum(int(sig[i, j]) << i for i in range(w))
                assert col == shifted

    def test_spec_validation(self):
        with pytest.raises(SpecError):
            WordLFSRSpec(
                name="bad", word_bits=8, words=2,
                sigma_poly=WORD8.sigma_poly, taps=(),
            )
        with pytest.raises(SpecError):
            WordLFSRSpec(
                name="bad", word_bits=8, words=2,
                sigma_poly=WORD8.sigma_poly, taps=((5, 0),),
            )


class TestFastVsReference:
    @pytest.mark.parametrize("spec", CURATED, ids=lambda s: s.name)
    def test_keystreams_agree(self, spec):
        seed = seed_words_from_bytes(spec, b"fast-vs-reference")
        fast = WordLFSR(spec, seed)
        oracle = WordLFSRReference(spec, seed)
        assert fast.keystream_bytes(96) == oracle.keystream_bytes(96)

    def test_bits_words_bytes_are_one_stream(self):
        seed = seed_words_from_bytes(WORD32, b"views")
        words = WordLFSR(WORD32, seed).keystream_words(8)
        data = WordLFSR(WORD32, seed).keystream_bytes(32)
        bits = WordLFSR(WORD32, seed).keystream_bits(256)
        assert data == b"".join(w.to_bytes(4, "big") for w in words)
        packed = bytes(
            sum(bits[i + j] << (7 - j) for j in range(8))
            for i in range(0, 256, 8)
        )
        assert packed == data

    def test_step_matches_keystream_words(self):
        seed = seed_words_from_bytes(WORD64, b"step")
        engine = WordLFSR(WORD64, seed)
        stepped = [engine.step() for _ in range(6)]
        assert stepped == WordLFSR(WORD64, seed).keystream_words(6)

    def test_zero_state_rejected(self):
        with pytest.raises(SpecError):
            WordLFSR(WORD32, [0] * WORD32.words)

    def test_state_words_out_of_range_rejected(self):
        with pytest.raises(SpecError):
            WordLFSR(WORD8, [1 << 8, 1])


class TestSeeding:
    def test_seed_words_are_deterministic_and_in_range(self):
        for spec in CURATED:
            a = seed_words_from_bytes(spec, b"material")
            assert a == seed_words_from_bytes(spec, b"material")
            assert len(a) == spec.words
            assert any(a)
            assert all(0 <= w < (1 << spec.word_bits) for w in a)

    def test_distinct_material_distinct_seeds(self):
        assert seed_words_from_bytes(WORD64, b"a") != seed_words_from_bytes(
            WORD64, b"b"
        )

    def test_empty_material_rejected(self):
        with pytest.raises(SpecError):
            seed_words_from_bytes(WORD64, b"")
