"""Unit tests for repro.dream: system model, drivers, processor."""

import numpy as np
import pytest

from repro.crc import BitwiseCRC, ETHERNET_CRC32, MPEG2_CRC32
from repro.dream import (
    CRCAccelerator,
    DreamSystem,
    RiscControlModel,
    ScramblerAccelerator,
)
from repro.mapping import map_crc, map_scrambler
from repro.scrambler import AdditiveScrambler, IEEE80216E


@pytest.fixture(scope="module")
def system():
    return DreamSystem()


@pytest.fixture(scope="module")
def mapped128():
    return map_crc(ETHERNET_CRC32, 128)


@pytest.fixture(scope="module")
def mapped32():
    return map_crc(ETHERNET_CRC32, 32)


@pytest.fixture(scope="module")
def messages():
    rng = np.random.default_rng(2)
    return [bytes(rng.integers(0, 256, size=n).tolist()) for n in (46, 100, 1518)]


class TestExecutedCRC:
    def test_crc_correct(self, system, mapped128, messages):
        bw = BitwiseCRC(ETHERNET_CRC32)
        for m in messages:
            crc, _ = system.execute_crc(mapped128, m)
            assert crc == bw.compute(m)

    def test_non_reflected_with_init_correction(self, system, messages):
        mapped = map_crc(MPEG2_CRC32, 64)
        bw = BitwiseCRC(MPEG2_CRC32)
        for m in messages:
            crc, _ = system.execute_crc(mapped, m)
            assert crc == bw.compute(m)

    def test_partial_chunk_head_padding(self, system, mapped128):
        """46-byte minimum Ethernet frame: 368 bits, not a multiple of 128."""
        bw = BitwiseCRC(ETHERNET_CRC32)
        data = bytes(range(46))
        crc, _ = system.execute_crc(mapped128, data)
        assert crc == bw.compute(data)

    def test_empty_message_supported(self, system, mapped128):
        crc, perf = system.execute_crc(mapped128, b"")
        assert crc == BitwiseCRC(ETHERNET_CRC32).compute(b"")
        assert perf.payload_bits == 0

    def test_analytic_matches_executed(self, system, mapped128, messages):
        for m in messages:
            _, executed = system.execute_crc(mapped128, m)
            predicted = system.crc_single_performance(mapped128, 8 * len(m))
            assert executed.total_cycles == predicted.total_cycles, len(m)

    def test_analytic_matches_executed_direct_method(self, system, messages):
        mapped = map_crc(ETHERNET_CRC32, 32, method="direct")
        bw = BitwiseCRC(ETHERNET_CRC32)
        for m in messages:
            crc, executed = system.execute_crc(mapped, m)
            assert crc == bw.compute(m)
            predicted = system.crc_single_performance(mapped, 8 * len(m))
            assert executed.total_cycles == predicted.total_cycles


class TestExecutedInterleaved:
    def test_batch_correct(self, system, mapped128, messages):
        bw = BitwiseCRC(ETHERNET_CRC32)
        batch = messages * 4  # 12 messages, mixed lengths
        crcs, _ = system.execute_crc_interleaved(mapped128, batch)
        assert crcs == [bw.compute(m) for m in batch]

    def test_analytic_matches_executed_equal_lengths(self, system, mapped32):
        batch = [bytes(range(46))] * 8
        _, executed = system.execute_crc_interleaved(mapped32, batch)
        predicted = system.crc_interleaved_performance(mapped32, 368, 8)
        assert executed.total_cycles == predicted.total_cycles

    def test_interleaving_beats_single_for_short_messages(self, system, mapped128):
        single = system.crc_single_performance(mapped128, 368)
        batch = system.crc_interleaved_performance(mapped128, 368, 32)
        assert batch.throughput_bps > 3 * single.throughput_bps

    def test_empty_batch_rejected(self, system, mapped128):
        with pytest.raises(ValueError):
            system.execute_crc_interleaved(mapped128, [])


class TestExecutedScrambler:
    def test_bits_correct(self, system):
        mapped = map_scrambler(IEEE80216E, 64)
        rng = np.random.default_rng(4)
        bits = [int(b) for b in rng.integers(0, 2, size=999)]
        out, _ = system.execute_scrambler(mapped, bits)
        assert out == AdditiveScrambler(IEEE80216E).scramble_bits(bits)

    def test_analytic_matches_executed(self, system):
        mapped = map_scrambler(IEEE80216E, 64)
        bits = [1] * 640
        _, executed = system.execute_scrambler(mapped, bits)
        predicted = system.scrambler_performance(mapped, 640)
        assert executed.total_cycles == predicted.total_cycles


class TestAnalyticShapes:
    def test_peak_bandwidth_25gbps(self, system, mapped128):
        perf = system.crc_kernel_performance(mapped128, 128 * 100000)
        assert perf.throughput_gbps == pytest.approx(25.6)

    def test_throughput_monotone_in_length(self, system, mapped128):
        values = [
            system.crc_single_performance(mapped128, bits).throughput_bps
            for bits in (368, 1024, 4096, 12144, 65536)
        ]
        assert values == sorted(values)

    def test_gbps_inside_ethernet_window(self, system):
        """§5: Gbit/s speeds for M = 32/64/128 across 368..12144 bits."""
        for M in (32, 64, 128):
            mapped = map_crc(ETHERNET_CRC32, M)
            for bits in (368, 12144):
                perf = system.crc_single_performance(mapped, bits)
                assert perf.throughput_bps > 0.5e9, (M, bits)

    def test_larger_m_wins_at_long_messages(self, system, mapped32, mapped128):
        p32 = system.crc_single_performance(mapped32, 65536)
        p128 = system.crc_single_performance(mapped128, 65536)
        assert p128.throughput_bps > 2 * p32.throughput_bps

    def test_invalid_lengths(self, system, mapped32):
        with pytest.raises(ValueError):
            system.crc_single_performance(mapped32, 0)
        with pytest.raises(ValueError):
            system.crc_interleaved_performance(mapped32, 100, 0)


class TestLedgerEquivalenceSweep:
    """Randomized analytic-vs-executed equivalence: for any draw of
    (spec, M, message length, batch size) the Fig. 4/5/8 closed-form
    cycle totals must equal the co-simulated ledger exactly — the
    analytic mode is a shortcut, never an approximation."""

    SPECS = (ETHERNET_CRC32, MPEG2_CRC32)
    FACTORS = (8, 32, 64)

    def test_single_message_sweep(self, system):
        rng = np.random.default_rng(0x5EED)
        bw = {s.name: BitwiseCRC(s) for s in self.SPECS}
        for _ in range(12):
            spec = self.SPECS[int(rng.integers(len(self.SPECS)))]
            M = int(self.FACTORS[int(rng.integers(len(self.FACTORS)))])
            data = bytes(rng.integers(0, 256, size=int(rng.integers(1, 300))).tolist())
            mapped = system.compile_crc(spec, M)
            crc, executed = system.execute_crc(mapped, data)
            assert crc == bw[spec.name].compute(data), (spec.name, M)
            predicted = system.crc_single_performance(mapped, 8 * len(data))
            assert executed.total_cycles == predicted.total_cycles, (
                spec.name,
                M,
                len(data),
            )

    def test_interleaved_sweep(self, system):
        rng = np.random.default_rng(0xBA7C)
        for _ in range(8):
            spec = self.SPECS[int(rng.integers(len(self.SPECS)))]
            M = int(self.FACTORS[int(rng.integers(len(self.FACTORS)))])
            n = int(rng.integers(2, 13))
            nbytes = int(rng.integers(1, 200))
            batch = [
                bytes(rng.integers(0, 256, size=nbytes).tolist()) for _ in range(n)
            ]
            mapped = system.compile_crc(spec, M)
            crcs, executed = system.execute_crc_interleaved(mapped, batch)
            assert crcs == [BitwiseCRC(spec).compute(m) for m in batch]
            predicted = system.crc_interleaved_performance(mapped, 8 * nbytes, n)
            assert executed.total_cycles == predicted.total_cycles, (
                spec.name,
                M,
                n,
                nbytes,
            )

    def test_scrambler_sweep(self, system):
        rng = np.random.default_rng(0x5C2A)
        serial = AdditiveScrambler(IEEE80216E)
        for M in (16, 64):
            mapped = system.compile_scrambler(IEEE80216E, M)
            for _ in range(4):
                bits = [int(b) for b in rng.integers(0, 2, size=int(rng.integers(1, 700)))]
                out, executed = system.execute_scrambler(mapped, bits)
                assert out == serial.scramble_bits(bits)
                predicted = system.scrambler_performance(mapped, len(bits))
                assert executed.total_cycles == predicted.total_cycles, (M, len(bits))


class TestAccelerators:
    def test_crc_accelerator_end_to_end(self, messages):
        acc = CRCAccelerator(ETHERNET_CRC32, M=32)
        bw = BitwiseCRC(ETHERNET_CRC32)
        for m in messages:
            assert acc.compute(m) == bw.compute(m)

    def test_crc_accelerator_batch(self, messages):
        acc = CRCAccelerator(ETHERNET_CRC32, M=32)
        bw = BitwiseCRC(ETHERNET_CRC32)
        assert acc.compute_batch(messages) == [bw.compute(m) for m in messages]

    def test_kernel_bandwidth(self):
        acc = CRCAccelerator(ETHERNET_CRC32, M=128)
        assert acc.kernel_bandwidth_gbps() == pytest.approx(25.6)

    def test_scrambler_accelerator(self):
        acc = ScramblerAccelerator(IEEE80216E, M=32)
        bits = [1, 0, 1] * 50
        assert acc.scramble_bits(bits) == AdditiveScrambler(IEEE80216E).scramble_bits(bits)
        assert acc.kernel_bandwidth_gbps() == pytest.approx(6.4)


class TestControlModel:
    def test_defaults(self):
        model = RiscControlModel()
        assert model.single_message_control() == 60
        assert model.interleaved_control(32) == 60 + 32 * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RiscControlModel(message_setup_cycles=-1)
        with pytest.raises(ValueError):
            RiscControlModel().interleaved_control(0)
