"""Unit tests for repro.crc.interleaved (Kong–Parhi interleaving)."""

import numpy as np
import pytest

from repro.crc import BitwiseCRC, ETHERNET_CRC32, InterleavedCRC, get


@pytest.fixture(scope="module")
def messages():
    rng = np.random.default_rng(11)
    return [bytes(rng.integers(0, 256, size=n).tolist()) for n in (4, 46, 64, 100, 9, 16)]


class TestBatch:
    def test_matches_per_message_crc(self, messages):
        il = InterleavedCRC(ETHERNET_CRC32, 32, ways=8)
        bw = BitwiseCRC(ETHERNET_CRC32)
        assert il.compute_batch(messages) == [bw.compute(m) for m in messages]

    def test_mixed_lengths_with_tails(self, messages):
        """Messages whose bit counts are not multiples of M."""
        il = InterleavedCRC(ETHERNET_CRC32, 128, ways=8)
        bw = BitwiseCRC(ETHERNET_CRC32)
        assert il.compute_batch(messages) == [bw.compute(m) for m in messages]

    def test_batch_size_limit(self, messages):
        il = InterleavedCRC(ETHERNET_CRC32, 32, ways=2)
        with pytest.raises(ValueError):
            il.compute_batch(messages[:3])

    def test_invalid_ways(self):
        with pytest.raises(ValueError):
            InterleavedCRC(ETHERNET_CRC32, 32, ways=0)

    def test_paper_configuration(self, messages):
        """Fig. 5 interleaves 32 messages at once."""
        il = InterleavedCRC(ETHERNET_CRC32, 32, ways=32)
        batch = (messages * 6)[:32]
        bw = BitwiseCRC(ETHERNET_CRC32)
        assert il.compute_batch(batch) == [bw.compute(m) for m in batch]


class TestStream:
    def test_stream_splits_into_batches(self, messages):
        il = InterleavedCRC(get("CRC-16/X-25"), 16, ways=2)
        bw = BitwiseCRC(get("CRC-16/X-25"))
        stream = messages * 3
        assert il.compute_stream(stream) == [bw.compute(m) for m in stream]

    def test_empty_stream(self):
        il = InterleavedCRC(ETHERNET_CRC32, 32)
        assert il.compute_stream([]) == []

    def test_properties(self):
        il = InterleavedCRC(ETHERNET_CRC32, 64, ways=16)
        assert il.M == 64
        assert il.ways == 16
        assert il.spec is ETHERNET_CRC32
