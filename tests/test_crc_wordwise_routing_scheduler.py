"""Unit tests for WordwiseCRC, routing estimation and the workload
scheduler."""

import numpy as np
import pytest

from repro.crc import BitwiseCRC, CATALOG, ETHERNET_CRC32, WordwiseCRC, get
from repro.dream import Job, WorkloadScheduler
from repro.mapping import map_crc, map_scrambler
from repro.picoga import estimate_routing
from repro.scrambler import IEEE80216E


@pytest.fixture(scope="module")
def messages():
    rng = np.random.default_rng(0xAB)
    return [bytes(rng.integers(0, 256, size=n).tolist()) for n in (0, 3, 46, 200)]


class TestWordwiseCRC:
    @pytest.mark.parametrize("word_bits", [8, 16, 32, 64])
    def test_equals_bitwise_crc32(self, word_bits, messages):
        engine = WordwiseCRC(ETHERNET_CRC32, word_bits)
        bw = BitwiseCRC(ETHERNET_CRC32)
        for m in messages:
            assert engine.compute(m) == bw.compute(m)

    def test_across_catalog_sample(self, messages):
        for name in ("CRC-16/CCITT-FALSE", "CRC-32/MPEG-2", "CRC-8", "CRC-24/OPENPGP"):
            spec = get(name)
            engine = WordwiseCRC(spec, 16)
            bw = BitwiseCRC(spec)
            for m in messages:
                assert engine.compute(m) == bw.compute(m), name

    def test_check_values(self):
        for spec in CATALOG[:10]:
            assert WordwiseCRC(spec, 32).compute(b"123456789") == spec.check, spec.name

    def test_invalid_word_size(self):
        with pytest.raises(ValueError):
            WordwiseCRC(ETHERNET_CRC32, 0)

    def test_verify(self):
        engine = WordwiseCRC(ETHERNET_CRC32)
        assert engine.verify(b"123456789", 0xCBF43926)


class TestRoutingEstimate:
    def test_boundaries_count(self):
        op = map_crc(ETHERNET_CRC32, 32).update_op
        report = estimate_routing(op)
        assert len(report.boundaries) == op.n_rows - 1

    def test_paper_design_point_not_congested(self):
        """M = 128 fits the channel model — consistent with it being the
        paper's realizable maximum."""
        op = map_crc(ETHERNET_CRC32, 128).update_op
        report = estimate_routing(op)
        assert not report.congested
        assert 0 < report.peak_utilization <= 1

    def test_demand_grows_with_m(self):
        small = estimate_routing(map_crc(ETHERNET_CRC32, 16).update_op)
        large = estimate_routing(map_crc(ETHERNET_CRC32, 128).update_op)
        assert large.peak_crossings > small.peak_crossings

    def test_bundles_granularity(self):
        report = estimate_routing(map_crc(ETHERNET_CRC32, 32).update_op)
        for crossings, bundles in zip(report.boundaries, report.bundles()):
            assert bundles == -(-crossings // 2)

    def test_empty_op_report(self):
        from repro.picoga import Net, PicogaOperation, xor_cell

        op = PicogaOperation(
            name="tiny", n_inputs=1, n_state=0,
            cells=[xor_cell(0, [Net.input(0)])],
            outputs=[Net.cell(0)], next_state=[],
        )
        report = estimate_routing(op)
        assert report.boundaries == []
        assert report.peak_crossings == 0


class TestWorkloadScheduler:
    @pytest.fixture(scope="class")
    def personalities(self):
        return {
            "eth": map_crc(ETHERNET_CRC32, 64),
            "ccitt": map_crc(get("CRC-16/CCITT-FALSE"), 64),
            "x25": map_crc(get("CRC-16/X-25"), 64),
            "wimax": map_scrambler(IEEE80216E, 64),
        }

    def test_single_personality_no_reload_churn(self, personalities):
        scheduler = WorkloadScheduler({"eth": personalities["eth"]})
        report = scheduler.run([Job("eth", 1024)] * 10)
        assert report.jobs == 10
        assert report.reloads == 1  # initial load only
        assert report.switches == 0

    def test_two_crc_personalities_exceed_contexts(self, personalities):
        """Two Derby CRCs need 4 contexts total — they fit; adding a third
        personality starts thrashing."""
        scheduler = WorkloadScheduler(
            {"eth": personalities["eth"], "ccitt": personalities["ccitt"]}
        )
        trace = [Job("eth", 1024), Job("ccitt", 1024)] * 5
        report = scheduler.run(trace)
        assert report.reloads == 2  # one initial load each, then resident

    def test_three_crc_personalities_thrash(self, personalities):
        scheduler = WorkloadScheduler(
            {k: personalities[k] for k in ("eth", "ccitt", "x25")}
        )
        trace = [Job("eth", 512), Job("ccitt", 512), Job("x25", 512)] * 4
        report = scheduler.run(trace)
        assert report.reloads > 3  # round-robin over 6 needed contexts
        assert report.configuration_overhead > 0.2

    def test_scrambler_plus_crc_fit(self, personalities):
        scheduler = WorkloadScheduler(
            {"eth": personalities["eth"], "wimax": personalities["wimax"]}
        )
        trace = [Job("eth", 2048), Job("wimax", 2048)] * 6
        report = scheduler.run(trace)
        assert report.reloads == 2
        assert report.switches >= 10

    def test_unknown_personality(self, personalities):
        scheduler = WorkloadScheduler({"eth": personalities["eth"]})
        with pytest.raises(KeyError):
            scheduler.run([Job("ghost", 100)])

    def test_job_validation(self):
        with pytest.raises(ValueError):
            Job("x", 0)

    def test_empty_personalities(self):
        with pytest.raises(ValueError):
            WorkloadScheduler({})

    def test_throughput_accounting(self, personalities):
        scheduler = WorkloadScheduler({"eth": personalities["eth"]})
        report = scheduler.run([Job("eth", 12144)] * 8)
        bps = report.throughput_bps(8 * 12144, 200e6)
        assert 1e9 < bps < 12.8e9  # below the M=64 kernel, above a Gbit/s
