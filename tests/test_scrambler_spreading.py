"""Unit tests for repro.scrambler.spreading (DSSS spreading)."""

import numpy as np
import pytest

from repro.scrambler import DirectSequenceSpreader, PRBS9, PRBS15


@pytest.fixture
def data_bits():
    rng = np.random.default_rng(21)
    return [int(b) for b in rng.integers(0, 2, size=100)]


class TestConstruction:
    def test_bad_factor(self):
        with pytest.raises(ValueError):
            DirectSequenceSpreader(PRBS9, 0)

    def test_bad_seed(self):
        with pytest.raises(ValueError):
            DirectSequenceSpreader(PRBS9, 8, seed=0)

    def test_processing_gain(self):
        assert DirectSequenceSpreader(PRBS9, 10).processing_gain_db() == pytest.approx(10.0)
        assert DirectSequenceSpreader(PRBS9, 100).processing_gain_db() == pytest.approx(20.0)


class TestSpreadDespread:
    @pytest.mark.parametrize("factor", [1, 4, 8, 11, 16])
    def test_clean_roundtrip(self, factor, data_bits):
        spreader = DirectSequenceSpreader(PRBS15, factor)
        chips = spreader.spread(data_bits)
        assert len(chips) == factor * len(data_bits)
        result = spreader.despread(chips)
        assert result.bits == data_bits
        assert all(c == factor for c in result.correlations)

    def test_chip_rate_exceeds_bit_rate(self, data_bits):
        """The defining property of spreading vs scrambling (paper §1)."""
        spreader = DirectSequenceSpreader(PRBS15, 8)
        assert len(spreader.spread(data_bits)) == 8 * len(data_bits)

    def test_spread_output_is_whitened(self):
        spreader = DirectSequenceSpreader(PRBS15, 16)
        chips = spreader.spread([0] * 64)  # constant input
        assert 0.3 < sum(chips) / len(chips) < 0.7

    def test_despread_length_check(self):
        with pytest.raises(ValueError):
            DirectSequenceSpreader(PRBS15, 8).despread([0] * 9)


class TestProcessingGain:
    def test_tolerates_chip_errors_below_half(self, data_bits):
        """Up to floor((factor-1)/2) chip errors per bit are corrected."""
        factor = 11
        spreader = DirectSequenceSpreader(PRBS15, factor)
        chips = spreader.spread(data_bits)
        rng = np.random.default_rng(5)
        corrupted = list(chips)
        for bit_idx in range(len(data_bits)):
            positions = rng.choice(factor, size=5, replace=False)  # 5 < 11/2 + 1
            for p in positions:
                corrupted[bit_idx * factor + p] ^= 1
        result = spreader.despread(corrupted)
        assert result.bits == data_bits
        assert all(c == factor - 5 for c in result.correlations)

    def test_fails_beyond_half(self, data_bits):
        factor = 8
        spreader = DirectSequenceSpreader(PRBS15, factor)
        chips = spreader.spread(data_bits)
        corrupted = [c ^ 1 for c in chips]  # invert everything
        result = spreader.despread(corrupted)
        assert result.bits == [b ^ 1 for b in data_bits]  # fully flipped

    def test_correlation_reports_degradation(self, data_bits):
        spreader = DirectSequenceSpreader(PRBS15, 16)
        chips = spreader.spread(data_bits)
        chips[3] ^= 1  # one chip error in bit 0
        result = spreader.despread(chips)
        assert result.correlations[0] == 15
        assert result.correlations[1] == 16

    def test_seed_mismatch_destroys_correlation(self, data_bits):
        tx = DirectSequenceSpreader(PRBS15, 16, seed=0x1111)
        rx = DirectSequenceSpreader(PRBS15, 16, seed=0x2222)
        result = rx.despread(tx.spread(data_bits))
        errors = sum(a != b for a, b in zip(result.bits, data_bits))
        assert errors > len(data_bits) // 4  # essentially uncorrelated
