"""The error taxonomy: hierarchy, back-compat parents, and messages.

Every public entry point raises a :mod:`repro.errors` type for invalid
input, and each type also inherits the builtin exception historically
raised at that call site — so pre-taxonomy callers catching ValueError or
KeyError keep working.
"""

import pytest

from repro.errors import (
    CompileError,
    ReproError,
    SpecError,
    StreamError,
    ValidationError,
)
from repro.lfsr.transform import TransformError


class TestHierarchy:
    def test_all_subclass_repro_error(self):
        for exc_type in (SpecError, ValidationError, StreamError, CompileError):
            assert issubclass(exc_type, ReproError)

    def test_backward_compatible_parents(self):
        assert issubclass(SpecError, ValueError)
        assert issubclass(SpecError, KeyError)
        assert issubclass(ValidationError, ValueError)
        assert issubclass(StreamError, KeyError)
        assert issubclass(CompileError, RuntimeError)

    def test_transform_error_reparented(self):
        # Derby feasibility failures are compile-time errors, but the
        # historical ValueError contract must keep working.
        assert issubclass(TransformError, CompileError)
        assert issubclass(TransformError, ValueError)
        assert issubclass(TransformError, ReproError)

    def test_one_except_clause_catches_everything(self):
        for exc in (
            SpecError("bad spec"),
            ValidationError("bad value"),
            StreamError("no stream"),
            CompileError("no compile"),
        ):
            with pytest.raises(ReproError):
                raise exc


class TestMessages:
    def test_str_is_plain_message(self):
        # KeyError's repr-quoting must not leak into subclasses that
        # inherit from it.
        assert str(SpecError("unknown standard")) == "unknown standard"
        assert str(StreamError("unknown stream 7")) == "unknown stream 7"

    def test_multi_arg_str(self):
        assert str(ReproError("a", "b")) == "a, b"

    def test_empty_args(self):
        assert str(ReproError()) == ""


class TestRaisedAtEntryPoints:
    def test_unknown_crc_standard(self):
        from repro.crc import get

        with pytest.raises(SpecError, match="unknown CRC standard"):
            get("CRC-9000")
        with pytest.raises(KeyError):  # historical contract
            get("CRC-9000")

    def test_unknown_scrambler_standard(self):
        from repro.scrambler.specs import get

        with pytest.raises(SpecError):
            get("NOT-A-SCRAMBLER")

    def test_compile_error_wraps_builder_failure(self):
        from repro.engine import CompileCache

        cache = CompileCache(capacity=2)

        def boom():
            raise ZeroDivisionError("kernel exploded")

        with pytest.raises(CompileError, match="kernel exploded"):
            cache.get("key", boom)
        # Nothing cached on failure.
        assert "key" not in cache

    def test_typed_errors_pass_through_cache_unwrapped(self):
        from repro.engine import CompileCache

        cache = CompileCache(capacity=2)

        def invalid():
            raise ValidationError("bad M")

        with pytest.raises(ValidationError) as err:
            cache.get("key", invalid)
        assert not isinstance(err.value, CompileError)
