"""Smoke tests: every shipped example must run cleanly end to end.

Each example contains its own internal assertions (functional checks
against the software engines), so a zero exit status is a meaningful
verification, not just an import check.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{name} produced no output"
