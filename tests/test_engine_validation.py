"""Input validation across the engine stack.

Every public engine/pipeline entry point must reject bad input — non-bit
values, wrong-width seeds and registers, unknown stream ids, bad block
factors — with a typed :mod:`repro.errors` exception, and must do so
*before* any work (or any early return) happens.
"""

import pytest

from repro.crc import BitwiseCRC, ETHERNET_CRC32, get as get_crc
from repro.engine import (
    BatchAdditiveScrambler,
    BatchCRC,
    BatchMultiplicativeScrambler,
    CRCPipeline,
    ScramblerPipeline,
)
from repro.errors import SpecError, StreamError, ValidationError
from repro.gf2.polynomial import GF2Polynomial
from repro.scrambler import AdditiveScrambler
from repro.scrambler.multiplicative import MultiplicativeScrambler
from repro.scrambler.specs import get as get_scrambler

IEEE = get_scrambler("IEEE-802.16e")
MULT_POLY = GF2Polynomial.from_exponents([7, 6, 0])


class TestFactorAndMethod:
    @pytest.mark.parametrize("bad", [0, -3, 2.5, True, "8"])
    def test_bad_factor_rejected(self, bad):
        with pytest.raises(ValidationError):
            BatchCRC(ETHERNET_CRC32, bad)

    def test_bad_method_rejected(self):
        with pytest.raises(ValidationError, match="lookahead"):
            BatchCRC(ETHERNET_CRC32, 8, method="quantum")

    def test_pipeline_bad_factor(self):
        with pytest.raises(ValidationError):
            CRCPipeline(ETHERNET_CRC32, 0)


class TestBitValidation:
    def test_bitwise_crc_rejects_non_bits(self):
        with pytest.raises(ValidationError, match=r"bits\[1\] is 2"):
            BitwiseCRC(ETHERNET_CRC32).compute_bits([1, 2, 0])

    def test_additive_scrambler_rejects_non_bits(self):
        with pytest.raises(ValidationError):
            AdditiveScrambler(IEEE).scramble_bits([0, 1, 7])

    def test_multiplicative_scrambler_rejects_non_bits(self):
        with pytest.raises(ValidationError):
            MultiplicativeScrambler(MULT_POLY).scramble_bits([0, -1])

    def test_batch_crc_rejects_non_bit_stream(self):
        with pytest.raises(ValidationError):
            BatchCRC(ETHERNET_CRC32, 8).compute_bits_batch([[0, 1], [1, 9]])

    def test_pipeline_feed_rejects_non_bits(self):
        pipe = CRCPipeline(ETHERNET_CRC32, 8)
        sid = pipe.open()
        with pytest.raises(ValidationError):
            pipe.feed_bits(sid, [0, 1, "x"])


class TestSeedsAndRegisters:
    def test_additive_scrambler_zero_seed(self):
        with pytest.raises(ValidationError, match="zero"):
            AdditiveScrambler(IEEE, seed=0)

    def test_additive_scrambler_wide_seed(self):
        with pytest.raises(ValidationError):
            AdditiveScrambler(IEEE, seed=1 << IEEE.degree)

    def test_multiplicative_state_width(self):
        with pytest.raises(ValidationError):
            MultiplicativeScrambler(MULT_POLY, state=1 << 7)

    def test_crc_pipeline_register_width(self):
        pipe = CRCPipeline(ETHERNET_CRC32, 8)
        with pytest.raises(ValidationError):
            pipe.open(register=1 << 32)

    def test_scrambler_pipeline_zero_seed(self):
        pipe = ScramblerPipeline(IEEE, 8)
        with pytest.raises(ValidationError):
            pipe.open(seed=0)

    def test_crc_spec_rejects_non_bytes(self):
        with pytest.raises(ValidationError):
            get_crc("CRC-32").message_bits([1, 2, 3])

    def test_finalize_register_range(self):
        with pytest.raises(ValidationError):
            ETHERNET_CRC32.finalize(1 << 32)


class TestStreamIds:
    def test_crc_pipeline_unknown_stream(self):
        pipe = CRCPipeline(ETHERNET_CRC32, 8)
        with pytest.raises(StreamError, match="unknown CRC stream"):
            pipe.feed(99, b"data")
        with pytest.raises(KeyError):  # historical contract
            pipe.finalize("nope")

    def test_crc_pipeline_double_open(self):
        pipe = CRCPipeline(ETHERNET_CRC32, 8)
        pipe.open("s")
        with pytest.raises(StreamError, match="already open"):
            pipe.open("s")

    def test_scrambler_pipeline_unknown_stream(self):
        pipe = ScramblerPipeline(IEEE, 8)
        with pytest.raises(StreamError):
            pipe.feed("ghost", [0, 1])

    def test_abort_unknown_stream(self):
        pipe = CRCPipeline(ETHERNET_CRC32, 8)
        with pytest.raises(StreamError):
            pipe.abort("ghost")


class TestValidateBeforeEarlyReturn:
    """Regression tests for the all-empty-streams early-return bug: bad
    seed/state lists must be rejected even when there is no payload to
    scramble."""

    def test_additive_empty_streams_bad_seed_count(self):
        engine = BatchAdditiveScrambler(IEEE, 8)
        with pytest.raises(ValidationError, match="seeds"):
            engine.scramble_batch([[], []], seeds=[1])

    def test_additive_empty_streams_zero_seed(self):
        engine = BatchAdditiveScrambler(IEEE, 8)
        with pytest.raises(ValidationError):
            engine.scramble_batch([[], []], seeds=[0, 1])

    def test_additive_zero_batch_bad_seeds(self):
        engine = BatchAdditiveScrambler(IEEE, 8)
        with pytest.raises(ValidationError):
            engine.scramble_batch([], seeds=[1])

    def test_multiplicative_empty_streams_bad_state_count(self):
        engine = BatchMultiplicativeScrambler(MULT_POLY)
        with pytest.raises(ValidationError, match="states"):
            engine.scramble_batch([[], []], states=[0])

    def test_multiplicative_empty_streams_wide_state(self):
        engine = BatchMultiplicativeScrambler(MULT_POLY)
        with pytest.raises(ValidationError):
            engine.scramble_batch([[]], states=[1 << 7])

    def test_valid_empty_streams_still_work(self):
        add = BatchAdditiveScrambler(IEEE, 8)
        assert add.scramble_batch([[], []]) == [[], []]
        assert add.scramble_batch([]) == []
        mult = BatchMultiplicativeScrambler(MULT_POLY)
        assert mult.scramble_batch([[], []]) == [[], []]


class TestSpecErrors:
    def test_mult_scrambler_degree(self):
        with pytest.raises(SpecError):
            MultiplicativeScrambler(GF2Polynomial.from_exponents([0]))

    def test_batch_mult_scrambler_degree(self):
        with pytest.raises(SpecError):
            BatchMultiplicativeScrambler(GF2Polynomial.from_exponents([0]))
