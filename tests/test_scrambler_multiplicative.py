"""Unit tests for repro.scrambler.multiplicative."""

import numpy as np
import pytest

from repro.gf2.polynomial import GF2Polynomial
from repro.scrambler import MultiplicativeScrambler

V34 = GF2Polynomial.from_exponents([23, 18, 0])  # ITU V.34 GPC polynomial
SONET_PAYLOAD = GF2Polynomial.from_exponents([43, 0])  # x^43 + 1


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestRoundtrip:
    def test_synchronized_roundtrip(self, rng):
        bits = [int(b) for b in rng.integers(0, 2, size=500)]
        tx = MultiplicativeScrambler(V34, state=0)
        rx = MultiplicativeScrambler(V34, state=0)
        assert rx.descramble_bits(tx.scramble_bits(bits)) == bits

    def test_x43_roundtrip(self, rng):
        bits = [int(b) for b in rng.integers(0, 2, size=200)]
        tx = MultiplicativeScrambler(SONET_PAYLOAD, state=0)
        rx = MultiplicativeScrambler(SONET_PAYLOAD, state=0)
        assert rx.descramble_bits(tx.scramble_bits(bits)) == bits

    def test_self_synchronization(self, rng):
        """A descrambler with a *wrong* initial state recovers after
        exactly `degree` correct input bits."""
        bits = [int(b) for b in rng.integers(0, 2, size=300)]
        tx = MultiplicativeScrambler(V34, state=0)
        scrambled = tx.scramble_bits(bits)
        rx = MultiplicativeScrambler(V34, state=0x5A5A5A & ((1 << 23) - 1))
        recovered = rx.descramble_bits(scrambled)
        sync = rx.sync_length()
        assert recovered[sync:] == bits[sync:]
        assert recovered[:sync] != bits[:sync]  # garbage during resync

    def test_error_propagation_is_bounded(self, rng):
        """A single channel error corrupts at most popcount(g) output bits
        within the next `degree` positions, then dies out."""
        bits = [int(b) for b in rng.integers(0, 2, size=400)]
        scrambled = MultiplicativeScrambler(V34, 0).scramble_bits(bits)
        corrupted = list(scrambled)
        corrupted[100] ^= 1
        out = MultiplicativeScrambler(V34, 0).descramble_bits(corrupted)
        diff = [i for i, (a, b) in enumerate(zip(out, bits)) if a != b]
        assert diff  # the error is visible...
        assert max(diff) <= 100 + 23  # ...but bounded by the memory length
        assert len(diff) == 3  # popcount of x^23 + x^18 + 1


class TestValidation:
    def test_rejects_constant_poly(self):
        with pytest.raises(ValueError):
            MultiplicativeScrambler(GF2Polynomial(1))

    def test_rejects_wide_state(self):
        with pytest.raises(ValueError):
            MultiplicativeScrambler(GF2Polynomial(0b1011), state=0b1000)

    def test_properties(self):
        s = MultiplicativeScrambler(V34)
        assert s.degree == 23
        assert s.sync_length() == 23
        assert s.poly == V34


class TestWhitening:
    def test_constant_input_is_whitened(self):
        """Scrambling all-zeros from a non-zero state yields a non-constant
        stream — the anti-repetition purpose from the paper's intro."""
        s = MultiplicativeScrambler(V34, state=1)
        out = s.scramble_bits([0] * 200)
        assert 0 < sum(out) < 200
