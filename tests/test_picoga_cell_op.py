"""Unit tests for repro.picoga.cell and repro.picoga.op."""

import pytest

from repro.picoga import Net, PicogaOperation, lut_cell, xor_cell
from repro.picoga.cell import CellKind, NetKind


class TestNet:
    def test_constructors(self):
        assert Net.input(3).kind is NetKind.INPUT
        assert Net.state(0).kind is NetKind.STATE
        assert Net.cell(7).kind is NetKind.CELL

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            Net.input(-1)

    def test_hashable(self):
        assert len({Net.input(0), Net.input(0), Net.input(1)}) == 2


class TestCell:
    def test_xor_parity(self):
        cell = xor_cell(0, [Net.input(0), Net.input(1), Net.input(2)])
        assert cell.evaluate([1, 1, 0]) == 0
        assert cell.evaluate([1, 1, 1]) == 1

    def test_xor_single_input_passthrough(self):
        cell = xor_cell(0, [Net.input(0)])
        assert cell.evaluate([1]) == 1
        assert cell.evaluate([0]) == 0

    def test_lut_truth_table(self):
        # AND of two inputs: output 1 only for pattern 0b11 -> table 0b1000
        cell = lut_cell(0, [Net.input(0), Net.input(1)], 0b1000)
        assert cell.evaluate([1, 1]) == 1
        assert cell.evaluate([1, 0]) == 0

    def test_lut_requires_table(self):
        with pytest.raises(ValueError):
            from repro.picoga.cell import Cell

            Cell(index=0, kind=CellKind.LUT, inputs=(Net.input(0),))

    def test_xor_rejects_table(self):
        from repro.picoga.cell import Cell

        with pytest.raises(ValueError):
            Cell(index=0, kind=CellKind.XOR, inputs=(Net.input(0),), truth_table=1)

    def test_no_inputs_rejected(self):
        with pytest.raises(ValueError):
            xor_cell(0, [])

    def test_eval_arity_check(self):
        cell = xor_cell(0, [Net.input(0), Net.input(1)])
        with pytest.raises(ValueError):
            cell.evaluate([1])


def _toy_op():
    """next_state0 = state0 ^ in0; out = cell0."""
    cells = [xor_cell(0, [Net.state(0), Net.input(0)])]
    return PicogaOperation(
        name="toy", n_inputs=1, n_state=1, cells=cells,
        outputs=[Net.cell(0)], next_state=[Net.cell(0)],
    )


class TestOperationValidation:
    def test_toy_constructs(self):
        op = _toy_op()
        assert op.n_cells == 1

    def test_out_of_range_input(self):
        with pytest.raises(ValueError):
            PicogaOperation(
                name="bad", n_inputs=1, n_state=0,
                cells=[xor_cell(0, [Net.input(5)])],
                outputs=[Net.cell(0)], next_state=[],
            )

    def test_forward_reference_rejected(self):
        cells = [xor_cell(0, [Net.cell(1)]), xor_cell(1, [Net.input(0)])]
        with pytest.raises(ValueError):
            PicogaOperation(
                name="bad", n_inputs=1, n_state=0, cells=cells,
                outputs=[Net.cell(1)], next_state=[],
            )

    def test_non_topological_index_rejected(self):
        with pytest.raises(ValueError):
            PicogaOperation(
                name="bad", n_inputs=1, n_state=0,
                cells=[xor_cell(3, [Net.input(0)])],
                outputs=[], next_state=[],
            )

    def test_fanin_limit_enforced(self):
        wide = xor_cell(0, [Net.input(i) for i in range(11)])
        with pytest.raises(ValueError):
            PicogaOperation(
                name="bad", n_inputs=11, n_state=0, cells=[wide],
                outputs=[Net.cell(0)], next_state=[],
            )

    def test_io_limits_enforced(self):
        with pytest.raises(ValueError):
            PicogaOperation(
                name="bad", n_inputs=385, n_state=0,
                cells=[xor_cell(0, [Net.input(0)])],
                outputs=[Net.cell(0)], next_state=[],
            )

    def test_next_state_arity(self):
        with pytest.raises(ValueError):
            PicogaOperation(
                name="bad", n_inputs=1, n_state=2,
                cells=[xor_cell(0, [Net.input(0)])],
                outputs=[], next_state=[Net.cell(0)],
            )


class TestAnalyses:
    def test_levels(self):
        cells = [
            xor_cell(0, [Net.input(0), Net.input(1)]),
            xor_cell(1, [Net.input(2), Net.input(3)]),
            xor_cell(2, [Net.cell(0), Net.cell(1)]),
        ]
        op = PicogaOperation(
            name="tree", n_inputs=4, n_state=0, cells=cells,
            outputs=[Net.cell(2)], next_state=[],
        )
        assert op.n_levels == 2
        assert op.n_rows == 2
        assert op.initiation_interval == 1  # no loop at all

    def test_single_cell_loop_has_ii_1(self):
        assert _toy_op().initiation_interval == 1
        assert _toy_op().loop_depth == 1

    def test_two_cell_loop_chain_has_ii_2(self):
        cells = [
            xor_cell(0, [Net.state(0), Net.input(0)]),
            xor_cell(1, [Net.cell(0), Net.state(0)]),
        ]
        op = PicogaOperation(
            name="deep", n_inputs=1, n_state=1, cells=cells,
            outputs=[], next_state=[Net.cell(1)],
        )
        assert op.loop_depth == 2
        assert op.initiation_interval == 2

    def test_stream_tree_does_not_deepen_loop(self):
        """Input-only reduction ahead of the state XOR keeps II = 1 — the
        Derby property the packing relies on."""
        cells = [
            xor_cell(0, [Net.input(0), Net.input(1)]),  # stream
            xor_cell(1, [Net.cell(0), Net.input(2)]),  # stream
            xor_cell(2, [Net.state(0), Net.cell(1)]),  # loop
        ]
        op = PicogaOperation(
            name="derbyish", n_inputs=3, n_state=1, cells=cells,
            outputs=[], next_state=[Net.cell(2)],
        )
        assert op.loop_cells == {2}
        assert op.initiation_interval == 1
        assert op.n_levels == 3  # latency is deeper than the loop

    def test_wide_level_needs_multiple_rows(self):
        cells = [xor_cell(i, [Net.input(i)]) for i in range(20)]
        op = PicogaOperation(
            name="wide", n_inputs=20, n_state=0, cells=cells,
            outputs=[Net.cell(i) for i in range(20)], next_state=[],
        )
        assert op.n_levels == 1
        assert op.n_rows == 2  # 20 cells / 16 per row

    def test_row_capacity_enforced(self):
        """25 serial levels exceed the 24-row array."""
        cells = [xor_cell(0, [Net.input(0), Net.input(1)])]
        for i in range(1, 25):
            cells.append(xor_cell(i, [Net.cell(i - 1), Net.input(0)]))
        with pytest.raises(ValueError):
            PicogaOperation(
                name="toodeep", n_inputs=2, n_state=0, cells=cells,
                outputs=[Net.cell(24)], next_state=[],
            )

    def test_stats_snapshot(self):
        stats = _toy_op().stats()
        assert stats.n_cells == 1
        assert stats.initiation_interval == 1
        assert stats.max_fanin == 2
        assert stats.n_state == 1


class TestEvaluation:
    def test_accumulator_behaviour(self):
        op = _toy_op()
        state = [0]
        seen = []
        for bit in (1, 0, 1, 1):
            outs, state = op.evaluate(state, [bit])
            seen.append(outs[0])
        assert seen == [1, 1, 0, 1]  # running parity

    def test_state_arity_check(self):
        with pytest.raises(ValueError):
            _toy_op().evaluate([0, 0], [1])

    def test_input_arity_check(self):
        with pytest.raises(ValueError):
            _toy_op().evaluate([0], [1, 1])
