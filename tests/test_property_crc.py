"""Property-based tests for the CRC engine family.

The central claim: all engines implement the same function for *any*
well-formed spec — not just the cataloged ones — and CRC composes the way
the algebra says it must.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crc import BitwiseCRC, CRCSpec, DerbyCRC, GFMACCRC, SlicingCRC, TableCRC


@st.composite
def crc_specs(draw):
    width = draw(st.sampled_from([8, 16, 24, 32]))
    mask = (1 << width) - 1
    poly = draw(st.integers(min_value=1, max_value=mask)) | 1  # constant term
    init = draw(st.integers(min_value=0, max_value=mask))
    xorout = draw(st.integers(min_value=0, max_value=mask))
    reflected = draw(st.booleans())
    return CRCSpec(
        name=f"RAND-{width}",
        width=width,
        poly=poly,
        init=init,
        refin=reflected,
        refout=reflected,
        xorout=xorout,
    )


messages = st.binary(min_size=0, max_size=64)


class TestEngineEquivalenceOnRandomSpecs:
    @given(spec=crc_specs(), data=messages)
    @settings(max_examples=60, deadline=None)
    def test_table_equals_bitwise(self, spec, data):
        assert TableCRC(spec).compute(data) == BitwiseCRC(spec).compute(data)

    @given(spec=crc_specs(), data=messages)
    @settings(max_examples=40, deadline=None)
    def test_slicing_equals_bitwise(self, spec, data):
        assert SlicingCRC(spec, 8).compute(data) == BitwiseCRC(spec).compute(data)

    @given(spec=crc_specs(), data=messages, chunk=st.sampled_from([8, 24, 32]))
    @settings(max_examples=40, deadline=None)
    def test_gfmac_equals_bitwise(self, spec, data, chunk):
        assert GFMACCRC(spec, chunk).compute(data) == BitwiseCRC(spec).compute(data)

    @given(spec=crc_specs(), data=messages)
    @settings(max_examples=15, deadline=None)
    def test_derby_equals_bitwise(self, spec, data):
        from hypothesis import assume

        from repro.lfsr.transform import TransformError

        try:
            engine = DerbyCRC(spec, 16)
        except TransformError:
            # A^M is not cyclic for this (generator, M): the transform
            # legitimately does not exist.  Real CRC generators (constant
            # term, typically primitive) always admit it — see the catalog
            # tests — so skip rather than fail.
            assume(False)
            return
        assert engine.compute(data) == BitwiseCRC(spec).compute(data)


class TestAlgebraicProperties:
    @given(spec=crc_specs(), a=messages, b=messages)
    @settings(max_examples=60, deadline=None)
    def test_incremental_equals_whole(self, spec, a, b):
        """Streaming: raw_register(a) continued over b == raw over a+b."""
        engine = BitwiseCRC(spec)
        whole = engine.raw_register(a + b)
        reg = engine.raw_register(a)
        assert engine.raw_register(b, reg) == whole

    @given(spec=crc_specs(), data=messages)
    @settings(max_examples=60, deadline=None)
    def test_finalize_unfinalize(self, spec, data):
        engine = BitwiseCRC(spec)
        crc = engine.compute(data)
        assert spec.finalize(spec.unfinalize(crc)) == crc

    @given(spec=crc_specs(), a=messages, b=messages)
    @settings(max_examples=40, deadline=None)
    def test_raw_crc_linearity(self, spec, a, b):
        """With init forced to zero, the raw register is GF(2)-linear in
        the message (equal lengths)."""
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        zero_spec = CRCSpec(spec.name, spec.width, spec.poly, 0, spec.refin, spec.refout, 0)
        engine = BitwiseCRC(zero_spec)
        ab = bytes(x ^ y for x, y in zip(a, b))
        assert engine.raw_register(ab) == engine.raw_register(a) ^ engine.raw_register(b)

    @given(spec=crc_specs(), data=st.binary(min_size=1, max_size=64),
           pos=st.integers(min_value=0, max_value=511))
    @settings(max_examples=60, deadline=None)
    def test_single_bit_errors_always_detected(self, spec, data, pos):
        """Any generator with a constant term detects all 1-bit errors."""
        engine = BitwiseCRC(spec)
        bit = pos % (8 * len(data))
        corrupted = bytearray(data)
        corrupted[bit // 8] ^= 1 << (7 - (bit % 8))
        assert engine.compute(bytes(corrupted)) != engine.compute(data)
