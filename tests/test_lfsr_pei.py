"""Unit tests for repro.lfsr.pei (direct look-ahead baseline)."""

import numpy as np
import pytest

from repro.gf2 import GF2Polynomial
from repro.lfsr import crc_statespace, derby_transform
from repro.lfsr.pei import pei_lookahead, pei_speedup_bound

CRC32 = GF2Polynomial((1 << 32) | 0x04C11DB7)


class TestFunctional:
    def test_matches_serial(self):
        ss = crc_statespace(CRC32)
        engine = pei_lookahead(ss, 16)
        rng = np.random.default_rng(3)
        bits = [int(b) for b in rng.integers(0, 2, size=64)]
        x0 = ss.state_from_int(0xFFFFFFFF)
        serial, _ = ss.simulate(x0, bits)
        assert (engine.run(x0, bits) == serial).all()

    def test_m_property(self):
        assert pei_lookahead(crc_statespace(CRC32), 32).M == 32


class TestLoopComplexity:
    def test_fanin_grows_with_m(self):
        ss = crc_statespace(CRC32)
        f8 = pei_lookahead(ss, 8).loop_fanin()
        f64 = pei_lookahead(ss, 64).loop_fanin()
        assert f64 > f8

    def test_depth_grows_with_m(self):
        ss = crc_statespace(CRC32)
        d2 = pei_lookahead(ss, 2).loop_depth_xor2()
        d128 = pei_lookahead(ss, 128).loop_depth_xor2()
        assert d128 > d2

    def test_serial_depth_is_minimal(self):
        # Serial loop: shifted bit XOR feedback tap XOR input -> 2 levels.
        ss = crc_statespace(CRC32)
        assert pei_lookahead(ss, 1).loop_depth_xor2() == 2

    def test_direct_loop_deeper_than_derby(self):
        """The motivation for the transform: Derby's loop fan-in is the
        companion tap count, independent of M; Pei's grows toward k/2·M."""
        ss = crc_statespace(CRC32)
        for M in (32, 64, 128):
            pei = pei_lookahead(ss, M)
            derby = derby_transform(ss, M)
            derby_fanin = int(derby.A_Mt.to_array().sum(axis=1).max())
            assert pei.loop_fanin() > derby_fanin


class TestSpeedupBound:
    def test_half_m(self):
        assert pei_speedup_bound(32) == 16.0
        assert pei_speedup_bound(128) == 64.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            pei_speedup_bound(0)
