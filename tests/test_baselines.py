"""Unit tests for repro.baselines (software, ASIC and theory models)."""

import pytest

from repro.baselines import (
    GfmacProcessorConfig,
    GfmacProcessorModel,
    RiscCostModel,
    RiscSoftwareCRC,
    UcrcModel,
    UcrcTimingModel,
    m_half_theory_bps,
    m_theory_bps,
    speedup_table,
    theory_sweep,
)
from repro.crc import BitwiseCRC, ETHERNET_CRC32


class TestRiscSoftware:
    def test_functional_correctness(self):
        bw = BitwiseCRC(ETHERNET_CRC32)
        for algorithm in ("bitwise", "table", "slicing8"):
            sw = RiscSoftwareCRC(ETHERNET_CRC32, algorithm)
            assert sw.compute(b"123456789") == bw.compute(b"123456789")

    def test_cycle_ordering(self):
        cost = RiscCostModel()
        bits = 12144
        assert cost.cycles("bitwise", bits) > cost.cycles("table", bits) > cost.cycles(
            "slicing8", bits
        )

    def test_peak_throughputs(self):
        cost = RiscCostModel()
        assert cost.peak_throughput_bps("bitwise") == pytest.approx(25e6)
        assert cost.peak_throughput_bps("table") == pytest.approx(200e6)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            RiscCostModel().cycles("quantum", 100)
        with pytest.raises(ValueError):
            RiscSoftwareCRC(ETHERNET_CRC32, "quantum")

    def test_energy_anchor(self):
        """8 cycles/bit × 50 pJ/cycle ≈ the paper's 400 pJ/bit figure."""
        sw = RiscSoftwareCRC(ETHERNET_CRC32, "bitwise")
        bits = 100000
        assert sw.energy_pj(bits) / bits == pytest.approx(400, rel=0.01)

    def test_speedup_table(self):
        table = speedup_table({1024: 100.0}, algorithm="table")
        expected = RiscCostModel().cycles("table", 1024) / 100.0
        assert table[1024] == pytest.approx(expected)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            RiscCostModel().cycles("table", -1)


class TestUcrc:
    @pytest.fixture(scope="class")
    def model(self):
        return UcrcModel(ETHERNET_CRC32)

    def test_serial_near_1ghz(self, model):
        assert 0.8e9 < model.serial_frequency_hz() < 1.2e9

    def test_frequency_decreases_with_m(self, model):
        freqs = [model.frequency_hz(M) for M in (1, 8, 32, 128, 512)]
        assert freqs == sorted(freqs, reverse=True)

    def test_throughput_grows_sublinearly(self, model):
        """Doubling M never doubles the bandwidth at large M."""
        t128, t256 = model.throughput_bps(128), model.throughput_bps(256)
        assert t256 > t128
        assert t256 < 2 * t128

    def test_dream_beats_ucrc_at_m128(self, model):
        """The paper's Fig. 6 punchline: 25.6 Gbit/s > UCRC at M = 128."""
        assert 25.6e9 > model.throughput_bps(128)

    def test_ucrc_beats_dream_at_small_m(self, model):
        """... while DREAM's fixed 200 MHz loses at small parallelization."""
        dream_m8 = 8 * 200e6
        assert model.throughput_bps(8) > dream_m8

    def test_fanin_uses_real_matrices(self, model):
        assert model.loop_fanin(1) == 3  # shift + tap + input
        assert model.loop_fanin(64) > model.loop_fanin(4)

    def test_fmax_cap(self):
        fast = UcrcModel(ETHERNET_CRC32, UcrcTimingModel(t_reg_ns=0.01, t_xor2_ns=0.01, t_wire_ns_per_m=0.0))
        assert fast.frequency_hz(1) == pytest.approx(1.2e9)

    def test_sweep_keys(self, model):
        sweep = model.sweep((2, 4, 8))
        assert set(sweep) == {2, 4, 8}


class TestTheory:
    def test_m_theory_linear(self):
        assert m_theory_bps(1e9, 64) == pytest.approx(64e9)

    def test_m_half_theory(self):
        assert m_half_theory_bps(1e9, 64) == pytest.approx(32e9)

    def test_m_theory_dominates(self):
        model = UcrcModel(ETHERNET_CRC32)
        curves = theory_sweep(model, (16, 64, 256))
        for M in (16, 64, 256):
            assert curves["m_theory"][M] == 2 * curves["m_half_theory"][M]
            assert curves["m_theory"][M] > model.throughput_bps(M)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            m_theory_bps(1e9, 0)


class TestGfmacProcessor:
    def test_functional(self):
        model = GfmacProcessorModel(ETHERNET_CRC32)
        assert model.compute(b"123456789") == 0xCBF43926

    def test_cited_figure(self):
        """[10]: 2-3 cycles for a 128-bit message on 16 GFMACs."""
        assert GfmacProcessorModel(ETHERNET_CRC32).matches_cited_figure()

    def test_cycles_scale_with_length(self):
        model = GfmacProcessorModel(ETHERNET_CRC32)
        assert model.cycles(1280) > model.cycles(128)

    def test_throughput(self):
        model = GfmacProcessorModel(ETHERNET_CRC32)
        # 128 bits / 3 cycles at 200 MHz ≈ 8.5 Gbit/s kernel rate.
        assert model.throughput_bps(128) == pytest.approx(128 * 200e6 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            GfmacProcessorConfig(units=0)
        with pytest.raises(ValueError):
            GfmacProcessorModel(ETHERNET_CRC32).cycles(0)
