"""Fibonacci↔Galois matching-state machinery (`repro.lfsr.galois`).

The contract under test (THEORY.md §7): two similar registers emit the
same stream iff their states solve ``O_dst x_dst = O_src x_src`` for the
respective observability matrices — one `GF2Matrix.solve`.  The library
convention rides along: `FibonacciLFSR(g)` runs the reciprocal's
recurrence, so its Galois twin is `GaloisLFSR(g.reciprocal())`.
"""

import numpy as np
import pytest

from repro.gf2.bits import int_to_bits
from repro.gf2.polynomial import GF2Polynomial
from repro.lfsr import (
    FibonacciLFSR,
    GaloisLFSR,
    fibonacci_to_galois_state,
    galois_to_fibonacci_state,
    multiplicative_fibonacci_to_galois_state,
    multiplicative_galois_to_fibonacci_state,
)
from repro.lfsr.galois import (
    fibonacci_state_matrix,
    keystream_output_vector,
    matching_state,
    observability_matrix,
)
from repro.scrambler import CATALOG

POLYS = sorted({spec.poly for spec in CATALOG}, key=lambda p: (p.degree, p.coeffs))


class TestObservability:
    def test_observability_matrix_is_square_and_invertible(self):
        for poly in POLYS:
            a = fibonacci_state_matrix(poly)
            obs = observability_matrix(a, keystream_output_vector(poly))
            assert obs.nrows == obs.ncols == poly.degree
            assert obs.rank() == poly.degree

    def test_matching_state_is_identity_on_same_register(self):
        poly = GF2Polynomial.from_exponents([7, 1, 0])
        a = fibonacci_state_matrix(poly)
        c = keystream_output_vector(poly)
        for state in (1, 0x55, 0x7F):
            bits = np.array(int_to_bits(state, poly.degree), dtype=np.uint8)
            assert list(matching_state(a, c, a, c, bits)) == list(bits)


class TestAdditiveConversion:
    @pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
    def test_converted_seed_reproduces_keystream(self, spec):
        fib = FibonacciLFSR(spec.poly, spec.seed)
        gal = GaloisLFSR(
            spec.poly.reciprocal(),
            fibonacci_to_galois_state(spec.poly, spec.seed),
        )
        assert gal.keystream(4 * spec.poly.degree) == fib.keystream(
            4 * spec.poly.degree
        )

    @pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
    def test_round_trip(self, spec):
        g_state = fibonacci_to_galois_state(spec.poly, spec.seed)
        back = galois_to_fibonacci_state(spec.poly.reciprocal(), g_state)
        assert back == spec.seed
        # And the other direction composes to the identity too.
        assert (
            fibonacci_to_galois_state(
                spec.poly, galois_to_fibonacci_state(spec.poly.reciprocal(), g_state)
            )
            == g_state
        )

    def test_many_seeds_one_register(self):
        poly = GF2Polynomial.from_exponents([15, 14, 0])  # 802.16e generator
        for seed in range(1, 64):
            fib = FibonacciLFSR(poly, seed)
            gal = GaloisLFSR(
                poly.reciprocal(), fibonacci_to_galois_state(poly, seed)
            )
            assert gal.keystream(30) == fib.keystream(30)


class TestMultiplicativeConversion:
    @pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
    def test_round_trip(self, spec):
        poly = spec.poly
        for state in (1, (1 << poly.degree) - 1, 0b1011 % (1 << poly.degree)):
            g_state = multiplicative_fibonacci_to_galois_state(poly, state)
            back = multiplicative_galois_to_fibonacci_state(
                poly.reciprocal(), g_state
            )
            assert back == state

    def test_zero_state_maps_to_zero(self):
        poly = GF2Polynomial.from_exponents([7, 6, 0])
        assert multiplicative_fibonacci_to_galois_state(poly, 0) == 0
        assert multiplicative_galois_to_fibonacci_state(poly.reciprocal(), 0) == 0
