"""Unit tests for repro.cipher.e0 (Bluetooth summation combiner)."""

import pytest

from repro.cipher import E0, STATE_BITS
from repro.cipher.e0 import _t1, _t2


class TestStructure:
    def test_total_state_bits(self):
        """Bluetooth spec: 25 + 31 + 33 + 39 = 128 LFSR state bits."""
        assert STATE_BITS == 128

    def test_t1_identity(self):
        assert [_t1(c) for c in range(4)] == [0, 1, 2, 3]

    def test_t2_bijection(self):
        assert sorted(_t2(c) for c in range(4)) == [0, 1, 2, 3]

    def test_t2_mapping(self):
        # (a, b) -> (b, a ^ b): 0b10 -> (0, 1) = 0b01
        assert _t2(0b10) == 0b01
        assert _t2(0b01) == 0b11
        assert _t2(0b11) == 0b10
        assert _t2(0b00) == 0b00


class TestValidation:
    def test_needs_four_registers(self):
        with pytest.raises(ValueError):
            E0([1, 2, 3])

    def test_rejects_zero_register(self):
        with pytest.raises(ValueError):
            E0([0, 1, 1, 1])

    def test_rejects_wide_register(self):
        with pytest.raises(ValueError):
            E0([1 << 25, 1, 1, 1])

    def test_rejects_wide_carry(self):
        with pytest.raises(ValueError):
            E0([1, 1, 1, 1], carry=4)

    def test_seed_length(self):
        with pytest.raises(ValueError):
            E0.from_seed(b"\x00" * 15)

    def test_zero_seed_patched(self):
        cipher = E0.from_seed(b"\x00" * 16)
        assert all(r != 0 for r in cipher.registers)


class TestKeystream:
    def test_deterministic(self):
        seed = bytes(range(16))
        assert E0.from_seed(seed).keystream(256) == E0.from_seed(seed).keystream(256)

    def test_seed_sensitivity(self):
        a = E0.from_seed(bytes(range(16))).keystream(256)
        b = E0.from_seed(bytes(range(1, 17))).keystream(256)
        assert a != b

    def test_carry_state_affects_output(self):
        regs = [0x1234, 0x5678, 0x9ABC, 0xDEF0]
        a = E0(regs, carry=0).keystream(64)
        b = E0(regs, carry=3).keystream(64)
        assert a != b

    def test_registers_stay_in_range(self):
        cipher = E0.from_seed(bytes(range(16)))
        cipher.keystream(1000)
        for value, length in zip(cipher.registers, (25, 31, 33, 39)):
            assert 0 < value < (1 << length)

    def test_roughly_balanced(self):
        ks = E0.from_seed(b"\xa5" * 16).keystream(4000)
        assert 1700 < sum(ks) < 2300

    def test_nonlinearity(self):
        """The summation combiner is *not* GF(2)-linear in the registers:
        keystream(r ^ s) != keystream(r) ^ keystream(s) in general."""
        r = [0x000001, 0x000001, 0x000001, 0x000001]
        s = [0x100000, 0x200000, 0x300000, 0x400000]
        xor_regs = [a ^ b for a, b in zip(r, s)]
        k_r = E0(r).keystream(128)
        k_s = E0(s).keystream(128)
        k_x = E0(xor_regs).keystream(128)
        assert k_x != [a ^ b for a, b in zip(k_r, k_s)]


class TestEncryption:
    def test_encrypt_decrypt_roundtrip(self):
        seed = bytes(range(16))
        plaintext = b"The PiCoGA runs at 200 MHz."
        ciphertext = E0.from_seed(seed).encrypt(plaintext)
        assert ciphertext != plaintext
        assert E0.from_seed(seed).encrypt(ciphertext) == plaintext

    def test_keystream_bytes_packing(self):
        seed = b"\x55" * 16
        bits = E0.from_seed(seed).keystream(16)
        data = E0.from_seed(seed).keystream_bytes(2)
        packed = [(data[i // 8] >> (i % 8)) & 1 for i in range(16)]
        assert packed == bits
