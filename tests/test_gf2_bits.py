"""Unit tests for repro.gf2.bits."""

import pytest

from repro.gf2.bits import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    chunk_bits,
    hamming_weight_distribution,
    int_to_bits,
    parity,
    popcount,
    reflect_bits,
)


class TestPopcountParity:
    def test_popcount_zero(self):
        assert popcount(0) == 0

    def test_popcount_all_ones(self):
        assert popcount(0xFF) == 8

    def test_popcount_sparse(self):
        assert popcount(1 << 100) == 1

    def test_popcount_negative_raises(self):
        with pytest.raises(ValueError):
            popcount(-1)

    def test_parity_even(self):
        assert parity(0b1010) == 0

    def test_parity_odd(self):
        assert parity(0b1011) == 1


class TestReflect:
    def test_reflect_nibble(self):
        assert reflect_bits(0b1101, 4) == 0b1011

    def test_reflect_identity_palindrome(self):
        assert reflect_bits(0b1001, 4) == 0b1001

    def test_reflect_involution(self):
        for v in range(256):
            assert reflect_bits(reflect_bits(v, 8), 8) == v

    def test_reflect_width_zero(self):
        assert reflect_bits(0, 0) == 0

    def test_reflect_overflow_raises(self):
        with pytest.raises(ValueError):
            reflect_bits(0x100, 8)

    def test_reflect_crc32_constant(self):
        # The reflected form of the Ethernet polynomial is well known.
        assert reflect_bits(0x04C11DB7, 32) == 0xEDB88320


class TestIntBits:
    def test_int_to_bits_lsb_first(self):
        assert int_to_bits(0b1101, 4) == [1, 0, 1, 1]

    def test_roundtrip(self):
        for v in (0, 1, 0xDEADBEEF, (1 << 63) | 5):
            assert bits_to_int(int_to_bits(v, 64)) == v

    def test_int_to_bits_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_bits_to_int_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])


class TestByteBits:
    def test_msb_first_expansion(self):
        assert bytes_to_bits(b"\x80") == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_lsb_first_expansion(self):
        assert bytes_to_bits(b"\x80", reflect=True) == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_roundtrip_msb(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_roundtrip_reflected(self):
        data = b"\x01\x02\xfe\xff"
        assert bits_to_bytes(bytes_to_bits(data, reflect=True), reflect=True) == data

    def test_bits_to_bytes_requires_multiple_of_8(self):
        with pytest.raises(ValueError):
            bits_to_bytes([1] * 7)


class TestChunking:
    def test_even_chunks(self):
        chunks = list(chunk_bits([1, 0, 1, 1], 2))
        assert chunks == [[1, 0], [1, 1]]

    def test_ragged_tail(self):
        chunks = list(chunk_bits([1, 0, 1], 2))
        assert chunks[-1] == [1]

    def test_bad_size(self):
        with pytest.raises(ValueError):
            list(chunk_bits([1], 0))


def test_hamming_weight_distribution():
    hist = hamming_weight_distribution([0b0, 0b1, 0b11, 0b111, 0b101])
    assert hist == {0: 1, 1: 1, 2: 2, 3: 1}
