"""Cross-worker distributed tracing — the telemetry v2 acceptance suite.

Drives real worker pools (thread and process mode) and asserts the
distributed-observability contract end to end:

* a ``batch_crc(auto=True)`` run on a process-backend plan produces ONE
  merged span tree — ``planner.plan`` through ``pool.dispatch`` down to
  per-shard ``worker.shard`` spans labeled ``worker=<pid>``;
* worker-side kernel counters (``gf2_backend_ops_total``) from child
  processes land in the parent registry snapshot under ``worker=<id>``
  labels;
* the span tree exports as schema-valid Chrome trace-event JSON;
* a crashing shard raises :class:`~repro.errors.StreamError` carrying a
  flight-recorder dump that names the failed worker and its last events.

Uses the deterministic ``gil-bound-4cpu`` synthetic host profile from
``conftest.py`` so the planner reliably chooses a reference-backend
process plan regardless of the machine running the tests.
"""

import pytest

from repro.dream.system import DreamSystem
from repro.engine.parallel import WorkerPool
from repro.engine.planner import Planner, WorkloadDescriptor
from repro.errors import StreamError
from repro.telemetry import (
    FlightRecorder,
    MetricsRegistry,
    TraceContext,
    Tracer,
    set_default_flight_recorder,
    set_default_registry,
    set_default_tracer,
    spans_to_chrome,
)


def _boom(x):
    """Module-level crasher (must be picklable for process pools)."""
    raise RuntimeError(f"kaboom {x}")


def _echo(x):
    """Module-level identity shard function."""
    return x


@pytest.fixture
def fresh_defaults():
    """Swap in fresh default registry/tracer/recorder; restore after."""
    registry = MetricsRegistry()
    tracer = Tracer(enabled=True)
    recorder = FlightRecorder()
    prev_reg = set_default_registry(registry)
    prev_tr = set_default_tracer(tracer)
    prev_rec = set_default_flight_recorder(recorder)
    yield registry, tracer, recorder
    set_default_registry(prev_reg)
    set_default_tracer(prev_tr)
    set_default_flight_recorder(prev_rec)


def _run_auto_batch(host_profiles, tracer):
    """One planner-chosen process-mode batch CRC run under an outer span."""
    planner = Planner(host_profiles["gil-bound-4cpu"])
    workload = WorkloadDescriptor(
        kind="crc-batch", standard="CRC-32", message_bits=1 << 17, batch=64
    )
    system = DreamSystem()
    with tracer.span("run"):
        engine = system.batch_crc(
            "CRC-32", auto=True, planner=planner, workload=workload
        )
        assert engine.mode == "process" and engine.workers >= 2
        messages = [bytes([i % 256] * 128) for i in range(8)]
        results = engine.compute_batch(messages)
    engine.close()
    return engine, results


def _find(span, name):
    """Depth-first search for the first span with the given name."""
    if span.name == name:
        return span
    for child in span.children:
        found = _find(child, name)
        if found is not None:
            return found
    return None


class TestDistributedSpanTree:
    def test_auto_batch_crc_produces_one_merged_tree(
        self, fresh_defaults, host_profiles
    ):
        registry, tracer, recorder = fresh_defaults
        engine, results = _run_auto_batch(host_profiles, tracer)

        from repro.engine.batch import BatchCRC

        serial = BatchCRC(engine.spec, engine.M)
        assert results == serial.compute_batch(
            [bytes([i % 256] * 128) for i in range(8)]
        )

        (root,) = tracer.roots()  # ONE tree under the outer span
        plan_span = _find(root, "planner.plan")
        dispatch = _find(root, "pool.dispatch")
        assert plan_span is not None and dispatch is not None
        assert dispatch.attributes["mode"] == "process"

        shards = [c for c in dispatch.children if c.name == "worker.shard"]
        assert len(shards) == engine.workers >= 2
        workers = {s.attributes["worker"] for s in shards}
        assert len(workers) >= 2  # distinct child processes
        for shard in shards:
            assert shard.trace_id == dispatch.trace_id
            assert shard.parent_id == dispatch.span_id

    def test_worker_counters_merge_into_parent_registry(
        self, fresh_defaults, host_profiles
    ):
        registry, tracer, recorder = fresh_defaults
        _run_auto_batch(host_profiles, tracer)
        samples = registry.snapshot()["gf2_backend_ops_total"]["samples"]
        worker_samples = [s for s in samples if "worker" in s["labels"]]
        assert len({s["labels"]["worker"] for s in worker_samples}) >= 2
        for sample in worker_samples:
            assert sample["labels"]["backend"] == "reference"
            assert sample["value"] > 0

    def test_phase_histograms_populated(self, fresh_defaults, host_profiles):
        registry, tracer, recorder = fresh_defaults
        _run_auto_batch(host_profiles, tracer)
        samples = registry.snapshot()["engine_phase_seconds"]["samples"]
        phases = {s["labels"]["phase"] for s in samples if s["count"] > 0}
        assert {"compile", "dispatch", "shard-execute"} <= phases

    def test_chrome_export_is_schema_valid(self, fresh_defaults, host_profiles):
        registry, tracer, recorder = fresh_defaults
        _run_auto_batch(host_profiles, tracer)
        doc = spans_to_chrome(tracer.roots())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        for event in xs:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"} <= set(event)
            assert event["ts"] >= 0 and event["dur"] >= 0
        # One lane per distinct worker plus the parent lane, all labeled.
        lanes = {e["tid"] for e in xs}
        labeled = {e["tid"] for e in metas}
        assert lanes <= labeled
        shard_lanes = {
            e["tid"] for e in xs if e["name"] == "worker.shard"
        }
        assert 0 not in shard_lanes and len(shard_lanes) >= 2

    def test_flight_recorder_saw_plan_and_dispatch(
        self, fresh_defaults, host_profiles
    ):
        registry, tracer, recorder = fresh_defaults
        _run_auto_batch(host_profiles, tracer)
        kinds = {e["kind"] for e in recorder.events()}
        assert {"plan", "dispatch"} <= kinds


class TestTraceContext:
    def test_round_trip(self):
        ctx = TraceContext(
            trace_id="t", span_id="s", metrics=True, spans=True, events=False
        )
        assert TraceContext.from_dict(ctx.to_dict()) == ctx
        assert ctx.active

    def test_thread_mode_disables_metric_shipping(self, fresh_defaults):
        """Threads share the parent registry; shipping a delta back would
        double-count, so remote=False captures spans only."""
        registry, tracer, recorder = fresh_defaults
        ctx = TraceContext.capture(remote=False)
        assert ctx.spans and not ctx.metrics and not ctx.events
        remote = TraceContext.capture(remote=True)
        assert remote.metrics and remote.spans and remote.events

    def test_thread_pool_does_not_double_count(self, fresh_defaults):
        registry, tracer, recorder = fresh_defaults
        counter = registry.counter("thread_work_total")

        def work(x):
            counter.inc()
            return x

        with WorkerPool(2, mode="thread") as pool:
            assert sorted(pool.run(work, [(i,) for i in range(4)])) == [0, 1, 2, 3]
        assert registry.get("thread_work_total").value == 4
        samples = registry.snapshot()["thread_work_total"]["samples"]
        assert all("worker" not in s.get("labels", {}) for s in samples)


class TestCrashContainment:
    def test_process_crash_dump_names_worker(self, fresh_defaults):
        registry, tracer, recorder = fresh_defaults
        with WorkerPool(2, mode="process") as pool:
            with pytest.raises(StreamError) as excinfo:
                pool.run(_boom, [(1,), (2,)])
        exc = excinfo.value
        assert "worker" in str(exc)
        dump = exc.context["flight_recorder"]
        assert dump["worker"]  # names the failed worker (its pid)
        assert str(dump["worker"]) in str(exc)
        crash_events = [
            e for e in dump["events"] if e["kind"] == "worker-crash"
        ]
        assert crash_events and "kaboom" in crash_events[-1]["message"]
        assert isinstance(exc.__cause__, RuntimeError)

    def test_thread_crash_dump_names_worker(self, fresh_defaults):
        registry, tracer, recorder = fresh_defaults
        with WorkerPool(2, mode="thread") as pool:
            with pytest.raises(StreamError) as excinfo:
                pool.run(_boom, [(1,), (2,)])
        dump = excinfo.value.context["flight_recorder"]
        assert dump["worker"]
        assert any(e["kind"] == "worker-crash" for e in dump["events"])

    def test_healthy_run_attaches_nothing(self, fresh_defaults):
        registry, tracer, recorder = fresh_defaults
        with WorkerPool(2, mode="process") as pool:
            assert sorted(pool.run(_echo, [(i,) for i in range(3)])) == [0, 1, 2]


class TestDisabledTelemetryFastPath:
    def test_all_off_runs_raw_functions(self):
        """With registry, tracer and recorder all disabled the pool submits
        the raw shard function — no wrapper, no context, no payloads."""
        registry = MetricsRegistry(enabled=False)
        tracer = Tracer(enabled=False)
        recorder = FlightRecorder(enabled=False)
        prev_reg = set_default_registry(registry)
        prev_tr = set_default_tracer(tracer)
        prev_rec = set_default_flight_recorder(recorder)
        try:
            with WorkerPool(2, mode="thread") as pool:
                assert sorted(pool.run(_echo, [(i,) for i in range(4)])) == [0, 1, 2, 3]
            assert registry.snapshot() == {}
            assert tracer.roots() == []
            assert recorder.events() == []
        finally:
            set_default_registry(prev_reg)
            set_default_tracer(prev_tr)
            set_default_flight_recorder(prev_rec)
