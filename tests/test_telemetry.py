"""Unit contract of :mod:`repro.telemetry` — registry, spans, exporters.

Uses private :class:`MetricsRegistry`/:class:`Tracer` instances throughout
so the process-wide defaults (shared with the instrumented engine code)
are never perturbed.
"""

import json
import threading

import pytest

from repro.telemetry import (
    BenchReport,
    MetricsRegistry,
    Tracer,
    format_span_tree,
    instrumented,
    parse_json_lines,
    record_activity_report,
    record_burst_utilization,
    render_prometheus,
    to_json_lines,
)
from repro.telemetry.registry import OVERFLOW_LABEL


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "requests")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x_total").inc(-1)

    def test_disabled_registry_is_a_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x_total")
        c.inc(100)
        assert c.value == 0
        reg.enable()
        c.inc()
        assert c.value == 1

    def test_concurrent_increments_are_exact(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")

        def worker():
            for _ in range(2000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 16000


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("open_streams")
        g.set(5)
        g.inc(3)
        g.dec(2)
        assert g.value == 6


class TestLabels:
    def test_children_are_distinct_series(self):
        reg = MetricsRegistry()
        fam = reg.counter("lookups_total", labels=("result",))
        fam.labels(result="hit").inc(3)
        fam.labels(result="miss").inc()
        assert fam.labels(result="hit").value == 3
        assert fam.labels(result="miss").value == 1

    def test_same_label_set_is_same_child(self):
        reg = MetricsRegistry()
        fam = reg.counter("x_total", labels=("a", "b"))
        assert fam.labels(a="1", b="2") is fam.labels(b="2", a="1")

    def test_wrong_label_names_rejected(self):
        reg = MetricsRegistry()
        fam = reg.counter("x_total", labels=("a",))
        with pytest.raises(ValueError):
            fam.labels(b="1")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_reregistration_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")

    def test_cardinality_bound_collapses_to_overflow(self):
        reg = MetricsRegistry(max_label_sets=4)
        fam = reg.counter("x_total", labels=("id",))
        for i in range(10):
            fam.labels(id=str(i)).inc()
        samples = fam.samples()
        assert len(samples) == 5  # 4 real children + the shared overflow child
        assert fam.dropped_label_sets == 6
        overflow = [s for labels, s in samples if labels["id"] == OVERFLOW_LABEL]
        assert len(overflow) == 1 and overflow[0].value == 6
        # Bounded: further unseen labels keep landing on the same child.
        fam.labels(id="zzz").inc()
        assert len(fam.samples()) == 5


class TestHistogram:
    def test_bucket_edges_use_le_semantics(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0, 5.0))
        h.observe(1.0)   # exactly on an edge -> that edge's bucket
        h.observe(0.5)   # below first edge -> first bucket
        h.observe(2.0)   # exactly on second edge
        h.observe(3.0)   # between 2 and 5
        h.observe(99.0)  # above the last edge -> +Inf bucket
        assert h.bucket_counts() == [2, 1, 1, 1]
        assert h.count == 5
        assert h.total == pytest.approx(105.5)
        assert h.cumulative() == [(1.0, 2), (2.0, 3), (5.0, 4), (float("inf"), 5)]

    def test_unsorted_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(2.0, 1.0))

    def test_disabled_observe_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        h = reg.histogram("h", buckets=(1.0,))
        h.observe(0.5)
        assert h.count == 0


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_by_default_yields_none(self):
        tr = Tracer()
        with tr.span("x") as sp:
            assert sp is None
        assert tr.roots() == []

    def test_span_nesting(self):
        tr = Tracer(enabled=True)
        with tr.span("outer", kind="root"):
            with tr.span("inner-1"):
                with tr.span("leaf"):
                    pass
            with tr.span("inner-2"):
                pass
        roots = tr.roots()
        assert [r.name for r in roots] == ["outer"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["inner-1", "inner-2"]
        assert [c.name for c in outer.children[0].children] == ["leaf"]
        assert outer.attributes == {"kind": "root"}
        # Wall-clock sanity: a parent covers its children.
        assert outer.duration >= outer.children[0].duration
        assert tr.span_count == 4

    def test_buffer_bound_drops_excess(self):
        tr = Tracer(max_spans=3, max_roots=100, enabled=True)
        for i in range(5):
            with tr.span(f"s{i}"):
                pass
        assert tr.span_count == 3
        assert tr.dropped == 2

    def test_root_bound_evicts_oldest(self):
        tr = Tracer(max_spans=1000, max_roots=2, enabled=True)
        for i in range(4):
            with tr.span(f"s{i}"):
                pass
        assert [r.name for r in tr.roots()] == ["s2", "s3"]

    def test_format_tree(self):
        tr = Tracer(enabled=True)
        with tr.span("parent", M=32):
            with tr.span("child"):
                pass
        text = format_span_tree(tr.roots())
        lines = text.splitlines()
        assert lines[0].startswith("parent") and "M=32" in lines[0]
        assert lines[1].startswith("  child")
        assert format_span_tree([]) == "(no spans recorded)"

    def test_clear(self):
        tr = Tracer(enabled=True)
        with tr.span("x"):
            pass
        tr.clear()
        assert tr.roots() == [] and tr.span_count == 0


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("hits_total", "hits", labels=("result",)).labels(result="hit").inc(7)
    reg.gauge("open_streams", "streams").set(3)
    h = reg.histogram("latency_seconds", "latency", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    reg.counter("untouched_total", "registered but never incremented")
    return reg


class TestJsonLines:
    def test_round_trip_is_exact(self):
        reg = _populated_registry()
        restored = parse_json_lines(to_json_lines(reg))
        assert restored.snapshot() == reg.snapshot()

    def test_lines_are_individually_parseable(self):
        for line in to_json_lines(_populated_registry()).strip().splitlines():
            json.loads(line)

    def test_schema_header_checked(self):
        with pytest.raises(ValueError):
            parse_json_lines('{"schema": "other/9"}\n')


class TestPrometheus:
    def test_exposition_format(self):
        text = render_prometheus(_populated_registry())
        assert '# TYPE hits_total counter' in text
        assert 'hits_total{result="hit"} 7' in text
        assert '# TYPE open_streams gauge' in text
        assert 'open_streams 3' in text
        assert '# TYPE latency_seconds histogram' in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert 'latency_seconds_count 3' in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labels=("p",)).labels(p='a"b\\c\nd').inc()
        text = render_prometheus(reg)
        assert r'x_total{p="a\"b\\c\nd"} 1' in text


class TestBenchReport:
    def test_write_and_load(self, tmp_path):
        report = BenchReport(
            name="demo",
            title="demo bench",
            params={"M": 32},
            metrics={"rate": 123.4},
            series={"curve": {"128": 1.0, "256": 2.0}},
        )
        path = report.write(tmp_path)
        assert path == tmp_path / "demo.json"
        data = json.loads(path.read_text())
        assert data["schema"] == "repro-bench/1"
        assert data["created_unix"] > 0
        assert data["environment"]["python"]
        loaded = BenchReport.load(path)
        assert loaded == report

    def test_load_rejects_other_schemas(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "nope/1", "name": "bad"}')
        with pytest.raises(ValueError):
            BenchReport.load(path)


# ----------------------------------------------------------------------
# Instrumentation hooks
# ----------------------------------------------------------------------
class TestInstrumented:
    def test_counts_times_and_traces(self):
        reg = MetricsRegistry()
        tr = Tracer(enabled=True)

        @instrumented(name="work", registry=reg, tracer=tr)
        def work(x):
            return x + 1

        assert work(1) == 2
        assert work(2) == 3
        assert reg.get("work_calls_total").value == 2
        assert reg.get("work_seconds").count == 2
        assert [r.name for r in tr.roots()] == ["work", "work"]

    def test_fully_disabled_short_circuits(self):
        reg = MetricsRegistry(enabled=False)
        tr = Tracer(enabled=False)

        @instrumented(name="work", registry=reg, tracer=tr)
        def work():
            return 42

        assert work() == 42
        assert reg.get("work_calls_total").value == 0
        assert tr.roots() == []


class TestBridges:
    def test_burst_utilization_matches_trace(self):
        from repro.picoga.trace import trace_burst
        from repro.mapping import map_crc
        from repro.crc import ETHERNET_CRC32

        reg = MetricsRegistry()
        op = map_crc(ETHERNET_CRC32, 8).update_op
        trace = trace_burst(op, 6)
        record_burst_utilization(
            op.name, op.n_rows, op.initiation_interval, 6, registry=reg
        )
        gauge = reg.get("picoga_pipeline_utilization").labels(op=op.name)
        assert gauge.value == pytest.approx(trace.utilization())
        assert reg.get("picoga_blocks_issued_total").labels(op=op.name).value == 6
        assert reg.get("picoga_burst_cycles_total").labels(op=op.name).value == trace.cycles

    def test_activity_report_bridge(self):
        from repro.picoga.activity import ActivityReport

        reg = MetricsRegistry()
        report = ActivityReport(
            blocks=4, cell_evaluations=100, cell_toggles=40, output_toggles=10
        )
        record_activity_report("op1", report, registry=reg)
        assert reg.get("picoga_cell_toggles_total").labels(op="op1").value == 40
        assert reg.get("picoga_activity_factor").labels(op="op1").value == pytest.approx(0.4)


# ----------------------------------------------------------------------
# v2: snapshot deltas, worker merging, lazy family binding
# ----------------------------------------------------------------------
class TestSnapshotDelta:
    def test_counter_and_histogram_deltas(self):
        from repro.telemetry import snapshot_delta

        reg = MetricsRegistry()
        c = reg.counter("ops_total", labels=("op",))
        h = reg.histogram("lat_seconds", buckets=(1.0, 10.0))
        c.labels(op="a").inc(2)
        h.observe(0.5)
        before = reg.snapshot()
        c.labels(op="a").inc(3)
        c.labels(op="b").inc()
        h.observe(5.0)
        delta = snapshot_delta(before, reg.snapshot())
        by_labels = {
            tuple(sorted(s.get("labels", {}).items())): s
            for s in delta["ops_total"]["samples"]
        }
        assert by_labels[(("op", "a"),)]["value"] == 3
        assert by_labels[(("op", "b"),)]["value"] == 1
        (hist,) = delta["lat_seconds"]["samples"]
        assert hist["count"] == 1 and hist["sum"] == pytest.approx(5.0)

    def test_unchanged_families_omitted(self):
        from repro.telemetry import snapshot_delta

        reg = MetricsRegistry()
        reg.counter("steady_total").inc(4)
        before = reg.snapshot()
        assert snapshot_delta(before, reg.snapshot()) == {}


class TestMergeSnapshot:
    def test_worker_labels_extend_declared_names(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", labels=("op",)).labels(op="x").inc(1)

        worker = MetricsRegistry()
        worker.counter("ops_total", labels=("op",)).labels(op="x").inc(5)
        reg.merge_snapshot(worker.snapshot(), extra_labels={"worker": "17"})

        samples = reg.snapshot()["ops_total"]["samples"]
        by_labels = {tuple(sorted(s["labels"].items())): s["value"] for s in samples}
        assert by_labels[(("op", "x"),)] == 1
        assert by_labels[(("op", "x"), ("worker", "17"))] == 5

    def test_merge_is_additive_across_calls(self):
        reg = MetricsRegistry()
        worker = MetricsRegistry()
        worker.counter("ops_total").inc(2)
        snap = worker.snapshot()
        reg.merge_snapshot(snap, extra_labels={"worker": "1"})
        reg.merge_snapshot(snap, extra_labels={"worker": "1"})
        (sample,) = reg.snapshot()["ops_total"]["samples"]
        assert sample["value"] == 4

    def test_merged_snapshot_round_trips(self):
        reg = MetricsRegistry()
        worker = MetricsRegistry()
        worker.histogram("lat_seconds", buckets=(1.0,)).observe(0.5)
        reg.merge_snapshot(worker.snapshot(), extra_labels={"worker": "9"})
        restored = parse_json_lines(to_json_lines(reg))
        assert restored.snapshot() == reg.snapshot()


class TestLazyFamilyBinding:
    def test_swapped_default_registry_is_observed(self):
        """Satellite regression: module-level families must not pin the
        import-time default registry (fixed via ``bind_families``)."""
        from repro.telemetry import bind_families, set_default_registry

        families = bind_families(lambda reg: {"c": reg.counter("lazy_total")})
        first = families()["c"]
        replacement = MetricsRegistry()
        previous = set_default_registry(replacement)
        try:
            second = families()["c"]
            assert second is not first
            second.inc(3)
            assert replacement.get("lazy_total").value == 3
        finally:
            set_default_registry(previous)
        assert families()["c"] is first

    def test_engine_modules_follow_a_registry_swap(self):
        """The fixed capture sites (batch/backend/cache/...) publish into
        a registry swapped in *after* import."""
        from repro.crc import ETHERNET_CRC32
        from repro.engine.batch import BatchCRC
        from repro.telemetry import set_default_registry

        replacement = MetricsRegistry()
        previous = set_default_registry(replacement)
        try:
            engine = BatchCRC(ETHERNET_CRC32, 8)
            engine.compute_batch([b"123456789"])
            assert replacement.get("engine_batch_calls_total").labels(
                kernel="crc-lookahead"
            ).value >= 1
            assert replacement.get("gf2_backend_ops_total") is not None
        finally:
            set_default_registry(previous)

    def test_set_default_registry_type_checked(self):
        from repro.telemetry import set_default_registry

        with pytest.raises(TypeError):
            set_default_registry("not a registry")


# ----------------------------------------------------------------------
# Tracing v2: ids, serialization, detached capture
# ----------------------------------------------------------------------
class TestSpanIds:
    def test_children_share_trace_id(self):
        tr = Tracer(enabled=True)
        with tr.span("parent") as parent:
            with tr.span("child") as child:
                pass
        assert parent.trace_id and parent.span_id
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id

    def test_to_dict_from_dict_round_trip(self):
        from repro.telemetry import Span

        tr = Tracer(enabled=True)
        with tr.span("outer", key="v") as outer:
            with tr.span("inner"):
                pass
        (root,) = tr.roots()
        clone = Span.from_dict(root.to_dict())
        assert clone.to_dict() == root.to_dict()
        assert clone.children[0].name == "inner"

    def test_capture_is_detached(self):
        tr = Tracer(enabled=True)
        with tr.capture("shard", trace_id="t1", parent_id="p1", worker="3") as span:
            pass
        assert tr.roots() == []  # detached: never recorded as a root
        assert span.trace_id == "t1" and span.parent_id == "p1"
        assert span.attributes["worker"] == "3"

    def test_retrace_rehomes_subtree(self):
        tr = Tracer(enabled=True)
        with tr.capture("shard") as span:
            pass
        span.retrace("new-trace", parent_id="new-parent")
        assert span.trace_id == "new-trace"
        assert span.parent_id == "new-parent"


class TestFlightRecorder:
    def test_ring_bounds_and_sequencing(self):
        from repro.telemetry import FlightRecorder

        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.record("tick", f"event {i}")
        events = rec.events()
        assert [e["seq"] for e in events] == [3, 4, 5]
        assert events[-1]["message"] == "event 4"

    def test_cursor_and_since_filter(self):
        from repro.telemetry import FlightRecorder

        rec = FlightRecorder()
        rec.record("before")
        cursor = rec.cursor()
        rec.record("after", worker="w1")
        tail = rec.events(since=cursor)
        assert [e["kind"] for e in tail] == ["after"]

    def test_extend_preserves_worker_attribution(self):
        from repro.telemetry import FlightRecorder

        parent, child = FlightRecorder(), FlightRecorder()
        child.record("compile", "worker-side", worker="42")
        parent.record("dispatch")
        parent.extend(child.events())
        events = parent.events()
        assert events[-1]["worker"] == "42"
        assert [e["seq"] for e in events] == [1, 2]  # re-sequenced locally

    def test_disabled_is_noop(self):
        from repro.telemetry import FlightRecorder

        rec = FlightRecorder(enabled=False)
        rec.record("tick")
        assert rec.events() == []

    def test_save_load_round_trip(self, tmp_path):
        from repro.telemetry import FlightRecorder

        rec = FlightRecorder()
        rec.record("plan", "chose shard-batch", strategy="shard-batch")
        path = rec.save(tmp_path / "ring.jsonl")
        events = FlightRecorder.load(path)
        assert len(events) == 1
        assert events[0]["kind"] == "plan"
        assert events[0]["attrs"]["strategy"] == "shard-batch"

    def test_format_events(self):
        from repro.telemetry import FlightRecorder, format_events

        rec = FlightRecorder()
        assert format_events(rec.events()) == "(no events recorded)"
        rec.record("steal", "2 stream(s) migrated", worker="w0", n=2)
        text = format_events(rec.events())
        assert "steal" in text and "worker=w0" in text and "n=2" in text

    def test_attach_flight_dump_names_worker(self):
        from repro.errors import StreamError
        from repro.telemetry import attach_flight_dump

        exc = StreamError("shard failed")
        attach_flight_dump(exc, worker="w3", events=[{"seq": 1, "kind": "x"}])
        dump = exc.context["flight_recorder"]
        assert dump["worker"] == "w3"
        assert dump["events"][0]["kind"] == "x"


# ----------------------------------------------------------------------
# Exporters v2: span records, chrome traces
# ----------------------------------------------------------------------
class TestSpanExport:
    def test_spans_embedded_and_parsed(self):
        from repro.telemetry import parse_spans

        tr = Tracer(enabled=True)
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        text = to_json_lines(MetricsRegistry(), tracer=tr)
        (root,) = parse_spans(text)
        assert root.name == "outer"
        assert root.children[0].name == "inner"
        # Metric parsing skips span records without complaint.
        assert parse_json_lines(text).snapshot() == {}

    def test_v1_snapshots_still_accepted(self):
        text = '{"schema": "repro-telemetry/1"}\n'
        assert parse_json_lines(text).snapshot() == {}

    def test_prometheus_renders_worker_extended_labels(self):
        reg = MetricsRegistry()
        worker = MetricsRegistry()
        worker.counter("ops_total", labels=("op",)).labels(op="m").inc(2)
        reg.merge_snapshot(worker.snapshot(), extra_labels={"worker": "5"})
        text = render_prometheus(reg)
        assert 'ops_total{op="m",worker="5"} 2' in text

    def test_escaping_edge_cases_round_trip(self):
        reg = MetricsRegistry()
        fam = reg.counter("edge_total", labels=("v",))
        for value in ('"', "\\", "\n", '\\"', 'a\\n"b'):
            fam.labels(v=value).inc()
        restored = parse_json_lines(to_json_lines(reg))
        assert restored.snapshot() == reg.snapshot()
        text = render_prometheus(reg)
        assert r'edge_total{v="\""}' in text
        assert r'edge_total{v="\\"}' in text
        assert r'edge_total{v="\n"}' in text


class TestChromeTrace:
    def test_schema_and_worker_lanes(self):
        from repro.telemetry import spans_to_chrome

        tr = Tracer(enabled=True)
        with tr.span("dispatch") as parent:
            with tr.capture("shard", worker="11") as shard:
                pass
            shard.retrace(parent.trace_id, parent_id=parent.span_id)
            parent.children.append(shard)
        doc = spans_to_chrome(tr.roots())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in xs} == {"dispatch", "shard"}
        by_name = {e["name"]: e for e in xs}
        assert by_name["dispatch"]["tid"] == 0
        assert by_name["shard"]["tid"] == 1
        lane_names = {e["tid"]: e["args"]["name"] for e in metas}
        assert lane_names[0] == "main" and lane_names[1] == "worker 11"
        for e in xs:
            assert e["pid"] == 1 and e["ts"] >= 0 and e["dur"] >= 0

    def test_render_is_valid_json(self):
        from repro.telemetry import render_chrome_trace

        tr = Tracer(enabled=True)
        with tr.span("root"):
            pass
        doc = json.loads(render_chrome_trace(tr))
        assert "traceEvents" in doc


class TestFlightRecorderClock:
    """Satellite regression: event times derive from one monotonic clock.

    A wall-clock step (NTP slew, manual adjustment) mid-run must never
    reorder the ring: ``ts`` is derived from ``time.monotonic`` against
    a single anchor captured at construction, and a dump carries exactly
    one wall-clock reference line.
    """

    def test_backwards_wall_clock_cannot_reorder_events(self, monkeypatch):
        import time as time_module

        from repro.telemetry import FlightRecorder

        rec = FlightRecorder()
        # The wall clock jumps backwards an hour between events; the
        # recorder must not consult it again after construction.
        walls = iter([2_000_000_000.0, 1_999_996_400.0, 1_999_992_800.0])
        monkeypatch.setattr(time_module, "time", lambda: next(walls))
        rec.record("first")
        rec.record("second")
        rec.record("third")
        events = rec.events()
        ts = [e["ts"] for e in events]
        ts_mono = [e["ts_mono"] for e in events]
        assert ts == sorted(ts)
        assert ts_mono == sorted(ts_mono)
        # Derived wall deltas track the monotonic deltas (to float64
        # resolution at unix-epoch magnitude, ~0.25us).
        for (a, b) in zip(events, events[1:]):
            assert b["ts"] - a["ts"] == pytest.approx(
                b["ts_mono"] - a["ts_mono"], abs=1e-5
            )

    def test_anchor_is_captured_once_at_construction(self):
        from repro.telemetry import FlightRecorder

        rec = FlightRecorder()
        anchor = rec.anchor
        rec.record("tick")
        rec.record("tock")
        assert rec.anchor == anchor  # never re-read
        event = rec.events()[0]
        assert event["ts"] == pytest.approx(
            anchor["wall_unix"] + (event["ts_mono"] - anchor["monotonic"])
        )

    def test_dump_carries_one_anchor_line(self, tmp_path):
        import json as json_module

        from repro.telemetry import FlightRecorder

        rec = FlightRecorder()
        rec.record("plan", "chose shard-batch")
        rec.record("dispatch")
        path = rec.save(tmp_path / "ring.jsonl")
        lines = [json_module.loads(l) for l in path.read_text().splitlines()]
        anchor_lines = [l for l in lines if "anchor" in l and "seq" not in l]
        assert len(anchor_lines) == 1
        assert lines[0] is not None and "anchor" in lines[0]  # first line

        anchor = FlightRecorder.load_anchor(path)
        assert anchor == {k: pytest.approx(v) for k, v in rec.anchor.items()}
        events = FlightRecorder.load(path)
        assert [e["kind"] for e in events] == ["plan", "dispatch"]

    def test_legacy_dump_without_anchor_loads(self, tmp_path):
        import json as json_module

        from repro.telemetry import FlightRecorder

        path = tmp_path / "legacy.jsonl"
        path.write_text(json_module.dumps(
            {"seq": 1, "ts": 123.0, "kind": "old", "message": "",
             "worker": "", "attrs": {}}
        ) + "\n")
        assert FlightRecorder.load_anchor(path) is None
        events = FlightRecorder.load(path)
        assert [e["kind"] for e in events] == ["old"]

    def test_snapshot_header_orders_across_wall_steps(self):
        from repro.telemetry import MetricsRegistry, to_json_lines

        registry = MetricsRegistry()
        first = json.loads(to_json_lines(registry).splitlines()[0])
        second = json.loads(to_json_lines(registry).splitlines()[0])
        assert "generated_monotonic" in first
        # Monotonic stamps order successive snapshots even if the wall
        # clock were to step backwards between the two writes.
        assert second["generated_monotonic"] >= first["generated_monotonic"]
