"""Unit tests for generator_report and the pipeline trace."""

import pytest

from repro.crc import CATALOG, ETHERNET_CRC32, generator_report, get
from repro.mapping import map_crc
from repro.picoga import trace_burst


class TestGeneratorReport:
    def test_crc32_primitive(self):
        report = generator_report(ETHERNET_CRC32)
        assert report.irreducible
        assert report.primitive
        assert not report.has_parity_factor
        assert report.period == (1 << 32) - 1
        assert report.factor_degrees == [32]

    def test_crc16_arc_parity_factor(self):
        report = generator_report(get("CRC-16/ARC"))
        assert not report.irreducible
        assert report.has_parity_factor
        assert report.detects_all_odd_weight_errors
        assert report.factor_degrees == [1, 15]
        assert report.period == (1 << 15) - 1

    def test_ccitt_family_shares_structure(self):
        a = generator_report(get("CRC-16/CCITT-FALSE"))
        b = generator_report(get("CRC-16/KERMIT"))
        assert a.factor_degrees == b.factor_degrees == [1, 15]

    def test_two_bit_error_span(self):
        """max_codeword_span is the guaranteed 2-bit-error window."""
        report = generator_report(ETHERNET_CRC32)
        assert report.max_codeword_span > 12144  # covers any Ethernet frame

    def test_factor_degrees_sum_to_width(self):
        for spec in CATALOG:
            if spec.width > 32:
                continue  # keep the run fast; 64-bit factorization works too
            report = generator_report(spec)
            assert sum(report.factor_degrees) == spec.width, spec.name

    def test_parity_factor_iff_even_weight(self):
        for spec in CATALOG:
            if spec.width > 32:
                continue
            report = generator_report(spec)
            even_weight = bin((1 << spec.width) | spec.poly).count("1") % 2 == 0
            assert report.has_parity_factor == even_weight, spec.name


class TestPipelineTrace:
    @pytest.fixture(scope="class")
    def derby_op(self):
        return map_crc(ETHERNET_CRC32, 32, method="derby").update_op

    @pytest.fixture(scope="class")
    def direct_op(self):
        return map_crc(ETHERNET_CRC32, 64, method="direct").update_op

    def test_trace_shape(self, derby_op):
        trace = trace_burst(derby_op, 10)
        assert trace.rows == derby_op.n_rows
        assert trace.cycles == 9 * 1 + derby_op.n_rows

    def test_ii1_reaches_full_utilization(self, derby_op):
        trace = trace_burst(derby_op, 200)
        assert trace.utilization() > 0.9

    def test_ii2_caps_utilization_at_half(self, direct_op):
        assert direct_op.initiation_interval == 2
        trace = trace_burst(direct_op, 200)
        assert trace.utilization() < 0.55

    def test_completion_cycles(self, derby_op):
        trace = trace_burst(derby_op, 5)
        assert trace.block_completion_cycle(0) == derby_op.n_rows - 1
        assert trace.block_completion_cycle(4) == 4 + derby_op.n_rows - 1

    def test_unknown_block(self, derby_op):
        with pytest.raises(ValueError):
            trace_burst(derby_op, 2).block_completion_cycle(7)

    def test_render(self, derby_op):
        text = trace_burst(derby_op, 3).render(max_cycles=5)
        assert "pipeline trace" in text
        assert "II=1" in text

    def test_needs_blocks(self, derby_op):
        with pytest.raises(ValueError):
            trace_burst(derby_op, 0)

    def test_trace_consistent_with_ledger(self, system_cycles=None):
        """Trace span == fill + (n-1)*II, matching the array's charges."""
        op = map_crc(ETHERNET_CRC32, 16).update_op
        n = 25
        trace = trace_burst(op, n)
        assert trace.cycles == op.latency_cycles + (n - 1) * op.initiation_interval
