"""Unit tests for repro.lfsr.reference (Fibonacci/Galois LFSRs)."""

import pytest

from repro.gf2 import GF2Polynomial
from repro.lfsr import FibonacciLFSR, GaloisLFSR

TRINOMIAL = GF2Polynomial(0b1011)  # x^3 + x + 1, primitive
WIFI = GF2Polynomial.from_exponents([7, 4, 0])


class TestGaloisLFSR:
    def test_rejects_constant_poly(self):
        with pytest.raises(ValueError):
            GaloisLFSR(GF2Polynomial(1))

    def test_state_width_check(self):
        with pytest.raises(ValueError):
            GaloisLFSR(TRINOMIAL, state=0b1000)

    def test_maximal_period(self):
        assert GaloisLFSR(TRINOMIAL, 1).period() == 7

    def test_wifi_scrambler_period(self):
        assert GaloisLFSR(WIFI, 1).period() == 127

    def test_zero_state_period_undefined(self):
        with pytest.raises(ValueError):
            GaloisLFSR(TRINOMIAL, 0).period()

    def test_clock_with_input_is_crc_step(self):
        # state 0, input 1: fb = 1, register becomes the tap pattern.
        reg = GaloisLFSR(TRINOMIAL, 0)
        fb = reg.clock(1)
        assert fb == 1
        assert reg.state == 0b011  # g0, g1 set

    def test_keystream_visits_all_nonzero_states(self):
        reg = GaloisLFSR(TRINOMIAL, 1)
        states = set(reg.iter_states(7))
        assert len(states) == 7
        assert 0 not in states

    def test_keystream_length(self):
        assert len(GaloisLFSR(WIFI, 1).keystream(50)) == 50

    def test_period_limit(self):
        with pytest.raises(ArithmeticError):
            GaloisLFSR(WIFI, 1).period(limit=5)


class TestFibonacciLFSR:
    def test_requires_constant_term(self):
        with pytest.raises(ValueError):
            FibonacciLFSR(GF2Polynomial(0b1010))

    def test_maximal_period(self):
        assert FibonacciLFSR(TRINOMIAL, 1).period() == 7

    def test_same_period_as_galois(self):
        assert FibonacciLFSR(WIFI, 1).period() == GaloisLFSR(WIFI, 1).period()

    def test_output_sequence_periodicity(self):
        reg = FibonacciLFSR(TRINOMIAL, 0b001)
        ks = reg.keystream(14)
        assert ks[:7] == ks[7:]

    def test_m_sequence_balance(self):
        """A maximal-length sequence of period 2^k - 1 has 2^(k-1) ones."""
        ks = FibonacciLFSR(WIFI, 1).keystream(127)
        assert sum(ks) == 64

    def test_galois_m_sequence_balance(self):
        ks = GaloisLFSR(WIFI, 1).keystream(127)
        assert sum(ks) == 64

    def test_galois_matches_fibonacci_of_reciprocal(self):
        """With these shift conventions the Galois form of g(x) produces the
        same m-sequence (up to phase) as the Fibonacci form of the
        *reciprocal* polynomial — the classic duality between the two
        configurations."""
        period = 127
        fib = FibonacciLFSR(WIFI.reciprocal(), 1).keystream(period)
        gal = GaloisLFSR(WIFI, 1).keystream(period)
        doubled = fib + fib
        assert any(doubled[s : s + period] == gal for s in range(period))

    def test_galois_is_time_reversed_fibonacci(self):
        """Equivalently: the Galois sequence of g(x) is the time-reversed
        Fibonacci sequence of g(x), up to phase."""
        period = 127
        fib = FibonacciLFSR(WIFI, 1).keystream(period)
        gal = GaloisLFSR(WIFI, 1).keystream(period)
        doubled = fib + fib
        assert any(doubled[s : s + period] == gal[::-1] for s in range(period))


class TestRunLengthStatistics:
    """Golomb's postulates for m-sequences — a statistical sanity net."""

    def test_run_property(self):
        ks = GaloisLFSR(WIFI, 1).keystream(127)
        # Count runs: half of length 1, quarter of length 2, ...
        runs = []
        current = ks[0]
        length = 1
        for b in ks[1:]:
            if b == current:
                length += 1
            else:
                runs.append(length)
                current = b
                length = 1
        runs.append(length)
        # 2^(k-1) cyclic runs; a linear scan may split one run at the seam.
        assert len(runs) in (64, 65)
