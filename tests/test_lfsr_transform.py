"""Unit tests for repro.lfsr.transform (Derby state-space transformation)."""

import numpy as np
import pytest

from repro.gf2 import GF2Matrix, GF2Polynomial
from repro.lfsr import crc_statespace, derby_transform, expand_lookahead
from repro.lfsr.transform import TransformError, krylov_matrix

CRC32 = GF2Polynomial((1 << 32) | 0x04C11DB7)
CRC16 = GF2Polynomial((1 << 16) | 0x1021)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestKrylov:
    def test_columns_are_iterated_powers(self):
        ss = crc_statespace(CRC16)
        A_M = ss.A ** 8
        f = np.zeros(16, dtype=np.uint8)
        f[0] = 1
        T = krylov_matrix(A_M, f)
        v = f.copy()
        for j in range(16):
            assert (T.column(j) == v).all()
            v = A_M @ v

    def test_invertible_for_primitive_poly(self):
        ss = crc_statespace(CRC32)
        f = np.zeros(32, dtype=np.uint8)
        f[0] = 1
        assert krylov_matrix(ss.A ** 32, f).is_invertible()


class TestDerbyConstruction:
    @pytest.mark.parametrize("M", [2, 8, 32, 128])
    def test_transformed_loop_is_companion(self, M):
        dt = derby_transform(crc_statespace(CRC32), M)
        assert dt.A_Mt.is_companion()

    @pytest.mark.parametrize("M", [8, 32])
    def test_similarity(self, M):
        """T^-1 A^M T must be similar to A^M (same characteristic poly)."""
        dt = derby_transform(crc_statespace(CRC32), M)
        assert dt.A_Mt.is_similar_to(dt.lookahead.A_M)

    def test_paper_f_choice_works(self):
        """The paper empirically selected f = [1 0 ... 0] for CRC-32."""
        f = np.zeros(32, dtype=np.uint8)
        f[0] = 1
        dt = derby_transform(crc_statespace(CRC32), 128, f=f)
        assert dt.A_Mt.is_companion()

    def test_supplied_f_shape_checked(self):
        with pytest.raises(ValueError):
            derby_transform(crc_statespace(CRC32), 8, f=np.ones(5, dtype=np.uint8))

    def test_bad_f_raises(self):
        with pytest.raises(TransformError):
            derby_transform(crc_statespace(CRC32), 8, f=np.zeros(32, dtype=np.uint8))

    def test_t_inverse_consistent(self):
        dt = derby_transform(crc_statespace(CRC32), 16)
        assert dt.T @ dt.T_inv == GF2Matrix.identity(32)

    def test_b_mt_definition(self):
        dt = derby_transform(crc_statespace(CRC32), 16)
        assert dt.B_Mt == dt.T_inv @ dt.lookahead.B_M


class TestDerbyEquivalence:
    @pytest.mark.parametrize("M", [2, 4, 8, 16, 32, 64, 128])
    def test_matches_serial_crc(self, M, rng):
        ss = crc_statespace(CRC32)
        dt = derby_transform(ss, M)
        bits = [int(b) for b in rng.integers(0, 2, size=2 * M)]
        x0 = ss.state_from_int(0xFFFFFFFF)
        serial, _ = ss.simulate(x0, bits)
        assert (dt.run(x0, bits) == serial).all()

    @pytest.mark.parametrize("M", [8, 32])
    def test_matches_plain_lookahead(self, M, rng):
        ss = crc_statespace(CRC16)
        dt = derby_transform(ss, M)
        la = expand_lookahead(ss, M)
        bits = [int(b) for b in rng.integers(0, 2, size=3 * M)]
        x0 = rng.integers(0, 2, size=16).astype(np.uint8)
        assert (dt.run(x0, bits) == la.run(x0, bits)).all()

    def test_transform_roundtrip(self, rng):
        dt = derby_transform(crc_statespace(CRC32), 32)
        x = rng.integers(0, 2, size=32).astype(np.uint8)
        assert (dt.from_transformed(dt.to_transformed(x)) == x).all()

    def test_stepwise_commutation(self, rng):
        """One transformed block step == transform(one natural block step)."""
        ss = crc_statespace(CRC32)
        M = 16
        dt = derby_transform(ss, M)
        la = dt.lookahead
        x = rng.integers(0, 2, size=32).astype(np.uint8)
        chunk = [int(b) for b in rng.integers(0, 2, size=M)]
        natural = la.block_step(x, chunk)
        transformed = dt.block_step(dt.to_transformed(x), chunk)
        assert (dt.from_transformed(transformed) == natural).all()

    def test_run_length_validation(self):
        dt = derby_transform(crc_statespace(CRC16), 8)
        with pytest.raises(ValueError):
            dt.run(np.zeros(16, dtype=np.uint8), [0] * 9)


class TestComplexityTradeoff:
    """The whole point of Derby: constant loop cost, feed-forward growth."""

    def test_loop_complexity_constant_in_m(self):
        ss = crc_statespace(CRC32)
        costs = {M: derby_transform(ss, M).loop_complexity() for M in (8, 32, 128)}
        assert len(set(costs.values())) == 1

    def test_loop_cheaper_than_direct_lookahead(self):
        ss = crc_statespace(CRC32)
        for M in (32, 64, 128):
            dt = derby_transform(ss, M)
            direct_nnz = dt.lookahead.A_M.nnz()
            assert dt.loop_complexity() < direct_nnz

    def test_feedforward_grows_with_m(self):
        ss = crc_statespace(CRC32)
        small = derby_transform(ss, 8).feedforward_complexity()
        big = derby_transform(ss, 128).feedforward_complexity()
        assert big > small
