"""The telemetry wiring: engine, pipelines, and DREAM publish correctly.

These tests run against the process-wide default registry (the one the
instrumented modules hold references into), so every assertion is a
*delta* between before/after readings — other tests in the same process
may have moved the same counters.
"""

import threading
import time

import pytest

from repro.crc import BitwiseCRC, ETHERNET_CRC32, MPEG2_CRC32
from repro.dream import DreamSystem
from repro.engine import BatchCRC, CompileCache, CRCPipeline
from repro.engine.cache import CacheStats
from repro.telemetry import default_registry, default_tracer, instrumented
from repro.telemetry import MetricsRegistry, Tracer

REG = default_registry()


def _counter_value(name, **labels):
    family = REG.get(name)
    if family is None:
        return 0.0
    child = family.labels(**labels) if labels else family
    return child.value


def _hist_count(name, **labels):
    family = REG.get(name)
    if family is None:
        return 0
    child = family.labels(**labels) if labels else family
    return child.count


# ----------------------------------------------------------------------
# Compile cache
# ----------------------------------------------------------------------
class TestCompileCacheMetrics:
    def test_hits_and_misses_reach_the_registry(self):
        hits0 = _counter_value("engine_compile_cache_lookups_total", result="hit")
        miss0 = _counter_value("engine_compile_cache_lookups_total", result="miss")
        cache = CompileCache(capacity=8)
        BatchCRC(ETHERNET_CRC32, 16, cache=cache)  # cold: misses
        BatchCRC(ETHERNET_CRC32, 16, cache=cache)  # warm: hits
        hits1 = _counter_value("engine_compile_cache_lookups_total", result="hit")
        miss1 = _counter_value("engine_compile_cache_lookups_total", result="miss")
        assert hits1 - hits0 == cache.stats.hits
        assert miss1 - miss0 == cache.stats.misses
        assert cache.stats.hits > 0 and cache.stats.misses > 0

    def test_evictions_reach_the_registry(self):
        ev0 = _counter_value("engine_compile_cache_evictions_total")
        cache = CompileCache(capacity=1)
        BatchCRC(ETHERNET_CRC32, 8, cache=cache)
        BatchCRC(MPEG2_CRC32, 8, cache=cache)  # different spec: evicts
        ev1 = _counter_value("engine_compile_cache_evictions_total")
        assert ev1 - ev0 == cache.stats.evictions
        assert cache.stats.evictions > 0


class TestCacheStatsThreadSafety:
    def test_concurrent_recording_is_exact(self):
        """The satellite fix: CacheStats counters must not lose updates
        when pipelines share a cache across threads."""
        stats = CacheStats()
        n, workers = 5000, 8

        def worker():
            for _ in range(n):
                stats.record_hit()
                stats.record_miss()
                stats.record_eviction()

        threads = [threading.Thread(target=worker) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.hits == n * workers
        assert stats.misses == n * workers
        assert stats.evictions == n * workers
        assert stats.lookups == 2 * n * workers
        assert stats.hit_rate == pytest.approx(0.5)

    def test_snapshot_and_repr(self):
        stats = CacheStats()
        stats.record_hit()
        stats.record_miss()
        assert stats.snapshot() == {"hits": 1, "misses": 1, "evictions": 0}
        assert repr(stats) == "CacheStats(hits=1, misses=1, evictions=0)"
        stats.reset()
        assert stats.lookups == 0


# ----------------------------------------------------------------------
# Batch kernels
# ----------------------------------------------------------------------
class TestBatchKernelMetrics:
    def test_crc_batch_publishes_bits_and_throughput(self):
        kernel = "crc-lookahead"
        calls0 = _counter_value("engine_batch_calls_total", kernel=kernel)
        bits0 = _counter_value("engine_batch_bits_total", kernel=kernel)
        tp0 = _hist_count("engine_batch_throughput_mbps", kernel=kernel)
        engine = BatchCRC(ETHERNET_CRC32, 32, method="lookahead")
        messages = [bytes(range(64))] * 16
        crcs = engine.compute_batch(messages)
        assert crcs[0] == BitwiseCRC(ETHERNET_CRC32).compute(messages[0])
        assert _counter_value("engine_batch_calls_total", kernel=kernel) > calls0
        assert (
            _counter_value("engine_batch_bits_total", kernel=kernel) - bits0
            == 16 * 64 * 8
        )
        assert _hist_count("engine_batch_throughput_mbps", kernel=kernel) > tp0


# ----------------------------------------------------------------------
# Streaming pipelines
# ----------------------------------------------------------------------
class TestPipelineMetrics:
    def test_stream_accounting_api(self):
        """The satellite API: stream_count / pending_bits."""
        pipe = CRCPipeline(ETHERNET_CRC32, 32)
        assert pipe.stream_count == 0 and pipe.pending_bits() == 0
        a = pipe.open()
        b = pipe.open()
        assert pipe.stream_count == 2
        pipe.feed_bits(a, [1] * 40, pump=False)  # 40 = 32 + 8 tail
        pipe.feed_bits(b, [0] * 7, pump=False)
        assert pipe.pending_bits(a) == 40
        assert pipe.pending_bits(b) == 7
        assert pipe.pending_bits() == 47
        pipe.pump()  # drains one full block from a
        assert pipe.pending_bits(a) == 8
        assert pipe.pending_bits() == 15
        pipe.finalize(a)
        pipe.abort(b)
        assert pipe.stream_count == 0 and pipe.pending_bits() == 0

    def test_gauges_track_open_and_pending(self):
        streams0 = _counter_value("engine_pipeline_streams", kind="crc")
        pending0 = _counter_value("engine_pipeline_pending_bits", kind="crc")
        blocks0 = _counter_value("engine_pipeline_blocks_total", kind="crc")
        pipe = CRCPipeline(ETHERNET_CRC32, 32)
        sid = pipe.open()
        pipe.feed_bits(sid, [1, 0, 1] * 20, pump=False)  # 60 bits
        assert _counter_value("engine_pipeline_streams", kind="crc") == streams0 + 1
        assert (
            _counter_value("engine_pipeline_pending_bits", kind="crc") == pending0 + 60
        )
        pipe.pump()  # one 32-bit block
        assert (
            _counter_value("engine_pipeline_pending_bits", kind="crc") == pending0 + 28
        )
        assert _counter_value("engine_pipeline_blocks_total", kind="crc") == blocks0 + 1
        pipe.finalize(sid)
        assert _counter_value("engine_pipeline_streams", kind="crc") == streams0
        assert _counter_value("engine_pipeline_pending_bits", kind="crc") == pending0

    def test_pipeline_result_matches_serial(self):
        pipe = CRCPipeline(ETHERNET_CRC32, 32)
        sid = pipe.open()
        pipe.feed(sid, b"123456789")
        assert pipe.finalize(sid) == 0xCBF43926

    def test_gauges_survive_telemetry_toggle_mid_stream(self):
        """Regression: disabling telemetry between feed and pump used to
        leave the pending-bits gauge permanently drifted, because the inc
        at feed time was never matched by a dec at pump time.  The
        reconciling publisher self-heals on the next mutation."""
        streams0 = _counter_value("engine_pipeline_streams", kind="crc")
        pending0 = _counter_value("engine_pipeline_pending_bits", kind="crc")
        pipe = CRCPipeline(ETHERNET_CRC32, 32)
        sid = pipe.open()
        pipe.feed_bits(sid, [1] * 60, pump=False)  # gauge now +60
        REG.disable()
        try:
            pipe.pump()  # consumes 32 bits while the registry is off
        finally:
            REG.enable()
        pipe.finalize(sid)  # next enabled mutation reconciles
        assert _counter_value("engine_pipeline_streams", kind="crc") == streams0
        assert _counter_value("engine_pipeline_pending_bits", kind="crc") == pending0

    def test_gauges_survive_disabled_feed(self):
        """The mirror-image toggle: bits fed while the registry is off
        must not drive the gauge negative once telemetry comes back."""
        streams0 = _counter_value("engine_pipeline_streams", kind="crc")
        pending0 = _counter_value("engine_pipeline_pending_bits", kind="crc")
        pipe = CRCPipeline(ETHERNET_CRC32, 32)
        REG.disable()
        try:
            sid = pipe.open()
            pipe.feed_bits(sid, [0, 1] * 30, pump=False)
        finally:
            REG.enable()
        pipe.feed_bits(sid, [1] * 4, pump=False)  # reconciles: 1 stream, 64 bits
        assert _counter_value("engine_pipeline_streams", kind="crc") == streams0 + 1
        assert (
            _counter_value("engine_pipeline_pending_bits", kind="crc") == pending0 + 64
        )
        pipe.finalize(sid)
        assert _counter_value("engine_pipeline_streams", kind="crc") == streams0
        assert _counter_value("engine_pipeline_pending_bits", kind="crc") == pending0


# ----------------------------------------------------------------------
# DREAM spans and bridges
# ----------------------------------------------------------------------
class TestDreamTelemetry:
    def test_execute_crc_records_span_and_cycles(self):
        tracer = default_tracer()
        tracer.enable()
        tracer.clear()
        runs0 = _counter_value("dream_executed_runs_total", workload="crc-single")
        util_before = REG.get("picoga_pipeline_utilization")
        try:
            system = DreamSystem(cache=CompileCache(capacity=8))
            mapped = system.compile_crc(ETHERNET_CRC32, 16)
            crc, _ = system.execute_crc(mapped, b"123456789")
            assert crc == 0xCBF43926
            names = [r.name for r in tracer.roots()]
            assert "dream.compile_crc" in names
            assert "dream.execute_crc" in names
        finally:
            tracer.clear()
            tracer.disable()
        assert (
            _counter_value("dream_executed_runs_total", workload="crc-single")
            == runs0 + 1
        )
        util = REG.get("picoga_pipeline_utilization")
        assert util is not None
        assert any(0 < child.value <= 1 for _, child in util.samples())

    def test_spans_nest_under_an_outer_span(self):
        tracer = default_tracer()
        tracer.enable()
        tracer.clear()
        try:
            system = DreamSystem(cache=CompileCache(capacity=8))
            with tracer.span("outer"):
                mapped = system.compile_crc(ETHERNET_CRC32, 8)
                system.execute_crc(mapped, b"abc")
            roots = tracer.roots()
            assert [r.name for r in roots] == ["outer"]
            child_names = {c.name for c in roots[0].children}
            assert {"dream.compile_crc", "dream.execute_crc"} <= child_names
        finally:
            tracer.clear()
            tracer.disable()


# ----------------------------------------------------------------------
# Overhead gate
# ----------------------------------------------------------------------
class TestOverheadGate:
    def test_disabled_registry_under_5pct_on_batch_micro_run(self):
        """The issue's gate: a disabled registry adds <5% to a batch-bench
        micro-run.  Min-of-repeats on both sides plus a small absolute
        slack keeps the comparison robust on noisy CI machines."""
        engine = BatchCRC(ETHERNET_CRC32, 32)
        messages = [bytes(range(64))] * 64
        engine.compute_batch(messages)  # warm-up

        def best_of(repeats=7):
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                engine.compute_batch(messages)
                best = min(best, time.perf_counter() - t0)
            return best

        was_enabled = REG.enabled
        try:
            REG.enable()
            t_on = best_of()
            REG.disable()
            t_off = best_of()
        finally:
            REG.set_enabled(was_enabled)
        # The disabled path does strictly less work, so it should never be
        # meaningfully slower than the enabled path.
        assert t_off <= t_on * 1.05 or (t_off - t_on) < 250e-6, (
            f"disabled {t_off * 1e6:.0f}us vs enabled {t_on * 1e6:.0f}us"
        )

    def test_decorator_short_circuit_is_cheap(self):
        reg = MetricsRegistry(enabled=False)
        tr = Tracer(enabled=False)

        @instrumented(name="noop", registry=reg, tracer=tr)
        def noop():
            return None

        noop()  # warm-up
        n = 20000
        t0 = time.perf_counter()
        for _ in range(n):
            noop()
        per_call = (time.perf_counter() - t0) / n
        assert per_call < 10e-6, f"{per_call * 1e9:.0f}ns per disabled call"
