"""Unit tests for repro.lfsr.lookahead."""

import numpy as np
import pytest

from repro.gf2 import GF2Polynomial
from repro.lfsr import (
    crc_statespace,
    expand_lookahead,
    scrambler_output_matrix,
    scrambler_statespace,
)
from repro.lfsr.lookahead import input_matrix, output_matrices

CRC32 = GF2Polynomial((1 << 32) | 0x04C11DB7)
CRC16 = GF2Polynomial((1 << 16) | 0x1021)
WIMAX = GF2Polynomial.from_exponents([15, 14, 0])


@pytest.fixture
def rng():
    return np.random.default_rng(123)


class TestExpansion:
    def test_m1_is_serial(self):
        ss = crc_statespace(CRC16)
        la = expand_lookahead(ss, 1)
        assert la.A_M == ss.A
        assert la.B_M.column(0).tolist() == ss.b.tolist()

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            expand_lookahead(crc_statespace(CRC16), 0)

    def test_b_matrix_columns(self):
        ss = crc_statespace(CRC16)
        bm = input_matrix(ss, 4)
        assert bm.shape == (16, 4)
        # Column j is A^j b.
        v = ss.b.copy()
        for j in range(4):
            assert (bm.column(j) == v).all()
            v = ss.A @ v

    def test_paper_two_step_identity(self, rng):
        """x(n+2) = A^2 x + A b u(n) + b u(n+1) — the worked example in §2."""
        ss = crc_statespace(CRC16)
        x = rng.integers(0, 2, size=16).astype(np.uint8)
        u0, u1 = 1, 1
        serial1, _ = ss.step(x, u0)
        serial2, _ = ss.step(serial1, u1)
        la = expand_lookahead(ss, 2)
        block = la.block_step(x, [u0, u1])
        assert (block == serial2).all()


class TestBlockEquivalence:
    @pytest.mark.parametrize("M", [2, 4, 8, 16, 32])
    def test_crc_block_equals_serial(self, M, rng):
        ss = crc_statespace(CRC32)
        la = expand_lookahead(ss, M)
        bits = [int(b) for b in rng.integers(0, 2, size=4 * M)]
        x0 = rng.integers(0, 2, size=32).astype(np.uint8)
        serial, _ = ss.simulate(x0, bits)
        assert (la.run(x0, bits) == serial).all()

    @pytest.mark.parametrize("M", [4, 16, 64])
    def test_scrambler_state_block_equals_serial(self, M, rng):
        ss = scrambler_statespace(WIMAX)
        la = expand_lookahead(ss, M)
        x0 = rng.integers(0, 2, size=15).astype(np.uint8)
        serial, _ = ss.run_autonomous(x0, 2 * M)
        assert (la.run(x0, [0] * (2 * M)) == serial).all()

    def test_chunk_length_validation(self):
        la = expand_lookahead(crc_statespace(CRC16), 8)
        with pytest.raises(ValueError):
            la.block_step(np.zeros(16, dtype=np.uint8), [0] * 7)

    def test_run_length_validation(self):
        la = expand_lookahead(crc_statespace(CRC16), 8)
        with pytest.raises(ValueError):
            la.run(np.zeros(16, dtype=np.uint8), [0] * 12)

    def test_input_vector_is_latest_first(self):
        la = expand_lookahead(crc_statespace(CRC16), 4)
        u = la.input_vector([1, 0, 0, 0])  # u(n)=1 is the *oldest* bit
        assert u.tolist() == [0, 0, 0, 1]


class TestFeedbackComplexity:
    def test_density_grows_with_m(self):
        ss = crc_statespace(CRC32)
        nnz_small = expand_lookahead(ss, 2).feedback_complexity()[0]
        nnz_big = expand_lookahead(ss, 64).feedback_complexity()[0]
        assert nnz_big > nnz_small

    def test_serial_feedback_is_sparse(self):
        ss = crc_statespace(CRC32)
        nnz, density = expand_lookahead(ss, 1).feedback_complexity()
        # Companion matrix: k-1 sub-diagonal + popcount(g) taps.
        assert nnz == 31 + 14
        assert density < 0.05


class TestOutputMatrices:
    def test_crc_output_expansion_trivial(self):
        ss = crc_statespace(CRC16)
        C_M, D_M = output_matrices(ss, 8)
        assert C_M == ss.C  # identity^M = identity
        assert D_M.nnz() == 0  # d = 0 for CRC

    def test_scrambler_output_requires_square(self):
        with pytest.raises(ValueError):
            output_matrices(scrambler_statespace(WIMAX), 4)

    def test_scrambler_output_matrix_rows(self, rng):
        """Row j of the M×k output matrix gives keystream bit at offset j."""
        ss = scrambler_statespace(WIMAX)
        Y = scrambler_output_matrix(ss, 16)
        x0 = rng.integers(0, 2, size=15).astype(np.uint8)
        _, outs = ss.run_autonomous(x0, 16)
        block = Y @ x0
        assert [int(b) for b in block] == [int(o[0]) for o in outs]
