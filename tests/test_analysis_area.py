"""Unit tests for repro.analysis.area — the §5 area-return claim."""

import pytest

from repro.analysis import AreaModel
from repro.baselines import RiscCostModel
from repro.crc import ETHERNET_CRC32
from repro.dream import DreamSystem
from repro.mapping import map_crc


@pytest.fixture(scope="module")
def model():
    return AreaModel()


class TestAreaBookkeeping:
    def test_paper_array_area(self, model):
        assert model.picoga_mm2 == pytest.approx(11.0)

    def test_area_ratio_near_ten(self, model):
        """§5: 'estimated in 10x the area of a basic processor'."""
        assert 8 <= model.area_ratio <= 13

    def test_dream_total(self, model):
        assert model.dream_mm2 == pytest.approx(model.picoga_mm2 + model.risc_mm2)

    def test_validation(self):
        with pytest.raises(ValueError):
            AreaModel(picoga_mm2=0)
        with pytest.raises(ValueError):
            AreaModel().dream_bps_per_mm2(-1)


class TestAreaReturnClaim:
    """'...is returned by an adequate performance improvement, also for
    short messages.'"""

    @pytest.fixture(scope="class")
    def system(self):
        return DreamSystem()

    @pytest.mark.parametrize("bits", [4096, 12144, 65536])
    def test_area_returned_vs_table_software(self, model, system, bits):
        """Against the strong table-driven baseline, frames from a few
        hundred bytes up clear the ~11x per-area breakeven outright."""
        mapped = map_crc(ETHERNET_CRC32, 128)
        dream_bps = system.crc_single_performance(mapped, bits).throughput_bps
        risc_bps = RiscCostModel().throughput_bps("table", bits)
        assert model.area_returned(dream_bps, risc_bps), bits

    def test_breakeven_speedup(self, model):
        assert model.speedup_needed() == pytest.approx(model.area_ratio)

    @pytest.mark.parametrize("bits", [368, 1024])
    def test_short_messages_clear_breakeven(self, model, system, bits):
        """'...also for short messages': at the Ethernet minimum the
        single-message speed-up vs *table* software (~4.5x) sits below the
        area ratio, but the deployment modes the paper actually proposes
        for short frames clear it — vs the bit-serial software baseline,
        and vs any baseline once Kong-Parhi interleaving is used."""
        mapped = map_crc(ETHERNET_CRC32, 128)
        single_bps = system.crc_single_performance(mapped, bits).throughput_bps
        bitwise_bps = RiscCostModel().throughput_bps("bitwise", bits)
        assert model.area_returned(single_bps, bitwise_bps)
        interleaved_bps = system.crc_interleaved_performance(mapped, bits, 32).throughput_bps
        table_bps = RiscCostModel().throughput_bps("table", bits)
        assert model.area_returned(interleaved_bps, table_bps)


class TestComputeDensity:
    def test_gops_per_mm2_magnitude(self, model):
        """XOR2-equivalent density at the M=128 design point lands in the
        tens of GOPS/mm² — above the heterogeneous-average 2 GOPS/mm² the
        paper quotes from [5], as expected for a pure-XOR kernel."""
        mapped = map_crc(ETHERNET_CRC32, 128)
        ops_per_cycle = mapped.report.taps_after_cse  # 2-input XORs per block
        density = model.gops_per_mm2(ops_per_cycle)
        assert 2 < density < 200

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.gops_per_mm2(-1)
