"""Unit tests for repro.gf2.clmul (carry-less polynomial arithmetic)."""

import pytest

from repro.gf2.clmul import (
    cldeg,
    cldivmod,
    clgcd,
    clmod,
    clmul,
    clmulmod,
    clpowmod,
)


class TestClmul:
    def test_times_zero(self):
        assert clmul(0b1011, 0) == 0
        assert clmul(0, 0b1011) == 0

    def test_times_one(self):
        assert clmul(0xDEAD, 1) == 0xDEAD

    def test_times_x_is_shift(self):
        assert clmul(0b1011, 0b10) == 0b10110

    def test_known_product(self):
        # (x+1)(x+1) = x^2 + 1 over GF(2)
        assert clmul(0b11, 0b11) == 0b101

    def test_known_product_2(self):
        # (x^2+x+1)(x+1) = x^3 + 1
        assert clmul(0b111, 0b11) == 0b1001

    def test_commutative(self):
        assert clmul(0b110101, 0b1001) == clmul(0b1001, 0b110101)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            clmul(-1, 2)


class TestDegree:
    def test_zero_polynomial(self):
        assert cldeg(0) == -1

    def test_constant(self):
        assert cldeg(1) == 0

    def test_general(self):
        assert cldeg(0b100101) == 5


class TestDivMod:
    def test_exact_division(self):
        a, b = 0b110101, 0b1011
        prod = clmul(a, b)
        q, r = cldivmod(prod, b)
        assert (q, r) == (a, 0)

    def test_division_invariant(self):
        a, b = 0xABCDEF, 0x11D
        q, r = cldivmod(a, b)
        assert clmul(q, b) ^ r == a
        assert cldeg(r) < cldeg(b)

    def test_divide_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            cldivmod(5, 0)

    def test_mod_smaller_dividend(self):
        assert clmod(0b101, 0b10000) == 0b101


class TestGcd:
    def test_gcd_of_coprime(self):
        # x^3+x+1 and x^3+x^2+1 are distinct irreducibles
        assert clgcd(0b1011, 0b1101) == 1

    def test_gcd_common_factor(self):
        f = 0b111  # x^2+x+1 irreducible
        a = clmul(f, 0b1011)
        b = clmul(f, 0b1101)
        assert clgcd(a, b) == f

    def test_gcd_with_zero(self):
        assert clgcd(0b1011, 0) == 0b1011


class TestModExp:
    def test_mulmod(self):
        assert clmulmod(0b11, 0b11, 0b111) == clmod(0b101, 0b111)

    def test_powmod_matches_repeated_mul(self):
        mod = (1 << 8) | 0x1D  # AES polynomial
        acc = 1
        for e in range(10):
            assert clpowmod(0b10, e, mod) == acc
            acc = clmulmod(acc, 0b10, mod)

    def test_powmod_fermat(self):
        # In GF(2^8): a^(2^8 - 1) == 1 for non-zero a (AES field).
        mod = (1 << 8) | 0x1B
        for a in (1, 2, 3, 0x53, 0xFF):
            assert clpowmod(a, 255, mod) == 1

    def test_powmod_negative_exponent(self):
        with pytest.raises(ValueError):
            clpowmod(2, -1, 0b111)
