"""Unit tests for repro.scrambler.prbs."""

import pytest

from repro.scrambler import PRBS7, PRBS9, PRBS15, PRBSChecker, prbs_sequence


class TestGeneration:
    def test_length(self):
        assert len(prbs_sequence(PRBS7, 200)) == 200

    def test_period(self):
        seq = prbs_sequence(PRBS7, 254)
        assert seq[:127] == seq[127:]

    def test_prbs9_period(self):
        seq = prbs_sequence(PRBS9, 2 * 511)
        assert seq[:511] == seq[511:]

    def test_balance(self):
        assert sum(prbs_sequence(PRBS7, 127)) == 64

    def test_custom_seed(self):
        assert prbs_sequence(PRBS7, 50, seed=1) != prbs_sequence(PRBS7, 50, seed=0x55)


class TestChecker:
    def test_clean_stream(self):
        stream = prbs_sequence(PRBS15, 1000)
        result = PRBSChecker(PRBS15).check(stream)
        assert result.synchronized
        assert result.checked_bits == 1000 - 15
        assert result.error_bits == 0
        assert result.bit_error_rate == 0.0

    def test_detects_injected_errors(self):
        stream = prbs_sequence(PRBS15, 1000)
        for pos in (100, 500, 900):
            stream[pos] ^= 1
        result = PRBSChecker(PRBS15).check(stream)
        assert result.synchronized
        assert result.error_bits == 3

    def test_error_in_sync_window_causes_burst(self):
        """An error inside the seed window corrupts synchronization, so
        many mismatches follow — the checker still reports a high BER."""
        stream = prbs_sequence(PRBS15, 1000)
        stream[3] ^= 1
        result = PRBSChecker(PRBS15).check(stream)
        assert result.error_bits > 3

    def test_too_short_stream(self):
        result = PRBSChecker(PRBS15).check([1] * 10)
        assert not result.synchronized
        assert result.bit_error_rate == 0.0

    def test_all_zero_window_rejected(self):
        result = PRBSChecker(PRBS7).check([0] * 100)
        assert not result.synchronized

    def test_works_from_arbitrary_stream_offset(self):
        """Self-synchronization: checking may start mid-stream."""
        stream = prbs_sequence(PRBS9, 2000)[777:]
        result = PRBSChecker(PRBS9).check(stream)
        assert result.synchronized
        assert result.error_bits == 0
