"""Cross-engine equivalence and per-engine behaviour tests."""

import numpy as np
import pytest

from repro.crc import (
    BitwiseCRC,
    DerbyCRC,
    ETHERNET_CRC32,
    GFMACCRC,
    LookaheadCRC,
    MPEG2_CRC32,
    SlicingCRC,
    TableCRC,
    get,
)
from repro.crc.gfmac import chunk_message_bits

SPECS = [ETHERNET_CRC32, MPEG2_CRC32, get("CRC-16/CCITT-FALSE"), get("CRC-16/ARC")]


@pytest.fixture(scope="module")
def messages():
    rng = np.random.default_rng(2024)
    lengths = [0, 1, 2, 3, 8, 15, 16, 17, 64, 255]
    return [bytes(rng.integers(0, 256, size=n).tolist()) for n in lengths]


class TestSoftwareEngineEquivalence:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_table_equals_bitwise(self, spec, messages):
        bw, tb = BitwiseCRC(spec), TableCRC(spec)
        for m in messages:
            assert tb.compute(m) == bw.compute(m)

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    @pytest.mark.parametrize("slices", [4, 8, 16])
    def test_slicing_equals_bitwise(self, spec, slices, messages):
        bw, sl = BitwiseCRC(spec), SlicingCRC(spec, slices)
        for m in messages:
            assert sl.compute(m) == bw.compute(m)

    def test_slicing_fallback_for_odd_width(self, messages):
        spec = get("CRC-15/CAN")
        sl = SlicingCRC(spec)
        assert not sl.supported
        bw = BitwiseCRC(spec)
        for m in messages:
            assert sl.compute(m) == bw.compute(m)

    def test_slicing_rejects_bad_count(self):
        with pytest.raises(ValueError):
            SlicingCRC(ETHERNET_CRC32, 0)

    def test_narrow_width_table(self, messages):
        for name in ("CRC-5/USB", "CRC-7/MMC"):
            spec = get(name)
            bw, tb = BitwiseCRC(spec), TableCRC(spec)
            for m in messages:
                assert tb.compute(m) == bw.compute(m)


class TestMatrixEngines:
    @pytest.mark.parametrize("M", [1, 4, 8, 32, 64, 128])
    def test_lookahead_equals_bitwise_crc32(self, M, messages):
        bw, la = BitwiseCRC(ETHERNET_CRC32), LookaheadCRC(ETHERNET_CRC32, M)
        for m in messages:
            assert la.compute(m) == bw.compute(m)

    @pytest.mark.parametrize("M", [1, 4, 8, 32, 64, 128])
    def test_derby_equals_bitwise_crc32(self, M, messages):
        bw, db = BitwiseCRC(ETHERNET_CRC32), DerbyCRC(ETHERNET_CRC32, M)
        for m in messages:
            assert db.compute(m) == bw.compute(m)

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_derby_all_specs(self, spec, messages):
        bw, db = BitwiseCRC(spec), DerbyCRC(spec, 16)
        for m in messages:
            assert db.compute(m) == bw.compute(m)

    def test_tail_not_multiple_of_m(self):
        """M = 24 never divides 8·len for odd lengths — exercises the
        serial tail path."""
        bw, db = BitwiseCRC(ETHERNET_CRC32), DerbyCRC(ETHERNET_CRC32, 24)
        assert db.compute(b"12345") == bw.compute(b"12345")

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            LookaheadCRC(ETHERNET_CRC32, 0)

    def test_streaming_api(self, messages):
        db = DerbyCRC(ETHERNET_CRC32, 32)
        bw = BitwiseCRC(ETHERNET_CRC32)
        m = messages[-1][:64]  # 512 bits = 16 chunks of 32
        bits = ETHERNET_CRC32.message_bits(m)
        state = db.stream_state(ETHERNET_CRC32.init)
        for off in range(0, len(bits), 32):
            state = db.stream_block(state, bits[off : off + 32])
        assert ETHERNET_CRC32.finalize(db.stream_finish(state)) == bw.compute(m)

    def test_paper_128bit_lookahead_exists(self):
        """§4: 'PiCoGA is able to elaborate up to 128 bit per cycle'."""
        db = DerbyCRC(ETHERNET_CRC32, 128)
        assert db.transform.A_Mt.is_companion()
        assert db.transform.B_Mt.shape == (32, 128)


class TestGFMAC:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    @pytest.mark.parametrize("chunk", [8, 24, 32, 128])
    def test_equals_bitwise(self, spec, chunk, messages):
        bw, gm = BitwiseCRC(spec), GFMACCRC(spec, chunk)
        for m in messages:
            assert gm.compute(m) == bw.compute(m)

    def test_chunking_weights(self):
        chunks = chunk_message_bits([1, 0, 1, 1, 0], 2)
        assert chunks == [(0b10, 3), (0b11, 1), (0b0, 0)]

    def test_chunking_rejects_bad_size(self):
        with pytest.raises(ValueError):
            chunk_message_bits([1], 0)

    def test_beta_constants(self):
        gm = GFMACCRC(ETHERNET_CRC32, 32)
        # weight 0: x^32 mod G = G - x^32 = the low polynomial bits.
        assert gm.beta(0) == 0x04C11DB7

    def test_gfmac_count_tracks_work(self):
        gm = GFMACCRC(MPEG2_CRC32, 32)
        gm.compute(b"\x00" * 16)  # 128 bits -> 4 chunks + 1 init term
        assert gm.gfmac_count == 5

    def test_reference_cycle_claim_workload(self):
        """[10]: a 128-bit message needs N/M = 4 GFMACs at M = 32 — with 16
        units that is a couple of cycles, matching the cited 2-3 cycles."""
        gm = GFMACCRC(MPEG2_CRC32, 32)
        gm.compute(b"\xaa" * 16)
        assert gm.gfmac_count <= 16


class TestErrorDetectionProperties:
    """CRC behaviour guarantees that make it a *check* code."""

    def test_single_bit_errors_detected(self):
        bw = BitwiseCRC(ETHERNET_CRC32)
        data = bytearray(b"The quick brown fox")
        good = bw.compute(bytes(data))
        for byte_idx in range(len(data)):
            for bit in range(8):
                data[byte_idx] ^= 1 << bit
                assert bw.compute(bytes(data)) != good
                data[byte_idx] ^= 1 << bit

    def test_burst_errors_detected(self):
        """Any burst shorter than the width is caught."""
        bw = BitwiseCRC(ETHERNET_CRC32)
        data = bytearray(b"payload payload payload")
        good = bw.compute(bytes(data))
        for start in range(0, len(data) - 4):
            corrupted = bytearray(data)
            corrupted[start] ^= 0xFF
            corrupted[start + 3] ^= 0x81
            assert bw.compute(bytes(corrupted)) != good

    def test_linearity_over_gf2(self):
        """crc0(a ^ b) == crc0(a) ^ crc0(b) for the zero-preset raw CRC."""
        spec = get("CRC-16/XMODEM")  # init = 0, xorout = 0, no reflection
        bw = BitwiseCRC(spec)
        rng = np.random.default_rng(7)
        for _ in range(10):
            a = bytes(rng.integers(0, 256, size=20).tolist())
            b = bytes(rng.integers(0, 256, size=20).tolist())
            ab = bytes(x ^ y for x, y in zip(a, b))
            assert bw.compute(ab) == bw.compute(a) ^ bw.compute(b)

    def test_verify_roundtrip(self):
        for engine_cls in (BitwiseCRC, TableCRC):
            engine = engine_cls(ETHERNET_CRC32)
            assert engine.verify(b"data", engine.compute(b"data"))
            assert not engine.verify(b"data", engine.compute(b"data") ^ 1)
