"""Unit tests for repro.scrambler.additive and the scrambler spec catalog."""

import numpy as np
import pytest

from repro.scrambler import (
    AdditiveScrambler,
    CATALOG,
    DVB,
    IEEE80211,
    IEEE80216E,
    ScramblerSpec,
    get,
)
from repro.gf2.polynomial import GF2Polynomial


class TestSpecs:
    def test_catalog_lookup(self):
        assert get("IEEE-802.16e") is IEEE80216E

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get("IEEE-802.99")

    def test_wimax_polynomial(self):
        """Fig. 8 test case: 1 + x^14 + x^15."""
        assert IEEE80216E.poly.coeffs == (1 << 15) | (1 << 14) | 1
        assert IEEE80216E.degree == 15

    def test_dvb_shares_wimax_generator(self):
        assert DVB.poly == IEEE80216E.poly

    def test_all_catalog_polys_primitive(self):
        """Every standard scrambler generator is primitive -> maximal
        keystream period 2^k - 1."""
        for spec in CATALOG:
            assert spec.poly.is_primitive(), spec.name

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            ScramblerSpec("bad", GF2Polynomial(0b1011), 0)

    def test_wide_seed_rejected(self):
        with pytest.raises(ValueError):
            ScramblerSpec("bad", GF2Polynomial(0b1011), 0b1000)


class TestScrambleDescramble:
    @pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
    def test_involution(self, spec):
        rng = np.random.default_rng(1)
        bits = [int(b) for b in rng.integers(0, 2, size=300)]
        scrambler = AdditiveScrambler(spec)
        descrambler = AdditiveScrambler(spec)
        assert descrambler.descramble_bits(scrambler.scramble_bits(bits)) == bits

    def test_byte_interface_roundtrip(self):
        data = bytes(range(64))
        assert (
            AdditiveScrambler(IEEE80211).descramble_bytes(
                AdditiveScrambler(IEEE80211).scramble_bytes(data)
            )
            == data
        )

    def test_byte_interface_bit_orders_differ(self):
        data = b"\x01" * 8
        lsb = AdditiveScrambler(IEEE80211).scramble_bytes(data, lsb_first=True)
        msb = AdditiveScrambler(IEEE80211).scramble_bytes(data, lsb_first=False)
        assert lsb != msb

    def test_scrambling_changes_data(self):
        bits = [0] * 100
        out = AdditiveScrambler(IEEE80216E).scramble_bits(bits)
        assert out != bits  # zeros become the keystream itself
        assert out == AdditiveScrambler(IEEE80216E).keystream(100)

    def test_seed_override(self):
        a = AdditiveScrambler(IEEE80216E, seed=0x1234)
        b = AdditiveScrambler(IEEE80216E, seed=0x4321)
        assert a.keystream(50) != b.keystream(50)

    def test_zero_seed_override_rejected(self):
        with pytest.raises(ValueError):
            AdditiveScrambler(IEEE80216E, seed=0)

    def test_wide_seed_override_rejected(self):
        with pytest.raises(ValueError):
            AdditiveScrambler(IEEE80216E, seed=1 << 15)


class TestKeystreamProperties:
    def test_wimax_period(self):
        assert AdditiveScrambler(IEEE80216E).period() == (1 << 15) - 1

    def test_wifi_period(self):
        assert AdditiveScrambler(IEEE80211).period() == 127

    def test_keystream_repeats_at_period(self):
        s = AdditiveScrambler(IEEE80211)
        ks = s.keystream(254)
        assert ks[:127] == ks[127:]

    def test_balance(self):
        ks = AdditiveScrambler(IEEE80211).keystream(127)
        assert sum(ks) == 64

    def test_no_long_zero_runs(self):
        """The design purpose: break up long constant runs (paper §1)."""
        ks = AdditiveScrambler(IEEE80216E).keystream(1000)
        longest = 0
        current = 0
        for bit in ks:
            current = current + 1 if bit == 0 else 0
            longest = max(longest, current)
        assert longest <= 15  # cannot exceed the register width
