"""Unit tests for repro.lfsr.companion."""

import numpy as np
import pytest

from repro.gf2 import GF2Matrix, GF2Polynomial
from repro.lfsr.companion import companion_matrix, companion_taps, poly_from_companion

CRC32 = GF2Polynomial((1 << 32) | 0x04C11DB7)


class TestCompanionMatrix:
    def test_shape(self):
        assert companion_matrix(CRC32).shape == (32, 32)

    def test_is_companion(self):
        assert companion_matrix(CRC32).is_companion()

    def test_matches_paper_layout(self):
        # degree-3 example g(x) = x^3 + x + 1: g0=1, g1=1, g2=0
        a = companion_matrix(GF2Polynomial(0b1011))
        expected = GF2Matrix([
            [0, 0, 1],
            [1, 0, 1],
            [0, 1, 0],
        ])
        assert a == expected

    def test_rejects_constant(self):
        with pytest.raises(ValueError):
            companion_matrix(GF2Polynomial(1))

    def test_charpoly_recovers_generator(self):
        for coeffs in (0b1011, 0b10011, (1 << 16) | 0x1021, CRC32.coeffs):
            poly = GF2Polynomial(coeffs)
            assert companion_matrix(poly).characteristic_polynomial() == coeffs

    def test_invertible_iff_constant_term(self):
        with_const = companion_matrix(GF2Polynomial(0b1011))
        assert with_const.is_invertible()
        without_const = companion_matrix(GF2Polynomial(0b1010))
        assert not without_const.is_invertible()

    def test_step_equals_shift(self):
        """Applying A to state e_i yields e_{i+1} for i < k-1 (pure shift)."""
        a = companion_matrix(CRC32)
        for i in range(31):
            e = np.zeros(32, dtype=np.uint8)
            e[i] = 1
            out = a @ e
            expected = np.zeros(32, dtype=np.uint8)
            expected[i + 1] = 1
            assert (out == expected).all()

    def test_feedback_row(self):
        """Applying A to e_{k-1} injects the generator taps."""
        a = companion_matrix(CRC32)
        e = np.zeros(32, dtype=np.uint8)
        e[31] = 1
        out = a @ e
        assert (out == companion_taps(CRC32)).all()


class TestCompanionTaps:
    def test_taps_vector(self):
        taps = companion_taps(GF2Polynomial(0b1011))
        assert taps.tolist() == [1, 1, 0]

    def test_taps_equal_last_column(self):
        a = companion_matrix(CRC32)
        assert (companion_taps(CRC32) == a.column(31)).all()


class TestPolyFromCompanion:
    def test_roundtrip(self):
        for coeffs in (0b1011, 0b11111, CRC32.coeffs):
            poly = GF2Polynomial(coeffs)
            assert poly_from_companion(companion_matrix(poly)) == poly

    def test_rejects_non_companion(self):
        with pytest.raises(ValueError):
            poly_from_companion(GF2Matrix.identity(3))
