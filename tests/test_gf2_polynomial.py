"""Unit tests for repro.gf2.polynomial."""

import pytest

from repro.gf2 import GF2Polynomial

CRC32_POLY = GF2Polynomial((1 << 32) | 0x04C11DB7)


class TestBasics:
    def test_from_exponents(self):
        p = GF2Polynomial.from_exponents([3, 1, 0])
        assert p.coeffs == 0b1011

    def test_from_exponents_crc32(self):
        exps = [32, 26, 23, 22, 16, 12, 11, 10, 8, 7, 5, 4, 2, 1, 0]
        assert GF2Polynomial.from_exponents(exps) == CRC32_POLY

    def test_degree(self):
        assert GF2Polynomial(0b1011).degree == 3
        assert GF2Polynomial.zero().degree == -1

    def test_coefficient(self):
        p = GF2Polynomial(0b1011)
        assert [p.coefficient(i) for i in range(4)] == [1, 1, 0, 1]

    def test_exponents_descending(self):
        assert GF2Polynomial(0b1011).exponents() == [3, 1, 0]

    def test_str(self):
        assert str(GF2Polynomial(0b1011)) == "x^3 + x + 1"
        assert str(GF2Polynomial.zero()) == "0"
        assert str(GF2Polynomial(0b10)) == "x"

    def test_iter_lsb_first(self):
        assert list(GF2Polynomial(0b1011)) == [1, 1, 0, 1]

    def test_eq_with_int(self):
        assert GF2Polynomial(5) == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            GF2Polynomial(-1)


class TestArithmetic:
    def test_add_is_xor(self):
        assert GF2Polynomial(0b1010) + GF2Polynomial(0b0110) == GF2Polynomial(0b1100)

    def test_sub_equals_add(self):
        a, b = GF2Polynomial(0b1010), GF2Polynomial(0b0110)
        assert a - b == a + b

    def test_mul(self):
        assert GF2Polynomial(0b11) * GF2Polynomial(0b111) == GF2Polynomial(0b1001)

    def test_divmod_invariant(self):
        a = GF2Polynomial(0xDEADBEEF)
        b = GF2Polynomial(0x11D)
        q, r = a.divmod(b)
        assert q * b + r == a
        assert r.degree < b.degree

    def test_mod_and_floordiv(self):
        a = GF2Polynomial(0b11011)
        b = GF2Polynomial(0b101)
        assert (a // b) * b + (a % b) == a

    def test_gcd(self):
        f = GF2Polynomial(0b111)
        a = f * GF2Polynomial(0b1011)
        b = f * GF2Polynomial(0b1101)
        assert a.gcd(b) == f

    def test_pow_mod(self):
        mod = GF2Polynomial(0b111)
        assert GF2Polynomial.x().pow_mod(2, mod) == GF2Polynomial(0b11)  # x^2 = x+1 mod x^2+x+1

    def test_evaluate(self):
        p = GF2Polynomial(0b1011)  # x^3+x+1
        assert p.evaluate(0) == 1
        assert p.evaluate(1) == 1  # 3 terms -> parity 1
        with pytest.raises(ValueError):
            p.evaluate(2)


class TestIrreducibility:
    def test_known_irreducibles(self):
        for coeffs in (0b111, 0b1011, 0b1101, 0b10011, (1 << 8) | 0x1B):
            assert GF2Polynomial(coeffs).is_irreducible(), bin(coeffs)

    def test_known_reducibles(self):
        # x^2+1 = (x+1)^2; x^4+x^2+1 = (x^2+x+1)^2
        for coeffs in (0b101, 0b10101):
            assert not GF2Polynomial(coeffs).is_irreducible(), bin(coeffs)

    def test_degree_one_always_irreducible(self):
        assert GF2Polynomial(0b10).is_irreducible()  # x
        assert GF2Polynomial(0b11).is_irreducible()  # x + 1

    def test_crc32_poly_is_primitive(self):
        # The Ethernet CRC-32 generator is a primitive degree-32 polynomial.
        assert CRC32_POLY.is_irreducible()
        assert CRC32_POLY.is_primitive()

    def test_constant_not_irreducible(self):
        assert not GF2Polynomial(1).is_irreducible()


class TestOrderPeriod:
    def test_primitive_trinomial_order(self):
        # x^7 + x + 1 is primitive -> order 127 (the 802.11 scrambler poly
        # is x^7 + x^4 + 1, also primitive).
        p = GF2Polynomial.from_exponents([7, 1, 0])
        assert p.is_primitive()
        assert p.order() == 127

    def test_wifi_scrambler_poly_primitive(self):
        p = GF2Polynomial.from_exponents([7, 4, 0])
        assert p.is_primitive()

    def test_wimax_scrambler_poly_primitive(self):
        # 802.16 / DVB randomizer: 1 + x^14 + x^15
        p = GF2Polynomial.from_exponents([15, 14, 0])
        assert p.is_primitive()
        assert p.order() == (1 << 15) - 1

    def test_irreducible_non_primitive(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible with order 5 (divides 15).
        p = GF2Polynomial(0b11111)
        assert p.is_irreducible()
        assert p.order() == 5
        assert not p.is_primitive()

    def test_order_requires_constant_term(self):
        with pytest.raises(ValueError):
            GF2Polynomial(0b110).order()


class TestReciprocal:
    def test_reciprocal_reverses(self):
        p = GF2Polynomial(0b1011)  # x^3+x+1
        assert p.reciprocal() == GF2Polynomial(0b1101)  # x^3+x^2+1

    def test_reciprocal_involution(self):
        p = GF2Polynomial(0b110101)
        assert p.reciprocal().reciprocal() == p

    def test_reciprocal_preserves_primitivity(self):
        p = GF2Polynomial.from_exponents([7, 4, 0])
        assert p.reciprocal().is_primitive()
