"""Unit tests for repro.crc.codeword (wire-format framing)."""

import numpy as np
import pytest

from repro.crc import CodewordCodec, ETHERNET_CRC32, get


@pytest.fixture(scope="module")
def messages():
    rng = np.random.default_rng(44)
    return [bytes(rng.integers(0, 256, size=n).tolist()) for n in (0, 1, 46, 300)]


class TestFraming:
    def test_byte_multiple_width_required(self):
        with pytest.raises(ValueError):
            CodewordCodec(get("CRC-15/CAN"))

    def test_overhead(self):
        assert CodewordCodec(ETHERNET_CRC32).overhead_bytes == 4
        assert CodewordCodec(get("CRC-16/X-25")).overhead_bytes == 2

    def test_encode_appends(self, messages):
        codec = CodewordCodec(ETHERNET_CRC32)
        for m in messages:
            assert len(codec.encode(m)) == len(m) + 4

    def test_reflected_wire_order_is_little_endian(self):
        codec = CodewordCodec(ETHERNET_CRC32)
        crc = 0x11223344
        assert codec.crc_to_bytes(crc) == bytes([0x44, 0x33, 0x22, 0x11])

    def test_forward_wire_order_is_big_endian(self):
        codec = CodewordCodec(get("CRC-16/XMODEM"))
        assert codec.crc_to_bytes(0x1234) == bytes([0x12, 0x34])

    def test_crc_bytes_roundtrip(self):
        codec = CodewordCodec(ETHERNET_CRC32)
        assert codec.crc_from_bytes(codec.crc_to_bytes(0xCBF43926)) == 0xCBF43926

    def test_crc_from_bytes_length_check(self):
        with pytest.raises(ValueError):
            CodewordCodec(ETHERNET_CRC32).crc_from_bytes(b"\x00")


class TestDecoding:
    @pytest.mark.parametrize("name", ["CRC-32", "CRC-32/MPEG-2", "CRC-16/X-25", "CRC-8"])
    def test_roundtrip(self, name, messages):
        codec = CodewordCodec(get(name))
        for m in messages:
            recovered, ok = codec.decode(codec.encode(m))
            assert ok
            assert recovered == m

    def test_detects_payload_corruption(self, messages):
        codec = CodewordCodec(ETHERNET_CRC32)
        codeword = bytearray(codec.encode(messages[2]))
        codeword[3] ^= 0x40
        _, ok = codec.decode(bytes(codeword))
        assert not ok

    def test_detects_crc_corruption(self, messages):
        codec = CodewordCodec(ETHERNET_CRC32)
        codeword = bytearray(codec.encode(messages[2]))
        codeword[-1] ^= 0x01
        _, ok = codec.decode(bytes(codeword))
        assert not ok

    def test_short_codeword_rejected(self):
        with pytest.raises(ValueError):
            CodewordCodec(ETHERNET_CRC32).decode(b"\x00\x00")


class TestResidueDiscipline:
    @pytest.mark.parametrize("name", ["CRC-32", "CRC-16/X-25", "CRC-16/XMODEM", "CRC-8"])
    def test_valid_codewords_hit_residue(self, name, messages):
        codec = CodewordCodec(get(name))
        for m in messages:
            assert codec.check_residue(codec.encode(m))

    def test_corruption_misses_residue(self, messages):
        codec = CodewordCodec(ETHERNET_CRC32)
        codeword = bytearray(codec.encode(messages[2]))
        codeword[0] ^= 0x80
        assert not codec.check_residue(bytes(codeword))

    def test_mixed_reflection_unsupported(self):
        # Hypothetical mixed spec at byte-multiple width.
        from repro.crc import CRCSpec

        mixed = CRCSpec("MIXED-16", 16, 0x1021, 0, False, True, 0)
        codec = CodewordCodec(mixed)
        with pytest.raises(ValueError):
            codec.check_residue(b"\x00\x00\x00")

    def test_too_short_is_invalid(self):
        assert not CodewordCodec(ETHERNET_CRC32).check_residue(b"\x00")
