"""Unit tests for repro.scrambler.parallel (the Fig. 8 block engine)."""

import numpy as np
import pytest

from repro.scrambler import AdditiveScrambler, IEEE80211, IEEE80216E, ParallelScrambler


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestBlockKeystream:
    @pytest.mark.parametrize("M", [1, 2, 8, 16, 32, 64, 128])
    def test_matches_serial_keystream(self, M):
        serial = AdditiveScrambler(IEEE80216E).keystream(512)
        block = ParallelScrambler(IEEE80216E, M).keystream(512)
        assert block == serial

    def test_non_multiple_length(self):
        """Keystream lengths that are not multiples of M are truncated."""
        serial = AdditiveScrambler(IEEE80211).keystream(100)
        block = ParallelScrambler(IEEE80211, 32).keystream(100)
        assert block == serial

    def test_scramble_descramble(self, rng):
        bits = [int(b) for b in rng.integers(0, 2, size=300)]
        ps = ParallelScrambler(IEEE80216E, 64)
        assert ParallelScrambler(IEEE80216E, 64).descramble_bits(ps.scramble_bits(bits)) == bits

    def test_block_equals_serial_scramble(self, rng):
        bits = [int(b) for b in rng.integers(0, 2, size=256)]
        assert (
            ParallelScrambler(IEEE80216E, 128).scramble_bits(bits)
            == AdditiveScrambler(IEEE80216E).scramble_bits(bits)
        )

    def test_seed_override(self):
        a = ParallelScrambler(IEEE80216E, 16, seed=0x0001)
        b = AdditiveScrambler(IEEE80216E, seed=0x0001)
        assert a.keystream(64) == b.keystream(64)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            ParallelScrambler(IEEE80216E, 0)


class TestStructure:
    def test_matrix_shapes(self):
        ps = ParallelScrambler(IEEE80216E, 128)
        assert ps.state_update.shape == (15, 15)
        assert ps.output_matrix.shape == (128, 15)

    def test_m1_output_matrix_is_selector(self):
        ps = ParallelScrambler(IEEE80216E, 1)
        row = ps.output_matrix.to_array()[0]
        assert row.sum() == 1
        assert row[14] == 1  # default tap x_{k-1}

    def test_single_pgaop_no_feedthrough(self):
        """The scrambler block circuit has no input-dependent feedback:
        the state update depends only on the state (paper: one PGAOP,
        no pipeline break)."""
        ps = ParallelScrambler(IEEE80216E, 64)
        assert ps.state_update.is_square()
        # Complexity is all in feed-forward Y + autonomous A^M.
        assert ps.logic_complexity() == ps.state_update.nnz() + ps.output_matrix.nnz()

    def test_complexity_grows_with_m(self):
        c8 = ParallelScrambler(IEEE80216E, 8).logic_complexity()
        c128 = ParallelScrambler(IEEE80216E, 128).logic_complexity()
        assert c128 > c8

    def test_paper_max_factor(self):
        """§5: scrambler 'working with up to 128 bit in parallel'."""
        ps = ParallelScrambler(IEEE80216E, 128)
        assert ps.keystream(128) == AdditiveScrambler(IEEE80216E).keystream(128)
