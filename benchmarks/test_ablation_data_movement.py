"""Data-movement ablation: when does DMA, not compute, set the ceiling?

The throughput model assumes the local memory keeps the array fed; this
bench stresses that assumption with the :class:`LocalMemoryModel`:

* the default DREAM-like buffer (4 x 32-bit banks) sustains exactly
  M = 128 — the same ceiling the cell budget gives, i.e. the paper's
  design point is balanced;
* sweeping the system-bus width shows single-message throughput saturating
  against exposed DMA time once compute gets fast enough.
"""

import pytest

from repro.analysis import format_table
from repro.dream import DREAM_MEMORY, LocalMemoryModel

MESSAGE_BITS = 12144
COMPUTE_CYCLES = {32: 457, 64: 269, 128: 179}  # Fig. 4 single-message points
BUS_WIDTHS = (16, 32, 64, 128)


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for width in BUS_WIDTHS:
        model = LocalMemoryModel(dma_width_bits=width)
        per_m = {}
        for M, compute in COMPUTE_CYCLES.items():
            per_m[M] = model.effective_throughput_bps(MESSAGE_BITS, compute) / 1e9
        results[width] = per_m
    return results


def test_ablation_data_movement_regenerate(sweep, save_result):
    rows = []
    for width, per_m in sweep.items():
        staging = LocalMemoryModel(dma_width_bits=width).staging_cycles(MESSAGE_BITS)
        rows.append(
            [width, staging] + [f"{per_m[M]:.2f}" for M in COMPUTE_CYCLES]
        )
    text = format_table(
        ["bus bits/cycle", "staging cycles"] + [f"M={M} Gbit/s" for M in COMPUTE_CYCLES],
        rows,
        title=f"Ablation: DMA bus width vs effective throughput ({MESSAGE_BITS}-bit messages)",
    )
    save_result("ablation_data_movement", text)


def test_balanced_design_point(sweep):
    """Memory bandwidth and cell budget give the *same* M = 128 ceiling."""
    assert DREAM_MEMORY.max_sustained_m() == 128


def test_wide_bus_preserves_compute_bound(sweep):
    """With a 128-bit bus, staging hides behind compute entirely."""
    compute_bound = MESSAGE_BITS * 200e6 / COMPUTE_CYCLES[128] / 1e9
    assert sweep[128][128] == pytest.approx(compute_bound)


def test_narrow_bus_caps_fast_compute(sweep):
    """A 16-bit bus exposes DMA time: the M = 128 point loses bandwidth
    while the slow M = 32 point is barely affected."""
    loss_128 = 1 - sweep[16][128] / sweep[128][128]
    loss_32 = 1 - sweep[16][32] / sweep[128][32]
    assert loss_128 > 0.5
    assert loss_32 < 0.5


def test_throughput_monotone_in_bus_width(sweep):
    for M in COMPUTE_CYCLES:
        series = [sweep[w][M] for w in BUS_WIDTHS]
        assert series == sorted(series)


def test_frame_fits_local_buffer():
    assert DREAM_MEMORY.capacity_bits >= MESSAGE_BITS


def test_benchmark_memory_model(benchmark):
    model = LocalMemoryModel()
    value = benchmark(model.effective_throughput_bps, MESSAGE_BITS, 179)
    assert value > 0
