"""Fig. 4 — throughput vs message length, single message.

The paper sweeps the message length (marking the 368..12144-bit Ethernet
window) for several look-ahead factors; the curves rise toward M × 200
Mbit/s as the per-message control overhead and the configuration-switch
pipeline break amortize.  The executed netlist is spot-checked against the
analytic model inside the bench.
"""

import pytest

from repro.analysis import (
    ETHERNET_MAX_BITS,
    ETHERNET_MIN_BITS,
    format_multi_series,
    message_length_sweep,
)
from repro.telemetry import BenchReport

FACTORS = (8, 16, 32, 64, 128)
LENGTHS = message_length_sweep(128, 65536, points_per_octave=1)


@pytest.fixture(scope="module")
def curves(system, crc_mappings):
    return {
        f"M={M}": {
            bits: system.crc_single_performance(crc_mappings[M], bits).throughput_gbps
            for bits in LENGTHS
        }
        for M in FACTORS
    }


def test_fig4_regenerate(curves, save_result, save_report):
    text = format_multi_series(
        LENGTHS,
        curves,
        "message bits",
        title=(
            "Fig. 4: single-message throughput (Gbit/s) vs message length\n"
            f"(Ethernet window: {ETHERNET_MIN_BITS}..{ETHERNET_MAX_BITS} bits)"
        ),
    )
    save_result("fig4_throughput_single", text)
    save_report(BenchReport(
        name="fig4_throughput_single",
        title="Fig. 4: single-message throughput (Gbit/s) vs message length",
        params={
            "factors": list(FACTORS),
            "lengths": list(LENGTHS),
            "ethernet_window_bits": [ETHERNET_MIN_BITS, ETHERNET_MAX_BITS],
        },
        metrics={"peak_gbps_m128": max(curves["M=128"].values())},
        series={
            name: {str(bits): gbps for bits, gbps in series.items()}
            for name, series in curves.items()
        },
    ))


def test_curves_monotone_in_length(curves):
    for name, series in curves.items():
        values = [series[bits] for bits in LENGTHS]
        assert values == sorted(values), name


def test_gbit_within_ethernet_window(curves):
    """§5: 'we can perform transfers at the Gbit/sec speed for M equal to
    32, 64 and 128' inside the Ethernet window."""
    for M in (32, 64, 128):
        assert curves[f"M={M}"][ETHERNET_MIN_BITS] > 0.5
        assert curves[f"M={M}"][ETHERNET_MAX_BITS] > 1.0


def test_asymptote_is_m_times_clock(curves, system, crc_mappings):
    """At long messages the throughput approaches M x 200 Mbit/s."""
    perf = system.crc_single_performance(crc_mappings[128], 1 << 20)
    assert perf.throughput_gbps == pytest.approx(25.6, rel=0.05)


def test_overhead_dominates_short_messages(curves):
    """The left side of Fig. 4: all factors collapse toward the overhead
    floor — M=128 gains little over M=32 on a 368-bit message."""
    ratio = curves["M=128"][ETHERNET_MIN_BITS] / curves["M=32"][ETHERNET_MIN_BITS]
    assert ratio < 2.0


def test_executed_matches_analytic(system, crc_mappings):
    data = bytes(range(46))  # 368 bits
    crc, executed = system.execute_crc(crc_mappings[64], data)
    predicted = system.crc_single_performance(crc_mappings[64], 368)
    assert executed.total_cycles == predicted.total_cycles


def test_benchmark_fig4_sweep(benchmark, system, crc_mappings):
    def sweep():
        return [
            system.crc_single_performance(crc_mappings[128], bits).throughput_gbps
            for bits in LENGTHS
        ]

    values = benchmark(sweep)
    assert len(values) == len(LENGTHS)
