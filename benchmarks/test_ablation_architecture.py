"""Architecture-scaling ablations (beyond the paper's fixed PiCoGA).

Two what-if studies the paper's conclusions invite:

* **Array scaling** — how the maximum feasible look-ahead factor (and thus
  peak bandwidth) moves with the cell budget.  The shipped 24×16 array
  tops out at M = 128 (the paper's number); a doubled array would unlock
  M = 256.
* **Interleave depth** — how many messages Fig. 5's interleaving needs
  before short-message throughput saturates.
"""

import pytest

from repro.analysis import format_table
from repro.crc import ETHERNET_CRC32
from repro.mapping import DesignSpaceExplorer
from repro.picoga import PicogaArchitecture

SCALES = {
    "half (12x16)": PicogaArchitecture(rows=12),
    "paper (24x16)": PicogaArchitecture(),
    "double (48x16)": PicogaArchitecture(rows=48),
    "quad (96x16, wide I/O)": PicogaArchitecture(rows=96, input_ports=24),
}
FACTORS = (32, 64, 128, 256, 512)


@pytest.fixture(scope="module")
def scaling_results():
    results = {}
    for label, arch in SCALES.items():
        explorer = DesignSpaceExplorer(ETHERNET_CRC32, arch)
        results[label] = {
            "max_m": explorer.max_feasible_m(FACTORS),
            "arch": arch,
        }
    return results


def test_ablation_array_scaling_regenerate(scaling_results, save_result):
    rows = []
    for label, entry in scaling_results.items():
        arch = entry["arch"]
        max_m = entry["max_m"]
        rows.append(
            [label, arch.total_cells, max_m, f"{max_m * arch.clock_hz / 1e9:.1f}"]
        )
    text = format_table(
        ["array", "cells", "max M", "peak Gbit/s"],
        rows,
        title="Ablation: array scaling vs maximum look-ahead (CRC-32)",
    )
    save_result("ablation_array_scaling", text)


def test_paper_array_tops_at_128(scaling_results):
    assert scaling_results["paper (24x16)"]["max_m"] == 128


def test_half_array_loses_parallelism(scaling_results):
    assert scaling_results["half (12x16)"]["max_m"] < 128


def test_double_array_unlocks_more(scaling_results):
    assert scaling_results["double (48x16)"]["max_m"] >= 256


def test_max_m_monotone_in_cells(scaling_results):
    ordered = sorted(scaling_results.values(), key=lambda e: e["arch"].total_cells)
    max_ms = [e["max_m"] for e in ordered]
    assert max_ms == sorted(max_ms)


WAYS = (1, 2, 4, 8, 16, 32, 64)


@pytest.fixture(scope="module")
def interleave_curve(system, crc_mappings):
    mapped = crc_mappings[128]
    return {
        w: system.crc_interleaved_performance(mapped, 368, w).throughput_gbps
        for w in WAYS
    }


def test_ablation_interleave_depth_regenerate(interleave_curve, save_result):
    rows = [[w, f"{g:.2f}"] for w, g in interleave_curve.items()]
    text = format_table(
        ["ways", "Gbit/s"],
        rows,
        title="Ablation: interleave depth at the 368-bit Ethernet minimum (M = 128)",
    )
    save_result("ablation_interleave_depth", text)


def test_throughput_monotone_in_ways(interleave_curve):
    values = [interleave_curve[w] for w in WAYS]
    assert values == sorted(values)


def test_paper_choice_of_32_near_saturation(interleave_curve):
    """32 ways (the paper's setting) captures most of the available gain."""
    assert interleave_curve[32] > 0.8 * interleave_curve[64]


def test_benchmark_explorer(benchmark):
    explorer = DesignSpaceExplorer(ETHERNET_CRC32)
    point = benchmark(explorer.evaluate, 16)
    assert point.feasible
