"""Fig. 5 — throughput vs message length with 32 interleaved messages.

Kong–Parhi interleaving [13] works on 32 messages concurrently, amortizing
the configuration change and hiding per-message control: the short-message
end of the curve lifts dramatically relative to Fig. 4.
"""

import pytest

from repro.analysis import format_multi_series, message_length_sweep
from repro.telemetry import BenchReport

FACTORS = (8, 16, 32, 64, 128)
WAYS = 32
LENGTHS = message_length_sweep(128, 65536, points_per_octave=1)


@pytest.fixture(scope="module")
def curves(system, crc_mappings):
    return {
        f"M={M}": {
            bits: system.crc_interleaved_performance(
                crc_mappings[M], bits, WAYS
            ).throughput_gbps
            for bits in LENGTHS
        }
        for M in FACTORS
    }


def test_fig5_regenerate(curves, save_result, save_report):
    text = format_multi_series(
        LENGTHS,
        curves,
        "message bits",
        title=f"Fig. 5: throughput (Gbit/s) with {WAYS} interleaved messages",
    )
    save_result("fig5_throughput_interleaved", text)
    save_report(BenchReport(
        name="fig5_throughput_interleaved",
        title=f"Fig. 5: throughput (Gbit/s) with {WAYS} interleaved messages",
        params={"factors": list(FACTORS), "ways": WAYS, "lengths": list(LENGTHS)},
        metrics={"peak_gbps_m128": max(curves["M=128"].values())},
        series={
            name: {str(bits): gbps for bits, gbps in series.items()}
            for name, series in curves.items()
        },
    ))


def test_interleaving_dominates_single(curves, system, crc_mappings):
    """Fig. 5 lies above Fig. 4 at every point."""
    for M in FACTORS:
        for bits in LENGTHS:
            single = system.crc_single_performance(crc_mappings[M], bits)
            assert curves[f"M={M}"][bits] >= single.throughput_gbps


def test_short_message_lift(curves, system, crc_mappings):
    """The paper's motivation for interleaving: at the 368-bit Ethernet
    minimum the interleaved curve is several times the single-message one."""
    single = system.crc_single_performance(crc_mappings[128], 368).throughput_gbps
    assert curves["M=128"][368] > 4 * single


def test_flat_curves(curves, system, crc_mappings):
    """Interleaved throughput varies far less with message length than the
    single-message curve does (the visual story of Fig. 5 vs Fig. 4)."""
    series = curves["M=128"]
    interleaved_ratio = series[max(LENGTHS)] / series[min(LENGTHS)]
    single = {
        bits: system.crc_single_performance(crc_mappings[128], bits).throughput_gbps
        for bits in (min(LENGTHS), max(LENGTHS))
    }
    single_ratio = single[max(LENGTHS)] / single[min(LENGTHS)]
    assert interleaved_ratio < single_ratio / 3


def test_executed_batch_matches_analytic(system, crc_mappings):
    batch = [bytes(range(46))] * WAYS
    crcs, executed = system.execute_crc_interleaved(crc_mappings[32], batch)
    predicted = system.crc_interleaved_performance(crc_mappings[32], 368, WAYS)
    assert executed.total_cycles == predicted.total_cycles
    assert len(set(crcs)) == 1  # identical messages, identical CRCs


def test_benchmark_fig5_sweep(benchmark, system, crc_mappings):
    def sweep():
        return [
            system.crc_interleaved_performance(
                crc_mappings[128], bits, WAYS
            ).throughput_gbps
            for bits in LENGTHS
        ]

    values = benchmark(sweep)
    assert len(values) == len(LENGTHS)
