"""Mapper ablations — the §4 design decisions, quantified.

Three studies the paper describes qualitatively:

* **Method** — Derby transform vs direct (Pei-style) mapping: the direct
  loop deepens (II > 1) while Derby stays at II = 1 and trades feed-forward
  area for it.
* **Pattern sharing** — the 10-bit common-pattern CSE reduces XOR taps
  substantially on the real B_Mt/T matrices.
* **f vector** — the transformation seed barely changes complexity
  (the paper settled on f = e_0).
"""

import pytest

from repro.analysis import format_table
from repro.crc import ETHERNET_CRC32
from repro.mapping import DesignSpaceExplorer, map_crc

FACTORS = (8, 32, 64, 128)


@pytest.fixture(scope="module")
def method_points():
    return {
        (M, method): map_crc(ETHERNET_CRC32, M, method=method)
        for M in FACTORS
        for method in ("derby", "direct")
    }


def test_ablation_method_regenerate(method_points, save_result):
    rows = []
    for M in FACTORS:
        for method in ("derby", "direct"):
            r = method_points[(M, method)].report
            rows.append(
                [M, method, r.total_cells, r.update_rows, r.update_ii,
                 f"{M / r.update_ii * 0.2:.1f}"]
            )
    text = format_table(
        ["M", "method", "cells", "rows", "II", "kernel Gbit/s"],
        rows,
        title="Ablation: Derby transform vs direct (Pei) mapping",
    )
    save_result("ablation_method", text)


def test_derby_ii_always_one(method_points):
    for M in FACTORS:
        assert method_points[(M, "derby")].update_op.initiation_interval == 1


def test_direct_ii_degrades(method_points):
    """Once A^M rows outgrow a 10-input cell the direct loop needs two
    levels — halving throughput, the PiCoGA analogue of the 0.5M bound."""
    assert method_points[(128, "direct")].update_op.initiation_interval == 2


def test_derby_throughput_wins_at_scale(method_points):
    derby = method_points[(128, "derby")]
    direct = method_points[(128, "direct")]
    derby_bps = 128 / derby.update_op.initiation_interval
    direct_bps = 128 / direct.update_op.initiation_interval
    assert derby_bps == 2 * direct_bps


def test_ablation_cse_regenerate(save_result):
    rows = []
    for M in (32, 128):
        with_cse = map_crc(ETHERNET_CRC32, M, use_cse=True)
        without = map_crc(ETHERNET_CRC32, M, use_cse=False)
        saving = 1 - with_cse.report.taps_after_cse / without.report.taps_after_cse
        rows.append(
            [M, without.report.taps_after_cse, with_cse.report.taps_after_cse,
             f"{saving:.0%}", without.report.total_cells, with_cse.report.total_cells]
        )
    text = format_table(
        ["M", "taps (raw)", "taps (CSE)", "saving", "cells (raw)", "cells (CSE)"],
        rows,
        title="Ablation: 10-bit common-pattern sharing",
    )
    save_result("ablation_cse", text)


def test_cse_saves_at_least_quarter():
    with_cse = map_crc(ETHERNET_CRC32, 128, use_cse=True)
    without = map_crc(ETHERNET_CRC32, 128, use_cse=False)
    assert with_cse.report.taps_after_cse < 0.75 * without.report.taps_after_cse


def test_ablation_f_vector_regenerate(save_result):
    explorer = DesignSpaceExplorer(ETHERNET_CRC32)
    study = explorer.f_vector_study(32, candidates=6)
    rows = [[label, taps] for label, taps in study.items()]
    values = list(study.values())
    spread = (max(values) - min(values)) / min(values)
    text = format_table(
        ["f", "nnz(T)+nnz(B_Mt)"],
        rows,
        title="Ablation: transformation-vector choice (M = 32)",
    )
    text += f"\nspread: {spread:.1%} (paper: 'no significant difference'; f = e0 chosen)"
    save_result("ablation_f_vector", text)
    assert spread < 0.25


def test_all_design_points_formally_verified(method_points):
    """Equivalence proof for every compiled design point: the basis proof
    is complete for linear netlists (docs/THEORY.md), so this is a formal
    sign-off of the mapper across the whole sweep."""
    from repro.mapping import verify_mapped_crc

    for (M, method), mapped in method_points.items():
        results = verify_mapped_crc(mapped, random_trials=8)
        assert all(results), (M, method, [r.counterexample for r in results if not r])


def test_ablation_routing_regenerate(method_points, save_result):
    """Routing-demand growth across M — why the feed-forward banks get
    expensive before the array runs out of cells."""
    from repro.picoga import estimate_routing

    rows = []
    for M in FACTORS:
        report = estimate_routing(method_points[(M, "derby")].update_op)
        rows.append(
            [M, report.peak_crossings, f"{report.peak_utilization:.0%}",
             "yes" if report.congested else "no"]
        )
    text = format_table(
        ["M", "peak crossings", "channel use", "congested"],
        rows,
        title="Ablation: vertical routing demand (Derby update op)",
    )
    save_result("ablation_routing", text)


def test_routing_monotone_and_feasible_at_128(method_points):
    from repro.picoga import estimate_routing

    peaks = [
        estimate_routing(method_points[(M, "derby")].update_op).peak_crossings
        for M in FACTORS
    ]
    assert peaks == sorted(peaks)
    assert not estimate_routing(method_points[(128, "derby")].update_op).congested


def test_benchmark_mapping_compile(benchmark):
    mapped = benchmark(map_crc, ETHERNET_CRC32, 32)
    assert mapped.update_op.initiation_interval == 1
