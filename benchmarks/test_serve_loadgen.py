"""Network service smoke gate: sustained IMIX throughput over repro.serve.

Starts an in-process :class:`~repro.serve.ReproServer` (pinned to the
serving shape validated on a 1-CPU host: M=1024, workers=2 — the
planner's auto pick of M=128/workers=1 leaves ~2x throughput on the
table for stream serving, see docs/SERVE.md) and drives it with the
IMIX closed-loop load generator over real TCP connections.

The gate: the server must sustain >= 500 messages/s with zero protocol
errors and zero digest mismatches (every CRC checked against the
bit-serial table oracle client-side).  Latency percentiles and the
digest accuracy land in ``benchmarks/results/serve_loadgen.json`` and
fold into the ``BENCH_<n>.json`` trajectory, where ``digest_accuracy``
is regression-gated by ``tools/bench_diff.py``.
"""

import asyncio

from repro.analysis import format_table
from repro.crc import get
from repro.serve import ReproServer, run_loadgen
from repro.telemetry import BenchReport

STANDARD = "CRC-32"
#: Serving shape pinned from the 1-CPU validation run (655 msgs/s with
#: loadgen sharing the core; the auto plan managed 334).
M = 1024
WORKERS = 2
DURATION_S = 5.0
CONNECTIONS = 4
SEED = 3
GATE_MIN_MSGS_PER_S = 500.0


async def _serve_and_drive():
    async with ReproServer(
        get(STANDARD), M=M, workers=WORKERS, auto=False, port=0
    ) as server:
        report = await run_loadgen(
            server.host,
            server.port,
            duration_s=DURATION_S,
            connections=CONNECTIONS,
            seed=SEED,
        )
        counters = dict(server.counters)
    return report, counters


def test_serve_loadgen_gate(save_result, save_report):
    report, counters = asyncio.run(_serve_and_drive())

    checked = len(report.latencies_s)
    accuracy = (
        (checked - report.digest_mismatches) / checked if checked else 0.0
    )
    rows = [
        ["messages", f"{report.messages:,}"],
        ["bytes", f"{report.bytes:,}"],
        ["rate (msgs/s)", f"{report.msgs_per_s:,.0f}"],
        ["p50 latency (ms)", f"{report.p50_ms:.3f}"],
        ["p99 latency (ms)", f"{report.p99_ms:.3f}"],
        ["errors", f"{report.errors}"],
        ["digest mismatches", f"{report.digest_mismatches}"],
        ["server protocol errors", f"{counters['protocol_errors_total']}"],
    ]
    text = format_table(
        ["measure", "value"],
        rows,
        title=(
            f"repro.serve IMIX loadgen: {STANDARD}, M={M}, "
            f"workers={WORKERS}, {CONNECTIONS} connection(s), "
            f"{report.duration_s:.1f}s closed loop"
        ),
    )
    save_result("serve_loadgen", text)
    save_report(
        BenchReport(
            name="serve_loadgen",
            title="Async serve layer sustained IMIX throughput",
            params={
                "standard": STANDARD,
                "M": M,
                "workers": WORKERS,
                "duration_s": DURATION_S,
                "connections": CONNECTIONS,
                "seed": SEED,
                "gate_min_msgs_per_s": GATE_MIN_MSGS_PER_S,
            },
            metrics={
                "msgs_per_s": report.msgs_per_s,
                "bytes_per_s": report.bytes_per_s,
                "p50_ms": report.p50_ms,
                "p99_ms": report.p99_ms,
                "errors": float(report.errors),
                "digest_mismatches": float(report.digest_mismatches),
                "digest_accuracy": accuracy,
            },
        )
    )

    assert report.errors == 0, f"{report.errors} client-side errors"
    assert counters["protocol_errors_total"] == 0, (
        f"{counters['protocol_errors_total']} server-side protocol errors"
    )
    assert report.digest_mismatches == 0, (
        f"{report.digest_mismatches} digests disagreed with the "
        "bit-serial oracle"
    )
    assert report.msgs_per_s >= GATE_MIN_MSGS_PER_S, (
        f"sustained only {report.msgs_per_s:.0f} msgs/s "
        f"(gate: >= {GATE_MIN_MSGS_PER_S:.0f})"
    )
