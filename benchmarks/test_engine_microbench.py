"""Microbenchmarks of the software CRC engines (host-side timing).

Not a paper artifact — these time this library's own Python engines with
pytest-benchmark so regressions in the hot paths (table lookup, slicing,
block-matrix stepping, netlist evaluation) are visible.  The relative
ordering mirrors the algorithmic story: slicing > table > bitwise, and the
matrix engines trade Python overhead for architectural fidelity.

``test_backend_matvec_batch_speedup`` additionally gates the GF(2) backend
story: the word-packed kernel must beat the pure-Python reference backend
by at least ``BACKEND_SPEEDUP_GATE``x on the canonical 32x32 matvec batch
(B=1024), and the measured ratio is persisted to
``benchmarks/results/backend_microbench.json``.
"""

import time

import numpy as np
import pytest

from repro.crc import (
    BitwiseCRC,
    DerbyCRC,
    ETHERNET_CRC32,
    GFMACCRC,
    SlicingCRC,
    TableCRC,
)
from repro.gf2.backend import get_backend
from repro.telemetry import BenchReport

PAYLOAD = bytes(np.random.default_rng(0).integers(0, 256, size=4096).tolist())
EXPECTED = BitwiseCRC(ETHERNET_CRC32).compute(PAYLOAD)


@pytest.fixture(scope="module")
def engines():
    return {
        "bitwise": BitwiseCRC(ETHERNET_CRC32),
        "table": TableCRC(ETHERNET_CRC32),
        "slicing8": SlicingCRC(ETHERNET_CRC32, 8),
        "gfmac": GFMACCRC(ETHERNET_CRC32, 64),
        "derby32": DerbyCRC(ETHERNET_CRC32, 32),
    }


@pytest.mark.parametrize("name", ["bitwise", "table", "slicing8", "gfmac", "derby32"])
def test_benchmark_engine(benchmark, engines, name):
    crc = benchmark(engines[name].compute, PAYLOAD)
    assert crc == EXPECTED


def test_benchmark_table_construction(benchmark):
    engine = benchmark(TableCRC, ETHERNET_CRC32)
    assert engine.compute(b"123456789") == 0xCBF43926


# ----------------------------------------------------------------------
# GF(2) backend gate: packed word-slicing vs the pure-Python reference on
# the canonical block kernel (32x32 matrix, 1024-stream batch).

BACKEND_MATRIX_BITS = 32
BACKEND_BATCH = 1024
BACKEND_SPEEDUP_GATE = 8.0


def _time_matvec_batch(backend, matrix, block, iterations):
    """Best-of-3 seconds per iteration; packing stays outside the loop."""
    packed = backend.pack(block)
    backend.matvec_batch(matrix, packed)  # warm-up
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(iterations):
            backend.matvec_batch(matrix, packed)
        best = min(best, (time.perf_counter() - t0) / iterations)
    return best


def test_backend_matvec_batch_speedup(save_result, save_report):
    rng = np.random.default_rng(0xBE)
    matrix = rng.integers(0, 2, size=(BACKEND_MATRIX_BITS, BACKEND_MATRIX_BITS)).astype(np.uint8)
    block = rng.integers(0, 2, size=(BACKEND_MATRIX_BITS, BACKEND_BATCH)).astype(np.uint8)

    reference = get_backend("reference")
    packed = get_backend("packed")

    # Bit-exactness first: the speedup is meaningless if the kernels differ.
    expected = reference.unpack(
        reference.matvec_batch(matrix, reference.pack(block)), BACKEND_BATCH
    )
    got = packed.unpack(packed.matvec_batch(matrix, packed.pack(block)), BACKEND_BATCH)
    assert got.tolist() == expected.tolist()

    ref_s = _time_matvec_batch(reference, matrix, block, iterations=3)
    packed_s = _time_matvec_batch(packed, matrix, block, iterations=200)
    speedup = ref_s / packed_s

    lines = [
        f"GF(2) backend microbench: {BACKEND_MATRIX_BITS}x{BACKEND_MATRIX_BITS} "
        f"matvec batch, B={BACKEND_BATCH}",
        f"  reference: {ref_s * 1e3:9.3f} ms/op",
        f"  {packed.name:9s}: {packed_s * 1e3:9.3f} ms/op",
        f"  speedup:   {speedup:9.1f}x  (gate: >= {BACKEND_SPEEDUP_GATE:.0f}x)",
    ]
    save_result("backend_microbench", "\n".join(lines))
    save_report(
        BenchReport(
            name="backend_microbench",
            title="GF(2) backend matvec-batch speedup (packed vs reference)",
            params={
                "matrix_bits": BACKEND_MATRIX_BITS,
                "batch": BACKEND_BATCH,
                "packed_backend": packed.name,
                "gate_speedup": BACKEND_SPEEDUP_GATE,
            },
            metrics={
                "reference_s_per_op": ref_s,
                "packed_s_per_op": packed_s,
                "speedup": speedup,
            },
        )
    )
    assert speedup >= BACKEND_SPEEDUP_GATE, (
        f"packed backend only {speedup:.1f}x faster than reference "
        f"(gate {BACKEND_SPEEDUP_GATE}x)"
    )
