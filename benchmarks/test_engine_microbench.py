"""Microbenchmarks of the software CRC engines (host-side timing).

Not a paper artifact — these time this library's own Python engines with
pytest-benchmark so regressions in the hot paths (table lookup, slicing,
block-matrix stepping, netlist evaluation) are visible.  The relative
ordering mirrors the algorithmic story: slicing > table > bitwise, and the
matrix engines trade Python overhead for architectural fidelity.
"""

import numpy as np
import pytest

from repro.crc import (
    BitwiseCRC,
    DerbyCRC,
    ETHERNET_CRC32,
    GFMACCRC,
    SlicingCRC,
    TableCRC,
)

PAYLOAD = bytes(np.random.default_rng(0).integers(0, 256, size=4096).tolist())
EXPECTED = BitwiseCRC(ETHERNET_CRC32).compute(PAYLOAD)


@pytest.fixture(scope="module")
def engines():
    return {
        "bitwise": BitwiseCRC(ETHERNET_CRC32),
        "table": TableCRC(ETHERNET_CRC32),
        "slicing8": SlicingCRC(ETHERNET_CRC32, 8),
        "gfmac": GFMACCRC(ETHERNET_CRC32, 64),
        "derby32": DerbyCRC(ETHERNET_CRC32, 32),
    }


@pytest.mark.parametrize("name", ["bitwise", "table", "slicing8", "gfmac", "derby32"])
def test_benchmark_engine(benchmark, engines, name):
    crc = benchmark(engines[name].compute, PAYLOAD)
    assert crc == EXPECTED


def test_benchmark_table_construction(benchmark):
    engine = benchmark(TableCRC, ETHERNET_CRC32)
    assert engine.compute(b"123456789") == 0xCBF43926
