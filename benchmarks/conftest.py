"""Shared fixtures for the figure/table regeneration harness.

Every bench module regenerates one of the paper's evaluation artifacts:
it prints the rows/series the paper reports (and saves them under
``benchmarks/results/``), and times a representative kernel with
pytest-benchmark so the harness doubles as a performance regression suite.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.crc import ETHERNET_CRC32
from repro.dream import DreamSystem
from repro.mapping import map_crc
from repro.telemetry import BenchReport

RESULTS_DIR = Path(__file__).parent / "results"

#: Override the trajectory snapshot index (defaults to the PR number
#: inferred from CHANGES.md).
BENCH_INDEX_ENV = "REPRO_BENCH_INDEX"


def _bench_index(repo_root: Path) -> int:
    """This PR's position in the stack, for naming ``BENCH_<n>.json``."""
    override = os.environ.get(BENCH_INDEX_ENV)
    if override:
        return int(override)
    changes = repo_root / "CHANGES.md"
    if changes.exists():
        entries = [
            line
            for line in changes.read_text().splitlines()
            if line.lstrip().startswith(("-", "*"))
        ]
        if entries:
            return len(entries)
    return 0


def write_trajectory_snapshot(results_dir: Path) -> Path:
    """Fold every ``results/*.json`` report into ``BENCH_<n>.json``.

    The snapshot lives at the repo top level, one file per PR, so the
    stack accumulates a diffable throughput trajectory: which kernels
    existed at PR *n* and what each one measured.  Re-running the
    benches for the same PR overwrites that PR's snapshot in place.
    """
    repo_root = results_dir.parent.parent
    index = _bench_index(repo_root)
    kernels = {}
    for path in sorted(results_dir.glob("*.json")):
        try:
            report = BenchReport.load(path)
        except (ValueError, KeyError, json.JSONDecodeError):
            continue  # foreign or older-schema file: not part of the trajectory
        kernels[report.name] = {
            "title": report.title,
            "params": report.params,
            "metrics": report.metrics,
        }
    snapshot = {
        "schema": "repro-bench-trajectory/1",
        "pr": index,
        "kernels": kernels,
    }
    path = repo_root / f"BENCH_{index}.json"
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Persist one artifact's text under benchmarks/results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _save


@pytest.fixture(scope="session")
def save_report(results_dir):
    """Persist one artifact's structured twin: benchmarks/results/<name>.json.

    Machine-readable (schema ``repro-bench/1``) so the perf trajectory is
    diffable run over run; the human-readable table still goes through
    ``save_result``.
    """

    def _save(report: BenchReport) -> Path:
        path = report.write(results_dir)
        snapshot = write_trajectory_snapshot(results_dir)
        print(f"\n[bench-report] {path.name} -> {snapshot.name}")
        return path

    return _save


@pytest.fixture(scope="session")
def system() -> DreamSystem:
    return DreamSystem()


@pytest.fixture(scope="session")
def crc_mappings():
    """The paper's DREAM design points, compiled once per session."""
    return {M: map_crc(ETHERNET_CRC32, M) for M in (8, 16, 32, 64, 128)}
