"""Shared fixtures for the figure/table regeneration harness.

Every bench module regenerates one of the paper's evaluation artifacts:
it prints the rows/series the paper reports (and saves them under
``benchmarks/results/``), and times a representative kernel with
pytest-benchmark so the harness doubles as a performance regression suite.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.crc import ETHERNET_CRC32
from repro.dream import DreamSystem
from repro.mapping import map_crc
from repro.telemetry import BenchReport

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Persist one artifact's text under benchmarks/results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _save


@pytest.fixture(scope="session")
def save_report(results_dir):
    """Persist one artifact's structured twin: benchmarks/results/<name>.json.

    Machine-readable (schema ``repro-bench/1``) so the perf trajectory is
    diffable run over run; the human-readable table still goes through
    ``save_result``.
    """

    def _save(report: BenchReport) -> Path:
        path = report.write(results_dir)
        print(f"\n[bench-report] {path.name}")
        return path

    return _save


@pytest.fixture(scope="session")
def system() -> DreamSystem:
    return DreamSystem()


@pytest.fixture(scope="session")
def crc_mappings():
    """The paper's DREAM design points, compiled once per session."""
    return {M: map_crc(ETHERNET_CRC32, M) for M in (8, 16, 32, 64, 128)}
