"""Planner-gated execution + persistent-cache acceptance gates (host-side).

Two gates guard the parallel subsystem:

* **Planner auto-plan throughput** — the adaptive execution planner
  probes this host, picks backend x workers x M for the standard batch
  workload (B=1024, 256-byte messages), and the planned engine runs
  against the serial baseline.  The gate applies on *every* host with no
  skips: the auto plan must deliver >= 0.95x serial always (the planner
  may never make things slower — on a 1-CPU host it must fall back to
  serial by construction), and >= 2x on hosts with >= 4 usable CPUs
  (where sharding must actually multiply).  This replaces the earlier
  fixed ``workers=4`` gate whose ``gate_applied: 0.0`` escape hatch let
  the BENCH_5 0.79x regression through on single-CPU hosts.
* **Persistent compile cache** — a warm start (artifacts unpickled from
  a populated :class:`~repro.engine.diskcache.DiskCompileCache`) must
  beat the cold start (full Derby/look-ahead compilation) by >= 5x.
  This one is hardware-independent: it is pure deserialization-vs-
  compute and must hold everywhere.

Results (including the recorded planner decision) land under
``benchmarks/results/engine_parallel.json`` (+ ``.txt``) and fold into
the top-level ``BENCH_<n>.json`` trajectory.
"""

import os
import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.crc import BitwiseCRC, ETHERNET_CRC32
from repro.engine import (
    CompileCache,
    DiskCompileCache,
    ParallelBatchCRC,
    Planner,
    WorkloadDescriptor,
    probe_host,
)
from repro.telemetry import BenchReport

M = 128
BATCH = 1024
MESSAGE_BYTES = 256
REPEATS = 3


def _usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


@pytest.fixture(scope="module")
def messages():
    rng = np.random.default_rng(5)
    return [
        bytes(rng.integers(0, 256, size=MESSAGE_BYTES).tolist())
        for _ in range(BATCH)
    ]


def _best_rate(engine, messages) -> float:
    engine.compute_batch(messages[:2])  # warm compile cache + pool
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        crcs = engine.compute_batch(messages)
        best = min(best, time.perf_counter() - t0)
    # Spot-check correctness against the bit-serial reference.
    ref = BitwiseCRC(ETHERNET_CRC32)
    assert [crcs[i] for i in (0, len(crcs) // 2, -1)] == [
        ref.compute(messages[i]) for i in (0, len(messages) // 2, -1)
    ]
    return len(messages) / best


def test_planner_auto_gate(messages, save_result, save_report):
    cpus = _usable_cpus()
    cache = CompileCache()

    # Probe the real host (packed backend only: that's what both sides
    # run) and plan the benchmark workload with M pinned to the gate's.
    profile = probe_host(backends=("packed",))
    planner = Planner(profile=profile)
    plan = planner.plan(
        WorkloadDescriptor(
            kind="crc-batch",
            standard="CRC-32",
            message_bits=8 * MESSAGE_BYTES,
            batch=BATCH,
            M=M,
        )
    )

    serial = ParallelBatchCRC(
        ETHERNET_CRC32, M, workers=1, cache=cache, backend="packed"
    )
    serial_rate = _best_rate(serial, messages)
    with ParallelBatchCRC(ETHERNET_CRC32, M, cache=cache, plan=plan) as auto:
        auto_rate = _best_rate(auto, messages)
    speedup = auto_rate / serial_rate
    # Model accuracy: how close reality came to the predicted wall time.
    accuracy = planner.record_actual(plan, len(messages) / auto_rate)

    rows = [
        ["serial (workers=1)", f"{serial_rate:,.0f}", "1.0x"],
        [
            f"auto plan [{plan.strategy} x{plan.workers}]",
            f"{auto_rate:,.0f}",
            f"{speedup:.2f}x",
        ],
    ]
    text = format_table(
        ["engine", "messages/s", "speedup"],
        rows,
        title=(
            f"ParallelBatchCRC auto plan: CRC-32, B={BATCH}, "
            f"{MESSAGE_BYTES}-byte messages, M={M}, {cpus} cpu(s), "
            f"planner chose {plan.strategy} (predicted "
            f"{plan.predicted_speedup:.2f}x, accuracy {accuracy:.2f})"
        ),
    )
    save_result("engine_parallel", text)
    save_report(
        BenchReport(
            name="engine_parallel",
            title="Planner auto-plan batch CRC throughput vs serial",
            params={
                "standard": "CRC-32",
                "M": M,
                "batch": BATCH,
                "message_bytes": MESSAGE_BYTES,
                "backend": "packed",
                "cpu_count": cpus,
                "plan_strategy": plan.strategy,
                "plan_workers": plan.workers,
                "plan_backend": plan.backend,
                "plan_mode": plan.mode,
                "plan_M": plan.M,
            },
            metrics={
                "serial_rate_msgs_per_s": serial_rate,
                "auto_rate_msgs_per_s": auto_rate,
                "speedup": speedup,
                "predicted_speedup": plan.predicted_speedup,
                "prediction_accuracy": accuracy,
                "gate_applied": 1.0,
            },
        )
    )

    # Universal gate: the planner may never make things slower.  0.95x
    # absorbs run-to-run noise when the plan degenerates to serial.
    assert speedup >= 0.95, (
        f"auto plan ({plan.strategy}, workers={plan.workers}) delivered "
        f"{speedup:.2f}x vs serial on {cpus} CPUs (floor: >= 0.95x)"
    )
    if cpus >= 4:
        # Multi-core gate: with cores to shard onto, the planner must
        # actually multiply throughput.
        assert speedup >= 2.0, (
            f"auto plan ({plan.strategy}, workers={plan.workers}) delivered "
            f"only {speedup:.2f}x on {cpus} CPUs (gate: >= 2x)"
        )


def _compile_all(cache: CompileCache) -> None:
    """The artifact set a CRC-32/M=128 deployment compiles."""
    cache.crc_statespace(ETHERNET_CRC32)
    cache.lookahead(ETHERNET_CRC32, M)
    cache.derby(ETHERNET_CRC32, M)


def test_disk_cache_warm_start_gate(tmp_path, save_result, save_report):
    cold_times = []
    warm_times = []
    for i in range(REPEATS):
        root = tmp_path / f"run{i}"
        t0 = time.perf_counter()
        _compile_all(CompileCache(disk=DiskCompileCache(root)))
        cold_times.append(time.perf_counter() - t0)

        t0 = time.perf_counter()
        warm_cache = CompileCache(disk=DiskCompileCache(root))
        _compile_all(warm_cache)
        warm_times.append(time.perf_counter() - t0)
        # The warm pass must have come from disk, not the builders.
        assert warm_cache.disk.stats.hits >= 3
        assert warm_cache.disk.stats.corrupt == 0

    cold, warm = min(cold_times), min(warm_times)
    ratio = cold / warm
    rows = [
        ["cold (compile + persist)", f"{1e3 * cold:.2f}", "1.0x"],
        ["warm (disk load)", f"{1e3 * warm:.2f}", f"{ratio:.1f}x"],
    ]
    text = format_table(
        ["start", "time (ms)", "speedup"],
        rows,
        title=f"Compile cache cold vs warm start: CRC-32 statespace+lookahead+derby, M={M}",
    )
    save_result("engine_disk_cache", text)
    save_report(
        BenchReport(
            name="engine_disk_cache",
            title="Persistent compile cache: cold vs warm start",
            params={"standard": "CRC-32", "M": M, "repeats": REPEATS},
            metrics={
                "cold_seconds": cold,
                "warm_seconds": warm,
                "warm_speedup": ratio,
            },
        )
    )
    assert ratio >= 5.0, (
        f"warm start only {ratio:.1f}x faster than cold (gate: >= 5x)"
    )
