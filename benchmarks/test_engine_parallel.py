"""Sharded execution + persistent-cache acceptance gates (host-side).

Two gates guard the parallel subsystem:

* **Sharded throughput** — ``ParallelBatchCRC`` at ``workers=4`` on the
  packed backend (B=1024, M=128) against the identical serial engine.
  The >= 2x gate is *hardware-gated*: thread sharding multiplies only
  when the machine has cores to shard onto, so on hosts with fewer than
  2 usable CPUs the gate relaxes to a bounded-overhead sanity check
  (sharded >= 0.4x serial) and the recorded report carries ``cpu_count``
  so trajectory readers can tell the two regimes apart.
* **Persistent compile cache** — a warm start (artifacts unpickled from
  a populated :class:`~repro.engine.diskcache.DiskCompileCache`) must
  beat the cold start (full Derby/look-ahead compilation) by >= 5x.
  This one is hardware-independent: it is pure deserialization-vs-
  compute and must hold everywhere.

Results are recorded under ``benchmarks/results/engine_parallel.json``
(+ ``.txt``) and fold into the top-level ``BENCH_<n>.json`` trajectory.
"""

import os
import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.crc import BitwiseCRC, ETHERNET_CRC32
from repro.engine import CompileCache, DiskCompileCache, ParallelBatchCRC
from repro.telemetry import BenchReport

M = 128
BATCH = 1024
MESSAGE_BYTES = 256
WORKERS = 4
REPEATS = 3


def _usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


@pytest.fixture(scope="module")
def messages():
    rng = np.random.default_rng(5)
    return [
        bytes(rng.integers(0, 256, size=MESSAGE_BYTES).tolist())
        for _ in range(BATCH)
    ]


def _best_rate(engine, messages) -> float:
    engine.compute_batch(messages[:2])  # warm compile cache + pool
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        crcs = engine.compute_batch(messages)
        best = min(best, time.perf_counter() - t0)
    # Spot-check correctness against the bit-serial reference.
    ref = BitwiseCRC(ETHERNET_CRC32)
    assert [crcs[i] for i in (0, len(crcs) // 2, -1)] == [
        ref.compute(messages[i]) for i in (0, len(messages) // 2, -1)
    ]
    return len(messages) / best


def test_sharded_throughput_gate(messages, save_result, save_report):
    cpus = _usable_cpus()
    cache = CompileCache()
    serial = ParallelBatchCRC(
        ETHERNET_CRC32, M, workers=1, cache=cache, backend="packed"
    )
    serial_rate = _best_rate(serial, messages)
    with ParallelBatchCRC(
        ETHERNET_CRC32,
        M,
        workers=WORKERS,
        cache=cache,
        backend="packed",
        min_shard_bits=1,
    ) as sharded:
        assert sharded.mode == "thread"
        sharded_rate = _best_rate(sharded, messages)
    speedup = sharded_rate / serial_rate

    rows = [
        ["serial (workers=1)", f"{serial_rate:,.0f}", "1.0x"],
        [f"sharded (workers={WORKERS})", f"{sharded_rate:,.0f}", f"{speedup:.2f}x"],
    ]
    text = format_table(
        ["engine", "messages/s", "speedup"],
        rows,
        title=(
            f"ParallelBatchCRC: CRC-32, B={BATCH}, {MESSAGE_BYTES}-byte "
            f"messages, M={M}, packed backend, {cpus} cpu(s)"
        ),
    )
    save_result("engine_parallel", text)
    save_report(
        BenchReport(
            name="engine_parallel",
            title="Sharded batch CRC throughput (workers=4 vs serial)",
            params={
                "standard": "CRC-32",
                "M": M,
                "batch": BATCH,
                "message_bytes": MESSAGE_BYTES,
                "workers": WORKERS,
                "backend": "packed",
                "cpu_count": cpus,
            },
            metrics={
                "serial_rate_msgs_per_s": serial_rate,
                "sharded_rate_msgs_per_s": sharded_rate,
                "speedup": speedup,
                "gate_applied": float(cpus >= 2),
            },
        )
    )

    if cpus >= 2:
        # The real gate: sharding must multiply on multi-core hosts.
        assert speedup >= 2.0, (
            f"workers={WORKERS} delivered only {speedup:.2f}x over serial "
            f"on {cpus} CPUs (gate: >= 2x)"
        )
    else:
        # Single-core host: parallel speedup is physically impossible, so
        # gate the *overhead* instead — sharding may not cost more than
        # 2.5x the serial path.
        assert speedup >= 0.4, (
            f"sharding overhead too high: {speedup:.2f}x of serial on a "
            f"single-CPU host (floor: 0.4x)"
        )


def _compile_all(cache: CompileCache) -> None:
    """The artifact set a CRC-32/M=128 deployment compiles."""
    cache.crc_statespace(ETHERNET_CRC32)
    cache.lookahead(ETHERNET_CRC32, M)
    cache.derby(ETHERNET_CRC32, M)


def test_disk_cache_warm_start_gate(tmp_path, save_result, save_report):
    cold_times = []
    warm_times = []
    for i in range(REPEATS):
        root = tmp_path / f"run{i}"
        t0 = time.perf_counter()
        _compile_all(CompileCache(disk=DiskCompileCache(root)))
        cold_times.append(time.perf_counter() - t0)

        t0 = time.perf_counter()
        warm_cache = CompileCache(disk=DiskCompileCache(root))
        _compile_all(warm_cache)
        warm_times.append(time.perf_counter() - t0)
        # The warm pass must have come from disk, not the builders.
        assert warm_cache.disk.stats.hits >= 3
        assert warm_cache.disk.stats.corrupt == 0

    cold, warm = min(cold_times), min(warm_times)
    ratio = cold / warm
    rows = [
        ["cold (compile + persist)", f"{1e3 * cold:.2f}", "1.0x"],
        ["warm (disk load)", f"{1e3 * warm:.2f}", f"{ratio:.1f}x"],
    ]
    text = format_table(
        ["start", "time (ms)", "speedup"],
        rows,
        title=f"Compile cache cold vs warm start: CRC-32 statespace+lookahead+derby, M={M}",
    )
    save_result("engine_disk_cache", text)
    save_report(
        BenchReport(
            name="engine_disk_cache",
            title="Persistent compile cache: cold vs warm start",
            params={"standard": "CRC-32", "M": M, "repeats": REPEATS},
            metrics={
                "cold_seconds": cold,
                "warm_seconds": warm,
                "warm_speedup": ratio,
            },
        )
    )
    assert ratio >= 5.0, (
        f"warm start only {ratio:.1f}x faster than cold (gate: >= 5x)"
    )
