"""Micro-batching gate: batched serve must beat serial 5x at 32 connections.

Three layers of the same story, measured coarsest-to-finest against one
in-process :class:`~repro.serve.ReproServer` (pinned serving shape:
M=1024, workers=2):

1. **Round execution** (the gated layer).  The pipeline-thread work per
   message: the serial path runs the per-op closures ``--no-batch``
   runs — ``open``, ``feed`` + pending-bits, ``finalize`` (one packed
   step-matrix multiply *per message*) — while the batched path runs the
   server's tagged-op round runner (:meth:`ReproServer._run_stream_ops`),
   which regroups a 32-connection round so all 32 digests share one
   :meth:`~repro.engine.ShardedCRCPipeline.finalize_many` pump and all
   feed acks share one pending-bits reading.  The packed multiply costs
   the same for 1 or 32 columns, so the wide round amortizes the
   dominant cost 32 ways; ``batch_speedup`` is gated at >= 5x by
   ``gate_min_batch_speedup`` (measured ~9x on the 1-CPU reference
   host).

2. **Dispatch** (reported, ungated).  The same comparison through the
   asyncio op handlers at 32 concurrent connections.  Both paths pay a
   shared per-message event-loop floor, and the serial server's
   background pump loop coalesces concurrent feeds into shared pumps,
   so the honest end-to-end ratio (``dispatch_gain``) is structurally
   smaller than the round-layer speedup — which is exactly why the 5x
   gate lives at the layer the batcher actually changes.

3. **Single-connection latency** (gated in-test).  With one connection
   there is nothing to coalesce; batching must not tax the lone caller.
   Two short TCP loadgen runs (batched vs ``batching=False``) must keep
   ``single_conn_p50_ratio`` <= 1.2.

Every digest on every layer is checked against the bit-serial
:class:`~repro.crc.TableCRC` oracle; ``digest_accuracy`` must be 1.0 and
is regression-gated by ``tools/bench_diff.py`` alongside
``batch_speedup`` once both land in the ``BENCH_<n>.json`` trajectory.
"""

import asyncio
import time

from repro.analysis import format_table
from repro.crc import TableCRC, get
from repro.serve import ReproServer, run_loadgen
from repro.serve.server import _Connection
from repro.telemetry import BenchReport

STANDARD = "CRC-32"
M = 1024
WORKERS = 2
CONNECTIONS = 32
PAYLOAD = (bytes(range(256)) * 2)[:512]  # 512 B: several M-bit blocks + tail

ROUND_WAVES = 40       # batched rounds timed (32 msgs each)
SERIAL_WAVES = 8       # serial waves timed (32 msgs each, one op at a time)
DISPATCH_MSGS = 25     # per connection, through the asyncio handlers
P50_DURATION_S = 2.5   # per single-connection TCP loadgen run
SEED = 7

GATE_MIN_BATCH_SPEEDUP = 5.0
GATE_MAX_P50_RATIO = 1.2


def _measure_round_layer(server, oracle):
    """Pipeline-thread work per message: serial closures vs batch rounds.

    Runs synchronously (nothing else owns the pipeline while we time),
    so the comparison is pure executor-side work with no event-loop
    noise on either side.
    """
    pipeline = server.pipeline
    expected = oracle.compute(PAYLOAD)

    def serial_wave(tag):
        for i in range(CONNECTIONS):
            sid = f"serial:{tag}:{i}"
            pipeline.open(sid)
            # the --no-batch feed closure: deferred pump + backpressure read
            pipeline.feed(sid, PAYLOAD, pump=False)
            pipeline.pending_bits()
            assert pipeline.finalize(sid) == expected

    def batched_wave(tag):
        sids = [f"batch:{tag}:{i}" for i in range(CONNECTIONS)]
        server._run_stream_ops([("open", sid, None) for sid in sids])
        server._run_stream_ops([("feed", sid, PAYLOAD) for sid in sids])
        digests = server._run_stream_ops([("digest", sid) for sid in sids])
        assert all(d == expected for d in digests)

    serial_wave("warm")
    t0 = time.perf_counter()
    for wave in range(SERIAL_WAVES):
        serial_wave(wave)
    serial_rate = (SERIAL_WAVES * CONNECTIONS) / (time.perf_counter() - t0)

    batched_wave("warm")
    t0 = time.perf_counter()
    for wave in range(ROUND_WAVES):
        batched_wave(wave)
    batched_rate = (ROUND_WAVES * CONNECTIONS) / (time.perf_counter() - t0)

    return serial_rate, batched_rate


async def _measure_dispatch_layer(server, oracle):
    """End-to-end through the asyncio op handlers, 32 fake connections."""
    expected = oracle.compute(PAYLOAD)
    checked = 0
    mismatches = 0

    async def drive(index):
        nonlocal checked, mismatches
        conn = _Connection(10_000 + index, None)
        server._connections.add(conn)
        try:
            for _ in range(DISPATCH_MSGS):
                opened = await server._op_open(conn, {"op": "open-stream"})
                sid = opened["id"]
                await server._op_feed(
                    conn, {"op": "feed-chunk", "id": sid}, PAYLOAD
                )
                response = await server._op_digest(
                    conn, {"op": "read-digest", "id": sid}
                )
                checked += 1
                if response["digest"] != expected:
                    mismatches += 1
        finally:
            server._connections.discard(conn)

    t0 = time.perf_counter()
    await asyncio.gather(*(drive(i) for i in range(CONNECTIONS)))
    rate = (CONNECTIONS * DISPATCH_MSGS) / (time.perf_counter() - t0)
    return rate, checked, mismatches


async def _run_all():
    oracle = TableCRC(get(STANDARD))
    out = {}

    async with ReproServer(
        get(STANDARD), M=M, workers=WORKERS, auto=False, port=0
    ) as batched:
        serial_rate, batched_rate = _measure_round_layer(batched, oracle)
        out["round_serial"] = serial_rate
        out["round_batched"] = batched_rate

        rate, checked, mismatches = await _measure_dispatch_layer(
            batched, oracle
        )
        out["dispatch_batched"] = rate
        out["checked"] = checked
        out["mismatches"] = mismatches
        stats = batched.batcher.stats
        out["mean_occupancy"] = stats.mean_occupancy
        out["max_occupancy"] = stats.max_occupancy

    async with ReproServer(
        get(STANDARD), M=M, workers=WORKERS, auto=False, port=0,
        batching=False,
    ) as serial:
        rate, checked, mismatches = await _measure_dispatch_layer(
            serial, oracle
        )
        out["dispatch_serial"] = rate
        out["checked"] += checked
        out["mismatches"] += mismatches

    # Single-connection latency on fresh servers, back to back, so the
    # comparison is not polluted by whatever the throughput phases left
    # behind in the process (allocator state, GC pressure).
    for label, batching in (("p50_batched", True), ("p50_serial", False)):
        async with ReproServer(
            get(STANDARD), M=M, workers=WORKERS, auto=False, port=0,
            batching=batching,
        ) as server:
            report = await run_loadgen(
                server.host, server.port,
                duration_s=P50_DURATION_S, connections=1, seed=SEED,
            )
        out[label] = report
        out["checked"] += len(report.latencies_s)
        out["mismatches"] += report.digest_mismatches

    return out


def test_serve_microbatch_gate(save_result, save_report):
    out = asyncio.run(_run_all())

    batch_speedup = out["round_batched"] / out["round_serial"]
    dispatch_gain = out["dispatch_batched"] / out["dispatch_serial"]
    p50_batched = out["p50_batched"]
    p50_serial = out["p50_serial"]
    p50_ratio = (
        p50_batched.p50_ms / p50_serial.p50_ms if p50_serial.p50_ms else 0.0
    )
    accuracy = (
        (out["checked"] - out["mismatches"]) / out["checked"]
        if out["checked"] else 0.0
    )

    rows = [
        ["round serial (msgs/s)", f"{out['round_serial']:,.0f}"],
        ["round batched (msgs/s)", f"{out['round_batched']:,.0f}"],
        ["batch speedup (gate >= 5x)", f"{batch_speedup:.2f}x"],
        ["dispatch serial (msgs/s)", f"{out['dispatch_serial']:,.0f}"],
        ["dispatch batched (msgs/s)", f"{out['dispatch_batched']:,.0f}"],
        ["dispatch gain", f"{dispatch_gain:.2f}x"],
        ["mean batch occupancy", f"{out['mean_occupancy']:.1f}"],
        ["max batch occupancy", f"{out['max_occupancy']}"],
        ["1-conn p50 batched (ms)", f"{p50_batched.p50_ms:.3f}"],
        ["1-conn p50 serial (ms)", f"{p50_serial.p50_ms:.3f}"],
        ["p50 ratio (gate <= 1.2)", f"{p50_ratio:.3f}"],
        ["digests checked", f"{out['checked']:,}"],
        ["digest mismatches", f"{out['mismatches']}"],
    ]
    save_result(
        "serve_microbatch",
        format_table(
            ["metric", "value"],
            rows,
            title=(
                f"serve micro-batching: {STANDARD} M={M} workers={WORKERS}, "
                f"{CONNECTIONS} connections"
            ),
        ),
    )
    save_report(BenchReport(
        name="serve_microbatch",
        title="Cross-connection micro-batched serve vs serial",
        params={
            "standard": STANDARD,
            "M": M,
            "workers": WORKERS,
            "connections": CONNECTIONS,
            "payload_bytes": len(PAYLOAD),
            "gate_min_batch_speedup": GATE_MIN_BATCH_SPEEDUP,
            "gate_max_p50_ratio": GATE_MAX_P50_RATIO,
        },
        metrics={
            "batch_speedup": batch_speedup,
            "round_serial_msgs_per_s": out["round_serial"],
            "round_batched_msgs_per_s": out["round_batched"],
            "dispatch_serial_msgs_per_s": out["dispatch_serial"],
            "dispatch_batched_msgs_per_s": out["dispatch_batched"],
            "dispatch_gain": dispatch_gain,
            "mean_batch_occupancy": out["mean_occupancy"],
            "single_conn_p50_batched_ms": p50_batched.p50_ms,
            "single_conn_p50_serial_ms": p50_serial.p50_ms,
            "single_conn_p50_ratio": p50_ratio,
            "digest_accuracy": accuracy,
        },
    ))

    assert out["mismatches"] == 0, "digest disagreed with the table oracle"
    assert accuracy == 1.0
    assert p50_batched.errors == 0 and p50_serial.errors == 0
    assert out["mean_occupancy"] > 1.0, (
        "32 concurrent connections never shared a batch round"
    )
    assert batch_speedup >= GATE_MIN_BATCH_SPEEDUP, (
        f"batched round execution only {batch_speedup:.2f}x serial "
        f"(gate: {GATE_MIN_BATCH_SPEEDUP}x at {CONNECTIONS} connections)"
    )
    assert p50_ratio <= GATE_MAX_P50_RATIO, (
        f"single-connection p50 regressed {p50_ratio:.2f}x with batching on "
        f"(gate: {GATE_MAX_P50_RATIO}x)"
    )
