"""Word-oriented LFSR microbenchmark: σ-LFSR keystream vs bit-serial.

The acceptance gate for the Tsaban–Vishne kernel layer: a curated
word-oriented register (one machine word of keystream per Python-level
step, :mod:`repro.lfsr.wordlfsr`) must beat the bit-serial
:class:`~repro.lfsr.reference.FibonacciLFSR` by at least
``WORD64_SPEEDUP_GATE``x on keystream throughput — the software analogue
of the paper's "one clock does a word of work" register reorganization.
The measured ratios persist to ``benchmarks/results/wordlfsr_microbench.json``
and fold into the ``BENCH_<n>.json`` trajectory, where
``tools/bench_diff.py`` gates them against regressions.

Bit-exactness is asserted before any timing (fast engine vs the
state-matrix :class:`~repro.lfsr.wordlfsr.WordLFSRReference`), so the
speedup can never be bought with a wrong keystream.
"""

import time

from repro.gf2.polynomial import GF2Polynomial
from repro.lfsr.reference import FibonacciLFSR
from repro.lfsr.wordlfsr import (
    WORD32,
    WORD64,
    WordLFSR,
    WordLFSRReference,
    seed_words_from_bytes,
)
from repro.telemetry import BenchReport

#: Keystream bits per timed iteration (4 KiB of keystream).
KEYSTREAM_BITS = 32768

#: The bit-serial baseline: a degree-31 scrambler register (PRBS-31
#: generator), clocked one bit per Python iteration.
FIB_POLY = GF2Polynomial.from_exponents([31, 28, 0])

#: Primary gate: the 64-bit word engine vs the bit-serial reference.
WORD64_SPEEDUP_GATE = 20.0

#: Secondary floor for the 32-bit spec (half the word width, so roughly
#: half the per-step amortization; kept looser to absorb host noise).
WORD32_SPEEDUP_GATE = 10.0


def _best_of(repeats, fn):
    """Best wall-clock seconds over ``repeats`` runs of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _word_rate(spec):
    """(bits/s, seconds) for one spec's byte keystream hot path."""
    seed = seed_words_from_bytes(spec, b"bench")
    nbytes = KEYSTREAM_BITS // 8
    engine = WordLFSR(spec, seed)
    engine.keystream_bytes(64)  # warm the specialized loop off the clock
    best = _best_of(5, lambda: WordLFSR(spec, seed).keystream_bytes(nbytes))
    return KEYSTREAM_BITS / best, best


def test_wordlfsr_keystream_speedup(save_result, save_report):
    # Bit-exactness first: the speedup is meaningless if the stream is wrong.
    for spec in (WORD32, WORD64):
        seed = seed_words_from_bytes(spec, b"bench")
        want = WordLFSRReference(spec, seed).keystream_bytes(64)
        got = WordLFSR(spec, seed).keystream_bytes(64)
        assert got == want, f"{spec.name} diverges from the state-matrix oracle"

    fib = FibonacciLFSR(FIB_POLY, 1)
    fib.keystream(64)  # warm-up
    fib_s = _best_of(3, lambda: FibonacciLFSR(FIB_POLY, 1).keystream(KEYSTREAM_BITS))
    fib_rate = KEYSTREAM_BITS / fib_s

    w32_rate, w32_s = _word_rate(WORD32)
    w64_rate, w64_s = _word_rate(WORD64)
    speedup32 = w32_rate / fib_rate
    speedup64 = w64_rate / fib_rate

    lines = [
        f"word-LFSR keystream microbench: {KEYSTREAM_BITS} bits/iteration",
        f"  fibonacci-31: {fib_rate / 1e6:8.2f} Mbit/s  ({fib_s * 1e3:.2f} ms)",
        f"  word32:       {w32_rate / 1e6:8.2f} Mbit/s  ({w32_s * 1e3:.2f} ms, "
        f"{speedup32:5.1f}x, gate >= {WORD32_SPEEDUP_GATE:.0f}x)",
        f"  word64:       {w64_rate / 1e6:8.2f} Mbit/s  ({w64_s * 1e3:.2f} ms, "
        f"{speedup64:5.1f}x, gate >= {WORD64_SPEEDUP_GATE:.0f}x)",
    ]
    save_result("wordlfsr_microbench", "\n".join(lines))
    save_report(
        BenchReport(
            name="wordlfsr_microbench",
            title="Word-oriented σ-LFSR keystream speedup vs bit-serial Fibonacci",
            params={
                "keystream_bits": KEYSTREAM_BITS,
                "fibonacci_degree": FIB_POLY.degree,
                "gate_speedup_word64": WORD64_SPEEDUP_GATE,
                "gate_speedup_word32": WORD32_SPEEDUP_GATE,
            },
            metrics={
                "fibonacci_bits_per_s": fib_rate,
                "word32_bits_per_s": w32_rate,
                "word64_bits_per_s": w64_rate,
                "speedup_word32": speedup32,
                "speedup_word64": speedup64,
            },
        )
    )
    assert speedup64 >= WORD64_SPEEDUP_GATE, (
        f"word64 keystream only {speedup64:.1f}x faster than bit-serial "
        f"FibonacciLFSR (gate {WORD64_SPEEDUP_GATE}x)"
    )
    assert speedup32 >= WORD32_SPEEDUP_GATE, (
        f"word32 keystream only {speedup32:.1f}x faster than bit-serial "
        f"FibonacciLFSR (gate {WORD32_SPEEDUP_GATE}x)"
    )
