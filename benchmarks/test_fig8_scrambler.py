"""Fig. 8 — 802.16e scrambler throughput vs look-ahead factor and block
length.

The scrambler compiles to a single PGAOP (no anti-transformation, no
configuration switch), so throughput climbs to the array's full output
bandwidth; block length matters only through the per-burst setup and
pipeline fill.
"""

import numpy as np
import pytest

from repro.analysis import format_multi_series
from repro.mapping import map_scrambler
from repro.scrambler import AdditiveScrambler, IEEE80216E
from repro.telemetry import BenchReport

FACTORS = (8, 16, 32, 64, 128)
BLOCK_BITS = (96, 384, 1152, 4608, 18432)


@pytest.fixture(scope="module")
def scrambler_mappings():
    return {M: map_scrambler(IEEE80216E, M) for M in FACTORS}


@pytest.fixture(scope="module")
def curves(system, scrambler_mappings):
    return {
        f"M={M}": {
            bits: system.scrambler_performance(mapped, bits).throughput_gbps
            for bits in BLOCK_BITS
        }
        for M, mapped in scrambler_mappings.items()
    }


def test_fig8_regenerate(curves, save_result, save_report):
    text = format_multi_series(
        BLOCK_BITS,
        curves,
        "block bits",
        title="Fig. 8: 802.16e scrambler throughput (Gbit/s) vs block length",
    )
    save_result("fig8_scrambler", text)
    save_report(BenchReport(
        name="fig8_scrambler",
        title="Fig. 8: 802.16e scrambler throughput (Gbit/s) vs block length",
        params={"factors": list(FACTORS), "block_bits": list(BLOCK_BITS)},
        metrics={"peak_gbps_m128": max(curves["M=128"].values())},
        series={
            name: {str(bits): gbps for bits, gbps in series.items()}
            for name, series in curves.items()
        },
    ))


def test_single_operation_no_switch(system, scrambler_mappings):
    """§5: 'The implementation requires a single operation on PiCoGA'."""
    for M, mapped in scrambler_mappings.items():
        assert mapped.op.initiation_interval == 1
        perf = system.scrambler_performance(mapped, 1152)
        assert "switch" not in perf.cycles


def test_max_output_bandwidth(system, scrambler_mappings):
    """'...up to 128 bit in parallel, thus reaching the max output
    bandwidth achievable' — 25.6 Gbit/s kernel, approached at long blocks."""
    mapped = scrambler_mappings[128]
    perf = system.scrambler_performance(mapped, 1 << 22)
    assert perf.throughput_gbps == pytest.approx(25.6, rel=0.02)


def test_throughput_grows_with_block_length(curves):
    for name, series in curves.items():
        values = [series[bits] for bits in BLOCK_BITS]
        assert values == sorted(values), name


def test_larger_m_wins(curves):
    for bits in BLOCK_BITS[1:]:
        assert curves["M=128"][bits] > curves["M=16"][bits]


def test_executed_matches_analytic_and_serial(system, scrambler_mappings):
    rng = np.random.default_rng(88)
    bits = [int(b) for b in rng.integers(0, 2, size=1152)]
    mapped = scrambler_mappings[64]
    out, executed = system.execute_scrambler(mapped, bits)
    assert out == AdditiveScrambler(IEEE80216E).scramble_bits(bits)
    predicted = system.scrambler_performance(mapped, 1152)
    assert executed.total_cycles == predicted.total_cycles


def test_benchmark_scrambler_netlist(benchmark, system, scrambler_mappings):
    bits = [1, 0, 1, 1] * 288  # 1152 bits
    mapped = scrambler_mappings[128]
    out, _ = benchmark(system.execute_scrambler, mapped, bits)
    assert len(out) == len(bits)
