"""Fig. 7 — energy efficiency vs message length and look-ahead factor.

The paper reports pJ/bit for several M across the message-length sweep,
against a ~400 pJ/bit embedded-RISC reference (length-independent), with
DREAM 5-60x more efficient in 90 nm.
"""

import pytest

from repro.analysis import (
    EnergyModel,
    RISC_PJ_PER_BIT,
    format_multi_series,
    message_length_sweep,
)

FACTORS = (32, 64, 128)
LENGTHS = message_length_sweep(256, 65536, points_per_octave=1)


@pytest.fixture(scope="module")
def model():
    return EnergyModel()


@pytest.fixture(scope="module")
def curves(model, system, crc_mappings):
    series = {}
    for M in FACTORS:
        mapped = crc_mappings[M]
        series[f"M={M}"] = {
            bits: model.crc_pj_per_bit(
                mapped, system.crc_single_performance(mapped, bits)
            )
            for bits in LENGTHS
        }
    series["RISC"] = {bits: RISC_PJ_PER_BIT for bits in LENGTHS}
    return series


def test_fig7_regenerate(curves, save_result):
    text = format_multi_series(
        LENGTHS,
        curves,
        "message bits",
        title="Fig. 7: energy per bit (pJ/bit) vs message length",
    )
    save_result("fig7_energy", text)


def test_advantage_band_5_to_60(curves, model):
    """§5: DREAM is '~5-60x' more efficient than the 400 pJ/bit RISC."""
    advantages = [
        model.advantage_vs_risc(pj)
        for name, series in curves.items()
        if name != "RISC"
        for pj in series.values()
    ]
    assert all(4.5 <= a <= 65 for a in advantages), (min(advantages), max(advantages))
    assert max(advantages) > 40
    assert min(advantages) < 12


def test_energy_improves_with_length(curves):
    for M in FACTORS:
        series = curves[f"M={M}"]
        values = [series[bits] for bits in LENGTHS]
        assert values == sorted(values, reverse=True)


def test_larger_m_wins_at_long_messages(curves):
    long_bits = max(LENGTHS)
    assert curves["M=128"][long_bits] < curves["M=32"][long_bits]


def test_risc_reference_constant(curves):
    assert set(curves["RISC"].values()) == {RISC_PJ_PER_BIT}


def test_measured_activity_confirms_analytic(model, system, crc_mappings):
    """Cross-check: charging actual netlist toggles (measured on random
    data) lands within 2x of the analytic per-cell charge — the analytic
    model is not hiding an order-of-magnitude error."""
    import numpy as np

    mapped = crc_mappings[64]
    rng = np.random.default_rng(0xF16)
    data = bytes(rng.integers(0, 256, size=1518).tolist())
    perf = system.crc_single_performance(mapped, 8 * len(data))
    analytic = model.crc_pj_per_bit(mapped, perf)
    measured = model.measured_crc_pj_per_bit(mapped, data, perf)
    assert 0.5 < measured / analytic < 2.0


def test_benchmark_energy_sweep(benchmark, model, system, crc_mappings):
    mapped = crc_mappings[128]

    def sweep():
        return [
            model.crc_pj_per_bit(mapped, system.crc_single_performance(mapped, bits))
            for bits in LENGTHS
        ]

    values = benchmark(sweep)
    assert len(values) == len(LENGTHS)
