"""Context-cache ablation: multi-standard working sets on one array.

The paper's flexibility argument rests on the 4-context configuration
cache: switching among resident personalities costs 2 cycles, while a
working set larger than the cache pays bus reloads (hundreds of cycles).
This bench sweeps the working-set size for a round-robin multi-standard
workload and records where the cliff is.
"""

import pytest

from repro.analysis import format_table
from repro.crc import ETHERNET_CRC32, get
from repro.dream import Job, WorkloadScheduler
from repro.mapping import map_crc, map_scrambler
from repro.scrambler import IEEE80211, IEEE80216E

STANDARD_NAMES = ["CRC-16/CCITT-FALSE", "CRC-16/X-25", "CRC-16/ARC"]


@pytest.fixture(scope="module")
def personalities():
    mapped = {"eth": map_crc(ETHERNET_CRC32, 64)}
    for name in STANDARD_NAMES:
        mapped[name] = map_crc(get(name), 64)
    mapped["wimax"] = map_scrambler(IEEE80216E, 64)
    mapped["wifi"] = map_scrambler(IEEE80211, 64)
    return mapped


def _round_robin(names, jobs_per_name=8, bits=4096):
    trace = []
    for _ in range(jobs_per_name):
        for name in names:
            trace.append(Job(name, bits))
    return trace


@pytest.fixture(scope="module")
def sweep(personalities):
    """Working sets of growing size: scramblers (1 ctx) then CRCs (2)."""
    orders = {
        1: ["wimax"],
        2: ["wimax", "wifi"],
        3: ["wimax", "wifi", "eth"],  # 1+1+2 = 4 contexts: still resident
        4: ["wimax", "wifi", "eth", "CRC-16/CCITT-FALSE"],  # 6 > 4: thrash
        5: ["wimax", "wifi", "eth", "CRC-16/CCITT-FALSE", "CRC-16/X-25"],
    }
    results = {}
    for size, names in orders.items():
        scheduler = WorkloadScheduler({n: personalities[n] for n in names})
        scheduler.run(_round_robin(names, jobs_per_name=1))  # warm the cache
        report = scheduler.run(_round_robin(names))  # steady state
        results[size] = report
    return results


def test_ablation_context_cache_regenerate(sweep, save_result):
    rows = []
    for size, report in sweep.items():
        rows.append(
            [size, report.jobs, report.switches, report.reloads,
             f"{report.configuration_overhead:.1%}"]
        )
    text = format_table(
        ["personalities", "jobs", "switches", "reloads", "config overhead"],
        rows,
        title="Ablation: working-set size vs the 4-context configuration cache",
    )
    save_result("ablation_context_cache", text)


def test_resident_sets_never_reload_in_steady_state(sweep):
    for size in (1, 2, 3):
        assert sweep[size].reloads == 0


def test_oversubscribed_sets_thrash(sweep):
    assert sweep[4].reloads > 4
    assert sweep[5].reloads > sweep[4].reloads


def test_overhead_cliff(sweep):
    """The cache cliff: overhead jumps by an order of magnitude once the
    working set exceeds the four contexts."""
    assert sweep[3].configuration_overhead < 0.05
    assert sweep[4].configuration_overhead > 5 * sweep[3].configuration_overhead


def test_benchmark_scheduler(benchmark, personalities):
    names = ["wimax", "wifi", "eth"]
    scheduler = WorkloadScheduler({n: personalities[n] for n in names})
    trace = _round_robin(names, jobs_per_name=20)
    report = benchmark(scheduler.run, trace)
    assert report.jobs == len(trace)
