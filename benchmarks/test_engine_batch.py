"""Batch-engine throughput sweep (host-side timing, not a paper artifact).

Measures the vectorized :class:`repro.engine.batch.BatchCRC` against the
per-message :class:`repro.crc.parallel.DerbyCRC` loop — the same recurrence,
once bit-sliced across the batch and once in per-message Python — plus the
compile-cache effect on repeated specs.  The acceptance gate for the engine
subsystem is >= 10x messages/sec at batch size 1024; results are recorded
in ``benchmarks/results/engine_batch.txt``.
"""

import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.crc import BitwiseCRC, DerbyCRC, ETHERNET_CRC32
from repro.engine import BatchAdditiveScrambler, BatchCRC, CompileCache
from repro.scrambler import AdditiveScrambler, IEEE80216E
from repro.telemetry import BenchReport

M = 32
MESSAGE_BYTES = 64
BATCH_SIZES = (32, 256, 1024)
BASELINE_SAMPLE = 32


@pytest.fixture(scope="module")
def messages():
    rng = np.random.default_rng(11)
    return [
        bytes(rng.integers(0, 256, size=MESSAGE_BYTES).tolist()) for _ in range(max(BATCH_SIZES))
    ]


@pytest.fixture(scope="module")
def derby_rate(messages):
    """Per-message DerbyCRC loop rate (messages/sec), measured on a sample.

    The loop is O(n) per message with no cross-message state, so the
    per-message rate is independent of how many messages the loop covers.
    """
    engine = DerbyCRC(ETHERNET_CRC32, M)
    sample = messages[:BASELINE_SAMPLE]
    engine.compute(sample[0])  # warm-up
    t0 = time.perf_counter()
    crcs = [engine.compute(m) for m in sample]
    rate = len(sample) / (time.perf_counter() - t0)
    assert crcs == [BitwiseCRC(ETHERNET_CRC32).compute(m) for m in sample]
    return rate


@pytest.fixture(scope="module")
def batch_rates(messages):
    engine = BatchCRC(ETHERNET_CRC32, M)
    expected = [BitwiseCRC(ETHERNET_CRC32).compute(m) for m in messages]
    rates = {}
    for batch in BATCH_SIZES:
        subset = messages[:batch]
        engine.compute_batch(subset[:2])  # warm-up
        best = min(
            _timed(engine.compute_batch, subset, expected[:batch]) for _ in range(3)
        )
        rates[batch] = batch / best
    return rates


def _timed(fn, subset, expected):
    t0 = time.perf_counter()
    result = fn(subset)
    elapsed = time.perf_counter() - t0
    assert result == expected
    return elapsed


def test_engine_batch_sweep(derby_rate, batch_rates, save_result, save_report):
    rows = [[f"DerbyCRC loop (sample {BASELINE_SAMPLE})", f"{derby_rate:,.0f}", "1.0x"]]
    for batch, rate in sorted(batch_rates.items()):
        rows.append([f"BatchCRC B={batch}", f"{rate:,.0f}", f"{rate / derby_rate:.1f}x"])
    text = format_table(
        ["engine", "messages/s", "vs Derby loop"],
        rows,
        title=(
            f"Batch engine throughput: {ETHERNET_CRC32.name}, "
            f"{MESSAGE_BYTES}-byte messages, M={M}"
        ),
    )
    save_result("engine_batch", text)
    save_report(BenchReport(
        name="engine_batch",
        title=f"Batch engine throughput vs per-message Derby loop (M={M})",
        params={
            "standard": ETHERNET_CRC32.name,
            "M": M,
            "message_bytes": MESSAGE_BYTES,
            "baseline_sample": BASELINE_SAMPLE,
            "batch_sizes": list(BATCH_SIZES),
        },
        metrics={
            "derby_msgs_per_s": derby_rate,
            "speedup_b1024": batch_rates[1024] / derby_rate,
            "gate_min_speedup": 10.0,
        },
        series={
            "batch_msgs_per_s": {str(b): r for b, r in sorted(batch_rates.items())},
        },
    ))
    assert batch_rates[1024] >= 10 * derby_rate, (
        f"batch engine {batch_rates[1024]:.0f} msg/s is below 10x the "
        f"Derby loop {derby_rate:.0f} msg/s"
    )


def test_recompile_cost_near_zero():
    """A warm compile cache makes engine construction ~free.

    The cold compile is only partially cold when other modules in the same
    process have warmed module-level lru_caches underneath, so the gate is
    a conservative 10x rather than the ~1000x seen in a fresh process."""
    cache = CompileCache(capacity=8)
    t0 = time.perf_counter()
    BatchCRC(ETHERNET_CRC32, M, cache=cache)
    cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(10):
        BatchCRC(ETHERNET_CRC32, M, cache=cache)
    warm = (time.perf_counter() - t0) / 10
    assert cache.stats.misses > 0 and cache.stats.hits > 0
    assert warm < cold / 10, f"warm {warm * 1e6:.0f}us vs cold {cold * 1e6:.0f}us"


def test_batch_scrambler_faster_than_serial():
    rng = np.random.default_rng(12)
    streams = [[int(b) for b in rng.integers(0, 2, size=2048)] for _ in range(256)]
    serial = AdditiveScrambler(IEEE80216E)
    t0 = time.perf_counter()
    expected = [serial.scramble_bits(s) for s in streams[:16]]
    serial_rate = 16 / (time.perf_counter() - t0)
    engine = BatchAdditiveScrambler(IEEE80216E, M)
    engine.scramble_batch(streams[:2])  # warm-up
    t0 = time.perf_counter()
    out = engine.scramble_batch(streams)
    batch_rate = len(streams) / (time.perf_counter() - t0)
    assert out[:16] == expected
    assert batch_rate > serial_rate


def test_benchmark_batch_crc(benchmark, messages):
    engine = BatchCRC(ETHERNET_CRC32, M)
    crcs = benchmark(engine.compute_batch, messages)
    assert crcs[0] == BitwiseCRC(ETHERNET_CRC32).compute(messages[0])
