"""Fig. 6 — application-specific CRC: throughput vs look-ahead factor.

Four curves, kernel-only (no communication/configuration overhead,
"infinite message"):

* UCRC — the OpenCores parallel CRC, via the static-timing synthesis model;
* M theory — Derby's method on a custom design (serial clock × M);
* M/2 theory — Pei & Zukowski's bound (serial clock × M/2);
* DREAM — M × 200 MHz, capped by the array at M = 128.

The paper's punchlines, asserted below: DREAM is frequency-limited at
small M, overtakes the UCRC synthesis near its own ceiling, and reaches
~25 Gbit/s at M = 128.
"""

import pytest

from repro.analysis import format_multi_series
from repro.baselines import UcrcModel, theory_sweep
from repro.crc import ETHERNET_CRC32
from repro.mapping import DesignSpaceExplorer

FACTORS = (2, 4, 8, 16, 32, 64, 128, 256, 512)
DREAM_MAX_M = 128


@pytest.fixture(scope="module")
def ucrc():
    return UcrcModel(ETHERNET_CRC32)


@pytest.fixture(scope="module")
def curves(ucrc, system, crc_mappings):
    theory = theory_sweep(ucrc, FACTORS)
    dream = {}
    for M in FACTORS:
        if M <= DREAM_MAX_M:
            mapped = crc_mappings.get(M)
            if mapped is None:
                continue
            perf = system.crc_kernel_performance(mapped, M * 100000)
            dream[M] = perf.throughput_gbps
    return {
        "UCRC synth": {M: ucrc.throughput_bps(M) / 1e9 for M in FACTORS},
        "M theory": {M: v / 1e9 for M, v in theory["m_theory"].items()},
        "M/2 theory": {M: v / 1e9 for M, v in theory["m_half_theory"].items()},
        "DREAM": dream,
    }


def test_fig6_regenerate(curves, save_result):
    text = format_multi_series(
        FACTORS,
        curves,
        "M",
        title="Fig. 6: kernel throughput (Gbit/s) vs look-ahead factor",
    )
    save_result("fig6_asic_comparison", text)


def test_dream_peak_25gbps(curves):
    """§5: 'For M = 128, DREAM achieves a peak performance of ~25 Gbit/s'."""
    assert curves["DREAM"][128] == pytest.approx(25.6, rel=0.02)


def test_dream_beats_ucrc_at_max_m(curves):
    """'...that is greater of the performance offered by UCRC'."""
    assert curves["DREAM"][128] > curves["UCRC synth"][128]


def test_dream_limited_at_small_m(curves):
    """'for small parallelization, performance of DREAM is limited by the
    fixed working frequency'."""
    for M in (2, 4, 8):
        if M in curves["DREAM"]:
            assert curves["DREAM"][M] < curves["UCRC synth"][M]


def test_theory_ordering(curves):
    """M theory > M/2 theory > UCRC synthesis, at every factor."""
    for M in FACTORS:
        assert curves["M theory"][M] == pytest.approx(2 * curves["M/2 theory"][M])
        assert curves["M theory"][M] > curves["UCRC synth"][M]


def test_ucrc_saturates(curves):
    """The synthesized curve grows sublinearly (wire/fan-in degradation)."""
    series = curves["UCRC synth"]
    assert series[512] < 2 * series[128]


def test_benchmark_ucrc_sweep(benchmark, ucrc):
    values = benchmark(ucrc.sweep, FACTORS)
    assert len(values) == len(FACTORS)
