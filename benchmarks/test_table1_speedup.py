"""Table 1 — speed-up of DREAM vs fast software CRC on a 200 MHz RISC.

The paper's table reports the speed-up for message lengths × look-ahead
factors M ∈ {32, 64, 128}.  We regenerate it against the table-driven
"fast software" baseline ([8]-style, 8 cycles/byte) and additionally
record the kernel-level speed-up against the bit-serial software CRC,
which is the paper's "roughly three orders of magnitude" claim.
"""

import pytest

from repro.analysis import as_table, format_table, kernel_speedup, speedup_grid
from repro.baselines import RiscCostModel

MESSAGE_BITS = (512, 1024, 4096, 12144, 65536)
FACTORS = (32, 64, 128)


@pytest.fixture(scope="module")
def grid(system, crc_mappings):
    mappings = [crc_mappings[M] for M in FACTORS]
    return speedup_grid(system, mappings, MESSAGE_BITS, algorithm="table")


def test_table1_regenerate(grid, system, crc_mappings, save_result):
    table = as_table(grid)
    rows = [
        [bits] + [f"{table[bits][M]:.1f}" for M in FACTORS] for bits in MESSAGE_BITS
    ]
    text = format_table(
        ["message bits"] + [f"M={M}" for M in FACTORS],
        rows,
        title="Table 1: speed-up vs fast software CRC (table-driven, 200 MHz RISC)",
    )
    kernel = kernel_speedup(system, crc_mappings[128], algorithm="bitwise")
    text += (
        f"\n\nKernel speed-up vs bit-serial software CRC at M=128: {kernel:.0f}x "
        "(the paper's 'roughly three orders of magnitude')"
    )
    save_result("table1_speedup", text)


def test_speedup_shape_matches_paper(grid):
    """Who wins and how: DREAM always wins, more at longer messages and
    larger M."""
    table = as_table(grid)
    for bits in MESSAGE_BITS:
        # Larger M never loses at equal length.
        assert table[bits][128] >= table[bits][32] * 0.9
        assert table[bits][32] > 1
    # Longer messages amortize control overhead.
    for M in FACTORS:
        assert table[65536][M] > table[512][M]


def test_three_orders_of_magnitude(system, crc_mappings):
    s = kernel_speedup(system, crc_mappings[128], algorithm="bitwise")
    assert 500 <= s <= 2000


def test_area_increase_is_returned(system, crc_mappings):
    """§5: 'the area increase ... estimated in 10x the area of a basic
    processor, is returned by an adequate performance improvement' —
    bandwidth per mm² favours DREAM over the plain RISC."""
    from repro.analysis import AreaModel
    from repro.baselines import RiscCostModel

    model = AreaModel()
    assert 8 <= model.area_ratio <= 13
    mapped = crc_mappings[128]
    for bits in (4096, 12144, 65536):
        dream_bps = system.crc_single_performance(mapped, bits).throughput_bps
        risc_bps = RiscCostModel().throughput_bps("table", bits)
        assert model.area_returned(dream_bps, risc_bps), bits


def test_benchmark_speedup_grid(benchmark, system, crc_mappings):
    mappings = [crc_mappings[M] for M in FACTORS]
    result = benchmark(
        speedup_grid, system, mappings, MESSAGE_BITS, "table", RiscCostModel()
    )
    assert len(result) == len(FACTORS) * len(MESSAGE_BITS)
