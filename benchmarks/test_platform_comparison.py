"""§1 platform comparison, quantified.

The paper's introduction positions four implementation options for
parallel LFSR applications: general-purpose/embedded processors (word
level, too slow), embedded FPGAs (bit level, reduced frequency),
reconfigurable datapaths like PiCoGA (pipelined, the sweet spot) and
ASICs (fast, inflexible).  This bench renders that narrative as one
kernel-bandwidth table from the library's models.
"""

import pytest

from repro.analysis import format_multi_series
from repro.baselines import EmbeddedFpgaModel, RiscCostModel, UcrcModel
from repro.crc import ETHERNET_CRC32

FACTORS = (1, 2, 4, 8, 16, 32, 64, 128)
DREAM_MAX_M = 128


@pytest.fixture(scope="module")
def curves(crc_mappings, system):
    risc = RiscCostModel()
    efpga = EmbeddedFpgaModel(ETHERNET_CRC32)
    asic = UcrcModel(ETHERNET_CRC32)
    dream = {}
    for M in FACTORS:
        if M in crc_mappings:
            dream[M] = system.crc_kernel_performance(
                crc_mappings[M], M * 10000
            ).throughput_gbps
    return {
        "RISC sw (table)": {M: risc.peak_throughput_bps("table") / 1e9 for M in FACTORS},
        "eFPGA": {M: efpga.throughput_bps(M) / 1e9 for M in FACTORS},
        "DREAM": dream,
        "ASIC (UCRC)": {M: asic.throughput_bps(M) / 1e9 for M in FACTORS},
    }


def test_platform_comparison_regenerate(curves, save_result):
    text = format_multi_series(
        FACTORS,
        curves,
        "M",
        title="Platform comparison: CRC-32 kernel bandwidth (Gbit/s) — §1 narrative",
    )
    save_result("platform_comparison", text)


def test_processors_are_orders_of_magnitude_behind(curves):
    sw = curves["RISC sw (table)"][1]
    assert curves["DREAM"][128] > 100 * sw


def test_efpga_between_software_and_asic(curves):
    for M in (8, 32, 128):
        assert curves["RISC sw (table)"][M] < curves["eFPGA"][M] < curves["ASIC (UCRC)"][M]


def test_dream_wins_among_programmable_at_design_point(curves):
    """At M = 128 the pipelined reconfigurable datapath beats both
    programmable alternatives and edges the ASIC synthesis."""
    assert curves["DREAM"][128] > curves["eFPGA"][128]
    assert curves["DREAM"][128] > curves["ASIC (UCRC)"][128]


def test_flexibility_costs_frequency_at_small_m(curves):
    """Below the knee every flexible platform trails the ASIC."""
    for M in (1, 2, 4):
        if M in curves["DREAM"]:
            assert curves["DREAM"][M] < curves["ASIC (UCRC)"][M]
        assert curves["eFPGA"][M] < curves["ASIC (UCRC)"][M]


def test_benchmark_platform_sweep(benchmark):
    efpga = EmbeddedFpgaModel(ETHERNET_CRC32)
    values = benchmark(efpga.sweep, FACTORS)
    assert len(values) == len(FACTORS)
