"""Dense matrices over GF(2).

:class:`GF2Matrix` stores its entries as a numpy ``uint8`` array of 0/1
values.  The sizes used by this library are tiny by linear-algebra standards
(k ≤ 64 state bits, M ≤ 512 look-ahead), so clarity wins over bit-packing;
multiplication is performed with integer matmul followed by ``& 1``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

RowsLike = Union[np.ndarray, Sequence[Sequence[int]]]


class GF2Matrix:
    """An immutable-ish dense matrix over GF(2).

    The underlying array is private; use :meth:`to_array` for a copy.
    Operators: ``+`` (XOR), ``@`` (product), ``**`` (repeated squaring),
    ``==``.  Matrix-vector products accept 1-D arrays/sequences and return
    1-D numpy arrays.
    """

    __slots__ = ("_a",)

    def __init__(self, rows: RowsLike):
        a = np.array(rows, dtype=np.uint8)
        if a.ndim != 2:
            raise ValueError(f"expected a 2-D array, got shape {a.shape}")
        if not np.isin(a, (0, 1)).all():
            raise ValueError("entries must be 0 or 1")
        self._a = a

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, nrows: int, ncols: int) -> "GF2Matrix":
        """The all-zero ``nrows x ncols`` matrix."""
        return cls(np.zeros((nrows, ncols), dtype=np.uint8))

    @classmethod
    def identity(cls, n: int) -> "GF2Matrix":
        """The ``n x n`` identity matrix."""
        return cls(np.eye(n, dtype=np.uint8))

    @classmethod
    def from_columns(cls, columns: Iterable[Sequence[int]]) -> "GF2Matrix":
        """Build from an iterable of equal-length column vectors."""
        cols = [np.asarray(c, dtype=np.uint8) for c in columns]
        if not cols:
            raise ValueError("need at least one column")
        return cls(np.stack(cols, axis=1))

    @classmethod
    def from_int_rows(cls, rows: Sequence[int], ncols: int) -> "GF2Matrix":
        """Build from integers whose bit *j* is the entry in column *j*."""
        data = np.zeros((len(rows), ncols), dtype=np.uint8)
        for i, r in enumerate(rows):
            if r >> ncols:
                raise ValueError(f"row {i} value {r:#x} exceeds {ncols} columns")
            for j in range(ncols):
                data[i, j] = (r >> j) & 1
        return cls(data)

    @classmethod
    def random(cls, nrows: int, ncols: int, rng: Optional[np.random.Generator] = None) -> "GF2Matrix":
        """Uniform random 0/1 matrix (seedable via ``rng``)."""
        rng = rng or np.random.default_rng()
        return cls(rng.integers(0, 2, size=(nrows, ncols), dtype=np.uint8))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """``(nrows, ncols)``."""
        return self._a.shape

    @property
    def nrows(self) -> int:
        """Number of rows."""
        return self._a.shape[0]

    @property
    def ncols(self) -> int:
        """Number of columns."""
        return self._a.shape[1]

    def is_square(self) -> bool:
        """True when ``nrows == ncols``."""
        return self.nrows == self.ncols

    def to_array(self) -> np.ndarray:
        """A defensive uint8 copy of the underlying array."""
        return self._a.copy()

    def row(self, i: int) -> np.ndarray:
        """Copy of row ``i`` as a 1-D uint8 array."""
        return self._a[i].copy()

    def column(self, j: int) -> np.ndarray:
        """Copy of column ``j`` as a 1-D uint8 array."""
        return self._a[:, j].copy()

    def row_as_int(self, i: int) -> int:
        """Row *i* packed into an int (bit *j* = entry in column *j*)."""
        return int(sum(int(v) << j for j, v in enumerate(self._a[i])))

    def rows_as_ints(self) -> List[int]:
        """Every row packed into an int (see :meth:`row_as_int`)."""
        return [self.row_as_int(i) for i in range(self.nrows)]

    def density(self) -> float:
        """Fraction of ones — a complexity proxy for XOR-network size."""
        return float(self._a.mean()) if self._a.size else 0.0

    def nnz(self) -> int:
        """Total number of ones (XOR taps before any sharing)."""
        return int(self._a.sum())

    def __getitem__(self, key):
        result = self._a[key]
        if isinstance(result, np.ndarray) and result.ndim == 2:
            return GF2Matrix(result)
        return result

    def __eq__(self, other) -> bool:
        if not isinstance(other, GF2Matrix):
            return NotImplemented
        return self.shape == other.shape and bool((self._a == other._a).all())

    def __hash__(self):
        return hash((self.shape, self._a.tobytes()))

    def __repr__(self) -> str:
        return f"GF2Matrix({self.nrows}x{self.ncols}, nnz={self.nnz()})"

    def __str__(self) -> str:
        return "\n".join("".join(str(int(v)) for v in row) for row in self._a)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "GF2Matrix") -> "GF2Matrix":
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        return GF2Matrix(self._a ^ other._a)

    __xor__ = __add__

    def __matmul__(self, other: Union["GF2Matrix", np.ndarray, Sequence[int]]):
        if isinstance(other, GF2Matrix):
            if self.ncols != other.nrows:
                raise ValueError(f"inner dimension mismatch: {self.shape} @ {other.shape}")
            prod = (self._a.astype(np.int64) @ other._a.astype(np.int64)) & 1
            return GF2Matrix(prod.astype(np.uint8))
        vec = np.asarray(other, dtype=np.int64)
        if vec.ndim != 1 or vec.size != self.ncols:
            raise ValueError(f"vector of length {self.ncols} expected, got shape {vec.shape}")
        return ((self._a.astype(np.int64) @ vec) & 1).astype(np.uint8)

    def __pow__(self, exponent: int) -> "GF2Matrix":
        if not self.is_square():
            raise ValueError("matrix power requires a square matrix")
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = GF2Matrix.identity(self.nrows)
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result @ base
            base = base @ base
            e >>= 1
        return result

    def transpose(self) -> "GF2Matrix":
        """The transposed matrix."""
        return GF2Matrix(self._a.T)

    def hstack(self, other: "GF2Matrix") -> "GF2Matrix":
        """Concatenate columns (``[self | other]``)."""
        if self.nrows != other.nrows:
            raise ValueError("row count mismatch for hstack")
        return GF2Matrix(np.hstack([self._a, other._a]))

    def vstack(self, other: "GF2Matrix") -> "GF2Matrix":
        """Concatenate rows (``[self / other]``)."""
        if self.ncols != other.ncols:
            raise ValueError("column count mismatch for vstack")
        return GF2Matrix(np.vstack([self._a, other._a]))

    # ------------------------------------------------------------------
    # Gaussian elimination and friends
    # ------------------------------------------------------------------
    def _row_echelon(self) -> Tuple[np.ndarray, List[int]]:
        """Return (reduced row-echelon form, pivot column list)."""
        a = self._a.copy()
        pivots: List[int] = []
        r = 0
        for c in range(self.ncols):
            if r >= self.nrows:
                break
            pivot_rows = np.nonzero(a[r:, c])[0]
            if pivot_rows.size == 0:
                continue
            p = r + int(pivot_rows[0])
            if p != r:
                a[[r, p]] = a[[p, r]]
            # Eliminate this column from every other row.
            mask = a[:, c].copy()
            mask[r] = 0
            a ^= np.outer(mask, a[r])
            pivots.append(c)
            r += 1
        return a, pivots

    def rank(self) -> int:
        """Rank over GF(2) via row reduction."""
        _, pivots = self._row_echelon()
        return len(pivots)

    def is_invertible(self) -> bool:
        """True for square matrices of full rank."""
        return self.is_square() and self.rank() == self.nrows

    def inverse(self) -> "GF2Matrix":
        """Inverse via Gauss-Jordan on the augmented matrix.

        Raises :class:`ValueError` if the matrix is singular.
        """
        if not self.is_square():
            raise ValueError("only square matrices can be inverted")
        n = self.nrows
        aug = np.hstack([self._a.copy(), np.eye(n, dtype=np.uint8)])
        r = 0
        for c in range(n):
            pivot_rows = np.nonzero(aug[r:, c])[0]
            if pivot_rows.size == 0:
                raise ValueError("matrix is singular over GF(2)")
            p = r + int(pivot_rows[0])
            if p != r:
                aug[[r, p]] = aug[[p, r]]
            mask = aug[:, c].copy()
            mask[r] = 0
            aug ^= np.outer(mask, aug[r])
            r += 1
        return GF2Matrix(aug[:, n:])

    def solve(self, rhs: Union[np.ndarray, Sequence[int]]) -> np.ndarray:
        """Solve ``self @ x = rhs`` for square invertible ``self``."""
        return self.inverse() @ np.asarray(rhs, dtype=np.uint8)

    def null_space_basis(self) -> List[np.ndarray]:
        """Basis vectors of the right null space."""
        rref, pivots = self._row_echelon()
        free_cols = [c for c in range(self.ncols) if c not in pivots]
        basis = []
        for fc in free_cols:
            v = np.zeros(self.ncols, dtype=np.uint8)
            v[fc] = 1
            for r, pc in enumerate(pivots):
                v[pc] = rref[r, fc]
            basis.append(v)
        return basis

    # ------------------------------------------------------------------
    # Structure predicates
    # ------------------------------------------------------------------
    def is_companion(self) -> bool:
        """True if the matrix has the companion form used in the paper:

        sub-diagonal of ones, arbitrary last column, zeros elsewhere.
        """
        if not self.is_square():
            return False
        n = self.nrows
        a = self._a
        for i in range(n):
            for j in range(n - 1):
                expected = 1 if i == j + 1 else 0
                if a[i, j] != expected:
                    return False
        return True

    def characteristic_polynomial(self) -> int:
        """Characteristic polynomial as an int (bit i = coeff of x^i).

        Computed by Hessenberg-free expansion via the Faddeev–LeVerrier
        analogue over GF(2) being unavailable, we use the simple approach of
        computing det(xI - A) by fraction-free elimination over GF(2)[x],
        representing polynomial entries as Python ints.
        """
        if not self.is_square():
            raise ValueError("characteristic polynomial requires a square matrix")
        from repro.gf2.clmul import clmul, cldivmod

        n = self.nrows
        # Entries of xI + A (== xI - A over GF(2)) as polynomial ints.
        m: List[List[int]] = [
            [((2 if i == j else 0) ^ int(self._a[i, j])) for j in range(n)]
            for i in range(n)
        ]
        # Fraction-free Gaussian elimination (Bareiss) over GF(2)[x].
        prev_pivot = 1
        for k in range(n - 1):
            if m[k][k] == 0:
                swap = next((r for r in range(k + 1, n) if m[r][k]), None)
                if swap is None:
                    prev_pivot = 1
                    continue
                m[k], m[swap] = m[swap], m[k]
            for i in range(k + 1, n):
                for j in range(k + 1, n):
                    num = clmul(m[i][j], m[k][k]) ^ clmul(m[i][k], m[k][j])
                    q, r = cldivmod(num, prev_pivot)
                    if r:
                        raise ArithmeticError("Bareiss division was not exact")
                    m[i][j] = q
                m[i][k] = 0
            prev_pivot = m[k][k]
        return m[n - 1][n - 1]

    def is_similar_to(self, other: "GF2Matrix") -> bool:
        """Necessary similarity check via characteristic polynomials."""
        return (
            self.is_square()
            and other.is_square()
            and self.nrows == other.nrows
            and self.characteristic_polynomial() == other.characteristic_polynomial()
        )
