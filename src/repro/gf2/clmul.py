"""Carry-less (polynomial) arithmetic on Python ints.

An int represents a GF(2) polynomial with bit *i* holding the coefficient
of ``x**i``.  These routines are the work-horses behind
:class:`repro.gf2.GF2Polynomial`, the GFMAC chunked CRC and the Bareiss
determinant used for characteristic polynomials.
"""

from __future__ import annotations

from typing import Tuple


def clmul(a: int, b: int) -> int:
    """Carry-less multiplication of two polynomial ints."""
    if a < 0 or b < 0:
        raise ValueError("polynomial ints must be non-negative")
    result = 0
    while b:
        low = b & -b
        result ^= a * low  # multiplying by a power of two is a shift
        b ^= low
    return result


def cldeg(a: int) -> int:
    """Degree of the polynomial (``-1`` for the zero polynomial)."""
    return a.bit_length() - 1


def cldivmod(a: int, b: int) -> Tuple[int, int]:
    """Polynomial division: return ``(quotient, remainder)`` with
    ``a = quotient*b ^ remainder`` and ``deg(remainder) < deg(b)``."""
    if b == 0:
        raise ZeroDivisionError("polynomial division by zero")
    db = cldeg(b)
    q = 0
    r = a
    while cldeg(r) >= db:
        shift = cldeg(r) - db
        q ^= 1 << shift
        r ^= b << shift
    return q, r


def clmod(a: int, b: int) -> int:
    """Polynomial remainder ``a mod b``."""
    return cldivmod(a, b)[1]


def clgcd(a: int, b: int) -> int:
    """Greatest common divisor of two polynomial ints."""
    while b:
        a, b = b, clmod(a, b)
    return a


def clmulmod(a: int, b: int, mod: int) -> int:
    """``(a * b) mod m`` over GF(2)[x]."""
    return clmod(clmul(a, b), mod)


def clpowmod(a: int, e: int, mod: int) -> int:
    """``a**e mod m`` over GF(2)[x] by square-and-multiply."""
    if e < 0:
        raise ValueError("exponent must be non-negative")
    result = clmod(1, mod)
    base = clmod(a, mod)
    while e:
        if e & 1:
            result = clmulmod(result, base, mod)
        base = clmulmod(base, base, mod)
        e >>= 1
    return result
