"""Bit-level utilities shared across the library.

Conventions
-----------
* A *bit vector* is a ``list[int]`` (or numpy array) of 0/1 values.
* ``int_to_bits(value, width)`` returns bits LSB-first: element ``i`` is the
  coefficient of ``2**i`` — the same convention used for GF(2) polynomial
  coefficients and LFSR state vectors throughout the library.
* Byte streams are expanded MSB-first per byte by default (the order bits go
  on the wire for most CRC standards); pass ``reflect=True`` for LSB-first
  expansion (used by reflected CRC specs such as CRC-32/Ethernet).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("popcount is defined for non-negative integers")
    return bin(value).count("1")


def parity(value: int) -> int:
    """XOR of all bits of ``value`` (0 or 1)."""
    return popcount(value) & 1


def reflect_bits(value: int, width: int) -> int:
    """Reverse the ``width`` low-order bits of ``value``.

    >>> reflect_bits(0b1101, 4)
    11
    """
    if width < 0:
        raise ValueError("width must be non-negative")
    if value >> width:
        raise ValueError(f"value {value:#x} does not fit in {width} bits")
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def int_to_bits(value: int, width: int) -> List[int]:
    """Expand ``value`` into a LSB-first list of ``width`` bits."""
    if value >> width:
        raise ValueError(f"value {value:#x} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Pack a LSB-first bit sequence back into an integer."""
    result = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit {i} is {bit!r}, expected 0 or 1")
        result |= bit << i
    return result


def bytes_to_bits(data: bytes, reflect: bool = False) -> List[int]:
    """Expand a byte string into a flat bit list in transmission order.

    With ``reflect=False`` each byte contributes its bits MSB-first (the
    convention of non-reflected CRCs like CRC-32/MPEG-2); with
    ``reflect=True`` each byte contributes its bits LSB-first (reflected
    CRCs like CRC-32/Ethernet, and most serial line codings).
    """
    bits: List[int] = []
    for byte in data:
        if reflect:
            bits.extend((byte >> i) & 1 for i in range(8))
        else:
            bits.extend((byte >> i) & 1 for i in range(7, -1, -1))
    return bits


def bits_to_bytes(bits: Sequence[int], reflect: bool = False) -> bytes:
    """Inverse of :func:`bytes_to_bits`; ``len(bits)`` must be a multiple of 8."""
    if len(bits) % 8:
        raise ValueError("bit count must be a multiple of 8")
    out = bytearray()
    for off in range(0, len(bits), 8):
        chunk = bits[off : off + 8]
        byte = 0
        if reflect:
            for i, bit in enumerate(chunk):
                byte |= (bit & 1) << i
        else:
            for bit in chunk:
                byte = (byte << 1) | (bit & 1)
        out.append(byte)
    return bytes(out)


def chunk_bits(bits: Sequence[int], size: int) -> Iterator[Sequence[int]]:
    """Yield successive ``size``-bit chunks; the last chunk may be short."""
    if size <= 0:
        raise ValueError("chunk size must be positive")
    for off in range(0, len(bits), size):
        yield bits[off : off + size]


def hamming_weight_distribution(values: Iterable[int]) -> dict:
    """Histogram of popcounts — used by mapper complexity reports."""
    hist: dict = {}
    for value in values:
        w = popcount(value)
        hist[w] = hist.get(w, 0) + 1
    return hist
