"""Polynomial factorization over GF(2).

Complete factorization of GF(2)[x] polynomials via square-free reduction,
distinct-degree factorization and char-2 Cantor–Zassenhaus (trace-based)
equal-degree splitting.  Used to characterize CRC generators: e.g.
CRC-16/ARC's ``0x18005`` factors as ``(x + 1)(x^15 + x + 1)`` — the
``x + 1`` factor is what guarantees detection of all odd-weight errors —
while the Ethernet CRC-32 generator is irreducible (indeed primitive).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.gf2.clmul import cldeg, cldivmod, clgcd, clmod, clmul, clmulmod, clpowmod
from repro.gf2.polynomial import GF2Polynomial


def derivative(f: int) -> int:
    """Formal derivative over GF(2): odd-exponent terms shift down once."""
    out = 0
    i = 1
    while (f >> i) != 0:
        if (f >> i) & 1:
            out |= 1 << (i - 1)
        i += 2
    return out


def poly_sqrt(f: int) -> int:
    """Square root of a perfect square (all exponents even) over GF(2)."""
    out = 0
    i = 0
    while (f >> i) != 0:
        if (f >> i) & 1:
            if i % 2:
                raise ValueError("polynomial is not a perfect square")
            out |= 1 << (i // 2)
        i += 1
    return out


def _trace_split(f: int, d: int, rng: random.Random) -> Tuple[int, int]:
    """Split a square-free product of >= 2 irreducibles of degree d.

    Char-2 Cantor–Zassenhaus: for random u, the trace polynomial
    ``T(u) = u + u^2 + u^4 + ... + u^(2^(d-1)) mod f`` evaluates to 0 or 1
    in each irreducible component, so ``gcd(T(u), f)`` is non-trivial with
    probability about 1/2.
    """
    n = cldeg(f)
    while True:
        u = rng.getrandbits(n) | 1
        u = clmod(u, f)
        if u == 0:
            continue
        trace = 0
        term = u
        for _ in range(d):
            trace ^= term
            term = clmulmod(term, term, f)
        for candidate in (trace, trace ^ 1):
            if candidate == 0:
                continue
            g = clgcd(candidate, f)
            if 0 < cldeg(g) < n:
                return g, cldivmod(f, g)[0]


def _distinct_degree(f: int) -> List[Tuple[int, int]]:
    """DDF on a square-free f: [(product_of_degree_d_factors, d), ...]."""
    result = []
    x = 0b10
    h = x
    d = 0
    rest = f
    while cldeg(rest) >= 2 * (d + 1):
        d += 1
        h = clpowmod(h, 2, rest)  # h = x^(2^d) mod rest
        g = clgcd(h ^ clmod(x, rest), rest)
        if cldeg(g) > 0:
            result.append((g, d))
            rest = cldivmod(rest, g)[0]
            h = clmod(h, rest)
    if cldeg(rest) > 0:
        result.append((rest, cldeg(rest)))
    return result


def _factor_squarefree(f: int, rng: random.Random) -> List[int]:
    """All irreducible factors of a square-free polynomial (deg >= 1)."""
    factors: List[int] = []
    for product, d in _distinct_degree(f):
        stack = [product]
        while stack:
            g = stack.pop()
            if cldeg(g) == d:
                factors.append(g)
                continue
            a, b = _trace_split(g, d, rng)
            stack.extend((a, b))
    return factors


def factorize(poly: GF2Polynomial, seed: int = 0xC0FFEE) -> Dict[GF2Polynomial, int]:
    """Full factorization: {irreducible factor: multiplicity}.

    Deterministic for a fixed ``seed`` (the randomness only steers the
    equal-degree splits).  The product of ``factor**multiplicity`` equals
    the input, which the test-suite verifies for every case.
    """
    f = poly.coeffs
    if f == 0:
        raise ValueError("cannot factor the zero polynomial")
    rng = random.Random(seed)
    result: Dict[int, int] = {}

    def add(factor: int, count: int = 1) -> None:
        result[factor] = result.get(factor, 0) + count

    # Strip x^k.
    while f and not (f & 1):
        add(0b10)
        f >>= 1

    def recurse(g: int, multiplicity: int) -> None:
        if cldeg(g) < 1:
            return
        d = derivative(g)
        if d == 0:
            recurse(poly_sqrt(g), 2 * multiplicity)
            return
        common = clgcd(g, d)
        if cldeg(common) > 0:
            recurse(common, multiplicity)
            recurse(cldivmod(g, common)[0], multiplicity)
            return
        for factor in _factor_squarefree(g, rng):
            add(factor, multiplicity)

    recurse(f, 1)
    # Consolidate: recursion may produce a factor via several branches.
    return {GF2Polynomial(k): v for k, v in sorted(result.items())}


def is_square_free(poly: GF2Polynomial) -> bool:
    """True when no irreducible factor repeats."""
    f = poly.coeffs
    if f == 0:
        raise ValueError("undefined for the zero polynomial")
    d = derivative(f)
    if d == 0:
        return cldeg(f) == 0
    return clgcd(f, d) == 1


def divides(factor: GF2Polynomial, poly: GF2Polynomial) -> bool:
    """True when ``factor`` divides ``poly`` exactly (zero remainder)."""
    return clmod(poly.coeffs, factor.coeffs) == 0


def polynomial_order(poly: GF2Polynomial) -> int:
    """Multiplicative order of x modulo ``poly`` via its factorization.

    Much faster than brute search for reducible polynomials: the order is
    ``lcm_i(ord(p_i)) * 2^ceil(log2(max multiplicity))`` over the
    irreducible factors ``p_i^m_i`` (char-2 lifting rule).  Requires a
    non-zero constant term.
    """
    from math import gcd

    if not poly.coefficient(0):
        raise ValueError("x divides the polynomial; order undefined")
    if poly.degree < 1:
        raise ValueError("order requires degree >= 1")
    factors = factorize(poly)
    order = 1
    max_mult = 1
    for factor, mult in factors.items():
        component = factor.order()  # irreducible -> fast path
        order = order * component // gcd(order, component)
        max_mult = max(max_mult, mult)
    lift = 1
    while lift < max_mult:
        lift <<= 1
    return order * lift


def product(factors: Dict[GF2Polynomial, int]) -> GF2Polynomial:
    """Multiply a factorization back together."""
    acc = 1
    for factor, mult in factors.items():
        for _ in range(mult):
            acc = clmul(acc, factor.coeffs)
    return GF2Polynomial(acc)
