"""Extension fields GF(2^m) and the GFMAC primitive.

The sub-word-parallel CRC method of Roy [9] and Ji & Killian [10] (paper
§2) computes a CRC as a sum of Galois-field multiply-accumulates: the
message is split into M-bit words ``W_i`` and ``CRC = Σ W_i · β_i`` where
the ``β_i`` are per-position constants.  :class:`GF2mField` provides the
field arithmetic those engines build on, mirroring a hardware GFMAC unit.
"""

from __future__ import annotations

from typing import List

from repro.gf2.clmul import clmod, clmul, clpowmod
from repro.gf2.polynomial import GF2Polynomial


class GF2mField:
    """Arithmetic in GF(2^m) defined by an irreducible modulus polynomial.

    Elements are ints in ``[0, 2^m)`` (bit *i* = coefficient of ``x**i``).
    """

    def __init__(self, modulus: GF2Polynomial, check_irreducible: bool = True):
        if modulus.degree < 1:
            raise ValueError("field modulus must have degree >= 1")
        if check_irreducible and not modulus.is_irreducible():
            raise ValueError(f"{modulus} is reducible; GF(2^m) needs an irreducible modulus")
        self._modulus = modulus
        self._m = modulus.degree

    @property
    def modulus(self) -> GF2Polynomial:
        """The irreducible modulus polynomial defining the field."""
        return self._modulus

    @property
    def degree(self) -> int:
        """The extension degree ``m``."""
        return self._m

    @property
    def size(self) -> int:
        """Number of field elements, ``2**m``."""
        return 1 << self._m

    def _check(self, a: int) -> int:
        if not 0 <= a < self.size:
            raise ValueError(f"element {a:#x} outside GF(2^{self._m})")
        return a

    # ------------------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        """Field addition — plain XOR."""
        return self._check(a) ^ self._check(b)

    def mul(self, a: int, b: int) -> int:
        """Carry-less multiply reduced by the modulus."""
        return clmod(clmul(self._check(a), self._check(b)), self._modulus.coeffs)

    def mac(self, acc: int, a: int, b: int) -> int:
        """Galois-field multiply-accumulate: ``acc + a*b`` (the GFMAC op)."""
        return self._check(acc) ^ self.mul(a, b)

    def pow(self, a: int, e: int) -> int:
        """``a**e`` by square-and-multiply modulo the modulus."""
        return clpowmod(self._check(a), e, self._modulus.coeffs)

    def inverse(self, a: int) -> int:
        """``a**-1`` via Fermat (``a**(2^m - 2)``); 0 has none."""
        if self._check(a) == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^m)")
        # a^(2^m - 2) = a^{-1} in a field of size 2^m.
        return self.pow(a, self.size - 2)

    def x_power(self, e: int) -> int:
        """``x**e mod modulus`` — the β constants of the chunked CRC."""
        return clpowmod(2, e, self._modulus.coeffs)

    def element_order(self, a: int) -> int:
        """Multiplicative order of a non-zero element (search, small fields)."""
        if self._check(a) == 0:
            raise ValueError("0 has no multiplicative order")
        acc = a
        e = 1
        while acc != 1:
            acc = self.mul(acc, a)
            e += 1
            if e > self.size:
                raise ArithmeticError("order search exceeded field size")
        return e

    def log_table(self, generator: int) -> List[int]:
        """Discrete-log table base ``generator`` (small fields only)."""
        table = [-1] * self.size
        acc = 1
        for e in range(self.size - 1):
            if table[acc] != -1:
                raise ValueError("generator does not generate the full group")
            table[acc] = e
            acc = self.mul(acc, generator)
        return table
