"""GF(2) linear algebra and polynomial arithmetic substrate.

Everything in this package works over the two-element Galois field GF(2),
where addition is XOR and multiplication is AND.  It is the mathematical
foundation for the LFSR state-space machinery (:mod:`repro.lfsr`), the
parallel CRC engines (:mod:`repro.crc`) and the PiCoGA mapping toolchain
(:mod:`repro.mapping`).

Public API
----------
:class:`GF2Matrix`
    Dense matrix over GF(2) with multiplication, exponentiation, inversion,
    rank and linear solving.
:class:`GF2Polynomial`
    Polynomial over GF(2) stored as a Python int (bit *i* holds the
    coefficient of ``x**i``).
:class:`GF2mField`
    Extension field GF(2^m) with a multiply-accumulate (GFMAC) primitive.
:mod:`repro.gf2.backend`
    Pluggable kernel registry (``"reference"`` pure-Python bit loops,
    ``"packed"`` word-packed bit-slicing) behind :func:`get_backend`;
    selection threads through every engine via the ``backend=``
    constructor arguments and the ``REPRO_GF2_BACKEND`` environment
    variable.
Carry-less multiply helpers (:func:`clmul`, :func:`clmod`, :func:`cldivmod`)
and bit utilities (:func:`reflect_bits`, :func:`int_to_bits`,
:func:`bits_to_int`, :func:`bytes_to_bits`).
"""

from repro.gf2.backend import (
    BACKEND_ENV,
    GF2Backend,
    NumpyPackedBackend,
    PackedIntBackend,
    ReferenceBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from repro.gf2.bits import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    int_to_bits,
    parity,
    popcount,
    reflect_bits,
)
from repro.gf2.clmul import cldivmod, clmod, clmul
from repro.gf2.factor import factorize, is_square_free, polynomial_order, product
from repro.gf2.field import GF2mField
from repro.gf2.matrix import GF2Matrix
from repro.gf2.polynomial import GF2Polynomial

__all__ = [
    "BACKEND_ENV",
    "GF2Backend",
    "GF2Matrix",
    "GF2Polynomial",
    "GF2mField",
    "NumpyPackedBackend",
    "PackedIntBackend",
    "ReferenceBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "bits_to_bytes",
    "bits_to_int",
    "bytes_to_bits",
    "cldivmod",
    "clmod",
    "clmul",
    "factorize",
    "is_square_free",
    "polynomial_order",
    "product",
    "int_to_bits",
    "parity",
    "popcount",
    "reflect_bits",
]
