"""Pluggable GF(2) kernel backends — the word-packed execution substrate.

Derby's state-space transform turns the M-bit look-ahead update into dense
GF(2) matrix products (``A_Mt x``, ``B_Mt u``, the anti-transform ``T``).
The *math* is fixed; how fast it runs depends entirely on the data layout.
This module makes that layout a pluggable choice behind one registry:

``"reference"``
    The historical pure-Python bit loop: matrix rows as Python ints, one
    AND + parity per output bit.  Slow by construction, trivially
    auditable — the ground truth the fast backends are fuzzed against.
``"packed"``
    Word-packed bit-slicing: states and matrix columns live in 64-bit
    machine words (numpy ``uint64``), so one XOR advances 64 independent
    streams — the software analogue of the paper's "wide and flat"
    PiCoGA datapath.  (Tsaban & Vishne's word-oriented σ-LFSR construction
    proper lives in :mod:`repro.lfsr.wordlfsr`; this backend word-packs the
    *batch* dimension instead of the register.)  Falls back to
    :class:`PackedIntBackend` when numpy is unavailable.
``"packed-int"``
    The stdlib fallback made explicit: batch rows as arbitrary-width
    Python ints, XOR still word-parallel, no third-party dependencies.

Every backend implements the same five kernels — ``matvec``, ``matmul``,
``matpow``, and the batched ``pack``/``matvec_batch``/``unpack`` block
application — and all are bit-exact by construction (enforced by the
``gf2:reference-vs-packed`` fuzz oracle in :mod:`repro.verify.oracles`
and the parity suite in ``tests/test_gf2_backend.py``).

Selection order: an explicit ``backend=`` argument anywhere in the stack,
else the ``REPRO_GF2_BACKEND`` environment variable, else the process
default (``"packed"``).  See ``docs/ARCHITECTURE.md`` for where the
backends plug into the engine layers.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ValidationError
from repro.gf2.bits import parity
from repro.telemetry import bind_families, default_registry

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV = "REPRO_GF2_BACKEND"

#: Bits per packed machine word in the numpy backend.
WORD_BITS = 64

# Bound lazily (see repro.telemetry.bind_families) so swapping the
# default registry after import is observed — and so worker processes
# that receive a fresh registry publish into it, not a stale snapshot.
_METRICS = bind_families(lambda reg: {
    "ops": reg.counter(
        "gf2_backend_ops_total",
        "GF(2) kernel invocations by backend and operation",
        labels=("backend", "op"),
    ),
    "batch_bits": reg.histogram(
        "gf2_backend_matvec_batch_bits",
        "Bits moved per batched GF(2) block application (rows x batch)",
        labels=("backend",),
        buckets=(64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 1 << 22),
    ),
})


def _n_words(batch: int) -> int:
    """Packed words needed for a batch of the given width."""
    return (batch + WORD_BITS - 1) // WORD_BITS


def _as_matrix(matrix) -> np.ndarray:
    """Coerce a matrix argument (array / nested sequence) to 2-D uint8."""
    a = np.asarray(matrix, dtype=np.uint8)
    if a.ndim != 2:
        raise ValidationError(f"expected a 2-D GF(2) matrix, got shape {a.shape}")
    return a


def _as_vector(vec, length: int) -> np.ndarray:
    """Coerce a vector argument to 1-D uint8 of the required length."""
    v = np.asarray(vec, dtype=np.uint8)
    if v.ndim != 1 or v.size != length:
        raise ValidationError(f"expected a length-{length} GF(2) vector, got shape {v.shape}")
    return v


def _rows_as_ints(matrix: np.ndarray) -> List[int]:
    """Matrix rows packed into Python ints (bit j = column j)."""
    packed = np.packbits(matrix, axis=1, bitorder="little")
    return [int.from_bytes(row.tobytes(), "little") for row in packed]


def _ints_to_bits(rows: Sequence[int], width: int) -> np.ndarray:
    """Inverse of :func:`_rows_as_ints` — ``(len(rows), width)`` uint8."""
    nbytes = (width + 7) // 8
    raw = b"".join(int(r).to_bytes(nbytes, "little") for r in rows)
    as_bytes = np.frombuffer(raw, dtype=np.uint8).reshape(len(rows), nbytes)
    return np.unpackbits(as_bytes, axis=1, count=width, bitorder="little")


class GF2Backend:
    """Abstract GF(2) kernel set; concrete backends override the kernels.

    Matrices and vectors cross the API as 0/1 ``uint8`` numpy arrays (or
    nested sequences); the *batched* representation returned by
    :meth:`pack` is backend-private — callers may only slice it by row,
    pass it back to :meth:`matvec_batch`/:meth:`concat`, or decode it
    with :meth:`unpack`.
    """

    #: Registry name of the backend (set per instance).
    name: str = "abstract"

    # -- dense single-operand kernels ----------------------------------
    def matvec(self, matrix, vec) -> np.ndarray:
        """``y = A @ x`` over GF(2); returns a 1-D uint8 array."""
        raise NotImplementedError

    def matmul(self, a, b) -> np.ndarray:
        """``C = A @ B`` over GF(2); returns a 2-D uint8 array."""
        raise NotImplementedError

    def matpow(self, matrix, exponent: int) -> np.ndarray:
        """``A ** e`` by square-and-multiply (e >= 0) over GF(2)."""
        a = _as_matrix(matrix)
        if a.shape[0] != a.shape[1]:
            raise ValidationError("matrix power requires a square matrix")
        if exponent < 0:
            raise ValidationError("backend matpow requires a non-negative exponent")
        self._observe("matpow")
        result = np.eye(a.shape[0], dtype=np.uint8)
        base = a
        e = exponent
        while e:
            if e & 1:
                result = self.matmul(result, base)
            base = self.matmul(base, base)
            e >>= 1
        return result

    # -- batched (B-stream) kernels ------------------------------------
    def pack(self, bits):
        """Encode a ``(n, B)`` 0/1 bit matrix into the batch representation."""
        raise NotImplementedError

    def unpack(self, packed, batch: int) -> np.ndarray:
        """Decode :meth:`pack` output back to a ``(n, batch)`` uint8 array."""
        raise NotImplementedError

    def concat(self, parts: Sequence):
        """Row-wise concatenation of packed batches (same batch width)."""
        raise NotImplementedError

    def from_rows(self, rows: Sequence):
        """Reassemble a packed batch from individual packed rows."""
        raise NotImplementedError

    def matvec_batch(self, matrix, packed):
        """Apply an ``(r, c)`` matrix to all B packed column vectors at once.

        ``packed`` holds c packed rows; the result holds r packed rows —
        row i is the XOR of the input rows selected by matrix row i.
        """
        raise NotImplementedError

    # -- telemetry ------------------------------------------------------
    def _observe(self, op: str, batch_bits: Optional[int] = None) -> None:
        """Publish one kernel invocation (no-op while telemetry is off)."""
        if not default_registry().enabled:
            return
        metrics = _METRICS()
        metrics["ops"].labels(backend=self.name, op=op).inc()
        if batch_bits is not None:
            metrics["batch_bits"].labels(backend=self.name).observe(batch_bits)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ReferenceBackend(GF2Backend):
    """The pure-Python bit loop: rows as ints, one parity per output bit.

    The batch representation is the unpacked ``(n, B)`` uint8 array
    itself; :meth:`matvec_batch` walks every stream with Python-int
    AND/parity operations — O(r·B) interpreter steps per block, which is
    exactly the per-bit cost profile the word-packed backends remove.
    """

    name = "reference"

    def matvec(self, matrix, vec) -> np.ndarray:
        """One AND + parity per output bit, rows as Python ints."""
        a = _as_matrix(matrix)
        x = _as_vector(vec, a.shape[1])
        self._observe("matvec")
        xi = int.from_bytes(np.packbits(x, bitorder="little").tobytes(), "little")
        return np.array(
            [parity(r & xi) for r in _rows_as_ints(a)], dtype=np.uint8
        )

    def matmul(self, a, b) -> np.ndarray:
        """Accumulate the rows of ``b`` selected by each row of ``a``."""
        am = _as_matrix(a)
        bm = _as_matrix(b)
        if am.shape[1] != bm.shape[0]:
            raise ValidationError(f"inner dimension mismatch: {am.shape} @ {bm.shape}")
        self._observe("matmul")
        brows = _rows_as_ints(bm)
        out_rows = []
        for i in range(am.shape[0]):
            acc = 0
            for j in range(am.shape[1]):
                if am[i, j]:
                    acc ^= brows[j]
            out_rows.append(acc)
        return _ints_to_bits(out_rows, bm.shape[1])

    def pack(self, bits):
        """Identity packing: a defensive copy of the bit matrix."""
        a = np.ascontiguousarray(bits, dtype=np.uint8)
        if a.ndim != 2:
            raise ValidationError(f"expected a 2-D (n_bits, batch) array, got shape {a.shape}")
        return a.copy()

    def unpack(self, packed, batch: int) -> np.ndarray:
        """Return the bit matrix truncated to ``batch`` columns."""
        return np.ascontiguousarray(packed, dtype=np.uint8)[:, :batch]

    def concat(self, parts: Sequence):
        """Stack bit-row blocks vertically."""
        return np.vstack(list(parts))

    def from_rows(self, rows: Sequence):
        """Stack individual bit rows back into a matrix."""
        return np.vstack([np.atleast_2d(r) for r in rows])

    def matvec_batch(self, matrix, packed):
        """Per-stream Python bit loop (the cost baseline)."""
        a = _as_matrix(matrix)
        p = np.asarray(packed, dtype=np.uint8)
        if a.shape[1] != p.shape[0]:
            raise ValidationError(f"shape mismatch: {a.shape} @ packed {p.shape}")
        batch = p.shape[1]
        self._observe("matvec_batch", batch_bits=a.shape[0] * batch)
        row_ints = _rows_as_ints(a)
        out = np.zeros((a.shape[0], batch), dtype=np.uint8)
        columns = p.T.tolist()
        for b, column in enumerate(columns):
            x = 0
            for j, bit in enumerate(column):
                if bit:
                    x |= 1 << j
            for i, row in enumerate(row_ints):
                out[i, b] = parity(row & x)
        return out


class PackedIntBackend(GF2Backend):
    """Stdlib word-packing: each batch row is one arbitrary-width int.

    Bit b of row j belongs to stream b, so a block application is a
    handful of big-int XORs — word-parallel across the whole batch with
    no dependencies beyond the standard library.  Serves as the
    ``"packed"`` implementation when numpy is missing.
    """

    def __init__(self, alias: str = "packed-int"):
        self.name = alias

    def matvec(self, matrix, vec) -> np.ndarray:
        """One AND + parity per output bit, rows as Python ints."""
        a = _as_matrix(matrix)
        x = _as_vector(vec, a.shape[1])
        self._observe("matvec")
        xi = int.from_bytes(np.packbits(x, bitorder="little").tobytes(), "little")
        return np.array([parity(r & xi) for r in _rows_as_ints(a)], dtype=np.uint8)

    def matmul(self, a, b) -> np.ndarray:
        """``A @ B`` via :meth:`matvec_batch` on ``B``'s packed rows."""
        am = _as_matrix(a)
        bm = _as_matrix(b)
        if am.shape[1] != bm.shape[0]:
            raise ValidationError(f"inner dimension mismatch: {am.shape} @ {bm.shape}")
        self._observe("matmul")
        out = self.matvec_batch(am, _rows_as_ints(bm))
        return self.unpack(out, bm.shape[1])

    def pack(self, bits) -> List[int]:
        """One arbitrary-width int per row (bit ``b`` = stream ``b``)."""
        a = np.ascontiguousarray(bits, dtype=np.uint8)
        if a.ndim != 2:
            raise ValidationError(f"expected a 2-D (n_bits, batch) array, got shape {a.shape}")
        return _rows_as_ints(a) if a.shape[0] else []

    def unpack(self, packed, batch: int) -> np.ndarray:
        """Expand the row ints back to a ``(n, batch)`` bit matrix."""
        rows = list(packed)
        if not rows:
            return np.zeros((0, batch), dtype=np.uint8)
        return _ints_to_bits(rows, batch)

    def concat(self, parts: Sequence) -> List[int]:
        """Concatenate the packed row lists."""
        out: List[int] = []
        for part in parts:
            out.extend(part)
        return out

    def from_rows(self, rows: Sequence) -> List[int]:
        """Collect single packed rows (ints) into one batch."""
        return [int(r) for r in rows]

    def matvec_batch(self, matrix, packed) -> List[int]:
        """XOR together the row ints selected by each matrix row."""
        a = _as_matrix(matrix)
        rows = list(packed)
        if a.shape[1] != len(rows):
            raise ValidationError(
                f"shape mismatch: {a.shape} @ packed of {len(rows)} rows"
            )
        self._observe("matvec_batch", batch_bits=a.shape[0] * max(
            (int(r).bit_length() for r in rows), default=0
        ))
        out: List[int] = []
        for i in range(a.shape[0]):
            acc = 0
            for j in range(a.shape[1]):
                if a[i, j]:
                    acc ^= rows[j]
            out.append(acc)
        return out


class NumpyPackedBackend(GF2Backend):
    """numpy ``uint64`` bit-slicing — the production word-packed backend.

    The batch occupies ``ceil(B/64)`` words per row; a block application
    is one vectorized select-and-XOR-reduce (`matvec_batch`), so a
    single numpy call advances all B streams M bits.  ``matmul`` reuses
    the same kernel with the right operand's rows as the "batch".
    """

    name = "packed"

    def matvec(self, matrix, vec) -> np.ndarray:
        """GF(2) matvec as an integer matmul reduced mod 2."""
        a = _as_matrix(matrix)
        x = _as_vector(vec, a.shape[1])
        self._observe("matvec")
        return ((a.astype(np.int64) @ x.astype(np.int64)) & 1).astype(np.uint8)

    def matmul(self, a, b) -> np.ndarray:
        """``A @ B`` via :meth:`matvec_batch` with ``B`` packed as the batch."""
        am = _as_matrix(a)
        bm = _as_matrix(b)
        if am.shape[1] != bm.shape[0]:
            raise ValidationError(f"inner dimension mismatch: {am.shape} @ {bm.shape}")
        self._observe("matmul")
        return self.unpack(self.matvec_batch(am, self.pack(bm)), bm.shape[1])

    def pack(self, bits) -> np.ndarray:
        """``np.packbits`` each row into little-endian ``uint64`` words."""
        a = np.ascontiguousarray(bits, dtype=np.uint8)
        if a.ndim != 2:
            raise ValidationError(f"expected a 2-D (n_bits, batch) array, got shape {a.shape}")
        n, batch = a.shape
        words = _n_words(batch)
        packed8 = np.packbits(a, axis=1, bitorder="little")
        padded = np.zeros((n, words * 8), dtype=np.uint8)
        padded[:, : packed8.shape[1]] = packed8
        return padded.view("<u8")

    def unpack(self, packed, batch: int) -> np.ndarray:
        """``np.unpackbits`` the word view back to ``batch`` bit columns."""
        p = np.ascontiguousarray(packed, dtype="<u8")
        if p.ndim != 2:
            raise ValidationError(f"expected a 2-D (n_bits, words) array, got shape {p.shape}")
        as_bytes = p.view(np.uint8)
        return np.unpackbits(as_bytes, axis=1, count=batch, bitorder="little")

    def concat(self, parts: Sequence) -> np.ndarray:
        """Stack packed word blocks vertically."""
        return np.vstack(list(parts))

    def from_rows(self, rows: Sequence) -> np.ndarray:
        """Stack single packed word rows into one batch."""
        return np.vstack([np.atleast_2d(r) for r in rows])

    def matvec_batch(self, matrix, packed) -> np.ndarray:
        """Vectorized select-and-XOR-reduce over the word array."""
        mask = np.ascontiguousarray(matrix, dtype=bool)
        p = np.asarray(packed)
        if mask.ndim != 2 or p.ndim != 2 or mask.shape[1] != p.shape[0]:
            raise ValidationError(f"shape mismatch: matrix {mask.shape} @ packed {p.shape}")
        self._observe("matvec_batch", batch_bits=mask.shape[0] * p.shape[1] * WORD_BITS)
        selected = np.where(mask[:, :, None], p[None, :, :], np.uint64(0))
        return np.bitwise_xor.reduce(selected, axis=1)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def _make_packed() -> GF2Backend:
    """``"packed"`` resolves to numpy bit-slicing, or the int fallback."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy ships with this repo
        return PackedIntBackend(alias="packed")
    return NumpyPackedBackend()


_FACTORIES: Dict[str, Callable[[], GF2Backend]] = {
    "reference": ReferenceBackend,
    "packed": _make_packed,
    "packed-int": PackedIntBackend,
}
_INSTANCES: Dict[str, GF2Backend] = {}
_DEFAULT_NAME = "packed"


def register_backend(
    name: str, factory: Callable[[], GF2Backend], replace: bool = False
) -> None:
    """Register a backend factory under ``name``.

    Refuses to shadow an existing registration unless ``replace`` is set,
    so test doubles can't silently leak into production selection.
    """
    if name in _FACTORIES and not replace:
        raise ValidationError(f"backend {name!r} is already registered")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_FACTORIES))


def set_default_backend(name: str) -> None:
    """Set the process-wide default used when nothing else selects one."""
    global _DEFAULT_NAME
    if name not in _FACTORIES:
        raise ValidationError(
            f"unknown GF(2) backend {name!r}; available: {', '.join(available_backends())}"
        )
    _DEFAULT_NAME = name


def default_backend_name() -> str:
    """The effective default: ``$REPRO_GF2_BACKEND`` else the process default."""
    return os.environ.get(BACKEND_ENV) or _DEFAULT_NAME


def get_backend(name: Optional[str] = None) -> GF2Backend:
    """Resolve a backend by name (``None`` follows the selection order).

    Instances are memoized per name, so engines constructed with the same
    selection share one (stateless) backend object.
    """
    resolved = name or default_backend_name()
    if resolved not in _FACTORIES:
        raise ValidationError(
            f"unknown GF(2) backend {resolved!r}; available: {', '.join(available_backends())}"
        )
    instance = _INSTANCES.get(resolved)
    if instance is None:
        instance = _INSTANCES[resolved] = _FACTORIES[resolved]()
    return instance


def resolve_backend(backend: Union[None, str, GF2Backend]) -> GF2Backend:
    """Accept ``None`` / a registry name / a backend instance uniformly."""
    if isinstance(backend, GF2Backend):
        return backend
    return get_backend(backend)
