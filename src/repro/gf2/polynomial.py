"""Polynomials over GF(2) as first-class objects.

:class:`GF2Polynomial` wraps a coefficient int (bit *i* = coefficient of
``x**i``) with polynomial operations, irreducibility and primitivity tests
and the multiplicative order computation used to reason about LFSR period.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.gf2.clmul import (
    cldeg,
    cldivmod,
    clgcd,
    clmod,
    clmul,
    clpowmod,
)


def _factorize(n: int) -> List[int]:
    """Distinct prime factors of a positive integer (trial division)."""
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.append(n)
    return factors


class GF2Polynomial:
    """An immutable polynomial over GF(2)."""

    __slots__ = ("_coeffs",)

    def __init__(self, coeffs: int):
        if coeffs < 0:
            raise ValueError("coefficient int must be non-negative")
        self._coeffs = coeffs

    # ------------------------------------------------------------------
    @classmethod
    def from_exponents(cls, exponents: Sequence[int]) -> "GF2Polynomial":
        """Build from a tap list, e.g. ``[32, 26, 23, ..., 0]`` for CRC-32."""
        value = 0
        for e in exponents:
            if e < 0:
                raise ValueError("exponents must be non-negative")
            value ^= 1 << e
        return cls(value)

    @classmethod
    def x(cls) -> "GF2Polynomial":
        """The monomial ``x``."""
        return cls(2)

    @classmethod
    def one(cls) -> "GF2Polynomial":
        """The constant polynomial 1."""
        return cls(1)

    @classmethod
    def zero(cls) -> "GF2Polynomial":
        """The zero polynomial."""
        return cls(0)

    # ------------------------------------------------------------------
    @property
    def coeffs(self) -> int:
        """Coefficient bit-mask (bit ``i`` = coefficient of ``x**i``)."""
        return self._coeffs

    @property
    def degree(self) -> int:
        """Degree of the highest set coefficient (-1 for zero)."""
        return cldeg(self._coeffs)

    def coefficient(self, i: int) -> int:
        """Coefficient of ``x**i`` (0 or 1)."""
        return (self._coeffs >> i) & 1

    def exponents(self) -> List[int]:
        """Exponents with non-zero coefficients, descending."""
        return [i for i in range(self.degree, -1, -1) if self.coefficient(i)]

    def is_zero(self) -> bool:
        """True for the zero polynomial."""
        return self._coeffs == 0

    def __iter__(self) -> Iterator[int]:
        """Iterate coefficients LSB-first up to the degree."""
        for i in range(self.degree + 1):
            yield self.coefficient(i)

    def __eq__(self, other) -> bool:
        if isinstance(other, GF2Polynomial):
            return self._coeffs == other._coeffs
        if isinstance(other, int):
            return self._coeffs == other
        return NotImplemented

    def __hash__(self):
        return hash(("GF2Polynomial", self._coeffs))

    def __repr__(self) -> str:
        return f"GF2Polynomial({self._coeffs:#x})"

    def __str__(self) -> str:
        if self.is_zero():
            return "0"
        terms = []
        for e in self.exponents():
            if e == 0:
                terms.append("1")
            elif e == 1:
                terms.append("x")
            else:
                terms.append(f"x^{e}")
        return " + ".join(terms)

    # ------------------------------------------------------------------
    def __add__(self, other: "GF2Polynomial") -> "GF2Polynomial":
        return GF2Polynomial(self._coeffs ^ other._coeffs)

    __sub__ = __add__

    def __mul__(self, other: "GF2Polynomial") -> "GF2Polynomial":
        return GF2Polynomial(clmul(self._coeffs, other._coeffs))

    def __mod__(self, other: "GF2Polynomial") -> "GF2Polynomial":
        return GF2Polynomial(clmod(self._coeffs, other._coeffs))

    def __floordiv__(self, other: "GF2Polynomial") -> "GF2Polynomial":
        return GF2Polynomial(cldivmod(self._coeffs, other._coeffs)[0])

    def divmod(self, other: "GF2Polynomial"):
        """``(quotient, remainder)`` of carry-less division."""
        q, r = cldivmod(self._coeffs, other._coeffs)
        return GF2Polynomial(q), GF2Polynomial(r)

    def gcd(self, other: "GF2Polynomial") -> "GF2Polynomial":
        """Greatest common divisor over GF(2)."""
        return GF2Polynomial(clgcd(self._coeffs, other._coeffs))

    def pow_mod(self, exponent: int, modulus: "GF2Polynomial") -> "GF2Polynomial":
        """``self**exponent mod modulus`` by square-and-multiply."""
        return GF2Polynomial(clpowmod(self._coeffs, exponent, modulus._coeffs))

    def evaluate(self, point: int) -> int:
        """Evaluate at a GF(2) point (0 or 1)."""
        if point == 0:
            return self.coefficient(0)
        if point == 1:
            return bin(self._coeffs).count("1") & 1
        raise ValueError("GF(2) points are 0 or 1")

    # ------------------------------------------------------------------
    def is_irreducible(self) -> bool:
        """Rabin's irreducibility test over GF(2)."""
        n = self.degree
        if n <= 0:
            return False
        if n == 1:
            return True
        if not self.coefficient(0):
            return False  # divisible by x
        x = 2
        # x^(2^n) == x (mod f) ...
        t = x
        for _ in range(n):
            t = clpowmod(t, 2, self._coeffs)
        if t != clmod(x, self._coeffs):
            return False
        # ... and gcd(x^(2^(n/p)) - x, f) == 1 for every prime p | n.
        for p in _factorize(n):
            t = x
            for _ in range(n // p):
                t = clpowmod(t, 2, self._coeffs)
            if clgcd(t ^ clmod(x, self._coeffs), self._coeffs) != 1:
                return False
        return True

    def order(self) -> int:
        """Multiplicative order of x modulo this polynomial.

        Requires gcd(x, f) == 1 (i.e. a non-zero constant term).  For a
        primitive degree-k polynomial the order is ``2**k - 1`` — the
        maximal LFSR period.
        """
        if self.degree < 1:
            raise ValueError("order requires degree >= 1")
        if not self.coefficient(0):
            raise ValueError("x divides the polynomial; order undefined")
        if not self.is_irreducible():
            # Fall back to brute search bounded by lcm structure: walk
            # powers until we return to 1.  Fine for the small degrees
            # used in tests; irreducible polynomials take the fast path.
            t = clmod(2, self._coeffs)
            e = 1
            acc = t
            limit = 1 << (2 * self.degree)
            while acc != 1:
                acc = clmod(clmul(acc, 2), self._coeffs)
                e += 1
                if e > limit:
                    raise ArithmeticError("order search exceeded bound")
            return e
        group = (1 << self.degree) - 1
        order = group
        for p in _factorize(group):
            while order % p == 0 and clpowmod(2, order // p, self._coeffs) == 1:
                order //= p
        return order

    def is_primitive(self) -> bool:
        """True when x generates the full multiplicative group GF(2^k)*."""
        if not self.is_irreducible():
            return False
        return self.order() == (1 << self.degree) - 1

    def reciprocal(self) -> "GF2Polynomial":
        """The reciprocal (bit-reversed) polynomial ``x^deg * f(1/x)``."""
        n = self.degree
        value = 0
        for i in range(n + 1):
            if self.coefficient(i):
                value |= 1 << (n - i)
        return GF2Polynomial(value)
