"""Bit-serial reference CRC engine.

This is the ground truth every other engine is validated against: the
classic MSB-first shift-register loop, one message bit per iteration —
exactly one application of the paper's companion-matrix recurrence
``x(n+1) = A x(n) + b u(n)`` per bit.
"""

from __future__ import annotations

from typing import Iterable

from repro.crc.spec import CRCSpec


class BitwiseCRC:
    """Serial CRC computation straight from the spec definition."""

    def __init__(self, spec: CRCSpec):
        self._spec = spec

    @property
    def spec(self) -> CRCSpec:
        """The :class:`CRCSpec` this engine realizes."""
        return self._spec

    # ------------------------------------------------------------------
    def process_bit(self, register: int, bit: int) -> int:
        """One serial clock of the direct (non-augmented) CRC circuit."""
        spec = self._spec
        feedback = ((register >> (spec.width - 1)) & 1) ^ (bit & 1)
        register = (register << 1) & spec.mask
        if feedback:
            register ^= spec.poly
        return register

    def process_bits(self, register: int, bits: Iterable[int]) -> int:
        """Fold an iterable of message bits into ``register``."""
        for bit in bits:
            register = self.process_bit(register, bit)
        return register

    def raw_register(self, data: bytes, register: int = None) -> int:
        """Register contents after clocking ``data`` (no finalization)."""
        reg = self._spec.init if register is None else register
        return self.process_bits(reg, self._spec.message_bits(data))

    # ------------------------------------------------------------------
    def compute(self, data: bytes) -> int:
        """The published CRC value of ``data``."""
        return self._spec.finalize(self.raw_register(data))

    def verify(self, data: bytes, crc: int) -> bool:
        """True iff ``crc`` is the published CRC of ``data``."""
        return self.compute(data) == crc

    def compute_bits(self, bits: Iterable[int]) -> int:
        """CRC of a raw bit stream (already in transmission order)."""
        from repro.validation import check_bits

        checked = check_bits(list(bits), what="bits")
        return self._spec.finalize(self.process_bits(self._spec.init, checked.tolist()))
