"""Error-detection analysis of CRC generators.

Why protocols pick the generators they do (the diversity the paper's §1
catalogs): burst coverage, minimum distance, undetected-error behaviour.
Exact exhaustive analyses for small parameter ranges — used by the tests
to certify the guarantees the library's docstrings claim, and available to
users evaluating a polynomial for a new protocol.

All analyses work on the *raw* linear code (init = 0, xorout = 0): an
error pattern ``e`` is undetected iff the raw CRC of ``e`` is zero, so
presets never change detectability.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional

from repro.gf2.clmul import clmod
from repro.crc.spec import CRCSpec


def _raw_crc_of_pattern(spec: CRCSpec, pattern: int) -> int:
    """Raw CRC of an error polynomial: ``pattern * x^W mod G``."""
    return clmod(pattern << spec.width, spec.generator().coeffs)


def detects_error_pattern(spec: CRCSpec, pattern: int) -> bool:
    """True iff the generator catches the given error polynomial."""
    if pattern == 0:
        raise ValueError("the zero pattern is not an error")
    return _raw_crc_of_pattern(spec, pattern) != 0


def detects_all_burst_errors(spec: CRCSpec, burst_length: int, message_bits: int) -> bool:
    """Exhaustively confirm detection of every burst up to ``burst_length``.

    A burst of length L is a pattern whose set bits span exactly L
    positions (first and last set).  Any generator of degree >= L with a
    non-zero constant term detects all bursts of length <= L; this routine
    proves it by enumeration (use small sizes)."""
    if burst_length < 1 or message_bits < burst_length:
        raise ValueError("need 1 <= burst_length <= message_bits")
    for length in range(1, burst_length + 1):
        if length == 1:
            interiors = [0]
        else:
            interiors = range(1 << (length - 2)) if length >= 2 else [0]
        for interior in interiors:
            if length == 1:
                base = 1
            else:
                base = (1 << (length - 1)) | (interior << 1) | 1
            for shift in range(message_bits - length + 1):
                if not detects_error_pattern(spec, base << shift):
                    return False
    return True


@dataclass(frozen=True)
class DistanceReport:
    """Minimum-distance scan result over a block length."""

    message_bits: int
    codeword_bits: int
    min_weight_undetected: Optional[int]
    checked_up_to_weight: int

    @property
    def hamming_distance(self) -> Optional[int]:
        """The code's minimum distance, if found within the scanned range."""
        return self.min_weight_undetected


def minimum_distance(spec: CRCSpec, message_bits: int, max_weight: int = 6) -> DistanceReport:
    """Smallest error weight the code fails to detect, over codewords of
    ``message_bits + width`` bits, scanning weights up to ``max_weight``.

    Exhaustive — keep ``message_bits`` modest (tens of bits) for the
    higher weights.
    """
    n = message_bits + spec.width
    for weight in range(1, max_weight + 1):
        for positions in combinations(range(n), weight):
            pattern = 0
            for p in positions:
                pattern |= 1 << p
            # Undetected iff G divides the error polynomial itself.
            if clmod(pattern, spec.generator().coeffs) == 0:
                return DistanceReport(
                    message_bits=message_bits,
                    codeword_bits=n,
                    min_weight_undetected=weight,
                    checked_up_to_weight=weight,
                )
    return DistanceReport(
        message_bits=message_bits,
        codeword_bits=n,
        min_weight_undetected=None,
        checked_up_to_weight=max_weight,
    )


def undetected_fraction_exhaustive(spec: CRCSpec, message_bits: int) -> float:
    """Exact fraction of non-zero error patterns that slip through.

    For a width-W CRC over N-bit patterns this is ``(2^(N-W) - 1)/(2^N - 1)``
    when N > W (the syndrome map is balanced); computed by enumeration here
    to certify the implementation.  Exponential — keep N <= 16.
    """
    if message_bits > 16:
        raise ValueError("exhaustive enumeration limited to 16 bits")
    total = (1 << message_bits) - 1
    undetected = sum(
        1
        for pattern in range(1, 1 << message_bits)
        if _raw_crc_of_pattern(spec, pattern) == 0
    )
    return undetected / total if total else 0.0


@dataclass(frozen=True)
class GeneratorReport:
    """Structural characterization of one CRC generator polynomial."""

    name: str
    width: int
    irreducible: bool
    primitive: bool
    has_parity_factor: bool  # divisible by (x + 1) -> all odd-weight errors caught
    factor_degrees: List[int]
    period: int

    @property
    def detects_all_odd_weight_errors(self) -> bool:
        """True iff (x+1) divides the generator (parity factor present)."""
        return self.has_parity_factor

    @property
    def max_codeword_span(self) -> int:
        """Block length (bits) within which no 2-bit error goes undetected:
        the order of x modulo the generator."""
        return self.period


def generator_report(spec: CRCSpec) -> GeneratorReport:
    """Why this generator: factor structure, parity, period.

    Examples: CRC-32's generator is primitive (period 2^32 - 1 — 2-bit
    error coverage over any realistic frame); CRC-16/ARC trades that for an
    (x + 1) factor (all odd-weight errors caught, shorter guaranteed span).
    """
    from repro.gf2.factor import factorize, polynomial_order

    g = spec.generator()
    factors = factorize(g)
    irreducible = len(factors) == 1 and next(iter(factors.values())) == 1
    return GeneratorReport(
        name=spec.name,
        width=spec.width,
        irreducible=irreducible,
        primitive=irreducible and g.is_primitive(),
        has_parity_factor=g.evaluate(1) == 0,
        factor_degrees=sorted(
            f.degree for f, m in factors.items() for _ in range(m)
        ),
        period=polynomial_order(g) if g.coefficient(0) else 0,
    )


def weight_spectrum(spec: CRCSpec, message_bits: int) -> Dict[int, int]:
    """Histogram of popcount(raw CRC) over all single-bit error positions —
    a quick diffusion picture of the generator."""
    spectrum: Dict[int, int] = {}
    for pos in range(message_bits):
        crc = _raw_crc_of_pattern(spec, 1 << pos)
        w = bin(crc).count("1")
        spectrum[w] = spectrum.get(w, 0) + 1
    return spectrum
