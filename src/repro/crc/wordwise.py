"""Table-less word-parallel software CRC (Albertengo–Sisto style, [8]).

The paper's software baseline applies look-ahead to the serial circuit in
*software*: the w-bit block update ``reg' = A^w reg + B_w u`` is evaluated
directly as mask/parity operations — for each output bit, AND the register
and the input word against precomputed masks and take the parity.  No
lookup tables, just registers and logical instructions, which is why [8]
suited the memory-constrained embedded processors of its day.

This engine materializes exactly those masks from the library's look-ahead
matrices, so it doubles as an independent check that the matrix machinery
and the spec conventions agree (it shares no code path with the Sarwate
table engine).
"""

from __future__ import annotations

from typing import List, Optional

from repro.crc.bitwise import BitwiseCRC
from repro.crc.spec import CRCSpec
from repro.lfsr.lookahead import expand_lookahead
from repro.lfsr.statespace import crc_statespace


class WordwiseCRC:
    """Mask/parity software CRC processing ``word_bits`` per step."""

    def __init__(self, spec: CRCSpec, word_bits: int = 32):
        if word_bits < 1:
            raise ValueError("word size must be >= 1")
        self._spec = spec
        self._w = word_bits
        self._serial = BitwiseCRC(spec)
        system = expand_lookahead(crc_statespace(spec.generator()), word_bits)
        # Row i of [A^w | B_w] -> (state mask, input mask).  Input masks are
        # expressed over the stream-order word (bit j = j-th message bit of
        # the block), so reverse the paper's latest-first columns.
        a = system.A_M.to_array()
        b = system.B_M.to_array()[:, ::-1]
        self._state_masks: List[int] = [
            int(sum(int(v) << j for j, v in enumerate(row))) for row in a
        ]
        self._input_masks: List[int] = [
            int(sum(int(v) << j for j, v in enumerate(row))) for row in b
        ]

    @property
    def spec(self) -> CRCSpec:
        """The :class:`CRCSpec` this engine realizes."""
        return self._spec

    @property
    def word_bits(self) -> int:
        """Bits folded per block step."""
        return self._w

    # ------------------------------------------------------------------
    @staticmethod
    def _parity(value: int) -> int:
        return bin(value).count("1") & 1

    def _step_word(self, register: int, word: int) -> int:
        """One block update via mask/parity — the [8] inner loop."""
        out = 0
        for i, (sm, im) in enumerate(zip(self._state_masks, self._input_masks)):
            bit = self._parity(register & sm) ^ self._parity(word & im)
            out |= bit << i
        return out

    def raw_register(self, data: bytes, register: Optional[int] = None) -> int:
        """Register contents after clocking ``data`` (no finalization)."""
        spec = self._spec
        bits = spec.message_bits(data)
        reg = spec.init if register is None else register
        full = len(bits) - (len(bits) % self._w)
        for off in range(0, full, self._w):
            word = 0
            for j in range(self._w):
                word |= (bits[off + j] & 1) << j
            reg = self._step_word(reg, word)
        return self._serial.process_bits(reg, bits[full:])

    def compute(self, data: bytes) -> int:
        """The published CRC value of ``data``."""
        return self._spec.finalize(self.raw_register(data))

    def verify(self, data: bytes, crc: int) -> bool:
        """True iff ``crc`` is the published CRC of ``data``."""
        return self.compute(data) == crc
