"""Interleaved CRC over multiple concurrent messages (paper [13], Fig. 5).

Kong & Parhi's observation: a deeply pipelined CRC datapath is only fully
utilized when independent work fills every pipeline slot.  Interleaving W
messages round-robin lets a block-parallel engine hide per-message overheads
(and, on DREAM, the configuration switch for the anti-transformation),
which is how the paper's Fig. 5 curves beat the single-message Fig. 4
curves at short message lengths.

:class:`InterleavedCRC` is the functional counterpart used by the DREAM
timing model: it advances W independent register states chunk by chunk,
one message per "slot", and produces exactly the same per-message CRCs as
processing each message alone.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.crc.parallel import DerbyCRC
from repro.crc.spec import CRCSpec


class InterleavedCRC:
    """Round-robin interleaving of W messages through one Derby engine."""

    def __init__(self, spec: CRCSpec, M: int, ways: int = 32):
        if ways < 1:
            raise ValueError("interleave ways must be >= 1")
        self._engine = DerbyCRC(spec, M)
        self._ways = ways

    @property
    def spec(self) -> CRCSpec:
        """The :class:`CRCSpec` this engine realizes."""
        return self._engine.spec

    @property
    def M(self) -> int:
        """Look-ahead block factor of the underlying Derby engine."""
        return self._engine.M

    @property
    def ways(self) -> int:
        """Interleaving depth (messages per round-robin pass)."""
        return self._ways

    @property
    def engine(self) -> DerbyCRC:
        """The shared :class:`DerbyCRC` engine."""
        return self._engine

    # ------------------------------------------------------------------
    def compute_batch(self, messages: Sequence[bytes]) -> List[int]:
        """CRCs of up to ``ways`` messages, processed slot-interleaved.

        The schedule mirrors the hardware: at each round every live message
        contributes its next M-bit chunk to the pipeline; messages whose
        bits run out (or whose tails are shorter than M) are finished
        serially, exactly like the single-message engine.
        """
        if len(messages) > self._ways:
            raise ValueError(f"at most {self._ways} messages per batch")
        spec = self._engine.spec
        M = self._engine.M
        bit_streams = [spec.message_bits(m) for m in messages]
        full_lens = [len(b) - (len(b) % M) for b in bit_streams]
        states = [self._engine.stream_state(spec.init) for _ in messages]
        offsets = [0] * len(messages)

        live = set(range(len(messages)))
        while live:
            for i in sorted(live):
                if offsets[i] >= full_lens[i]:
                    live.discard(i)
                    continue
                chunk = bit_streams[i][offsets[i] : offsets[i] + M]
                states[i] = self._engine.stream_block(states[i], chunk)
                offsets[i] += M

        results = []
        for i, message in enumerate(messages):
            reg = self._engine.stream_finish(states[i])
            tail = bit_streams[i][full_lens[i] :]
            reg = self._engine._serial.process_bits(reg, tail)
            results.append(spec.finalize(reg))
        return results

    def compute_stream(self, messages: Sequence[bytes]) -> List[int]:
        """Process an arbitrarily long message list in ``ways``-sized batches."""
        results: List[int] = []
        for off in range(0, len(messages), self._ways):
            results.extend(self.compute_batch(messages[off : off + self._ways]))
        return results
