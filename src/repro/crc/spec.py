"""CRC algorithm parameterization (the Rocksoft^tm model).

A :class:`CRCSpec` pins down everything needed to compute a published CRC:
register width, generator polynomial (normal form, implicit ``x^width``
term), initial register value, input/output reflection and the final XOR.
The paper motivates flexibility with the ~25 published standards that differ
exactly in these parameters (§1); :mod:`repro.crc.catalog` collects them.

Every CRC engine in this package consumes a spec through the same two
hooks so they are interchangeable and cross-checkable:

* :meth:`CRCSpec.message_bits` — the serial bit stream actually clocked
  into the LFSR (per-byte reflection applied when ``refin``);
* :meth:`CRCSpec.finalize` — output reflection and final XOR applied to the
  raw register.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SpecError, ValidationError
from repro.gf2.bits import bytes_to_bits, reflect_bits
from repro.gf2.polynomial import GF2Polynomial


@dataclass(frozen=True)
class CRCSpec:
    """Parameters of one CRC standard.

    Attributes
    ----------
    name:
        Conventional algorithm name, e.g. ``"CRC-32"``.
    width:
        Register width k in bits (the generator degree).
    poly:
        Generator in normal form: bit *i* = coefficient of ``x**i`` for
        i < width; the ``x**width`` term is implicit (e.g. ``0x04C11DB7``).
    init:
        Register contents before the first message bit.
    refin / refout:
        Per-byte input reflection and whole-register output reflection.
    xorout:
        Value XORed into the (possibly reflected) register at the end.
    check:
        Expected CRC of the ASCII bytes ``b"123456789"`` — the standard
        cross-implementation test vector (``None`` when unpublished).
    """

    name: str
    width: int
    poly: int
    init: int = 0
    refin: bool = False
    refout: bool = False
    xorout: int = 0
    check: Optional[int] = None

    def __post_init__(self):
        if self.width < 1:
            raise SpecError("width must be >= 1")
        mask = self.mask
        for field_name in ("poly", "init", "xorout"):
            value = getattr(self, field_name)
            if not 0 <= value <= mask:
                raise SpecError(f"{field_name} {value:#x} does not fit in {self.width} bits")
        if self.check is not None and not 0 <= self.check <= mask:
            raise SpecError(f"check {self.check:#x} does not fit in {self.width} bits")

    # ------------------------------------------------------------------
    @property
    def mask(self) -> int:
        """All-ones mask over the register width."""
        return (1 << self.width) - 1

    @property
    def top_bit(self) -> int:
        """Mask of the register MSB (the feedback tap)."""
        return 1 << (self.width - 1)

    def generator(self) -> GF2Polynomial:
        """The full monic generator polynomial (with the x^width term)."""
        return GF2Polynomial((1 << self.width) | self.poly)

    def reflected_poly(self) -> int:
        """The generator in reversed (LSB-first) form, e.g. ``0xEDB88320``."""
        return reflect_bits(self.poly, self.width)

    # ------------------------------------------------------------------
    def message_bits(self, data: bytes) -> List[int]:
        """The serial input bit stream for ``data`` under this spec."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise ValidationError(
                f"message must be bytes-like, got {type(data).__name__}"
            )
        return bytes_to_bits(bytes(data), reflect=self.refin)

    def finalize(self, register: int) -> int:
        """Map the raw register value to the published CRC value."""
        if not 0 <= register <= self.mask:
            raise ValidationError(f"register {register:#x} outside {self.width} bits")
        if self.refout:
            register = reflect_bits(register, self.width)
        return register ^ self.xorout

    def unfinalize(self, crc: int) -> int:
        """Inverse of :meth:`finalize` — recover the raw register value."""
        register = crc ^ self.xorout
        if self.refout:
            register = reflect_bits(register, self.width)
        return register

    # ------------------------------------------------------------------
    def residue(self) -> int:
        """The register value left after verifying ``message + crc``.

        When a receiver clocks a valid codeword (message followed by its
        CRC, with ``xorout`` re-applied on the wire) through the same
        circuit, the register lands on a constant that depends only on the
        spec.  Used by the codeword self-check tests.
        """
        from repro.crc.bitwise import BitwiseCRC  # local import avoids a cycle

        if self.width % 8 != 0 or self.refin != self.refout:
            raise ValueError(
                "residue helper supports byte-multiple widths with refin == refout"
            )
        engine = BitwiseCRC(self)
        message = b"\x01\x02\x03"  # arbitrary — the residue is message-independent
        crc = engine.compute(message)
        order = "little" if self.refout else "big"
        codeword = message + crc.to_bytes(self.width // 8, order)
        return engine.raw_register(codeword)

    def __str__(self) -> str:
        return (
            f"{self.name}: width={self.width} poly={self.poly:#x} init={self.init:#x} "
            f"refin={self.refin} refout={self.refout} xorout={self.xorout:#x}"
        )
