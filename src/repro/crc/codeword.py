"""Codeword construction and verification — CRC as it is used on the wire.

The engines in this package compute checksum values; real protocols
*append* them to the message and receivers either recompute-and-compare or
clock the whole codeword through the circuit and check the residue.  This
module provides both receiver disciplines over any engine, with the
byte-order conventions implied by the spec's reflection flags (reflected
CRCs transmit the check sequence least-significant byte first, as Ethernet
does).
"""

from __future__ import annotations

from typing import Tuple

from repro.crc.bitwise import BitwiseCRC
from repro.crc.spec import CRCSpec


class CodewordCodec:
    """Attach and verify CRC check sequences on byte-multiple specs."""

    def __init__(self, spec: CRCSpec):
        if spec.width % 8:
            raise ValueError("codeword framing needs a byte-multiple CRC width")
        self._spec = spec
        self._engine = BitwiseCRC(spec)
        self._crc_bytes = spec.width // 8

    @property
    def spec(self) -> CRCSpec:
        """The :class:`CRCSpec` this codec realizes."""
        return self._spec

    @property
    def overhead_bytes(self) -> int:
        """CRC trailer length in bytes."""
        return self._crc_bytes

    def crc_to_bytes(self, crc: int) -> bytes:
        """Serialize a CRC value in wire order (LSB-first when reflected)."""
        order = "little" if self._spec.refout else "big"
        return crc.to_bytes(self._crc_bytes, order)

    def crc_from_bytes(self, data: bytes) -> int:
        """Parse a wire-order CRC trailer back into an integer."""
        if len(data) != self._crc_bytes:
            raise ValueError(f"expected {self._crc_bytes} CRC bytes")
        order = "little" if self._spec.refout else "big"
        return int.from_bytes(data, order)

    # ------------------------------------------------------------------
    def encode(self, message: bytes) -> bytes:
        """``message + CRC(message)`` in wire order."""
        return message + self.crc_to_bytes(self._engine.compute(message))

    def decode(self, codeword: bytes) -> Tuple[bytes, bool]:
        """Split a codeword and recompute-and-compare.

        Returns ``(message, ok)``; the message is returned even when the
        check fails so callers can log/inspect it.
        """
        if len(codeword) < self._crc_bytes:
            raise ValueError("codeword shorter than the check sequence")
        message = codeword[: -self._crc_bytes]
        received = self.crc_from_bytes(codeword[-self._crc_bytes :])
        return message, self._engine.compute(message) == received

    def check_residue(self, codeword: bytes) -> bool:
        """Receiver discipline #2: clock the *whole* codeword through the
        circuit and compare the register against the spec's constant
        residue (no splitting needed) — only defined when input and output
        reflection agree."""
        if self._spec.refin != self._spec.refout:
            raise ValueError("residue checking needs refin == refout")
        if len(codeword) < self._crc_bytes:
            return False
        return self._engine.raw_register(codeword) == self._spec.residue()
