"""CRC library: spec catalog plus seven interchangeable engines.

Engines (all consume :class:`CRCSpec` and agree bit-for-bit):

================  ===========================================================
:class:`BitwiseCRC`    serial reference (one companion-matrix step per bit)
:class:`TableCRC`      Sarwate byte table — the paper's "fast software" [8]
:class:`SlicingCRC`    slicing-by-N software CRC (strongest RISC baseline)
:class:`WordwiseCRC`   word-at-a-time carry-less-multiply folding
:class:`GFMACCRC`      chunked Galois-field MAC CRC (Roy / Ji–Killian [9,10])
:class:`LookaheadCRC`  direct M-bit matrix parallel CRC (Pei–Zukowski [6])
:class:`DerbyCRC`      state-space-transformed parallel CRC (Derby [7] — the
                       algorithm the paper maps onto PiCoGA)
:class:`InterleavedCRC`  Kong–Parhi message interleaving [13] over DerbyCRC
================  ===========================================================
"""

from repro.crc.bitwise import BitwiseCRC
from repro.crc.catalog import BY_NAME, CATALOG, ETHERNET_CRC32, MPEG2_CRC32, get
from repro.crc.codeword import CodewordCodec
from repro.crc.gfmac import GFMACCRC, chunk_message_bits
from repro.crc.interleaved import InterleavedCRC
from repro.crc.parallel import DerbyCRC, LookaheadCRC
from repro.crc.properties import GeneratorReport, generator_report
from repro.crc.slicing import SlicingCRC, build_slicing_tables
from repro.crc.spec import CRCSpec
from repro.crc.table import TableCRC, build_table
from repro.crc.wordwise import WordwiseCRC

__all__ = [
    "BY_NAME",
    "BitwiseCRC",
    "CATALOG",
    "CRCSpec",
    "CodewordCodec",
    "DerbyCRC",
    "ETHERNET_CRC32",
    "GFMACCRC",
    "GeneratorReport",
    "generator_report",
    "InterleavedCRC",
    "LookaheadCRC",
    "MPEG2_CRC32",
    "SlicingCRC",
    "TableCRC",
    "WordwiseCRC",
    "build_slicing_tables",
    "build_table",
    "chunk_message_bits",
    "get",
]
