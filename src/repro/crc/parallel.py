"""Matrix-based M-bit-parallel CRC engines (the paper's core algorithm).

Two functionally identical engines:

* :class:`LookaheadCRC` — the direct M-level look-ahead,
  ``x(n+M) = A^M x(n) + B_M u_M(n)`` (Pei–Zukowski style feedback);
* :class:`DerbyCRC` — the same recurrence in Derby's transformed basis,
  where the feedback matrix is back in companion form and the final state
  is recovered through the anti-transformation ``T`` (the implementation
  the paper maps onto PiCoGA, §4).

Both consume :class:`~repro.crc.spec.CRCSpec` conventions through the same
hooks as the software engines, so the entire equivalence chain —
bitwise == table == slicing == look-ahead == Derby — is checkable on any
published standard.  Message bit counts that are not a multiple of M are
handled by finishing the tail serially (in hardware the paper leaves such
framing to the RISC core).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.crc.bitwise import BitwiseCRC
from repro.crc.spec import CRCSpec
from repro.gf2.backend import GF2Backend, resolve_backend
from repro.lfsr.statespace import LFSRStateSpace, crc_statespace
from repro.lfsr.lookahead import BackendLike, LookaheadSystem, expand_lookahead
from repro.lfsr.transform import DerbyTransform, derby_transform
from repro.validation import check_factor


class _MatrixCRCBase:
    """Shared spec plumbing for the matrix engines."""

    def __init__(self, spec: CRCSpec, M: int, backend: BackendLike = None):
        self._spec = spec
        self._M = check_factor(M, what="look-ahead factor M")
        self._statespace = crc_statespace(spec.generator())
        self._serial = BitwiseCRC(spec)
        self._backend = resolve_backend(backend)

    @property
    def spec(self) -> CRCSpec:
        return self._spec

    @property
    def M(self) -> int:
        return self._M

    @property
    def backend(self) -> GF2Backend:
        """The GF(2) kernel backend the block loop runs on."""
        return self._backend

    @property
    def statespace(self) -> LFSRStateSpace:
        return self._statespace

    # ------------------------------------------------------------------
    def _run_blocks(self, state: np.ndarray, bits: Sequence[int]) -> np.ndarray:
        raise NotImplementedError

    def raw_register(self, data: bytes, register: Optional[int] = None) -> int:
        spec = self._spec
        bits = spec.message_bits(data)
        reg = spec.init if register is None else register
        full = len(bits) - (len(bits) % self._M)
        state = self._statespace.state_from_int(reg)
        if full:
            state = self._run_blocks(state, bits[:full])
        reg = self._statespace.state_to_int(state)
        # Serial tail for the non-multiple-of-M remainder.
        return self._serial.process_bits(reg, bits[full:])

    def compute(self, data: bytes) -> int:
        return self._spec.finalize(self.raw_register(data))

    def verify(self, data: bytes, crc: int) -> bool:
        return self.compute(data) == crc


class LookaheadCRC(_MatrixCRCBase):
    """Direct (untransformed) M-bit parallel CRC."""

    def __init__(self, spec: CRCSpec, M: int, backend: BackendLike = None):
        super().__init__(spec, M, backend=backend)
        self._system: LookaheadSystem = expand_lookahead(self._statespace, M)

    @property
    def system(self) -> LookaheadSystem:
        """The expanded ``(A^M, B_M)`` block system."""
        return self._system

    def _run_blocks(self, state: np.ndarray, bits: Sequence[int]) -> np.ndarray:
        return self._system.run(state, bits, backend=self._backend)


class DerbyCRC(_MatrixCRCBase):
    """Derby-transformed M-bit parallel CRC (the paper's PiCoGA mapping).

    The per-block loop uses the companion-form ``A_Mt`` and dense ``B_Mt``;
    the natural-basis state is only materialized at message end via ``T``
    (the paper's second PGAOP, triggered once per message).
    """

    def __init__(
        self,
        spec: CRCSpec,
        M: int,
        f: Optional[np.ndarray] = None,
        backend: BackendLike = None,
    ):
        super().__init__(spec, M, backend=backend)
        self._transform: DerbyTransform = derby_transform(
            self._statespace, M, f=f, backend=self._backend
        )

    @property
    def transform(self) -> DerbyTransform:
        """The Derby similarity transform this engine runs in."""
        return self._transform

    def _run_blocks(self, state: np.ndarray, bits: Sequence[int]) -> np.ndarray:
        return self._transform.run(state, bits, backend=self._backend)

    # ------------------------------------------------------------------
    def stream_state(self, register: int) -> np.ndarray:
        """Enter streaming mode: the transformed state for ``register``."""
        return self._transform.to_transformed(
            self._statespace.state_from_int(register), backend=self._backend
        )

    def stream_block(self, state_t: np.ndarray, chunk: Sequence[int]) -> np.ndarray:
        """Process one M-bit chunk fully in the transformed basis."""
        return self._transform.block_step(state_t, chunk, backend=self._backend)

    def stream_finish(self, state_t: np.ndarray) -> int:
        """Anti-transform and return the raw register (pre-finalize)."""
        return self._statespace.state_to_int(
            self._transform.from_transformed(state_t, backend=self._backend)
        )
