"""Catalog of published CRC standards.

The paper (§1) motivates reconfigurable CRC hardware with the ~25 published
standards that differ in width, polynomial, reflection and presets, spanning
Ethernet/SONET/Bluetooth-class protocols from Mbit/s to tens of Gbit/s.
This module collects those parameter sets with their standard ``check``
values (CRC of ``b"123456789"``) so every engine can be validated against
published vectors.

``ETHERNET_CRC32`` is the paper's main test case — the IEEE 802.3 CRC, whose
generator is shared by MPEG-2 (as the paper notes, only the reflection and
final-XOR conventions differ).
"""

from __future__ import annotations

from typing import Dict, List

from repro.crc.spec import CRCSpec

# ---------------------------------------------------------------------------
# The paper's test cases.
# ---------------------------------------------------------------------------
ETHERNET_CRC32 = CRCSpec(
    name="CRC-32",  # IEEE 802.3 / Ethernet
    width=32,
    poly=0x04C11DB7,
    init=0xFFFFFFFF,
    refin=True,
    refout=True,
    xorout=0xFFFFFFFF,
    check=0xCBF43926,
)

MPEG2_CRC32 = CRCSpec(
    name="CRC-32/MPEG-2",  # same generator, no reflection, no final XOR
    width=32,
    poly=0x04C11DB7,
    init=0xFFFFFFFF,
    refin=False,
    refout=False,
    xorout=0x00000000,
    check=0x0376E6E7,
)

# ---------------------------------------------------------------------------
# The wider standard catalog.
# ---------------------------------------------------------------------------
CATALOG: List[CRCSpec] = [
    ETHERNET_CRC32,
    MPEG2_CRC32,
    CRCSpec("CRC-32/BZIP2", 32, 0x04C11DB7, 0xFFFFFFFF, False, False, 0xFFFFFFFF, 0xFC891918),
    CRCSpec("CRC-32/POSIX", 32, 0x04C11DB7, 0x00000000, False, False, 0xFFFFFFFF, 0x765E7680),
    CRCSpec("CRC-32/JAMCRC", 32, 0x04C11DB7, 0xFFFFFFFF, True, True, 0x00000000, 0x340BC6D9),
    CRCSpec("CRC-32C", 32, 0x1EDC6F41, 0xFFFFFFFF, True, True, 0xFFFFFFFF, 0xE3069283),
    CRCSpec("CRC-32D", 32, 0xA833982B, 0xFFFFFFFF, True, True, 0xFFFFFFFF, 0x87315576),
    CRCSpec("CRC-32Q", 32, 0x814141AB, 0x00000000, False, False, 0x00000000, 0x3010BF7F),
    CRCSpec("CRC-32/XFER", 32, 0x000000AF, 0x00000000, False, False, 0x00000000, 0xBD0BE338),
    # 16-bit family (SONET/SDH, Bluetooth, USB, X.25, Modbus ...)
    CRCSpec("CRC-16/ARC", 16, 0x8005, 0x0000, True, True, 0x0000, 0xBB3D),
    CRCSpec("CRC-16/CCITT-FALSE", 16, 0x1021, 0xFFFF, False, False, 0x0000, 0x29B1),
    CRCSpec("CRC-16/KERMIT", 16, 0x1021, 0x0000, True, True, 0x0000, 0x2189),
    CRCSpec("CRC-16/XMODEM", 16, 0x1021, 0x0000, False, False, 0x0000, 0x31C3),
    CRCSpec("CRC-16/X-25", 16, 0x1021, 0xFFFF, True, True, 0xFFFF, 0x906E),
    CRCSpec("CRC-16/MODBUS", 16, 0x8005, 0xFFFF, True, True, 0x0000, 0x4B37),
    CRCSpec("CRC-16/USB", 16, 0x8005, 0xFFFF, True, True, 0xFFFF, 0xB4C8),
    CRCSpec("CRC-16/MAXIM", 16, 0x8005, 0x0000, True, True, 0xFFFF, 0x44C2),
    CRCSpec("CRC-16/GENIBUS", 16, 0x1021, 0xFFFF, False, False, 0xFFFF, 0xD64E),
    CRCSpec("CRC-16/MCRF4XX", 16, 0x1021, 0xFFFF, True, True, 0x0000, 0x6F91),
    CRCSpec("CRC-16/DNP", 16, 0x3D65, 0x0000, True, True, 0xFFFF, 0xEA82),
    CRCSpec("CRC-16/EN-13757", 16, 0x3D65, 0x0000, False, False, 0xFFFF, 0xC2B7),
    CRCSpec("CRC-16/DECT-X", 16, 0x0589, 0x0000, False, False, 0x0000, 0x007F),
    CRCSpec("CRC-16/DECT-R", 16, 0x0589, 0x0000, False, False, 0x0001, 0x007E),
    # 8-bit family (ATM HEC, 1-Wire, mobile ...)
    CRCSpec("CRC-8", 8, 0x07, 0x00, False, False, 0x00, 0xF4),
    CRCSpec("CRC-8/ITU", 8, 0x07, 0x00, False, False, 0x55, 0xA1),
    CRCSpec("CRC-8/ROHC", 8, 0x07, 0xFF, True, True, 0x00, 0xD0),
    CRCSpec("CRC-8/MAXIM", 8, 0x31, 0x00, True, True, 0x00, 0xA1),
    CRCSpec("CRC-8/DARC", 8, 0x39, 0x00, True, True, 0x00, 0x15),
    CRCSpec("CRC-8/CDMA2000", 8, 0x9B, 0xFF, False, False, 0x00, 0xDA),
    # Odd widths (headers, telecom control channels)
    CRCSpec("CRC-5/USB", 5, 0x05, 0x1F, True, True, 0x1F, 0x19),
    CRCSpec("CRC-7/MMC", 7, 0x09, 0x00, False, False, 0x00, 0x75),
    CRCSpec("CRC-10/ATM", 10, 0x233, 0x000, False, False, 0x000, 0x199),
    CRCSpec("CRC-12/DECT", 12, 0x80F, 0x000, False, False, 0x000, 0xF5B),
    # Mixed reflection (refin != refout) — exercises the engines' fallback.
    CRCSpec("CRC-12/UMTS", 12, 0x80F, 0x000, False, True, 0x000, 0xDAF),
    CRCSpec("CRC-15/CAN", 15, 0x4599, 0x0000, False, False, 0x0000, 0x059E),
    # 24-bit family
    CRCSpec("CRC-24/OPENPGP", 24, 0x864CFB, 0xB704CE, False, False, 0x000000, 0x21CF02),
    CRCSpec("CRC-24/FLEXRAY-A", 24, 0x5D6DCB, 0xFEDCBA, False, False, 0x000000, 0x7979BD),
    # 64-bit family (storage, compression containers)
    CRCSpec("CRC-64/ECMA-182", 64, 0x42F0E1EBA9EA3693, 0, False, False, 0, 0x6C40DF5F0B497347),
    CRCSpec(
        "CRC-64/XZ",
        64,
        0x42F0E1EBA9EA3693,
        0xFFFFFFFFFFFFFFFF,
        True,
        True,
        0xFFFFFFFFFFFFFFFF,
        0x995DC9BBDF1939FA,
    ),
]

BY_NAME: Dict[str, CRCSpec] = {spec.name: spec for spec in CATALOG}


def get(name: str) -> CRCSpec:
    """Look up a catalog spec by its conventional name."""
    try:
        return BY_NAME[name]
    except KeyError:
        from repro.errors import SpecError

        raise SpecError(
            f"unknown CRC standard {name!r}; known: {sorted(BY_NAME)}"
        ) from None
