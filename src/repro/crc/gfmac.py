"""Chunked CRC via Galois-field multiply-accumulate (paper §2, [9][10]).

Ji & Killian's formulation: with ``A(x)`` the message polynomial and
``G(x)`` the order-W generator, ``CRC[A] = (A(x) · x^W) mod G(x)``, and the
message can be cut into M-bit chunks ``W_i`` so that::

    CRC[A] = Σ_i  W_i(x) · β_i  (mod G)

where ``β_i = x^(W + bits-after-chunk-i) mod G`` depends only on the chunk
position, the message length and the generator.  Each term is one
Galois-field multiply-accumulate — the GFMAC primitive of a customizable
processor ([10] reports 2-3 cycles for a 128-bit message on 16 GFMACs).

The engine below extends the raw formulation to the full Rocksoft model:
the ``init`` preset contributes the extra linear term ``I(x) · x^N mod G``
(the register seen as a polynomial, advanced past the whole message), and
reflection/xorout are applied by the shared spec hooks.  Functionally
identical to every other engine in this package.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.crc.spec import CRCSpec
from repro.gf2.clmul import clmulmod, clpowmod

DEFAULT_CHUNK_BITS = 32


def chunk_message_bits(bits: Sequence[int], chunk_bits: int) -> List[Tuple[int, int]]:
    """Split a transmission-order bit stream into ``(value, weight)`` pairs.

    ``value`` is the chunk polynomial (first-transmitted bit = highest
    degree); ``weight`` is the number of message bits that follow the
    chunk, i.e. the exponent by which the chunk must be advanced.
    """
    if chunk_bits < 1:
        raise ValueError("chunk size must be >= 1")
    n = len(bits)
    chunks: List[Tuple[int, int]] = []
    for off in range(0, n, chunk_bits):
        piece = bits[off : off + chunk_bits]
        value = 0
        for bit in piece:
            value = (value << 1) | (bit & 1)
        chunks.append((value, n - off - len(piece)))
    return chunks


class GFMACCRC:
    """CRC engine built from position-weighted GFMAC operations."""

    def __init__(self, spec: CRCSpec, chunk_bits: int = DEFAULT_CHUNK_BITS):
        if chunk_bits < 1:
            raise ValueError("chunk size must be >= 1")
        self._spec = spec
        self._chunk_bits = chunk_bits
        self._g = spec.generator().coeffs
        self._gfmac_count = 0

    @property
    def spec(self) -> CRCSpec:
        """The :class:`CRCSpec` this engine realizes."""
        return self._spec

    @property
    def chunk_bits(self) -> int:
        """Chunk width W in bits per GFMAC operation."""
        return self._chunk_bits

    @property
    def gfmac_count(self) -> int:
        """GFMAC operations issued since construction (workload metric)."""
        return self._gfmac_count

    # ------------------------------------------------------------------
    def beta(self, weight: int) -> int:
        """``β = x^(W + weight) mod G`` — the chunk position constant."""
        return clpowmod(2, self._spec.width + weight, self._g)

    def raw_register(self, data: bytes, register: Optional[int] = None) -> int:
        """Register contents after folding ``data`` chunkwise (no finalization)."""
        spec = self._spec
        bits = spec.message_bits(data)
        reg = spec.init if register is None else register
        acc = 0
        for value, weight in chunk_message_bits(bits, self._chunk_bits):
            acc ^= clmulmod(value, self.beta(weight), self._g)
            self._gfmac_count += 1
        # init contribution: the preset register advanced past all N bits.
        if reg:
            acc ^= clmulmod(reg, clpowmod(2, len(bits), self._g), self._g)
            self._gfmac_count += 1
        return acc

    def compute(self, data: bytes) -> int:
        """The published CRC value of ``data``."""
        return self._spec.finalize(self.raw_register(data))

    def verify(self, data: bytes, crc: int) -> bool:
        """True iff ``crc`` is the published CRC of ``data``."""
        return self.compute(data) == crc
