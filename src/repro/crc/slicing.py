"""Slicing-by-N CRC: N bytes per iteration with N lookup tables.

The natural software scaling of the table method: process an N-byte block
with N independent table lookups that are XORed together — each table ``j``
pre-advances a byte's contribution past the remaining ``j`` bytes of the
block.  This is the strongest pure-software CRC baseline in the Table 1
comparison (slicing-by-8 is what high-end network stacks use).

Supported for byte-multiple widths with ``N >= width/8`` and matching
reflection (the common cases: CRC-16/32/64, slicing by 4/8/16); other specs
fall back to the plain table engine.
"""

from __future__ import annotations

from typing import List

from repro.crc.spec import CRCSpec
from repro.crc.table import TableCRC, build_table
from repro.gf2.bits import reflect_bits


def build_slicing_tables(spec: CRCSpec, n: int) -> List[List[int]]:
    """``n`` tables; table ``j`` advances a byte past ``j`` zero bytes."""
    if n < 1:
        raise ValueError("slice count must be >= 1")
    base = build_table(spec)
    tables = [base]
    if spec.refin:
        for _ in range(1, n):
            prev = tables[-1]
            tables.append([(t >> 8) ^ base[t & 0xFF] for t in prev])
    else:
        shift = spec.width - 8
        for _ in range(1, n):
            prev = tables[-1]
            tables.append(
                [((t << 8) & spec.mask) ^ base[(t >> shift) & 0xFF] for t in prev]
            )
    return tables


class SlicingCRC:
    """Slicing-by-N engine (default N = 8)."""

    def __init__(self, spec: CRCSpec, slices: int = 8):
        if slices < 1:
            raise ValueError("slice count must be >= 1")
        self._spec = spec
        self._n = slices
        self._supported = (
            spec.width % 8 == 0
            and spec.width >= 8
            and slices * 8 >= spec.width
            and spec.refin == spec.refout
        )
        self._fallback = TableCRC(spec)
        self._tables = build_slicing_tables(spec, slices) if self._supported else None

    @property
    def spec(self) -> CRCSpec:
        """The :class:`CRCSpec` this engine realizes."""
        return self._spec

    @property
    def slices(self) -> int:
        """Slice count N — bytes folded per block step."""
        return self._n

    @property
    def supported(self) -> bool:
        """False when this spec routes through the plain table engine."""
        return self._supported

    # ------------------------------------------------------------------
    def raw_register(self, data: bytes, register: int = None) -> int:
        """Register contents after clocking ``data`` (no finalization)."""
        spec = self._spec
        reg = spec.init if register is None else register
        if not self._supported:
            return self._fallback.raw_register(data, reg)
        n = self._n
        blocks_end = len(data) - (len(data) % n)
        if spec.refin:
            rw = reflect_bits(reg, spec.width)
            for off in range(0, blocks_end, n):
                acc = 0
                x = rw
                for j in range(n):
                    acc ^= self._tables[n - 1 - j][(data[off + j] ^ x) & 0xFF]
                    x >>= 8
                rw = acc
            reg = reflect_bits(rw, spec.width)
        else:
            shift = spec.width - 8
            for off in range(0, blocks_end, n):
                acc = 0
                x = reg
                for j in range(n):
                    acc ^= self._tables[n - 1 - j][(data[off + j] ^ (x >> shift)) & 0xFF]
                    x = (x << 8) & spec.mask
                reg = acc
        if blocks_end < len(data):
            reg = self._fallback.raw_register(data[blocks_end:], reg)
        return reg

    def compute(self, data: bytes) -> int:
        """The published CRC value of ``data``."""
        return self._spec.finalize(self.raw_register(data))

    def verify(self, data: bytes, crc: int) -> bool:
        """True iff ``crc`` is the published CRC of ``data``."""
        return self.compute(data) == crc
