"""Byte-at-a-time table-driven CRC (Sarwate's algorithm).

This is the "fast software implementation for processors" family the paper
cites as [8] (Albertengo & Sisto): look-ahead applied to the serial circuit
yields a byte-wise update whose feedback network is a 256-entry lookup table
plus shift-and-XOR.  It is both a functional engine (validated against the
bitwise reference) and the workload model behind the RISC baseline of
Table 1.

Reflected specs use the standard reflected-table variant so the inner loop
stays one lookup per byte either way.
"""

from __future__ import annotations

from typing import List

from repro.crc.bitwise import BitwiseCRC
from repro.crc.spec import CRCSpec
from repro.gf2.bits import reflect_bits


def build_table(spec: CRCSpec) -> List[int]:
    """The 256-entry byte table for ``spec`` (forward or reflected form)."""
    table = []
    if spec.refin:
        rpoly = spec.reflected_poly()
        for byte in range(256):
            reg = byte
            for _ in range(8):
                reg = (reg >> 1) ^ (rpoly if reg & 1 else 0)
            table.append(reg)
    elif spec.width >= 8:
        for byte in range(256):
            reg = byte << (spec.width - 8)
            for _ in range(8):
                if reg & spec.top_bit:
                    reg = ((reg << 1) & spec.mask) ^ spec.poly
                else:
                    reg = (reg << 1) & spec.mask
            table.append(reg)
    else:
        # Narrow non-reflected CRCs: map a whole input byte from a zero
        # register through the serial circuit.
        engine = BitwiseCRC(spec)
        for byte in range(256):
            reg = 0
            for i in range(7, -1, -1):
                reg = engine.process_bit(reg, (byte >> i) & 1)
            table.append(reg)
    return table


class TableCRC:
    """One-lookup-per-byte CRC engine."""

    def __init__(self, spec: CRCSpec):
        self._spec = spec
        self._table = build_table(spec)
        if spec.refin != spec.refout and spec.width >= 8:
            # Mixed-reflection specs exist (e.g. CRC-12/UMTS); route them
            # through the bit-serial core rather than special-casing tables.
            self._mixed = BitwiseCRC(spec)
        else:
            self._mixed = None

    @property
    def spec(self) -> CRCSpec:
        """The :class:`CRCSpec` this engine realizes."""
        return self._spec

    @property
    def table(self) -> List[int]:
        """A copy of the 256-entry byte table."""
        return list(self._table)

    # ------------------------------------------------------------------
    def raw_register(self, data: bytes, register: int = None) -> int:
        """Register contents after clocking ``data`` (no finalization)."""
        spec = self._spec
        reg = spec.init if register is None else register
        if spec.refin:
            # Reflected algorithm keeps the register in reflected order.
            reg = reflect_bits(reg, spec.width)
            for byte in data:
                reg = (reg >> 8) ^ self._table[(reg ^ byte) & 0xFF]
            return reflect_bits(reg, spec.width)
        if spec.width >= 8:
            shift = spec.width - 8
            for byte in data:
                reg = ((reg << 8) & spec.mask) ^ self._table[((reg >> shift) ^ byte) & 0xFF]
            return reg
        # Narrow CRCs: the "table" maps a full input byte starting from a
        # zero register; combine with the linear shift of the old register.
        serial = BitwiseCRC(spec)
        for byte in data:
            for i in range(7, -1, -1):
                reg = serial.process_bit(reg, (byte >> i) & 1)
        return reg

    def compute(self, data: bytes) -> int:
        """The published CRC value of ``data``."""
        if self._mixed is not None:
            return self._mixed.compute(data)
        return self._spec.finalize(self.raw_register(data))

    def verify(self, data: bytes, crc: int) -> bool:
        """True iff ``crc`` is the published CRC of ``data``."""
        return self.compute(data) == crc
