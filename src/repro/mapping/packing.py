"""Fan-in-limited cell packing: XOR equations -> PiCoGA netlists.

Turns a :class:`~repro.mapping.cse.CSEResult` into a topologically ordered
cell list honouring the 10-input XOR limit:

* each shared intermediate becomes a reduction tree (usually one cell);
* each output equation packs its *stream* part (INPUT leaves and shared
  intermediates) into a pipelined reduction tree, then emits one final
  cell XORing the STATE leaves with the reduced stream bit — keeping every
  state-to-state path exactly one cell deep whenever the state fan-in
  allows (the Derby property the paper exploits for II = 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.mapping.cse import CSEResult
from repro.picoga.cell import Cell, Net, NetKind, xor_cell


@dataclass
class PackedNetlist:
    """Cells in topological order plus the net of every output equation."""

    cells: List[Cell]
    output_nets: List[Net]


class _Builder:
    def __init__(self, fanin: int):
        if fanin < 2:
            raise ValueError("XOR fan-in limit must be >= 2")
        self.fanin = fanin
        self.cells: List[Cell] = []

    def emit(self, inputs: Sequence[Net]) -> Net:
        cell = xor_cell(len(self.cells), inputs)
        self.cells.append(cell)
        return cell.output_net()

    def reduce(self, nets: Sequence[Net]) -> Net:
        """Balanced arity-``fanin`` reduction tree over the given nets."""
        if not nets:
            raise ValueError("cannot reduce zero nets")
        level = list(nets)
        if len(level) == 1:
            # A single net still needs a cell if it must become a fresh
            # output (handled by callers); here just pass it through.
            return level[0]
        while len(level) > 1:
            nxt: List[Net] = []
            for off in range(0, len(level), self.fanin):
                group = level[off : off + self.fanin]
                if len(group) == 1:
                    nxt.append(group[0])
                else:
                    nxt.append(self.emit(group))
            level = nxt
        return level[0]


def pack_equations(
    cse: CSEResult,
    fanin: int = 10,
    constant_zero_net: Optional[Net] = None,
) -> PackedNetlist:
    """Compile optimized equations into a cell DAG (see module docstring).

    Empty equations (an output that is identically zero) are represented by
    a 1-input XOR of ``constant_zero_net`` when provided, else rejected.
    """
    builder = _Builder(fanin)
    shared_map: Dict[Net, Net] = {}

    def resolve(net: Net) -> Net:
        return shared_map.get(net, net)

    # 1. Shared intermediates, in definition (topological) order.
    for term in cse.shared:
        operands = [resolve(n) for n in sorted(term.operands, key=_net_key)]
        shared_map[term.net] = builder.reduce(operands) if len(operands) > 1 else operands[0]

    # 2. Output equations: stream tree first, state leaves at the last level.
    output_nets: List[Net] = []
    for eq in cse.equations:
        state_leaves = sorted((n for n in eq.leaves if n.kind is NetKind.STATE), key=_net_key)
        stream_leaves = [
            resolve(n) for n in sorted(
                (n for n in eq.leaves if n.kind is not NetKind.STATE), key=_net_key
            )
        ]
        if not state_leaves and not stream_leaves:
            if constant_zero_net is None:
                raise ValueError(f"equation {eq.name} is empty and no zero net is available")
            output_nets.append(constant_zero_net)
            continue
        if not state_leaves:
            net = builder.reduce(stream_leaves)
            if net in stream_leaves and len(stream_leaves) == 1:
                # Materialize single-leaf outputs so they occupy a port-
                # driving cell (keeps output wiring uniform).
                net = builder.emit([net])
            output_nets.append(net)
            continue
        # Reduce the stream side until state taps + stream bits fit one cell.
        stream_nets = list(stream_leaves)
        while len(state_leaves) + len(stream_nets) > fanin:
            if len(stream_nets) == 1:
                break  # state fan-in alone exceeds the cell: fall through
            take = min(fanin, len(stream_nets))
            stream_nets = [builder.emit(stream_nets[:take])] + stream_nets[take:]
        final_inputs = state_leaves + stream_nets
        if len(final_inputs) <= fanin:
            output_nets.append(builder.emit(final_inputs))
        else:
            # Degenerate: too many state taps for one cell (direct Pei
            # mapping of a dense A^M).  The loop really is deeper — pack
            # honestly and let the II analysis report it.
            net = builder.reduce(final_inputs)
            output_nets.append(net)
    return PackedNetlist(cells=builder.cells, output_nets=output_nets)


def _net_key(net: Net) -> Tuple[str, int]:
    return (net.kind.value, net.index)
