"""Equivalence checking of compiled netlists against the golden model.

The EDA closing step: prove that what the mapper emitted computes the
specified function.  Because everything here is GF(2)-linear, equivalence
over a *basis* is equivalence everywhere — so the checker has three modes:

* :func:`verify_linear_basis` — drive each unit state vector and each unit
  input vector (plus the zero vector) through the netlist and compare
  against the reference matrices.  For a linear netlist this is a
  **complete proof** with only k + M + 1 evaluations.
* :func:`verify_exhaustive` — brute-force every (state, input) pair; only
  feasible for small k + M, used to validate the basis argument itself.
* :func:`verify_random` — Monte-Carlo spot checks for big operations.

`verify_mapped_crc` wires these to a :class:`MappedCRC` and returns a
structured report the tests (and users porting the mapper) can assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.gf2.matrix import GF2Matrix
from repro.mapping.mapper import MappedCRC
from repro.picoga.op import PicogaOperation


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of one equivalence check."""

    mode: str
    checked: int
    passed: bool
    counterexample: Optional[dict] = None

    def __bool__(self) -> bool:
        return self.passed


def _expected_next_state(
    state_matrix: GF2Matrix, input_matrix: GF2Matrix, state, inputs
) -> List[int]:
    s = np.asarray(state, dtype=np.uint8)
    u = np.asarray(inputs, dtype=np.uint8)
    return [int(b) for b in ((state_matrix @ s) ^ (input_matrix @ u))]


def verify_linear_basis(
    op: PicogaOperation, state_matrix: GF2Matrix, input_matrix: GF2Matrix
) -> VerificationResult:
    """Complete linear equivalence proof (see module docstring).

    Checks (a) the zero vector maps to zero — no stray constants — and
    (b) every unit state / input vector reproduces the corresponding
    matrix column.  Linearity of XOR netlists extends this to all inputs.
    """
    k, m = op.n_state, op.n_inputs
    if state_matrix.shape != (k, k) or input_matrix.shape != (k, m):
        raise ValueError("matrix shapes do not match the operation")
    checked = 0

    def run(state, inputs):
        _, nxt = op.evaluate(state, inputs)
        return nxt

    # Zero maps to zero (XOR nets have no constant term).
    zero = run([0] * k, [0] * m)
    checked += 1
    if any(zero):
        return VerificationResult(
            "linear-basis", checked, False,
            {"kind": "constant-offset", "next_state": zero},
        )
    for i in range(k):
        state = [0] * k
        state[i] = 1
        got = run(state, [0] * m)
        checked += 1
        expected = [int(b) for b in state_matrix.column(i)]
        if got != expected:
            return VerificationResult(
                "linear-basis", checked, False,
                {"kind": "state-column", "index": i, "got": got, "expected": expected},
            )
    for j in range(m):
        inputs = [0] * m
        inputs[j] = 1
        got = run([0] * k, inputs)
        checked += 1
        expected = [int(b) for b in input_matrix.column(j)]
        if got != expected:
            return VerificationResult(
                "linear-basis", checked, False,
                {"kind": "input-column", "index": j, "got": got, "expected": expected},
            )
    return VerificationResult("linear-basis", checked, True)


def verify_exhaustive(
    op: PicogaOperation,
    state_matrix: GF2Matrix,
    input_matrix: GF2Matrix,
    limit_bits: int = 16,
) -> VerificationResult:
    """Brute-force every (state, input) combination (small ops only)."""
    k, m = op.n_state, op.n_inputs
    if k + m > limit_bits:
        raise ValueError(f"2^{k + m} cases exceed the limit of 2^{limit_bits}")
    checked = 0
    for sv in range(1 << k):
        state = [(sv >> i) & 1 for i in range(k)]
        for uv in range(1 << m):
            inputs = [(uv >> j) & 1 for j in range(m)]
            _, got = op.evaluate(state, inputs)
            expected = _expected_next_state(state_matrix, input_matrix, state, inputs)
            checked += 1
            if got != expected:
                return VerificationResult(
                    "exhaustive", checked, False,
                    {"state": sv, "inputs": uv, "got": got, "expected": expected},
                )
    return VerificationResult("exhaustive", checked, True)


def verify_random(
    op: PicogaOperation,
    state_matrix: GF2Matrix,
    input_matrix: GF2Matrix,
    trials: int = 256,
    seed: int = 0xBEEF,
) -> VerificationResult:
    """Monte-Carlo spot checks (any size)."""
    rng = np.random.default_rng(seed)
    k, m = op.n_state, op.n_inputs
    for trial in range(trials):
        state = [int(b) for b in rng.integers(0, 2, size=k)]
        inputs = [int(b) for b in rng.integers(0, 2, size=m)]
        _, got = op.evaluate(state, inputs)
        expected = _expected_next_state(state_matrix, input_matrix, state, inputs)
        if got != expected:
            return VerificationResult(
                "random", trial + 1, False,
                {"state": state, "inputs": inputs, "got": got, "expected": expected},
            )
    return VerificationResult("random", trials, True)


def verify_mapped_crc(mapped: MappedCRC, random_trials: int = 64) -> List[VerificationResult]:
    """Prove a compiled CRC: basis proof + random spot checks, for both
    the update op and (when present) the anti-transformation op."""
    if mapped.transform is not None:
        state_matrix = mapped.transform.A_Mt
        input_matrix = _stream_order(mapped.transform.B_Mt)
    else:
        from repro.lfsr.lookahead import expand_lookahead
        from repro.lfsr.statespace import crc_statespace

        system = expand_lookahead(crc_statespace(mapped.spec.generator()), mapped.M)
        state_matrix = system.A_M
        input_matrix = _stream_order(system.B_M)
    results = [
        verify_linear_basis(mapped.update_op, state_matrix, input_matrix),
        verify_random(mapped.update_op, state_matrix, input_matrix, trials=random_trials),
    ]
    if mapped.output_op is not None:
        results.append(_verify_output_op(mapped.output_op, mapped.transform.T))
    return results


def _verify_output_op(op: PicogaOperation, t: GF2Matrix) -> VerificationResult:
    """Basis proof for the feed-forward anti-transformation y = T x_t."""
    m = op.n_inputs
    checked = 0
    outs, _ = op.evaluate([], [0] * m)
    checked += 1
    if any(outs):
        return VerificationResult(
            "linear-basis", checked, False, {"kind": "constant-offset", "outputs": outs}
        )
    for j in range(m):
        inputs = [0] * m
        inputs[j] = 1
        got, _ = op.evaluate([], inputs)
        checked += 1
        expected = [int(b) for b in t.column(j)]
        if got != expected:
            return VerificationResult(
                "linear-basis", checked, False,
                {"kind": "output-column", "index": j, "got": got, "expected": expected},
            )
    return VerificationResult("linear-basis", checked, True)


def _stream_order(matrix: GF2Matrix) -> GF2Matrix:
    arr = matrix.to_array()[:, ::-1]
    return GF2Matrix(arr.copy())
