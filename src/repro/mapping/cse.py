"""Common-pattern extraction across XOR equations (paper §4).

The authors' design flow "maps the required matrices on 10-bit XORs, by an
algorithm that reduces the number of required XORs detecting 10-bit common
patterns among the rows of B_Mt and T".  This module reproduces that step:

1. :func:`extract_common_patterns` — repeatedly find the leaf subset
   (width 2..``max_width``) shared by the most equations, replace every
   occurrence with a fresh intermediate net, and record its definition.
   Candidate patterns are generated from pairwise row intersections, which
   is where multi-leaf sharing actually lives for these matrices.
2. A final greedy *pairwise* pass mops up remaining 2-leaf sharings.

The result is a DAG: intermediate definitions (pure XOR of existing nets)
plus rewritten equations, ready for fan-in-limited cell packing.  Sharing
is restricted to non-STATE leaves by default so the feedback loop of a
Derby-mapped update never deepens (state taps stay at the final level).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.mapping.xor_network import XorEquation
from repro.picoga.cell import Net, NetKind

#: Virtual net kind index space for CSE intermediates: they are emitted as
#: CELL nets later; during optimization we track them as ("shared", id).
Pattern = FrozenSet[Net]


@dataclass
class SharedTerm:
    """One extracted pattern: the new net and its operand set."""

    net: Net
    operands: Pattern


@dataclass
class CSEResult:
    """Rewritten equations plus the intermediate DAG and statistics."""

    equations: List[XorEquation]
    shared: List[SharedTerm]
    taps_before: int
    taps_after: int

    @property
    def savings(self) -> int:
        return self.taps_before - self.taps_after

    def total_taps(self) -> int:
        return self.taps_after


def _taps(equations: Sequence[XorEquation], shared: Sequence[SharedTerm]) -> int:
    eq_taps = sum(max(len(e.leaves) - 1, 0) for e in equations)
    sh_taps = sum(max(len(s.operands) - 1, 0) for s in shared)
    return eq_taps + sh_taps


def _shareable(leaves: FrozenSet[Net], share_state: bool) -> FrozenSet[Net]:
    if share_state:
        return leaves
    return frozenset(n for n in leaves if n.kind is not NetKind.STATE)


def extract_common_patterns(
    equations: Sequence[XorEquation],
    max_width: int = 10,
    share_state: bool = False,
    min_occurrences: int = 2,
) -> CSEResult:
    """Greedy shared-pattern extraction (see module docstring)."""
    if max_width < 2:
        raise ValueError("patterns need width >= 2")
    work: List[Set[Net]] = [set(e.leaves) for e in equations]
    shared: List[SharedTerm] = []
    taps_before = sum(max(len(s) - 1, 0) for s in work)
    next_id = 1_000_000  # private index space for shared intermediates

    while True:
        best: Tuple[int, Pattern] = (0, frozenset())
        # Candidate patterns: pairwise intersections of the shareable parts.
        candidates: Dict[Pattern, int] = {}
        shareable = [_shareable(frozenset(s), share_state) for s in work]
        for (i, a), (j, b) in combinations(enumerate(shareable), 2):
            inter = a & b
            if len(inter) < 2:
                continue
            if len(inter) > max_width:
                inter = frozenset(sorted(inter, key=lambda n: (n.kind.value, n.index))[:max_width])
            candidates[inter] = 0
        if not candidates:
            break
        for pattern in candidates:
            candidates[pattern] = sum(1 for s in shareable if pattern <= s)
        for pattern, occurrences in candidates.items():
            if occurrences < min_occurrences:
                continue
            saving = (len(pattern) - 1) * (occurrences - 1)
            if saving > best[0]:
                best = (saving, pattern)
        if best[0] <= 0:
            break
        pattern = best[1]
        new_net = Net(NetKind.CELL, next_id)
        next_id += 1
        shared.append(SharedTerm(net=new_net, operands=pattern))
        for s in work:
            if pattern <= s:
                s -= pattern
                s.add(new_net)

    result_eqs = [
        XorEquation(name=e.name, leaves=frozenset(s)) for e, s in zip(equations, work)
    ]
    return CSEResult(
        equations=result_eqs,
        shared=shared,
        taps_before=taps_before,
        taps_after=_taps(result_eqs, shared),
    )


def no_cse(equations: Sequence[XorEquation]) -> CSEResult:
    """Identity pass — the ablation baseline."""
    taps = sum(max(e.weight - 1, 0) for e in equations)
    return CSEResult(
        equations=list(equations), shared=[], taps_before=taps, taps_after=taps
    )
