"""Matrix-to-PiCoGA mapping toolchain (the paper's §4 design flow).

* :mod:`repro.mapping.xor_network` — parity equations from GF(2) matrices;
* :mod:`repro.mapping.cse` — 10-bit common-pattern sharing across rows;
* :mod:`repro.mapping.packing` — fan-in-10 cell packing with single-cell
  feedback loops for companion-form updates;
* :mod:`repro.mapping.mapper` — :func:`map_crc` (Derby or direct method)
  and :func:`map_scrambler`, producing executable PGAOP netlists;
* :mod:`repro.mapping.explorer` — the M-sweep / feasibility study and the
  f-vector sensitivity ablation.
"""

from repro.mapping.cse import CSEResult, extract_common_patterns, no_cse
from repro.mapping.explorer import DEFAULT_SWEEP, DesignPoint, DesignSpaceExplorer
from repro.mapping.mapper import (
    MappedCRC,
    MappedScrambler,
    MappingReport,
    map_crc,
    map_scrambler,
)
from repro.mapping.packing import PackedNetlist, pack_equations
from repro.mapping.verify import (
    VerificationResult,
    verify_exhaustive,
    verify_linear_basis,
    verify_mapped_crc,
    verify_random,
)
from repro.mapping.xor_network import (
    XorEquation,
    equations_from_matrix,
    recurrence_equations,
    total_xor_taps,
)

__all__ = [
    "CSEResult",
    "DEFAULT_SWEEP",
    "DesignPoint",
    "DesignSpaceExplorer",
    "MappedCRC",
    "MappedScrambler",
    "MappingReport",
    "PackedNetlist",
    "VerificationResult",
    "verify_exhaustive",
    "verify_linear_basis",
    "verify_mapped_crc",
    "verify_random",
    "XorEquation",
    "equations_from_matrix",
    "extract_common_patterns",
    "map_crc",
    "map_scrambler",
    "no_cse",
    "pack_equations",
    "recurrence_equations",
    "total_xor_taps",
]
