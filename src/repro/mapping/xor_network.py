"""Symbolic XOR networks extracted from GF(2) matrices.

A matrix-vector product over GF(2) is a bank of parity equations: output
bit *i* XORs together the leaves selected by row *i*.  The mapper first
expresses the block recurrence as such equations over two leaf kinds —
``STATE`` (loop-carried register bits) and ``INPUT`` (message-chunk bits) —
then optimizes and packs them onto PiCoGA cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.gf2.matrix import GF2Matrix
from repro.picoga.cell import Net, NetKind

Leaves = FrozenSet[Net]


@dataclass
class XorEquation:
    """One output bit as a parity of leaf nets."""

    name: str
    leaves: Leaves

    @property
    def weight(self) -> int:
        return len(self.leaves)


def equations_from_matrix(
    matrix: GF2Matrix, leaf_kind: NetKind, name_prefix: str
) -> List[XorEquation]:
    """Row *i* of ``matrix`` -> equation over ``leaf_kind`` leaves."""
    equations = []
    arr = matrix.to_array()
    for i in range(matrix.nrows):
        leaves = frozenset(
            Net(leaf_kind, j) for j in range(matrix.ncols) if arr[i, j]
        )
        equations.append(XorEquation(name=f"{name_prefix}{i}", leaves=leaves))
    return equations


def merge_equations(
    a: Sequence[XorEquation], b: Sequence[XorEquation], name_prefix: str
) -> List[XorEquation]:
    """Pairwise union: output i = a_i XOR b_i (e.g. A·x plus B·u)."""
    if len(a) != len(b):
        raise ValueError("equation banks must have equal length")
    return [
        XorEquation(name=f"{name_prefix}{i}", leaves=ea.leaves | eb.leaves)
        for i, (ea, eb) in enumerate(zip(a, b))
    ]


def recurrence_equations(
    state_matrix: GF2Matrix, input_matrix: GF2Matrix, name_prefix: str = "x"
) -> List[XorEquation]:
    """Equations for ``x' = S x + B u`` with STATE and INPUT leaves."""
    if state_matrix.nrows != input_matrix.nrows:
        raise ValueError("state and input matrices must agree on row count")
    state_eqs = equations_from_matrix(state_matrix, NetKind.STATE, "_s")
    input_eqs = equations_from_matrix(input_matrix, NetKind.INPUT, "_u")
    return merge_equations(state_eqs, input_eqs, name_prefix)


def total_xor_taps(equations: Sequence[XorEquation]) -> int:
    """Total 2-input XOR count before sharing: sum of (weight - 1)."""
    return sum(max(eq.weight - 1, 0) for eq in equations)


def split_by_kind(leaves: Leaves) -> Tuple[List[Net], List[Net]]:
    """Partition leaves into (state, non-state) groups, sorted."""
    state = sorted((n for n in leaves if n.kind is NetKind.STATE), key=lambda n: n.index)
    other = sorted(
        (n for n in leaves if n.kind is not NetKind.STATE),
        key=lambda n: (n.kind.value, n.index),
    )
    return state, other


def weight_histogram(equations: Sequence[XorEquation]) -> Dict[int, int]:
    hist: Dict[int, int] = {}
    for eq in equations:
        hist[eq.weight] = hist.get(eq.weight, 0) + 1
    return hist
