"""The matrix-to-PiCoGA mapper (the paper's §4 design flow).

Reproduces the authors' "Matlab program": starting from a CRC size and
polynomial (or a scrambler spec) and a look-ahead factor M it

1. generates all the necessary matrices (A^M, B_M, and the Derby-transformed
   A_Mt, B_Mt, T);
2. extracts the XOR equations and shares common 10-bit patterns
   (:mod:`repro.mapping.cse`);
3. packs them into fan-in-10 cells and emits :class:`PicogaOperation`
   netlists.

Two CRC mapping methods are offered, matching the paper's §2 alternatives:

* ``"derby"`` — the selected approach: op1 updates the *transformed* state
  with a companion-form (single-row, II = 1) loop; op2 applies the
  anti-transformation ``T`` once per message (the configuration switch).
* ``"direct"`` — the Pei-style single-operation mapping with ``A^M`` in
  the loop; functional but with a deeper loop, hence II > 1 at large M —
  the mapper ablation benches quantify exactly this trade.

The scrambler mapping is a single operation: the Derby-transformed
autonomous update keeps the loop in one row, while the output matrix
(absorbing ``T``) and the data XOR are pure feed-forward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.crc.bitwise import BitwiseCRC
from repro.crc.spec import CRCSpec
from repro.gf2.matrix import GF2Matrix
from repro.lfsr.lookahead import expand_lookahead, scrambler_output_matrix
from repro.lfsr.statespace import crc_statespace, scrambler_statespace
from repro.lfsr.transform import DerbyTransform, derby_transform
from repro.mapping.cse import CSEResult, extract_common_patterns, no_cse
from repro.mapping.packing import pack_equations
from repro.mapping.xor_network import (
    XorEquation,
    equations_from_matrix,
    recurrence_equations,
)
from repro.picoga.architecture import DREAM_PICOGA, PicogaArchitecture
from repro.picoga.cell import Net, NetKind
from repro.picoga.op import PicogaOperation
from repro.scrambler.specs import ScramblerSpec


def _stream_order_columns(matrix: GF2Matrix) -> GF2Matrix:
    """Reverse columns: the paper's u_M is latest-bit-first, the op's input
    ports carry the chunk in stream order (u(n) at input 0)."""
    arr = matrix.to_array()[:, ::-1]
    return GF2Matrix(arr.copy())


@dataclass
class MappingReport:
    """What the mapper did, for the resource tables and ablations."""

    method: str
    M: int
    taps_before_cse: int
    taps_after_cse: int
    shared_patterns: int
    update_cells: int
    update_rows: int
    update_ii: int
    output_cells: int = 0
    output_rows: int = 0

    @property
    def cse_savings(self) -> int:
        return self.taps_before_cse - self.taps_after_cse

    @property
    def total_cells(self) -> int:
        return self.update_cells + self.output_cells


@dataclass
class MappedCRC:
    """A CRC compiled onto PiCoGA: one or two operations plus metadata."""

    spec: CRCSpec
    M: int
    method: str
    update_op: PicogaOperation
    output_op: Optional[PicogaOperation]
    transform: Optional[DerbyTransform]
    report: MappingReport

    # ------------------------------------------------------------------
    def initial_state_bits(self, register: Optional[int] = None) -> List[int]:
        """The update-op state bits corresponding to a raw CRC register."""
        reg = self.spec.init if register is None else register
        ss = crc_statespace(self.spec.generator())
        natural = ss.state_from_int(reg)
        if self.transform is not None:
            return [int(b) for b in self.transform.to_transformed(natural)]
        return [int(b) for b in natural]

    def register_from_state(self, state_bits: Sequence[int]) -> int:
        """Recover the raw CRC register from update-op state bits, running
        the anti-transformation netlist when the mapping is transformed."""
        if self.output_op is not None:
            outs, _ = self.output_op.evaluate([], list(state_bits))
            bits = outs
        else:
            bits = list(state_bits)
        value = 0
        for i, bit in enumerate(bits):
            value |= (bit & 1) << i
        return value

    # ------------------------------------------------------------------
    def compute(self, data: bytes) -> int:
        """Functional CRC through the compiled netlists (co-simulation)."""
        spec = self.spec
        bits = spec.message_bits(data)
        full = len(bits) - (len(bits) % self.M)
        state = self.initial_state_bits()
        for off in range(0, full, self.M):
            _, state = self.update_op.evaluate(state, bits[off : off + self.M])
        register = self.register_from_state(state)
        register = BitwiseCRC(spec).process_bits(register, bits[full:])
        return spec.finalize(register)

    def chunks_for(self, message_bits: int) -> int:
        return message_bits // self.M


def map_crc(
    spec: CRCSpec,
    M: int,
    method: str = "derby",
    arch: PicogaArchitecture = DREAM_PICOGA,
    use_cse: bool = True,
    f: Optional[np.ndarray] = None,
) -> MappedCRC:
    """Compile an M-bit-parallel CRC onto the array (see module docstring)."""
    if method not in ("derby", "direct"):
        raise ValueError("method must be 'derby' or 'direct'")
    if M < 1:
        raise ValueError("M must be >= 1")
    ss = crc_statespace(spec.generator())
    k = spec.width

    if method == "derby":
        dt = derby_transform(ss, M, f=f)
        state_matrix, input_matrix = dt.A_Mt, _stream_order_columns(dt.B_Mt)
        t_matrix: Optional[GF2Matrix] = dt.T
        transform: Optional[DerbyTransform] = dt
    else:
        la = expand_lookahead(ss, M)
        state_matrix, input_matrix = la.A_M, _stream_order_columns(la.B_M)
        t_matrix = None
        transform = None

    update_eqs = recurrence_equations(state_matrix, input_matrix)
    cse = extract_common_patterns(update_eqs, max_width=arch.xor_fanin) if use_cse else no_cse(update_eqs)
    packed = pack_equations(cse, fanin=arch.xor_fanin)
    outputs: List[Net] = [] if method == "derby" else list(packed.output_nets)
    update_op = PicogaOperation(
        name=f"crc{k}_update_M{M}_{method}",
        n_inputs=M,
        n_state=k,
        cells=packed.cells,
        outputs=outputs,
        next_state=packed.output_nets,
        arch=arch,
    )

    output_op = None
    out_cells = out_rows = 0
    out_taps_before = out_taps_after = 0
    out_shared = 0
    if t_matrix is not None:
        t_eqs = equations_from_matrix(t_matrix, NetKind.INPUT, "y")
        t_cse = extract_common_patterns(t_eqs, max_width=arch.xor_fanin) if use_cse else no_cse(t_eqs)
        t_packed = pack_equations(t_cse, fanin=arch.xor_fanin)
        output_op = PicogaOperation(
            name=f"crc{k}_output_M{M}",
            n_inputs=k,
            n_state=0,
            cells=t_packed.cells,
            outputs=t_packed.output_nets,
            next_state=[],
            arch=arch,
        )
        out_cells, out_rows = output_op.n_cells, output_op.n_rows
        out_taps_before, out_taps_after = t_cse.taps_before, t_cse.taps_after
        out_shared = len(t_cse.shared)

    report = MappingReport(
        method=method,
        M=M,
        taps_before_cse=cse.taps_before + out_taps_before,
        taps_after_cse=cse.taps_after + out_taps_after,
        shared_patterns=len(cse.shared) + out_shared,
        update_cells=update_op.n_cells,
        update_rows=update_op.n_rows,
        update_ii=update_op.initiation_interval,
        output_cells=out_cells,
        output_rows=out_rows,
    )
    return MappedCRC(
        spec=spec,
        M=M,
        method=method,
        update_op=update_op,
        output_op=output_op,
        transform=transform,
        report=report,
    )


@dataclass
class MappedScrambler:
    """An additive scrambler compiled to a single PGAOP."""

    spec: ScramblerSpec
    M: int
    transformed: bool
    op: PicogaOperation
    transform: Optional[DerbyTransform]
    report: MappingReport

    def initial_state_bits(self, seed: Optional[int] = None) -> List[int]:
        ss = scrambler_statespace(self.spec.poly)
        natural = ss.state_from_int(self.spec.seed if seed is None else seed)
        if self.transform is not None:
            return [int(b) for b in self.transform.to_transformed(natural)]
        return [int(b) for b in natural]

    def scramble_bits(self, bits: Sequence[int], seed: Optional[int] = None) -> List[int]:
        """Functional block scrambling through the compiled netlist."""
        state = self.initial_state_bits(seed)
        out: List[int] = []
        n = len(bits)
        for off in range(0, n, self.M):
            chunk = list(bits[off : off + self.M])
            pad = self.M - len(chunk)
            outs, state = self.op.evaluate(state, chunk + [0] * pad)
            out.extend(outs[: len(chunk)])
        return out


def map_scrambler(
    spec: ScramblerSpec,
    M: int,
    arch: PicogaArchitecture = DREAM_PICOGA,
    use_transform: bool = True,
    use_cse: bool = True,
) -> MappedScrambler:
    """Compile an M-bit additive scrambler (data in -> scrambled data out)."""
    if M < 1:
        raise ValueError("M must be >= 1")
    ss = scrambler_statespace(spec.poly)
    k = spec.degree
    Y = scrambler_output_matrix(ss, M)  # M x k, natural basis
    if use_transform:
        dt = derby_transform(ss, M)
        state_matrix = dt.A_Mt
        out_matrix = Y @ dt.T  # absorb the anti-transformation
        transform: Optional[DerbyTransform] = dt
    else:
        state_matrix = ss.A ** M
        out_matrix = Y
        transform = None

    # State-update equations (loop) stay raw; only the feed-forward output
    # bank goes through pattern sharing.
    state_eqs = equations_from_matrix(state_matrix, NetKind.STATE, "x")
    out_state_eqs = equations_from_matrix(out_matrix, NetKind.STATE, "ks")
    out_eqs = [
        XorEquation(name=f"y{j}", leaves=eq.leaves | {Net(NetKind.INPUT, j)})
        for j, eq in enumerate(out_state_eqs)
    ]
    out_cse = (
        extract_common_patterns(out_eqs, max_width=arch.xor_fanin, share_state=True)
        if use_cse
        else no_cse(out_eqs)
    )
    combined = CSEResult(
        equations=list(out_cse.equations) + state_eqs,
        shared=out_cse.shared,
        taps_before=out_cse.taps_before + sum(max(e.weight - 1, 0) for e in state_eqs),
        taps_after=out_cse.taps_after + sum(max(e.weight - 1, 0) for e in state_eqs),
    )
    packed = pack_equations(combined, fanin=arch.xor_fanin)
    out_nets = packed.output_nets[: len(out_eqs)]
    state_nets = packed.output_nets[len(out_eqs) :]
    op = PicogaOperation(
        name=f"scrambler{k}_M{M}" + ("_t" if use_transform else ""),
        n_inputs=M,
        n_state=k,
        cells=packed.cells,
        outputs=out_nets,
        next_state=state_nets,
        arch=arch,
    )
    report = MappingReport(
        method="derby" if use_transform else "direct",
        M=M,
        taps_before_cse=combined.taps_before,
        taps_after_cse=combined.taps_after,
        shared_patterns=len(combined.shared),
        update_cells=op.n_cells,
        update_rows=op.n_rows,
        update_ii=op.initiation_interval,
    )
    return MappedScrambler(
        spec=spec, M=M, transformed=use_transform, op=op, transform=transform, report=report
    )
