"""Design-space exploration over the look-ahead factor (paper §4).

The authors "generated PiCoGA operations for different values of M, finding
that PiCoGA is able to elaborate up to 128 bit per cycle".  The explorer
automates that investigation: it sweeps M, compiles each point, checks
array feasibility (rows, cells, I/O) and reports resources, II and kernel
bandwidth, plus the empirical f-vector sensitivity study the paper
describes (different choices of the transformation seed f barely change the
complexity of T — they settled on f = e_0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.crc.spec import CRCSpec
from repro.lfsr.statespace import crc_statespace
from repro.lfsr.transform import TransformError, derby_transform
from repro.mapping.mapper import MappedCRC, map_crc
from repro.picoga.architecture import DREAM_PICOGA, PicogaArchitecture

DEFAULT_SWEEP = (2, 4, 8, 16, 32, 64, 128, 256)


@dataclass
class DesignPoint:
    """One (M, method) compilation outcome."""

    M: int
    method: str
    feasible: bool
    reason: str = ""
    cells: int = 0
    rows: int = 0
    initiation_interval: int = 0
    bits_per_cycle: float = 0.0
    kernel_gbps: float = 0.0
    mapped: Optional[MappedCRC] = None


class DesignSpaceExplorer:
    """Sweep look-ahead factors for a CRC on a given array."""

    def __init__(self, spec: CRCSpec, arch: PicogaArchitecture = DREAM_PICOGA):
        self.spec = spec
        self.arch = arch

    def evaluate(self, M: int, method: str = "derby", keep_mapping: bool = False) -> DesignPoint:
        try:
            mapped = map_crc(self.spec, M, method=method, arch=self.arch)
        except ValueError as exc:
            return DesignPoint(M=M, method=method, feasible=False, reason=str(exc))
        report = mapped.report
        total_cells = report.total_cells
        if total_cells > self.arch.total_cells:
            return DesignPoint(
                M=M,
                method=method,
                feasible=False,
                reason=f"{total_cells} cells exceed the {self.arch.total_cells}-cell array",
                cells=total_cells,
                rows=report.update_rows,
                initiation_interval=report.update_ii,
            )
        ii = report.update_ii
        bits_per_cycle = M / ii
        return DesignPoint(
            M=M,
            method=method,
            feasible=True,
            cells=total_cells,
            rows=report.update_rows,
            initiation_interval=ii,
            bits_per_cycle=bits_per_cycle,
            kernel_gbps=bits_per_cycle * self.arch.clock_hz / 1e9,
            mapped=mapped if keep_mapping else None,
        )

    def sweep(
        self, factors: Sequence[int] = DEFAULT_SWEEP, method: str = "derby"
    ) -> List[DesignPoint]:
        return [self.evaluate(M, method=method) for M in factors]

    def max_feasible_m(
        self, factors: Sequence[int] = DEFAULT_SWEEP, method: str = "derby"
    ) -> int:
        best = 0
        for point in self.sweep(factors, method=method):
            if point.feasible:
                best = max(best, point.M)
        return best

    # ------------------------------------------------------------------
    def f_vector_study(self, M: int, candidates: int = 8) -> Dict[str, int]:
        """Complexity of T for different transformation vectors f.

        Returns {label: nnz(T) + nnz(B_Mt)} for each usable candidate —
        the paper's empirical finding is that the spread is negligible,
        justifying f = e_0.
        """
        ss = crc_statespace(self.spec.generator())
        k = self.spec.width
        results: Dict[str, int] = {}
        tried = 0
        # Unit vectors first.
        for i in range(k):
            if tried >= candidates:
                break
            f = np.zeros(k, dtype=np.uint8)
            f[i] = 1
            try:
                dt = derby_transform(ss, M, f=f)
            except TransformError:
                continue
            results[f"e{i}"] = dt.T.nnz() + dt.B_Mt.nnz()
            tried += 1
        rng = np.random.default_rng(0xF0)
        attempts = 0
        while tried < candidates and attempts < 10 * candidates:
            attempts += 1
            f = rng.integers(0, 2, size=k, dtype=np.uint8)
            if not f.any():
                continue
            try:
                dt = derby_transform(ss, M, f=f)
            except TransformError:
                continue
            results[f"rand{tried}"] = dt.T.nnz() + dt.B_Mt.nnz()
            tried += 1
        return results
