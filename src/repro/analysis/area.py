"""Area-efficiency analysis (paper §3/§5).

Two of the paper's quantitative side-claims live here:

* PiCoGA occupies ~11 mm² in ST 90 nm and DREAM averages ~2 GOPS/mm²
  (§3, figures of merit from [5]);
* "the area increase due to a reconfigurable datapath, that can be
  estimated in 10x the area of a basic processor, is returned by an
  adequate performance improvement, also for short messages" (§5).

:class:`AreaModel` makes the second claim checkable: compare
bandwidth-per-area of DREAM (RISC + PiCoGA) against the same RISC running
the software CRC.  Because DREAM's CRC speed-up exceeds 10x for all but
the shortest messages (Table 1), the area is "returned".
"""

from __future__ import annotations

from dataclasses import dataclass

#: ST 90 nm figures: PiCoGA array area and a small embedded RISC core
#: (STxP70-class with caches) — the paper's "basic processor" unit.
PICOGA_MM2 = 11.0
RISC_MM2 = 1.1


@dataclass(frozen=True)
class AreaModel:
    """Silicon-area bookkeeping for the DREAM-vs-RISC comparison."""

    picoga_mm2: float = PICOGA_MM2
    risc_mm2: float = RISC_MM2

    def __post_init__(self):
        if self.picoga_mm2 <= 0 or self.risc_mm2 <= 0:
            raise ValueError("areas must be positive")

    @property
    def dream_mm2(self) -> float:
        """The full adaptive DSP: control core plus the array."""
        return self.risc_mm2 + self.picoga_mm2

    @property
    def area_ratio(self) -> float:
        """DREAM area over the basic processor — the paper's ~10x."""
        return self.dream_mm2 / self.risc_mm2

    # ------------------------------------------------------------------
    def dream_bps_per_mm2(self, throughput_bps: float) -> float:
        if throughput_bps < 0:
            raise ValueError("throughput must be >= 0")
        return throughput_bps / self.dream_mm2

    def risc_bps_per_mm2(self, throughput_bps: float) -> float:
        if throughput_bps < 0:
            raise ValueError("throughput must be >= 0")
        return throughput_bps / self.risc_mm2

    def area_returned(self, dream_bps: float, risc_bps: float) -> bool:
        """The §5 criterion: does DREAM deliver more bandwidth *per mm²*
        than the plain processor, despite being ~10x larger?"""
        return self.dream_bps_per_mm2(dream_bps) > self.risc_bps_per_mm2(risc_bps)

    def speedup_needed(self) -> float:
        """Minimum speed-up at which the extra area pays for itself."""
        return self.area_ratio

    def gops_per_mm2(self, xor2_ops_per_cycle: float, clock_hz: float = 200e6) -> float:
        """Array compute density in 2-input-XOR-equivalent GOPS/mm²,
        comparable to the §3 'average 2 GOPS/mm²' figure of merit."""
        if xor2_ops_per_cycle < 0:
            raise ValueError("ops per cycle must be >= 0")
        return xor2_ops_per_cycle * clock_hz / 1e9 / self.picoga_mm2
