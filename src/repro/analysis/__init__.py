"""Reporting helpers: throughput conventions, speed-up grids, the Fig. 7
energy model and table formatting shared by benches and examples."""

from repro.analysis.area import PICOGA_MM2, RISC_MM2, AreaModel
from repro.analysis.energy import RISC_PJ_PER_BIT, EnergyModel
from repro.analysis.speedup import SpeedupEntry, as_table, kernel_speedup, speedup_grid
from repro.analysis.tables import format_multi_series, format_series, format_table
from repro.analysis.throughput import (
    ETHERNET_MAX_BITS,
    ETHERNET_MIN_BITS,
    PAPER_FACTORS,
    bps_from_cycles,
    efficiency,
    gbps,
    in_ethernet_window,
    message_length_sweep,
)

__all__ = [
    "AreaModel",
    "ETHERNET_MAX_BITS",
    "PICOGA_MM2",
    "RISC_MM2",
    "ETHERNET_MIN_BITS",
    "EnergyModel",
    "PAPER_FACTORS",
    "RISC_PJ_PER_BIT",
    "SpeedupEntry",
    "as_table",
    "bps_from_cycles",
    "efficiency",
    "format_multi_series",
    "format_series",
    "format_table",
    "gbps",
    "in_ethernet_window",
    "kernel_speedup",
    "message_length_sweep",
    "speedup_grid",
]
