"""Throughput conventions shared by the benchmark harness.

Includes the Ethernet message-length window the paper marks on Fig. 4:
IEEE 802.3 frames span 46..1518 payload+header bytes — 368 to 12 144 bits —
which is where the single-message overhead story plays out.
"""

from __future__ import annotations

from typing import List

#: IEEE 802.3 message-length window highlighted in the paper's Fig. 4.
ETHERNET_MIN_BITS = 368
ETHERNET_MAX_BITS = 12144

#: Look-ahead factors the paper evaluates on DREAM.
PAPER_FACTORS = (8, 16, 32, 64, 128)


def bps_from_cycles(payload_bits: int, cycles: float, clock_hz: float) -> float:
    """Sustained bandwidth for a payload processed in ``cycles`` clocks."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return payload_bits * clock_hz / cycles


def gbps(value_bps: float) -> float:
    return value_bps / 1e9


def efficiency(actual_bps: float, peak_bps: float) -> float:
    """Fraction of the kernel (overhead-free) bandwidth achieved."""
    if peak_bps <= 0:
        raise ValueError("peak bandwidth must be positive")
    return actual_bps / peak_bps


def message_length_sweep(
    start_bits: int = 64, stop_bits: int = 65536, points_per_octave: int = 2
) -> List[int]:
    """Geometric message-length grid, always including the Ethernet window
    endpoints (the x-axis of Figs. 4/5/7)."""
    if start_bits < 1 or stop_bits < start_bits:
        raise ValueError("need 1 <= start <= stop")
    lengths = []
    value = float(start_bits)
    ratio = 2 ** (1.0 / points_per_octave)
    while value <= stop_bits:
        lengths.append(int(round(value)))
        value *= ratio
    for marker in (ETHERNET_MIN_BITS, ETHERNET_MAX_BITS):
        if start_bits <= marker <= stop_bits and marker not in lengths:
            lengths.append(marker)
    return sorted(set(lengths))


def in_ethernet_window(length_bits: int) -> bool:
    return ETHERNET_MIN_BITS <= length_bits <= ETHERNET_MAX_BITS
