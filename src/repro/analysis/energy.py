"""Energy model for Fig. 7 (energy efficiency vs message length and M).

The paper reports the RISC reference at ~400 pJ/bit (length-independent)
and DREAM at 5-60× less in 90 nm, the ratio depending on message length and
look-ahead factor.  We reproduce that with a three-component model:

``E(message) = issue_cycles * active_cells * e_cell
             + total_cycles * e_array_base
             + control_cycles * e_risc_cycle``

* ``e_cell`` — switching energy of one active RLC per issued block;
* ``e_array_base`` — array-wide per-cycle cost (clock tree, pipeline
  registers, idle cells);
* ``e_risc_cycle`` — the control processor, also the anchor for the
  400 pJ/bit software figure (8 cycles/bit × 50 pJ/cycle).

Defaults are calibrated to land the best case (M = 128, long messages)
near ~8 pJ/bit (≈50× better than the RISC) and short-message cases near
~45 pJ/bit (≈9×), inside the paper's 5-60× band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dream.system import PerformanceResult
from repro.mapping.mapper import MappedCRC, MappedScrambler

#: The paper's reference figure for software CRC on an embedded RISC.
RISC_PJ_PER_BIT = 400.0


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy charges (90 nm calibration)."""

    e_cell_pj: float = 3.0
    e_array_base_pj: float = 100.0
    e_risc_cycle_pj: float = 50.0

    def dream_message_energy_pj(
        self, active_cells: int, perf: PerformanceResult
    ) -> float:
        """Energy of one accelerated workload from its cycle breakdown."""
        issue = perf.cycles.get("issue", 0) + perf.cycles.get("finalize", 0)
        control = perf.cycles.get("control", 0)
        return (
            issue * active_cells * self.e_cell_pj
            + perf.total_cycles * self.e_array_base_pj
            + control * self.e_risc_cycle_pj
        )

    def dream_pj_per_bit(self, active_cells: int, perf: PerformanceResult) -> float:
        if perf.payload_bits < 1:
            raise ValueError("payload must contain at least one bit")
        return self.dream_message_energy_pj(active_cells, perf) / perf.payload_bits

    # ------------------------------------------------------------------
    def crc_pj_per_bit(self, mapped: MappedCRC, perf: PerformanceResult) -> float:
        cells = mapped.report.total_cells
        return self.dream_pj_per_bit(cells, perf)

    def measured_crc_pj_per_bit(self, mapped: MappedCRC, data: bytes,
                                perf: PerformanceResult) -> float:
        """Activity-measured variant: instead of charging every cell every
        block, count the toggles the netlist actually produces on ``data``
        (dynamic energy ∝ switching activity).  One toggle is charged
        ``2 * e_cell`` so that the analytic model — which charges every
        cell at the ~50% activity of random data — is its expectation."""
        from repro.picoga.activity import measure_crc_activity

        report = measure_crc_activity(mapped, data)
        if perf.payload_bits < 1:
            raise ValueError("payload must contain at least one bit")
        dynamic = report.cell_toggles * 2.0 * self.e_cell_pj
        base = perf.total_cycles * self.e_array_base_pj
        control = perf.cycles.get("control", 0) * self.e_risc_cycle_pj
        return (dynamic + base + control) / perf.payload_bits

    def scrambler_pj_per_bit(self, mapped: MappedScrambler, perf: PerformanceResult) -> float:
        return self.dream_pj_per_bit(mapped.report.update_cells, perf)

    def advantage_vs_risc(self, dream_pj_per_bit: float) -> float:
        """The paper's headline ratio (RISC ≈ 400 pJ/bit)."""
        if dream_pj_per_bit <= 0:
            raise ValueError("energy per bit must be positive")
        return RISC_PJ_PER_BIT / dream_pj_per_bit
