"""Plain-text table/series formatting shared by benches and examples."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width ASCII table (the benches print paper-style rows)."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_series(series: Mapping[object, float], x_label: str, y_label: str, title: str = "") -> str:
    """One (x, y) series as a two-column table (a paper figure's data)."""
    rows = [[x, y] for x, y in series.items()]
    return format_table([x_label, y_label], rows, title=title)


def format_multi_series(
    x_values: Sequence[object],
    series: Mapping[str, Mapping[object, float]],
    x_label: str,
    title: str = "",
) -> str:
    """Several named series over a shared x-axis (a multi-curve figure)."""
    headers = [x_label] + list(series.keys())
    rows = []
    for x in x_values:
        rows.append([x] + [series[name].get(x, float("nan")) for name in series])
    return format_table(headers, rows, title=title)
