"""Speed-up computations for Table 1."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.baselines.risc_crc import RiscCostModel
from repro.dream.system import DreamSystem
from repro.mapping.mapper import MappedCRC


@dataclass(frozen=True)
class SpeedupEntry:
    """One Table 1 cell: message length × look-ahead factor."""

    message_bits: int
    M: int
    dream_cycles: int
    risc_cycles: float
    speedup: float


def speedup_grid(
    system: DreamSystem,
    mappings: Sequence[MappedCRC],
    message_lengths: Sequence[int],
    algorithm: str = "table",
    cost: RiscCostModel = RiscCostModel(),
) -> List[SpeedupEntry]:
    """DREAM (single-message, all overheads) vs software on a 200 MHz RISC."""
    entries: List[SpeedupEntry] = []
    for mapped in mappings:
        for bits in message_lengths:
            perf = system.crc_single_performance(mapped, bits)
            sw = cost.cycles(algorithm, bits)
            entries.append(
                SpeedupEntry(
                    message_bits=bits,
                    M=mapped.M,
                    dream_cycles=perf.total_cycles,
                    risc_cycles=sw,
                    speedup=sw / perf.total_cycles,
                )
            )
    return entries


def kernel_speedup(system: DreamSystem, mapped: MappedCRC, algorithm: str = "bitwise",
                   cost: RiscCostModel = RiscCostModel()) -> float:
    """Overhead-free speed-up (the paper's 'three orders of magnitude' is
    this number against the bit-serial software CRC)."""
    bits_per_cycle = mapped.M / mapped.update_op.initiation_interval
    dream_bps = bits_per_cycle * system.arch.clock_hz
    return dream_bps / cost.peak_throughput_bps(algorithm)


def as_table(entries: Sequence[SpeedupEntry]) -> Dict[int, Dict[int, float]]:
    """{message_bits: {M: speedup}} — the Table 1 layout."""
    table: Dict[int, Dict[int, float]] = {}
    for e in entries:
        table.setdefault(e.message_bits, {})[e.M] = e.speedup
    return table
