"""repro — reproduction of *Implementation of Parallel LFSR-based
Applications on an Adaptive DSP featuring a Pipelined Configurable Gate
Array* (Mucci et al., DATE 2008).

Package map
-----------
``repro.gf2``        GF(2) matrices, polynomials, carry-less arithmetic.
``repro.lfsr``       LFSR state-space theory, look-ahead, Derby transform.
``repro.crc``        CRC spec catalog and six independent CRC engines.
``repro.scrambler``  Additive/multiplicative scramblers and PRBS generators.
``repro.cipher``     LFSR stream ciphers (A5/1, E0, CSS).
``repro.picoga``     Functional + cycle-level PiCoGA simulator.
``repro.mapping``    Matrix-to-PiCoGA mapping toolchain (the "Matlab program").
``repro.dream``      DREAM system model (RISC control + PiCoGA execution).
``repro.baselines``  Software-CRC, ASIC (UCRC) and theory baselines.
``repro.analysis``   Throughput / speed-up / energy reporting helpers.
``repro.engine``     Batch/streaming execution layer with a compile cache.
``repro.telemetry``  Metrics registry, span tracing, exporters.
``repro.errors``     Typed exception taxonomy rooted at ``ReproError``.
``repro.validation`` Argument checking shared by every public entry point.
``repro.verify``     Cross-engine differential fuzzing and shrinking.
"""

__version__ = "1.0.0"
