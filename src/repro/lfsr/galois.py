"""Fibonacci ↔ Galois LFSR transformation with matching initial states.

The paper's Derby transformation (§2) buys a shallow feedback path in
hardware by moving XOR work off the critical loop; Dubrova's
transformation (PAPERS.md, *"An Equivalence-Preserving Transformation of
Shift Registers"* and *"Finding Matching Initial States"*) is the software
analogue for plain LFSRs: a Fibonacci (many-to-one) register and a Galois
(one-to-many) register with the same generator polynomial emit the *same*
output sequence — provided the initial states are matched correctly.  The
Galois form's feedback fans *out* (one bit XORed into many positions, each
a 2-input XOR) instead of fanning *in* (a wide XOR tree), which is exactly
why every fast engine in this library — `GaloisLFSR`, the companion-matrix
blockwise paths, the CRC kernels — already runs the Galois configuration.

This module supplies the missing bridge.  Both configurations are
autonomous linear systems over GF(2)::

    x(n+1) = A x(n)        y(n) = c · x(n)

and two observable systems produce identical outputs iff their states map
through the observability matrices: with ``O`` stacking the rows
``c·A^t`` for ``t = 0..k-1``, the output sequence from state ``s`` starts
with ``O s``; since a degree-``k`` LFSR sequence is determined by ``k``
consecutive bits, matching states solve::

    O_dst · s_dst = O_src · s_src

— one :meth:`~repro.gf2.matrix.GF2Matrix.solve` call.  Both observability
matrices are invertible whenever the generator has a non-zero constant
term, so the conversion works in either direction and round-trips exactly.

One wrinkle of this library's register conventions (inherited from the
classic CRC shift direction): ``FibonacciLFSR(g)`` taps positions straight
from ``g``'s exponents, which realizes the recurrence of the *reciprocal*
polynomial — ``tests/test_lfsr_reference.py`` pins this down.  The Galois
twin of a Fibonacci register therefore runs ``g.reciprocal()`` and vice
versa; the conversion helpers below take the **source** register's
polynomial and return a state for the destination register running the
reciprocal.  (Reciprocal-of-reciprocal is the identity, so round trips
still compose cleanly.)

Two output taps matter in this library:

* the *keystream* tap ``c = e_{k-1}`` (the MSB both
  :class:`~repro.lfsr.reference.FibonacciLFSR` and
  :class:`~repro.lfsr.reference.GaloisLFSR` emit) — used by the additive
  scramblers;
* the *feedback sum* tap read by the multiplicative (self-synchronizing)
  scrambler's delay line, where the zero-input output is the XOR of the
  tapped delay cells.

Both are handled by the same generic :func:`matching_state`; the
``fibonacci_to_galois_state`` / ``galois_to_fibonacci_state`` pair covers
the keystream case and the ``multiplicative_*`` pair covers the scrambler
case.  `repro.scrambler` uses these to run every catalog spec in
shallow-feedback Galois form bit-exact against the Fibonacci reference
(see ``tests/test_lfsr_galois.py`` and the ``galois:fibonacci-vs-galois``
fuzz oracle).
"""

from __future__ import annotations

import numpy as np

from repro.gf2.bits import bits_to_int, int_to_bits
from repro.gf2.matrix import GF2Matrix
from repro.gf2.polynomial import GF2Polynomial
from repro.lfsr.companion import companion_matrix

__all__ = [
    "fibonacci_state_matrix",
    "keystream_output_vector",
    "multiplicative_output_vector",
    "observability_matrix",
    "matching_state",
    "fibonacci_to_galois_state",
    "galois_to_fibonacci_state",
    "multiplicative_fibonacci_to_galois_state",
    "multiplicative_galois_to_fibonacci_state",
]


def fibonacci_state_matrix(poly: GF2Polynomial) -> GF2Matrix:
    """State-update matrix of :class:`~repro.lfsr.reference.FibonacciLFSR`.

    That register shifts toward the MSB and feeds the tap XOR into bit 0:
    new bit ``j`` is old bit ``j-1`` for ``j >= 1`` and new bit 0 is the
    XOR of the tapped positions ``t-1`` for each tap exponent ``t``.
    """
    k = poly.degree
    if k < 1:
        raise ValueError("polynomial must have degree >= 1")
    if not poly.coefficient(0):
        raise ValueError("Fibonacci form needs a non-zero constant term")
    a = np.zeros((k, k), dtype=np.uint8)
    for j in range(1, k):
        a[j, j - 1] = 1
    for t in range(1, k + 1):
        if t == k or poly.coefficient(t):
            a[0, t - 1] ^= 1
    return GF2Matrix(a)


def keystream_output_vector(poly: GF2Polynomial) -> np.ndarray:
    """The keystream tap ``c = e_{k-1}``: both reference registers emit
    their MSB, so the same output vector serves both configurations."""
    k = poly.degree
    c = np.zeros(k, dtype=np.uint8)
    c[k - 1] = 1
    return c


def multiplicative_output_vector(poly: GF2Polynomial) -> np.ndarray:
    """Zero-input output tap of the Fibonacci multiplicative scrambler.

    The delay-line form computes each output as the XOR of the tapped
    cells (positions ``t-1`` for tap exponents ``t``), so its autonomous
    output vector is the sum of those unit vectors rather than a single
    state bit.
    """
    k = poly.degree
    if not poly.coefficient(0):
        raise ValueError("multiplicative form needs a non-zero constant term")
    c = np.zeros(k, dtype=np.uint8)
    for t in range(1, k + 1):
        if t == k or poly.coefficient(t):
            c[t - 1] ^= 1
    return c


def observability_matrix(a: GF2Matrix, c: np.ndarray, rows: int = 0) -> GF2Matrix:
    """Stack the output rows ``c·A^t`` for ``t = 0..rows-1``.

    Row ``t`` maps a state to the output emitted ``t`` steps later, so
    ``O s`` is the start of the output sequence from ``s``.  ``rows``
    defaults to the state dimension, the square case used for matching.
    """
    k = a.nrows
    if rows <= 0:
        rows = k
    c = np.asarray(c, dtype=np.uint8) & 1
    if c.shape != (k,):
        raise ValueError(f"output vector must have shape ({k},)")
    out = np.zeros((rows, k), dtype=np.uint8)
    row = c.copy()
    at = a.transpose()
    for t in range(rows):
        out[t] = row
        row = at @ row  # c · A^(t+1)  ==  (A^T · (c·A^t)^T)^T
    return GF2Matrix(out)


def matching_state(
    a_src: GF2Matrix,
    c_src: np.ndarray,
    a_dst: GF2Matrix,
    c_dst: np.ndarray,
    state: np.ndarray,
) -> np.ndarray:
    """Dubrova's matching initial state, as one linear solve.

    Given source and destination systems ``(A, c)`` and a source state,
    returns the destination state whose output sequence is identical,
    solving ``O_dst s_dst = O_src s_src`` with
    :meth:`GF2Matrix.solve <repro.gf2.matrix.GF2Matrix.solve>`.  Raises
    ``ValueError`` (singular matrix) if the destination system is not
    observable.
    """
    state = np.asarray(state, dtype=np.uint8) & 1
    o_src = observability_matrix(a_src, c_src)
    o_dst = observability_matrix(a_dst, c_dst)
    return o_dst.solve(o_src @ state)


def _as_bits(poly: GF2Polynomial, state: int) -> np.ndarray:
    k = poly.degree
    if state >> k:
        raise ValueError(f"state {state:#x} wider than {k} bits")
    return np.array(int_to_bits(state, k), dtype=np.uint8)


def _as_int(bits: np.ndarray) -> int:
    return bits_to_int([int(v) for v in bits])


def galois_to_fibonacci_state(galois_poly: GF2Polynomial, state: int) -> int:
    """Fibonacci state matching ``GaloisLFSR(galois_poly, state)``.

    The returned register seeds ``FibonacciLFSR(galois_poly.reciprocal())``
    — the two configurations realize *reciprocal* characteristic
    polynomials in this library's conventions (see
    ``tests/test_lfsr_reference.py``), so the Fibonacci twin of a Galois
    register runs the bit-reversed generator.  With the matched state the
    keystreams are identical bit-for-bit, forever.
    """
    recip = galois_poly.reciprocal()
    bits = _as_bits(galois_poly, state)
    out = matching_state(
        companion_matrix(galois_poly),
        keystream_output_vector(galois_poly),
        fibonacci_state_matrix(recip),
        keystream_output_vector(recip),
        bits,
    )
    return _as_int(out)


def fibonacci_to_galois_state(fibonacci_poly: GF2Polynomial, state: int) -> int:
    """Galois state matching ``FibonacciLFSR(fibonacci_poly, state)``.

    The returned register seeds ``GaloisLFSR(fibonacci_poly.reciprocal())``
    (the shallow-feedback form); inverse of
    :func:`galois_to_fibonacci_state`, and an exact round trip.
    """
    recip = fibonacci_poly.reciprocal()
    bits = _as_bits(fibonacci_poly, state)
    out = matching_state(
        fibonacci_state_matrix(fibonacci_poly),
        keystream_output_vector(fibonacci_poly),
        companion_matrix(recip),
        keystream_output_vector(recip),
        bits,
    )
    return _as_int(out)


def multiplicative_fibonacci_to_galois_state(poly: GF2Polynomial, state: int) -> int:
    """Galois-scrambler register matching a Fibonacci delay-line state.

    ``state`` is the :class:`~repro.scrambler.multiplicative.MultiplicativeScrambler`
    register for generator ``poly`` (bit ``j`` = the scrambled bit from
    ``j+1`` clocks ago); the result seeds the Galois-form scrambler —
    which runs taps ``poly.reciprocal()``, mirroring the keystream case —
    so both emit identical bits for *every* input: the transfer functions
    already agree, and the matched state aligns the free response.
    """
    recip = poly.reciprocal()
    bits = _as_bits(poly, state)
    out = matching_state(
        fibonacci_state_matrix(poly),
        multiplicative_output_vector(poly),
        companion_matrix(recip),
        keystream_output_vector(recip),
        bits,
    )
    return _as_int(out)


def multiplicative_galois_to_fibonacci_state(galois_poly: GF2Polynomial, state: int) -> int:
    """Inverse of :func:`multiplicative_fibonacci_to_galois_state`.

    ``galois_poly`` is the polynomial the *Galois* register runs (the
    reciprocal of the delay line's generator); the result seeds
    ``MultiplicativeScrambler(galois_poly.reciprocal())``.
    """
    recip = galois_poly.reciprocal()
    bits = _as_bits(galois_poly, state)
    out = matching_state(
        companion_matrix(galois_poly),
        keystream_output_vector(galois_poly),
        fibonacci_state_matrix(recip),
        multiplicative_output_vector(recip),
        bits,
    )
    return _as_int(out)
