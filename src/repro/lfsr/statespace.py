"""The unified LFSR state-space model (paper §2, Fig. 1).

The paper expresses both the CRC and the scrambler as one linear system over
GF(2)::

    x(n+1) = A x(n) + b u(n)
    y(n)   = C x(n) + d u(n)

* CRC:       ``b = g`` (the generator taps), ``C = I``, ``d = 0`` — input
  bits are folded into the feedback; the checksum is the final state.
* Scrambler: ``b = 0`` (autonomous register), ``C`` selects a state bit,
  ``d = [1]`` — the output correlates the keystream bit with the input.

:class:`LFSRStateSpace` holds (A, b, C, d) and provides serial stepping and
simulation; the look-ahead and Derby machinery operate on these objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.gf2.bits import bits_to_int, int_to_bits
from repro.gf2.matrix import GF2Matrix
from repro.gf2.polynomial import GF2Polynomial
from repro.lfsr.companion import companion_matrix, companion_taps


@dataclass(frozen=True)
class LFSRStateSpace:
    """The quadruple (A, b, C, d) of the paper's generic LFSR application.

    ``A`` is k×k, ``b`` length-k, ``C`` is p×k (p output bits per step,
    usually 1 or k), ``d`` length-p.
    """

    A: GF2Matrix
    b: np.ndarray
    C: GF2Matrix
    d: np.ndarray
    poly: Optional[GF2Polynomial] = None

    def __post_init__(self):
        k = self.A.nrows
        if not self.A.is_square():
            raise ValueError("A must be square")
        if self.b.shape != (k,):
            raise ValueError(f"b must have shape ({k},)")
        if self.C.ncols != k:
            raise ValueError(f"C must have {k} columns")
        if self.d.shape != (self.C.nrows,):
            raise ValueError(f"d must have shape ({self.C.nrows},)")

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """State dimension k (degree of the generator polynomial)."""
        return self.A.nrows

    @property
    def output_width(self) -> int:
        """Output bits per clock (rows of C)."""
        return self.C.nrows

    # ------------------------------------------------------------------
    def step(self, state: np.ndarray, u: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        """One serial clock: returns ``(next_state, output_bits)``."""
        state = np.asarray(state, dtype=np.uint8)
        y = (self.C @ state) ^ (self.d * (u & 1))
        nxt = (self.A @ state) ^ (self.b * (u & 1))
        return nxt.astype(np.uint8), y.astype(np.uint8)

    def simulate(
        self, state: np.ndarray, inputs: Sequence[int]
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Run the serial recurrence over an input bit sequence.

        Returns the final state and the per-step output vectors.
        """
        outputs: List[np.ndarray] = []
        s = np.asarray(state, dtype=np.uint8)
        for u in inputs:
            s, y = self.step(s, u)
            outputs.append(y)
        return s, outputs

    def run_autonomous(self, state: np.ndarray, steps: int) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Clock the register ``steps`` times with u = 0 (keystream mode)."""
        return self.simulate(state, [0] * steps)

    # ------------------------------------------------------------------
    def state_from_int(self, value: int) -> np.ndarray:
        """Unpack a register integer into a state vector (bit i -> x_i)."""
        return np.array(int_to_bits(value, self.order), dtype=np.uint8)

    def state_to_int(self, state: np.ndarray) -> int:
        """Pack a state vector back into a register integer (bit i <- x_i)."""
        return bits_to_int([int(v) for v in state])


def crc_statespace(poly: GF2Polynomial) -> LFSRStateSpace:
    """CRC system: ``x(n+1) = A x(n) + g u(n)``, ``y(n) = x(n)``.

    One :meth:`LFSRStateSpace.step` is the textbook MSB-first CRC update
    ``fb = msb ^ u; reg = (reg << 1) ^ (fb ? poly : 0)`` on the state
    integer.
    """
    A = companion_matrix(poly)
    b = companion_taps(poly)
    k = poly.degree
    return LFSRStateSpace(
        A=A,
        b=b,
        C=GF2Matrix.identity(k),
        d=np.zeros(k, dtype=np.uint8),
        poly=poly,
    )


def scrambler_statespace(poly: GF2Polynomial, output_tap: Optional[int] = None) -> LFSRStateSpace:
    """Additive scrambler system: autonomous register, 1-bit output.

    ``y(n) = x_tap(n) + u(n)`` — the keystream bit XORed with the data bit.
    By default the tap is ``k-1`` (the bit that feeds the LFSR feedback),
    matching the single-1 diagonal selection described in the paper.
    """
    A = companion_matrix(poly)
    k = poly.degree
    tap = (k - 1) if output_tap is None else output_tap
    if not 0 <= tap < k:
        raise ValueError(f"output tap {tap} out of range for degree {k}")
    c = np.zeros((1, k), dtype=np.uint8)
    c[0, tap] = 1
    return LFSRStateSpace(
        A=A,
        b=np.zeros(k, dtype=np.uint8),
        C=GF2Matrix(c),
        d=np.ones(1, dtype=np.uint8),
        poly=poly,
    )
