"""Pei–Zukowski direct look-ahead baseline (paper §2, method [6]).

Pei & Zukowski parallelize the CRC by exponentiating the companion matrix
and implementing ``A^M`` directly inside the feedback loop.  The loop logic
then contains a dense XOR network whose depth grows with M; the paper cites
a resulting speed-up bound of ~0.5·M for 32-bit CRCs.

This module provides the functional engine (identical results to the plain
look-ahead — it *is* the plain look-ahead) plus the loop-complexity metrics
used by the Fig. 6 "M/2 theory" curve and the mapper ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Sequence

import numpy as np

from repro.gf2.matrix import GF2Matrix
from repro.lfsr.lookahead import LookaheadSystem, expand_lookahead
from repro.lfsr.statespace import LFSRStateSpace


@dataclass(frozen=True)
class PeiLookahead:
    """Direct (untransformed) M-level look-ahead CRC engine."""

    lookahead: LookaheadSystem

    @property
    def M(self) -> int:
        """Look-ahead block factor."""
        return self.lookahead.M

    def run(self, state: np.ndarray, bits: Sequence[int]) -> np.ndarray:
        """Advance ``state`` over ``bits`` via the untransformed block form."""
        return self.lookahead.run(state, bits)

    # ------------------------------------------------------------------
    def loop_fanin(self) -> int:
        """Worst-case XOR fan-in inside the feedback loop.

        Each next-state bit XORs the taps of one row of ``A^M`` (state
        feedback) and one row of ``B_M`` (input injection); the loop-timing
        path is set by the state-feedback row plus one input term.
        """
        a_rows = self.lookahead.A_M.to_array().sum(axis=1)
        b_rows = self.lookahead.B_M.to_array().sum(axis=1)
        return int((a_rows + np.minimum(b_rows, 1)).max())

    def loop_depth_xor2(self) -> int:
        """Depth of the loop in 2-input XOR levels (balanced tree)."""
        fanin = self.loop_fanin()
        return max(1, ceil(log2(max(fanin, 2))))


def pei_lookahead(base: LFSRStateSpace, M: int) -> PeiLookahead:
    """Build the direct M-level look-ahead engine for ``base``."""
    return PeiLookahead(lookahead=expand_lookahead(base, M))


def pei_speedup_bound(M: int) -> float:
    """The paper's cited bound: optimized A^M exponentiation limits the
    achievable speed-up over the serial circuit to ~0.5·M."""
    if M < 1:
        raise ValueError("M must be >= 1")
    return 0.5 * M
