"""M-level look-ahead expansion (paper §2, Fig. 2).

Unrolling the serial recurrence M times gives::

    x(n+M) = A^M x(n) + B_M u_M(n)
    y(n+M) = C_M x(n) + D_M u_M(n)        (per-block output form)

with ``u_M(n) = [u(n+M-1), ..., u(n)]^T`` (latest bit first, exactly the
paper's convention) and::

    B_M = [ b  Ab  A^2 b  ...  A^{M-1} b ]
    D_M = [ d  Cd  C^2 d  ...  C^{M-1} d ]

:class:`LookaheadSystem` packages the expanded matrices with block stepping
helpers.  Chunks may be supplied in natural *stream order* (``u(n)`` first);
the class reverses them internally to form ``u_M``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.gf2.backend import GF2Backend, resolve_backend
from repro.gf2.matrix import GF2Matrix
from repro.lfsr.statespace import LFSRStateSpace

BackendLike = Union[None, str, GF2Backend]


@dataclass(frozen=True)
class LookaheadSystem:
    """The M-bit block-parallel form of an LFSR application."""

    base: LFSRStateSpace
    M: int
    A_M: GF2Matrix
    B_M: GF2Matrix  # k x M, columns ordered latest-bit-first (paper order)

    @property
    def order(self) -> int:
        """State dimension k of the base register."""
        return self.base.order

    # ------------------------------------------------------------------
    def input_vector(self, chunk: Sequence[int]) -> np.ndarray:
        """Form ``u_M`` from a chunk given in stream order (u(n) first)."""
        if len(chunk) != self.M:
            raise ValueError(f"chunk length {len(chunk)} != M = {self.M}")
        return np.array(list(chunk)[::-1], dtype=np.uint8)

    def block_step(
        self, state: np.ndarray, chunk: Sequence[int], backend: BackendLike = None
    ) -> np.ndarray:
        """Advance M serial steps in one block operation.

        ``backend`` selects the GF(2) kernel set used for the two
        matrix-vector products (:mod:`repro.gf2.backend` default when
        ``None``).
        """
        be = resolve_backend(backend)
        u = self.input_vector(chunk)
        s = np.asarray(state, dtype=np.uint8)
        return (be.matvec(self.A_M.to_array(), s) ^ be.matvec(self.B_M.to_array(), u)).astype(np.uint8)

    def run(
        self, state: np.ndarray, bits: Sequence[int], backend: BackendLike = None
    ) -> np.ndarray:
        """Process a bit sequence whose length is a multiple of M."""
        if len(bits) % self.M:
            raise ValueError(f"bit count {len(bits)} is not a multiple of M = {self.M}")
        be = resolve_backend(backend)
        s = np.asarray(state, dtype=np.uint8)
        for off in range(0, len(bits), self.M):
            s = self.block_step(s, bits[off : off + self.M], backend=be)
        return s

    # ------------------------------------------------------------------
    def feedback_complexity(self) -> Tuple[int, float]:
        """(non-zeros, density) of ``A^M`` — the loop-complexity measure the
        paper uses to motivate the Derby transform."""
        return self.A_M.nnz(), self.A_M.density()


def input_matrix(base: LFSRStateSpace, M: int) -> GF2Matrix:
    """``B_M = [b  Ab ... A^{M-1} b]`` with the paper's column ordering."""
    columns: List[np.ndarray] = []
    v = base.b.astype(np.uint8)
    for _ in range(M):
        columns.append(v.copy())
        v = (base.A @ v).astype(np.uint8)
    return GF2Matrix.from_columns(columns)


def output_matrices(base: LFSRStateSpace, M: int) -> Tuple[GF2Matrix, GF2Matrix]:
    """``C_M = C^M`` (square C only) and ``D_M = [d Cd ... C^{M-1} d]``.

    Only meaningful when ``C`` is square (the CRC case, where C = I and the
    expansion is trivial); the scrambler's 1-bit output is handled by
    evaluating outputs per serial position instead.
    """
    if not base.C.is_square():
        raise ValueError("output look-ahead expansion requires square C")
    C_M = base.C ** M
    columns: List[np.ndarray] = []
    v = base.d.astype(np.uint8)
    for _ in range(M):
        columns.append(v.copy())
        v = (base.C @ v).astype(np.uint8)
    return C_M, GF2Matrix.from_columns(columns)


def expand_lookahead(base: LFSRStateSpace, M: int) -> LookaheadSystem:
    """Build the M-level look-ahead system for any LFSR application."""
    if M < 1:
        raise ValueError("look-ahead factor M must be >= 1")
    return LookaheadSystem(base=base, M=M, A_M=base.A ** M, B_M=input_matrix(base, M))


def scrambler_output_matrix(base: LFSRStateSpace, M: int) -> GF2Matrix:
    """M×k matrix Y with ``y_block = Y x(n) (+ u_block)`` for an additive
    scrambler: row j selects the keystream bit at serial offset j, i.e.
    ``C A^j``.  Rows are in stream order (offset 0 first)."""
    rows = []
    power = GF2Matrix.identity(base.order)
    for _ in range(M):
        rows.append((base.C @ power).to_array()[0])
        power = base.A @ power
    return GF2Matrix(np.array(rows, dtype=np.uint8))
