"""Tsaban–Vishne word-oriented LFSRs (σ-LFSRs) over GF(2^w).

A classic LFSR clocks one *bit* per step; every software engine built on it
(`FibonacciLFSR`, `GaloisLFSR`, the blockwise matrix paths) pays for that
bit-orientation somewhere.  Tsaban & Vishne's observation (PAPERS.md,
*"Efficient linear feedback shift registers with maximal period"*) is that
the recurrence can instead run over whole machine words: take the state to
be ``n`` words of ``w`` bits, read each word as an element of
GF(2^w) = GF(2)[x]/p(x) for an irreducible degree-``w`` polynomial ``p``,
and use the word recurrence::

    a[i+n] = XOR over taps (j, e) of sigma^e(a[i+j])

where ``sigma`` is multiplication by ``x`` mod ``p`` — on a machine word
that is one shift, one test and one XOR.  Each step emits a full ``w``-bit
word, so the keystream engine runs ``w`` times fewer Python iterations than
a bit-serial register, which is exactly the trick the paper's configurable
gate array plays in hardware: reorganize the register so one clock does a
word of work.

Viewed over GF(2) the whole register is still a linear map on ``n*w`` bits;
:meth:`WordLFSRSpec.state_matrix` materializes that map so the generic
machinery (characteristic polynomial, primitivity, the bit-serial
:class:`WordLFSRReference`) applies unchanged.  The period is maximal
(``2**(n*w) - 1``) exactly when the characteristic polynomial of that
matrix is primitive — the condition the curated :data:`WORD32` /
:data:`WORD64` specs were searched to satisfy (see
:func:`check_maximal_period`).

Bit order: an output word ``a`` contributes its bits MSB-first, i.e. the
byte stream is each word in big-endian order.  That convention matches
``int.to_bytes(..., "big")`` and ``np.unpackbits(..., bitorder="big")`` so
the keystream glues onto the bit-array engines without per-bit reshuffles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import SpecError
from repro.gf2.matrix import GF2Matrix
from repro.gf2.polynomial import GF2Polynomial

__all__ = [
    "WordLFSRSpec",
    "WordLFSR",
    "WordLFSRReference",
    "sigma_matrix",
    "check_maximal_period",
    "WORD8",
    "WORD32",
    "WORD64",
    "CURATED",
]


@dataclass(frozen=True)
class WordLFSRSpec:
    """A σ-LFSR configuration: field, register length and tap pattern.

    ``sigma_poly`` is the irreducible degree-``word_bits`` polynomial
    defining GF(2^w); ``taps`` lists ``(word_index, sigma_power)`` pairs of
    the recurrence ``a[i+n] = XOR sigma^e(a[i+j])``.
    """

    name: str
    word_bits: int
    words: int
    sigma_poly: GF2Polynomial
    taps: Tuple[Tuple[int, int], ...]
    description: str = ""

    def __post_init__(self):
        w, n = self.word_bits, self.words
        if w < 2:
            raise SpecError("word_bits must be >= 2")
        if n < 1:
            raise SpecError("words must be >= 1")
        if self.sigma_poly.degree != w:
            raise SpecError(
                f"sigma_poly degree {self.sigma_poly.degree} != word_bits {w}"
            )
        if not self.taps:
            raise SpecError("at least one tap is required")
        for j, e in self.taps:
            if not 0 <= j < n:
                raise SpecError(f"tap word index {j} outside 0..{n - 1}")
            if e < 0:
                raise SpecError("sigma powers must be non-negative")
        if not any(j == 0 for j, _ in self.taps):
            raise SpecError("tap on word 0 required for an invertible update")

    # ------------------------------------------------------------------
    @property
    def state_bits(self) -> int:
        """Total register width ``n * w`` in bits."""
        return self.word_bits * self.words

    @property
    def period(self) -> int:
        """The maximal period ``2**(n*w) - 1`` this spec is curated for."""
        return (1 << self.state_bits) - 1

    # ------------------------------------------------------------------
    def sigma_matrix(self) -> GF2Matrix:
        """The w×w GF(2) matrix of σ (multiply-by-x mod ``sigma_poly``)."""
        return sigma_matrix(self.sigma_poly)

    def state_matrix(self) -> GF2Matrix:
        """The ``n*w`` × ``n*w`` one-step state-update matrix over GF(2).

        State vector layout: bit ``j*w + b`` is the coefficient of ``x**b``
        in word ``a[i+j]``.  One application of the matrix is one word
        clock; its characteristic polynomial decides the period.
        """
        w, n = self.word_bits, self.words
        a = np.zeros((n * w, n * w), dtype=np.uint8)
        # Words 0..n-2 of the next state are words 1..n-1 of the current.
        for j in range(n - 1):
            for b in range(w):
                a[j * w + b, (j + 1) * w + b] = 1
        # The last word is the tap combination.
        sigma = self.sigma_matrix()
        for j, e in self.taps:
            block = (sigma ** e).to_array()
            rows = slice((n - 1) * w, n * w)
            cols = slice(j * w, (j + 1) * w)
            a[rows, cols] ^= block
        return GF2Matrix(a)

    def characteristic_polynomial(self) -> GF2Polynomial:
        """Characteristic polynomial of :meth:`state_matrix` (degree nw)."""
        return GF2Polynomial(self.state_matrix().characteristic_polynomial())


def sigma_matrix(poly: GF2Polynomial) -> GF2Matrix:
    """The GF(2) matrix of multiplication by ``x`` modulo ``poly``.

    Column ``b`` holds the coefficient vector of ``x**(b+1) mod poly``; for
    an irreducible ``poly`` this is the matrix Tsaban & Vishne call σ.
    """
    w = poly.degree
    if w < 1:
        raise SpecError("polynomial must have degree >= 1")
    a = np.zeros((w, w), dtype=np.uint8)
    for b in range(w - 1):
        a[b + 1, b] = 1
    low = poly.coeffs & ((1 << w) - 1)
    for r in range(w):
        a[r, w - 1] = (low >> r) & 1
    return GF2Matrix(a)


def check_maximal_period(spec: WordLFSRSpec) -> bool:
    """True when the spec's state matrix has a primitive characteristic
    polynomial, i.e. the register cycles through all ``2**(n*w) - 1``
    non-zero states.  Exact but potentially slow for large ``n*w`` (it
    factorizes ``2**(n*w) - 1``); tests call it on small words and pin the
    characteristic polynomials of the shipped 32/64-bit specs instead.
    """
    return spec.characteristic_polynomial().is_primitive()


class WordLFSR:
    """The fast σ-LFSR engine: one machine word of keystream per step.

    Pure-integer Python, no numpy on the hot path — each :meth:`step` is a
    handful of shifts and XORs for a whole ``w``-bit word, which is where
    the ≥20× advantage over the bit-serial :class:`~repro.lfsr.reference.FibonacciLFSR`
    comes from (see ``benchmarks/test_engine_microbench.py``).
    """

    def __init__(self, spec: WordLFSRSpec, seed: Sequence[int]):
        self._spec = spec
        w = spec.word_bits
        self._w = w
        self._wbytes = (w + 7) // 8
        if w % 8:
            raise SpecError("byte-oriented keystream needs word_bits % 8 == 0")
        self._mask = (1 << w) - 1
        self._msb = w - 1
        self._fb = spec.sigma_poly.coeffs & self._mask
        self._taps = tuple(spec.taps)
        self._n = spec.words
        seed = list(seed)
        if len(seed) != self._n:
            raise SpecError(f"seed needs {self._n} words, got {len(seed)}")
        if any(word >> w for word in seed):
            raise SpecError(f"seed words must fit in {w} bits")
        if not any(seed):
            raise SpecError("the all-zero state never leaves the origin")
        self._state = seed
        self._pos = 0
        # The curated family is n == 2 with one tap on each word; keeping
        # the two sigma exponents in scalars lets keystream_bytes run a
        # list-free inner loop (roughly 2x the generic path).
        self._pair = None
        if self._n == 2 and len(self._taps) == 2:
            by_word = dict()
            for j, e in self._taps:
                if j in by_word:
                    by_word = None
                    break
                by_word[j] = e
            if by_word is not None and set(by_word) == {0, 1}:
                self._pair = (by_word[0], by_word[1])

    # ------------------------------------------------------------------
    @property
    def spec(self) -> WordLFSRSpec:
        """The configuration this engine runs."""
        return self._spec

    @property
    def state_words(self) -> List[int]:
        """Current register contents ``[a_i, ..., a_{i+n-1}]``."""
        n, pos = self._n, self._pos
        return [self._state[(pos + j) % n] for j in range(n)]

    # ------------------------------------------------------------------
    def step(self) -> int:
        """One word clock; returns the ``w``-bit output word ``a_i``."""
        state, pos, n = self._state, self._pos, self._n
        mask, msb, fb = self._mask, self._msb, self._fb
        new = 0
        for j, e in self._taps:
            a = state[(pos + j) % n]
            for _ in range(e):
                a = ((a << 1) & mask) ^ (fb if (a >> msb) & 1 else 0)
            new ^= a
        out = state[pos]
        state[pos] = new
        self._pos = (pos + 1) % n
        return out

    def keystream_words(self, nwords: int) -> List[int]:
        """The next ``nwords`` output words."""
        return [self.step() for _ in range(nwords)]

    def keystream_bytes(self, nbytes: int) -> bytes:
        """The next ``nbytes`` keystream bytes (each word big-endian)."""
        wbytes = self._wbytes
        nwords = -(-nbytes // wbytes)
        out = bytearray()
        if self._pair is not None:
            # Specialized two-word loop: plain scalars, no list traffic.
            e0, e1 = self._pair
            mask, msb, fb = self._mask, self._msb, self._fb
            a0, a1 = self.state_words
            for _ in range(nwords):
                t0 = a0
                for _ in range(e0):
                    t0 = ((t0 << 1) & mask) ^ (fb if (t0 >> msb) & 1 else 0)
                t1 = a1
                for _ in range(e1):
                    t1 = ((t1 << 1) & mask) ^ (fb if (t1 >> msb) & 1 else 0)
                out += a0.to_bytes(wbytes, "big")
                a0, a1 = a1, t0 ^ t1
            self._state = [a0, a1]
            self._pos = 0
        else:
            for _ in range(nwords):
                out += self.step().to_bytes(wbytes, "big")
        return bytes(out[:nbytes])

    def keystream_bits(self, nbits: int) -> np.ndarray:
        """The next ``nbits`` keystream bits (uint8 array, MSB-first words)."""
        nbytes = (nbits + 7) // 8
        raw = np.frombuffer(self.keystream_bytes(nbytes), dtype=np.uint8)
        return np.unpackbits(raw, bitorder="big")[:nbits]


class WordLFSRReference:
    """Bit-serial oracle for :class:`WordLFSR` built on the state matrix.

    Steps the flattened ``n*w``-bit state with a GF(2) matrix-vector
    product and reads the output word bit by bit — slow, but independent of
    every word-level shortcut the fast engine takes, so agreement between
    the two is strong evidence both are right (the
    ``word:wordlfsr-vs-reference`` fuzz oracle runs exactly this check).
    """

    def __init__(self, spec: WordLFSRSpec, seed: Sequence[int]):
        self._spec = spec
        self._w = spec.word_bits
        self._matrix = spec.state_matrix()
        seed = list(seed)
        if len(seed) != spec.words:
            raise SpecError(f"seed needs {spec.words} words, got {len(seed)}")
        bits: List[int] = []
        for word in seed:
            bits.extend((word >> b) & 1 for b in range(self._w))
        self._state = np.array(bits, dtype=np.uint8)

    @property
    def spec(self) -> WordLFSRSpec:
        """The configuration this reference mirrors."""
        return self._spec

    def step(self) -> int:
        """One word clock via the state matrix; returns the output word."""
        w = self._w
        out = 0
        for b in range(w):
            out |= int(self._state[b]) << b
        self._state = self._matrix @ self._state
        return out

    def keystream_words(self, nwords: int) -> List[int]:
        """The next ``nwords`` output words."""
        return [self.step() for _ in range(nwords)]

    def keystream_bytes(self, nbytes: int) -> bytes:
        """The next ``nbytes`` keystream bytes (each word big-endian)."""
        wbytes = self._w // 8
        nwords = -(-nbytes // wbytes)
        out = bytearray()
        for _ in range(nwords):
            out += self.step().to_bytes(wbytes, "big")
        return bytes(out[:nbytes])


def _spec(name, word_bits, words, poly_exponents, taps, description):
    return WordLFSRSpec(
        name=name,
        word_bits=word_bits,
        words=words,
        sigma_poly=GF2Polynomial.from_exponents(poly_exponents),
        taps=taps,
        description=description,
    )


#: Tiny teaching/test spec: GF(2^8), two words, 16-bit state.  Small enough
#: that :func:`check_maximal_period` and even a brute-force period walk are
#: instant — the maximal-period spot checks in the test-suite use this.
#: Recurrence: ``a[i+2] = sigma(a[i]) ^ a[i+1]``.
WORD8 = _spec(
    "word8",
    8,
    2,
    (8, 7, 2, 1, 0),
    ((0, 1), (1, 0)),
    "GF(2^8) sigma-LFSR, 16-bit state, maximal period 65535",
)

#: Curated 32-bit spec: two words of GF(2^32), 64-bit state.  The tap
#: pattern ``a[i+2] = sigma(a[i]) ^ sigma(a[i+1])`` was searched (see
#: docs/KERNELS.md) until the 64×64 state matrix's characteristic
#: polynomial came out primitive, giving the maximal period 2^64 - 1.
WORD32 = _spec(
    "word32",
    32,
    2,
    (32, 22, 2, 1, 0),
    ((0, 1), (1, 1)),
    "GF(2^32) sigma-LFSR, 64-bit state, one 32-bit word per step",
)

#: Curated 64-bit spec: two words of GF(2^64), 128-bit state, one full
#: 64-bit machine word of keystream per step.
WORD64 = _spec(
    "word64",
    64,
    2,
    (64, 11, 2, 1, 0),
    ((0, 1), (1, 1)),
    "GF(2^64) sigma-LFSR, 128-bit state, one 64-bit word per step",
)

#: The shipped specs, in the order the CLI and planner enumerate them.
CURATED: Tuple[WordLFSRSpec, ...] = (WORD8, WORD32, WORD64)

_BY_NAME = {s.name: s for s in CURATED}


def get(name: str) -> WordLFSRSpec:
    """Look up a curated spec by name (``word8`` / ``word32`` / ``word64``)."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise SpecError(
            f"unknown word-LFSR spec {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def seed_words_from_bytes(spec: WordLFSRSpec, material: bytes) -> List[int]:
    """Derive a non-zero seed for ``spec`` from arbitrary bytes.

    Cycles the material across the ``n`` words (big-endian per word) and
    forces the register away from the forbidden all-zero state — handy for
    fuzzing and for seeding keystream engines from user tokens.
    """
    w, n = spec.word_bits, spec.words
    wbytes = w // 8
    if not material:
        raise SpecError("seed material must be non-empty")
    stretched = (material * ((n * wbytes) // len(material) + 1))[: n * wbytes]
    words = [
        int.from_bytes(stretched[j * wbytes:(j + 1) * wbytes], "big")
        for j in range(n)
    ]
    if not any(words):
        words[0] = 1
    return words
