"""LFSR state-space theory (paper §2).

This package implements the mathematical core of the paper:

* the serial state-space model ``x(n+1) = A x(n) + b u(n)``,
  ``y(n) = C x(n) + d u(n)`` with ``A`` a companion matrix
  (:mod:`repro.lfsr.companion`, :mod:`repro.lfsr.statespace`);
* bit-serial Fibonacci/Galois reference LFSRs
  (:mod:`repro.lfsr.reference`);
* the M-level look-ahead expansion ``x(n+M) = A^M x(n) + B_M u_M(n)``
  (:mod:`repro.lfsr.lookahead`);
* Derby's state-space transformation, which restores companion form to the
  feedback matrix of the look-ahead system (:mod:`repro.lfsr.transform`);
* the Pei–Zukowski direct look-ahead baseline whose feedback complexity
  limits speed-up to ~M/2 (:mod:`repro.lfsr.pei`);
* Dubrova's Fibonacci ↔ Galois transformation with matching initial
  states (:mod:`repro.lfsr.galois`);
* Tsaban–Vishne word-oriented σ-LFSRs stepping one machine word per
  clock (:mod:`repro.lfsr.wordlfsr`).
"""

from repro.lfsr.berlekamp import (
    LFSRSynthesis,
    berlekamp_massey,
    linear_complexity,
    linear_complexity_profile,
)
from repro.lfsr.companion import companion_matrix, companion_taps, poly_from_companion
from repro.lfsr.lookahead import LookaheadSystem, expand_lookahead, scrambler_output_matrix
from repro.lfsr.correlation import (
    GolombReport,
    autocorrelation_profile,
    golomb_check,
    periodic_autocorrelation,
    periodic_cross_correlation,
    run_lengths,
)
from repro.lfsr.galois import (
    fibonacci_to_galois_state,
    galois_to_fibonacci_state,
    matching_state,
    multiplicative_fibonacci_to_galois_state,
    multiplicative_galois_to_fibonacci_state,
    observability_matrix,
)
from repro.lfsr.jump import jump_back, jump_state, keystream_slice, lfsr_at
from repro.lfsr.pei import PeiLookahead, pei_lookahead, pei_speedup_bound
from repro.lfsr.wordlfsr import (
    WORD8,
    WORD32,
    WORD64,
    WordLFSR,
    WordLFSRReference,
    WordLFSRSpec,
    check_maximal_period,
    seed_words_from_bytes,
    sigma_matrix,
)
from repro.lfsr.reference import FibonacciLFSR, GaloisLFSR
from repro.lfsr.statespace import LFSRStateSpace, crc_statespace, scrambler_statespace
from repro.lfsr.transform import DerbyTransform, TransformError, derby_transform

__all__ = [
    "DerbyTransform",
    "LFSRSynthesis",
    "berlekamp_massey",
    "linear_complexity",
    "linear_complexity_profile",
    "FibonacciLFSR",
    "GolombReport",
    "autocorrelation_profile",
    "golomb_check",
    "periodic_autocorrelation",
    "periodic_cross_correlation",
    "run_lengths",
    "GaloisLFSR",
    "LFSRStateSpace",
    "LookaheadSystem",
    "PeiLookahead",
    "TransformError",
    "WORD32",
    "WORD64",
    "WORD8",
    "WordLFSR",
    "WordLFSRReference",
    "WordLFSRSpec",
    "check_maximal_period",
    "companion_matrix",
    "companion_taps",
    "crc_statespace",
    "derby_transform",
    "expand_lookahead",
    "fibonacci_to_galois_state",
    "galois_to_fibonacci_state",
    "jump_back",
    "jump_state",
    "keystream_slice",
    "lfsr_at",
    "matching_state",
    "multiplicative_fibonacci_to_galois_state",
    "multiplicative_galois_to_fibonacci_state",
    "observability_matrix",
    "pei_lookahead",
    "pei_speedup_bound",
    "poly_from_companion",
    "seed_words_from_bytes",
    "scrambler_output_matrix",
    "scrambler_statespace",
    "sigma_matrix",
]
