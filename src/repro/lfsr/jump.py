"""LFSR jump-ahead: advance a register N steps in O(log N) field ops.

Since one Galois-LFSR clock multiplies the state polynomial by x modulo
the generator, N clocks multiply by ``x^N mod g`` — one carry-less
modular exponentiation plus one modular multiply, regardless of N.  Used
for scrambler seek (jump to the middle of a burst), keystream slicing
across parallel workers, and the interleaved-CRC init correction.

This is the *polynomial-domain* twin of the matrix-domain look-ahead
(``A^N`` acting on the state vector); the tests confirm the two agree.
"""

from __future__ import annotations

from repro.gf2.clmul import clmulmod, clpowmod
from repro.gf2.polynomial import GF2Polynomial
from repro.lfsr.reference import GaloisLFSR


def jump_state(poly: GF2Polynomial, state: int, steps: int) -> int:
    """The register contents after ``steps`` autonomous clocks."""
    if steps < 0:
        raise ValueError("cannot jump backwards; use jump_back")
    if state >> poly.degree:
        raise ValueError(f"state {state:#x} wider than degree {poly.degree}")
    g = poly.coeffs
    return clmulmod(state, clpowmod(2, steps, g), g)


def jump_back(poly: GF2Polynomial, state: int, steps: int) -> int:
    """Rewind ``steps`` clocks (needs an invertible register, i.e. a
    generator with a non-zero constant term)."""
    if steps < 0:
        raise ValueError("steps must be >= 0")
    if not poly.coefficient(0):
        raise ValueError("x divides the generator; the LFSR is not reversible")
    order = _order_cache(poly)
    return jump_state(poly, state, (-steps) % order)


_ORDER_CACHE = {}


def _order_cache(poly: GF2Polynomial) -> int:
    key = poly.coeffs
    if key not in _ORDER_CACHE:
        from repro.gf2.factor import polynomial_order

        _ORDER_CACHE[key] = polynomial_order(poly)
    return _ORDER_CACHE[key]


def lfsr_at(poly: GF2Polynomial, seed: int, position: int) -> GaloisLFSR:
    """A Galois LFSR pre-advanced to an absolute stream position."""
    return GaloisLFSR(poly, jump_state(poly, seed, position))


def keystream_slice(poly: GF2Polynomial, seed: int, start: int, length: int):
    """Bits [start, start+length) of the keystream, without generating the
    prefix — the parallel-worker decomposition."""
    return lfsr_at(poly, seed, start).keystream(length)
