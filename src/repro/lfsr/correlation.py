"""Sequence statistics: correlation and Golomb's randomness postulates.

The paper motivates scrambling/spreading with the "statistical properties"
of LFSR sequences (§1).  This module makes those properties measurable:

* **periodic autocorrelation** — for a maximal-length (m-)sequence of
  period N the normalized autocorrelation is two-valued: 1 at zero shift,
  −1/N at every other shift — the property that makes PN sequences usable
  as spreading codes and for synchronization;
* **cross-correlation** — between different sequences (or different phases
  of the same family), bounding multi-user interference;
* **Golomb's postulates** — balance, run-length distribution and the
  two-valued autocorrelation, checked exactly.

All functions take plain 0/1 bit sequences (one full period for the
periodic measures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


def _to_pm1(bits: Sequence[int]) -> List[int]:
    return [1 - 2 * (b & 1) for b in bits]  # 0 -> +1, 1 -> -1


def periodic_autocorrelation(bits: Sequence[int], shift: int) -> float:
    """Normalized periodic autocorrelation at the given shift."""
    n = len(bits)
    if n == 0:
        raise ValueError("empty sequence")
    s = _to_pm1(bits)
    shift %= n
    total = sum(s[i] * s[(i + shift) % n] for i in range(n))
    return total / n


def autocorrelation_profile(bits: Sequence[int]) -> List[float]:
    """Autocorrelation at every shift 0..N-1."""
    return [periodic_autocorrelation(bits, k) for k in range(len(bits))]


def periodic_cross_correlation(a: Sequence[int], b: Sequence[int], shift: int) -> float:
    """Normalized periodic cross-correlation of equal-length sequences."""
    if len(a) != len(b):
        raise ValueError("sequences must have equal length")
    n = len(a)
    if n == 0:
        raise ValueError("empty sequences")
    sa, sb = _to_pm1(a), _to_pm1(b)
    shift %= n
    return sum(sa[i] * sb[(i + shift) % n] for i in range(n)) / n


def run_lengths(bits: Sequence[int]) -> Dict[int, int]:
    """Cyclic run-length histogram {length: count} over one period."""
    n = len(bits)
    if n == 0:
        raise ValueError("empty sequence")
    if all(b == bits[0] for b in bits):
        return {n: 1}
    # Rotate so the sequence starts at a run boundary.
    start = next(i for i in range(n) if bits[i] != bits[i - 1])
    rotated = [bits[(start + i) % n] for i in range(n)]
    hist: Dict[int, int] = {}
    current = rotated[0]
    length = 0
    for b in rotated:
        if b == current:
            length += 1
        else:
            hist[length] = hist.get(length, 0) + 1
            current = b
            length = 1
    hist[length] = hist.get(length, 0) + 1
    return hist


@dataclass(frozen=True)
class GolombReport:
    """Outcome of checking Golomb's three postulates on one period."""

    balanced: bool  # G1: |#ones - #zeros| <= 1
    run_distribution_ok: bool  # G2: half the runs length 1, quarter length 2, ...
    two_valued_autocorrelation: bool  # G3
    ones: int
    zeros: int
    total_runs: int

    @property
    def is_pseudo_noise(self) -> bool:
        """True iff all three Golomb postulates hold."""
        return self.balanced and self.run_distribution_ok and self.two_valued_autocorrelation


def golomb_check(bits: Sequence[int]) -> GolombReport:
    """Exact check of Golomb's postulates over one full period."""
    n = len(bits)
    if n < 3:
        raise ValueError("need at least one period of length >= 3")
    ones = sum(b & 1 for b in bits)
    zeros = n - ones
    balanced = abs(ones - zeros) <= 1

    hist = run_lengths(bits)
    total_runs = sum(hist.values())
    # G2: for each length l (while counts allow), runs of length l are
    # about half the runs of length l-1.
    run_ok = True
    expected = total_runs / 2
    length = 1
    while expected >= 1:
        count = hist.get(length, 0)
        if abs(count - expected) > 1:
            run_ok = False
            break
        length += 1
        expected /= 2

    off_peak = {round(periodic_autocorrelation(bits, k), 9) for k in range(1, n)}
    two_valued = len(off_peak) == 1

    return GolombReport(
        balanced=balanced,
        run_distribution_ok=run_ok,
        two_valued_autocorrelation=two_valued,
        ones=ones,
        zeros=zeros,
        total_runs=total_runs,
    )
