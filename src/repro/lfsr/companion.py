"""Companion matrices for LFSR polynomials (paper §2).

For a degree-k generator ``g(x) = x^k + g_{k-1} x^{k-1} + ... + g_1 x + g_0``
the paper's companion matrix is::

    A = [ 0 0 ... 0 g_0     ]
        [ 1 0 ... 0 g_1     ]
        [ 0 1 ... 0 g_2     ]
        [ ...              ]
        [ 0 0 ... 1 g_{k-1} ]

i.e. a sub-diagonal of ones with the low-order generator coefficients in the
last column.  One application of ``A`` is one clock of a Galois-configured
LFSR whose state integer has ``x_{k-1}`` as its MSB — the classic MSB-first
CRC shift.
"""

from __future__ import annotations

import numpy as np

from repro.gf2.matrix import GF2Matrix
from repro.gf2.polynomial import GF2Polynomial


def companion_matrix(poly: GF2Polynomial) -> GF2Matrix:
    """The k×k companion matrix of a monic degree-k polynomial."""
    k = poly.degree
    if k < 1:
        raise ValueError("polynomial must have degree >= 1")
    a = np.zeros((k, k), dtype=np.uint8)
    for i in range(1, k):
        a[i, i - 1] = 1
    for i in range(k):
        a[i, k - 1] = poly.coefficient(i)
    return GF2Matrix(a)


def companion_taps(poly: GF2Polynomial) -> np.ndarray:
    """The feedback column ``g = [g_0 ... g_{k-1}]^T`` as a vector.

    This is both the last column of the companion matrix and the paper's
    input vector ``b`` for the CRC system.
    """
    k = poly.degree
    return np.array([poly.coefficient(i) for i in range(k)], dtype=np.uint8)


def poly_from_companion(matrix: GF2Matrix) -> GF2Polynomial:
    """Recover the monic polynomial from a companion matrix."""
    if not matrix.is_companion():
        raise ValueError("matrix is not in companion form")
    k = matrix.nrows
    value = 1 << k
    last = matrix.column(k - 1)
    for i in range(k):
        if last[i]:
            value |= 1 << i
    return GF2Polynomial(value)
