"""Derby's state-space transformation (paper §2, method [7]).

The look-ahead feedback matrix ``A^M`` is dense, and because it sits inside
the combinatorial feedback loop its depth bounds the clock.  Derby observed
that ``A^M`` is *similar* to a companion matrix: choose a vector ``f`` such
that ``f, A^M f, A^{2M} f, ..., A^{(k-1)M} f`` are linearly independent and
use them as the columns of ``T``.  In that basis::

    x_t(n+M) = A_Mt x_t(n) + B_Mt u_M(n)     A_Mt = T^-1 A^M T  (companion!)
    y(n+M)   = T x_t(n+M)                    B_Mt = T^-1 B_M

The loop logic collapses to a single XOR column (minimal depth); all the
complexity moves to the feed-forward ``B_Mt`` and the final
anti-transformation ``T``, both of which pipeline freely.  This is the
method the paper selects for the PiCoGA implementation (§4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.errors import CompileError
from repro.gf2.backend import resolve_backend
from repro.gf2.matrix import GF2Matrix
from repro.lfsr.lookahead import BackendLike, LookaheadSystem, expand_lookahead
from repro.lfsr.statespace import LFSRStateSpace


class TransformError(CompileError, ValueError):
    """Raised when no valid transformation vector ``f`` exists.

    A :class:`~repro.errors.CompileError`: the Derby change of basis is a
    compile-time artifact, and specs with non-cyclic generators have none.
    Still a ``ValueError`` for backward compatibility.
    """


def krylov_matrix(A_M: GF2Matrix, f: np.ndarray) -> GF2Matrix:
    """``T = [f  A^M f  A^{2M} f ... A^{(k-1)M} f]`` (columns)."""
    k = A_M.nrows
    columns = []
    v = np.asarray(f, dtype=np.uint8)
    for _ in range(k):
        columns.append(v.copy())
        v = (A_M @ v).astype(np.uint8)
    return GF2Matrix.from_columns(columns)


def _candidate_vectors(k: int) -> Iterator[np.ndarray]:
    """Candidate ``f`` vectors: unit vectors first (the paper found
    ``f = e_0`` adequate), then a deterministic pseudo-random sweep."""
    for i in range(k):
        v = np.zeros(k, dtype=np.uint8)
        v[i] = 1
        yield v
    rng = np.random.default_rng(0xD5)
    for _ in range(4 * k):
        v = rng.integers(0, 2, size=k, dtype=np.uint8)
        if v.any():
            yield v


@dataclass(frozen=True)
class DerbyTransform:
    """The transformed look-ahead system plus its change-of-basis data."""

    lookahead: LookaheadSystem
    f: np.ndarray
    T: GF2Matrix
    T_inv: GF2Matrix
    A_Mt: GF2Matrix
    B_Mt: GF2Matrix

    @property
    def M(self) -> int:
        """Look-ahead block factor."""
        return self.lookahead.M

    @property
    def order(self) -> int:
        """State dimension k."""
        return self.lookahead.order

    # ------------------------------------------------------------------
    def to_transformed(self, state: np.ndarray, backend: BackendLike = None) -> np.ndarray:
        """Map a natural-basis state into the transformed basis."""
        be = resolve_backend(backend)
        return be.matvec(self.T_inv.to_array(), np.asarray(state, dtype=np.uint8))

    def from_transformed(self, state_t: np.ndarray, backend: BackendLike = None) -> np.ndarray:
        """The anti-transformation ``x = T x_t`` (the paper's 2nd PGAOP)."""
        be = resolve_backend(backend)
        return be.matvec(self.T.to_array(), np.asarray(state_t, dtype=np.uint8))

    def block_step(
        self, state_t: np.ndarray, chunk: Sequence[int], backend: BackendLike = None
    ) -> np.ndarray:
        """One M-bit update entirely in the transformed basis."""
        be = resolve_backend(backend)
        u = self.lookahead.input_vector(chunk)
        s = np.asarray(state_t, dtype=np.uint8)
        return (be.matvec(self.A_Mt.to_array(), s) ^ be.matvec(self.B_Mt.to_array(), u)).astype(
            np.uint8
        )

    def run(
        self, state: np.ndarray, bits: Sequence[int], backend: BackendLike = None
    ) -> np.ndarray:
        """Process bits (multiple of M) and return the *natural* final state."""
        if len(bits) % self.M:
            raise ValueError(f"bit count {len(bits)} is not a multiple of M = {self.M}")
        be = resolve_backend(backend)
        s = self.to_transformed(state, backend=be)
        for off in range(0, len(bits), self.M):
            s = self.block_step(s, bits[off : off + self.M], backend=be)
        return self.from_transformed(s, backend=be)

    # ------------------------------------------------------------------
    def loop_complexity(self) -> int:
        """Non-zeros in the feedback matrix — k-1 sub-diagonal ones plus the
        tap column for a companion matrix, versus O(k^2/2) for raw A^M."""
        return self.A_Mt.nnz()

    def feedforward_complexity(self) -> int:
        """Non-zeros in B_Mt plus T (pipelineable logic)."""
        return self.B_Mt.nnz() + self.T.nnz()


def derby_transform(
    base: LFSRStateSpace,
    M: int,
    f: Optional[np.ndarray] = None,
    backend: BackendLike = None,
) -> DerbyTransform:
    """Construct the Derby-transformed M-level look-ahead system.

    If ``f`` is given it must make the Krylov matrix invertible; otherwise
    candidates are tried starting from ``f = e_0``.  ``backend`` selects the
    GF(2) kernel set used for the similarity products (the search for ``f``
    and the inversion stay on :class:`~repro.gf2.matrix.GF2Matrix`).
    """
    la = expand_lookahead(base, M)
    k = base.order
    be = resolve_backend(backend)

    def build(fv: np.ndarray) -> Optional[DerbyTransform]:
        T = krylov_matrix(la.A_M, fv)
        if not T.is_invertible():
            return None
        T_inv = T.inverse()
        A_Mt = GF2Matrix(
            be.matmul(be.matmul(T_inv.to_array(), la.A_M.to_array()), T.to_array())
        )
        if not A_Mt.is_companion():
            # By construction the Krylov basis always yields companion form
            # when T is invertible; reaching this means a library bug.
            raise AssertionError("similar matrix is not companion despite invertible T")
        return DerbyTransform(
            lookahead=la,
            f=fv.copy(),
            T=T,
            T_inv=T_inv,
            A_Mt=A_Mt,
            B_Mt=GF2Matrix(be.matmul(T_inv.to_array(), la.B_M.to_array())),
        )

    if f is not None:
        fv = np.asarray(f, dtype=np.uint8)
        if fv.shape != (k,):
            raise ValueError(f"f must have shape ({k},)")
        result = build(fv)
        if result is None:
            raise TransformError("supplied f does not yield an invertible Krylov matrix")
        return result

    for candidate in _candidate_vectors(k):
        result = build(candidate)
        if result is not None:
            return result
    raise TransformError(
        f"no transformation vector found for M={M}: A^M is not cyclic "
        "(its minimal polynomial has degree < k)"
    )
