"""Bit-serial reference LFSRs (Fibonacci and Galois configurations).

These are the plain shift-register implementations every other engine in the
library is validated against.  They are deliberately naive — one bit per
call, integer state — because their correctness is self-evident.

Conventions match :mod:`repro.lfsr.companion`: the register integer holds
state bit ``x_i`` in bit position *i*, the feedback tap is ``x_{k-1}``
(the MSB), and the generator polynomial is
``g(x) = x^k + g_{k-1} x^{k-1} + ... + g_0``.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.gf2.polynomial import GF2Polynomial


class GaloisLFSR:
    """Galois (one-to-many) configuration.

    Each clock shifts left by one and, when the feedback bit is set, XORs
    the low-order generator coefficients into the register.  This is the
    exact integer-register equivalent of applying the paper's companion
    matrix ``A``; with an input bit XORed into the feedback it is the
    serial CRC step.
    """

    def __init__(self, poly: GF2Polynomial, state: int = 0):
        if poly.degree < 1:
            raise ValueError("polynomial degree must be >= 1")
        self._poly = poly
        self._k = poly.degree
        self._mask = (1 << self._k) - 1
        self._taps = poly.coeffs & self._mask  # g_0 .. g_{k-1}
        self.state = state

    @property
    def poly(self) -> GF2Polynomial:
        """The generator polynomial g."""
        return self._poly

    @property
    def width(self) -> int:
        """Register width k (degree of g)."""
        return self._k

    @property
    def state(self) -> int:
        """Register contents as a k-bit integer."""
        return self._state

    @state.setter
    def state(self, value: int) -> None:
        """Load the register; rejects values wider than k bits."""
        if value >> self._k:
            raise ValueError(f"state {value:#x} wider than {self._k} bits")
        self._state = value

    def clock(self, u: int = 0) -> int:
        """One serial step with optional input bit; returns the feedback bit."""
        fb = ((self._state >> (self._k - 1)) & 1) ^ (u & 1)
        self._state = ((self._state << 1) & self._mask) ^ (self._taps if fb else 0)
        return fb

    def keystream(self, nbits: int) -> List[int]:
        """Autonomous output bits (the feedback tap ``x_{k-1}``)."""
        out = []
        for _ in range(nbits):
            out.append((self._state >> (self._k - 1)) & 1)
            self.clock(0)
        return out

    def iter_states(self, steps: int) -> Iterator[int]:
        """Yield the current state, then clock — ``steps`` times."""
        for _ in range(steps):
            yield self._state
            self.clock(0)

    def period(self, limit: int = 1 << 24) -> int:
        """Cycle length from the current (non-zero) state."""
        if self._state == 0:
            raise ValueError("zero state never leaves the origin")
        start = self._state
        probe = GaloisLFSR(self._poly, start)
        count = 0
        while True:
            probe.clock(0)
            count += 1
            if probe.state == start:
                return count
            if count > limit:
                raise ArithmeticError("period search exceeded limit")


class FibonacciLFSR:
    """Fibonacci (many-to-one) configuration.

    The new bit entering the register is the XOR of the tapped positions.
    For the same polynomial it produces the same output sequence as the
    Galois form (up to a state relabeling), which the test-suite checks.

    Here the register shifts toward the MSB: the freshly computed feedback
    bit enters at position 0 and the output bit leaves from position k-1.
    Tap exponent ``t`` (from the polynomial) reads register bit ``k - t``
    for t in 1..k.
    """

    def __init__(self, poly: GF2Polynomial, state: int = 0):
        if poly.degree < 1:
            raise ValueError("polynomial degree must be >= 1")
        if not poly.coefficient(0):
            raise ValueError("Fibonacci form needs a non-zero constant term")
        self._poly = poly
        self._k = poly.degree
        self._mask = (1 << self._k) - 1
        # Register bit j holds the sequence bit produced j+1 clocks ago, so
        # the recurrence a(n) = sum_t g_t a(n-t) reads position t-1 for each
        # tap exponent t (the mandatory x^k term reads position k-1, which
        # keeps the state update invertible).
        self._tap_positions = [t - 1 for t in range(1, self._k + 1) if t == self._k or poly.coefficient(t)]
        self.state = state

    @property
    def poly(self) -> GF2Polynomial:
        """The generator polynomial g (the register runs its reciprocal's recurrence)."""
        return self._poly

    @property
    def width(self) -> int:
        """Register width k (degree of g)."""
        return self._k

    @property
    def state(self) -> int:
        """Register contents as a k-bit integer."""
        return self._state

    @state.setter
    def state(self, value: int) -> None:
        """Load the register; rejects values wider than k bits."""
        if value >> self._k:
            raise ValueError(f"state {value:#x} wider than {self._k} bits")
        self._state = value

    def clock(self) -> int:
        """One autonomous step; returns the output bit (position k-1)."""
        out = (self._state >> (self._k - 1)) & 1
        fb = 0
        for pos in self._tap_positions:
            fb ^= (self._state >> pos) & 1
        self._state = ((self._state << 1) & self._mask) | fb
        return out

    def keystream(self, nbits: int) -> List[int]:
        """Autonomous output bits, one per clock."""
        return [self.clock() for _ in range(nbits)]

    def period(self, limit: int = 1 << 24) -> int:
        """Steps until the start state recurs (bounded by ``limit``)."""
        if self._state == 0:
            raise ValueError("zero state never leaves the origin")
        start = self._state
        probe = FibonacciLFSR(self._poly, start)
        count = 0
        while True:
            probe.clock()
            count += 1
            if probe.state == start:
                return count
            if count > limit:
                raise ArithmeticError("period search exceeded limit")
