"""Berlekamp–Massey LFSR synthesis over GF(2).

Given an output sequence, find the *shortest* LFSR that generates it —
the sequence's linear complexity.  This is the classic analysis tool for
the paper's application domains: a scrambler's keystream has linear
complexity equal to its register length (which is why scramblers are not
ciphers), while stream-cipher constructions (A5/1's irregular clocking,
E0's combiner memory) exist precisely to push linear complexity far above
the total register length.  The library's cipher tests use this module to
demonstrate that property quantitatively.

Conventions
-----------
The synthesized recurrence is ``s[n] = sum_{i=1..L} c_i * s[n-i]`` over
GF(2); the *connection polynomial* is ``C(x) = 1 + c_1 x + ... + c_L x^L``.
For a Fibonacci LFSR built from a degree-k generator ``g`` (as in
:class:`repro.lfsr.FibonacciLFSR`), a full-complexity output sequence
yields ``C = reciprocal(g)`` normalized to ``C(0) = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.gf2.polynomial import GF2Polynomial


@dataclass(frozen=True)
class LFSRSynthesis:
    """Result of Berlekamp–Massey: connection polynomial and complexity."""

    connection: GF2Polynomial  # C(x), C(0) = 1
    linear_complexity: int

    def feedback_taps(self) -> List[int]:
        """The recurrence lags: i with c_i = 1 (1 <= i <= L)."""
        return [
            i
            for i in range(1, self.linear_complexity + 1)
            if self.connection.coefficient(i)
        ]

    def generator(self) -> GF2Polynomial:
        """The monic degree-L generator polynomial ``x^L * C(1/x)``.

        For a maximal-complexity m-sequence this recovers the LFSR's
        generator (up to the reciprocal convention noted above).
        """
        L = self.linear_complexity
        value = 0
        for i in range(L + 1):
            if self.connection.coefficient(i):
                value |= 1 << (L - i)
        return GF2Polynomial(value)

    def predict(self, history: Sequence[int], count: int) -> List[int]:
        """Extend a sequence by ``count`` bits using the recurrence.

        ``history`` must contain at least ``linear_complexity`` bits.
        """
        L = self.linear_complexity
        if L == 0:
            return [0] * count
        if len(history) < L:
            raise ValueError(f"need at least {L} history bits")
        window = [b & 1 for b in history]
        out: List[int] = []
        for _ in range(count):
            nxt = 0
            for i in self.feedback_taps():
                nxt ^= window[-i]
            window.append(nxt)
            out.append(nxt)
        return out


def berlekamp_massey(sequence: Sequence[int]) -> LFSRSynthesis:
    """Synthesize the shortest LFSR generating ``sequence``.

    Runs in O(N^2) bit operations — fine for the keystream lengths used in
    analysis (a few thousand bits).
    """
    s = [b & 1 for b in sequence]
    n = len(s)
    # C and B as coefficient ints (bit i = coeff of x^i).
    c, b = 1, 1
    L, m = 0, -1
    for i in range(n):
        # Discrepancy: s[i] + sum_{j=1..L} c_j s[i-j].
        d = s[i]
        for j in range(1, L + 1):
            if (c >> j) & 1:
                d ^= s[i - j]
        if d == 0:
            continue
        t = c
        c ^= b << (i - m)
        if 2 * L <= i:
            L = i + 1 - L
            m = i
            b = t
    return LFSRSynthesis(connection=GF2Polynomial(c), linear_complexity=L)


def linear_complexity(sequence: Sequence[int]) -> int:
    """Shorthand: just the complexity number."""
    return berlekamp_massey(sequence).linear_complexity


def linear_complexity_profile(sequence: Sequence[int]) -> List[int]:
    """L_n for every prefix length n — the profile used in randomness
    testing (a good keystream tracks n/2)."""
    profile = []
    s = [b & 1 for b in sequence]
    c, b = 1, 1
    L, m = 0, -1
    for i in range(len(s)):
        d = s[i]
        for j in range(1, L + 1):
            if (c >> j) & 1:
                d ^= s[i - j]
        if d:
            t = c
            c ^= b << (i - m)
            if 2 * L <= i:
                L = i + 1 - L
                m = i
                b = t
        profile.append(L)
    return profile
