"""Input validation helpers for the public engine/pipeline entry points.

Every helper raises :class:`repro.errors.ValidationError` with an
actionable message instead of letting bad input fall through to a raw
``KeyError``, a numpy cast error, or — worst — a silent ``& 1``
wraparound that corrupts results.  The bit checks are vectorized so the
hot paths pay one numpy pass, not a per-bit Python loop.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "check_bit_streams",
    "check_bits",
    "check_factor",
    "check_message",
    "check_messages",
    "check_method",
    "check_register",
    "check_register_list",
    "check_seed",
]


def check_factor(M: int, what: str = "block factor M") -> int:
    """A block / look-ahead factor: a positive integer."""
    if isinstance(M, bool) or not isinstance(M, (int, np.integer)):
        raise ValidationError(f"{what} must be an integer, got {M!r}")
    if M < 1:
        raise ValidationError(f"{what} must be >= 1, got {M}")
    return int(M)


def check_method(method: str, allowed: Sequence[str] = ("lookahead", "derby")) -> str:
    if method not in allowed:
        raise ValidationError(
            f"method must be one of {tuple(allowed)}, got {method!r}"
        )
    return method


def check_register(value: int, width: int, what: str = "register") -> int:
    """An integer register/seed/state that must fit in ``width`` bits."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{what} must be an integer, got {value!r}")
    if value < 0 or value >> width:
        raise ValidationError(
            f"{what} {value:#x} does not fit in {width} bits "
            f"(valid range 0..{(1 << width) - 1:#x})"
        )
    return int(value)


def check_seed(
    seed: int, degree: int, what: str = "seed", allow_zero: bool = False
) -> int:
    """An LFSR seed: in range for the register, and non-zero by default
    (an all-zero additive-scrambler seed locks the LFSR at zero)."""
    seed = check_register(seed, degree, what=what)
    if seed == 0 and not allow_zero:
        raise ValidationError(
            f"{what} must be non-zero: an all-zero state produces a null keystream"
        )
    return seed


def check_register_list(
    values: Sequence[int],
    batch: int,
    width: int,
    what: str = "seeds",
    allow_zero: bool = True,
) -> List[int]:
    """A per-stream seed/state list: right length, every entry in range."""
    try:
        n = len(values)
    except TypeError:
        raise ValidationError(
            f"{what} must be a sequence of integers, got {values!r}"
        ) from None
    if n != batch:
        raise ValidationError(f"need {batch} {what}, got {n}")
    return [
        check_seed(v, width, what=f"{what}[{i}]", allow_zero=allow_zero)
        for i, v in enumerate(values)
    ]


def check_bits(bits: Sequence[int], what: str = "bits") -> np.ndarray:
    """A 0/1 bit sequence, returned as a validated uint8 array.

    Rejects anything that is not exactly 0 or 1 — no silent ``& 1``
    wraparound of 2, -1, or 255.
    """
    try:
        arr = np.asarray(bits, dtype=np.int64)
    except (TypeError, ValueError, OverflowError) as exc:
        raise ValidationError(f"{what} must be a sequence of 0/1 values: {exc}") from None
    if arr.ndim != 1:
        raise ValidationError(
            f"{what} must be one-dimensional, got shape {arr.shape}"
        )
    if arr.size:
        bad = (arr != 0) & (arr != 1)
        if bad.any():
            idx = int(np.argmax(bad))
            raise ValidationError(
                f"{what}[{idx}] is {int(arr[idx])}, expected 0 or 1"
            )
    return arr.astype(np.uint8)


def check_bit_streams(
    streams: Sequence[Sequence[int]], what: str = "bit_streams"
) -> List[np.ndarray]:
    """A batch of bit sequences, each validated via :func:`check_bits`."""
    try:
        items = list(streams)
    except TypeError:
        raise ValidationError(
            f"{what} must be a sequence of bit sequences, got {streams!r}"
        ) from None
    return [check_bits(s, what=f"{what}[{i}]") for i, s in enumerate(items)]


def check_message(data: bytes, what: str = "message") -> bytes:
    """A byte payload (``bytes``/``bytearray``/``memoryview``)."""
    if isinstance(data, (bytearray, memoryview)):
        return bytes(data)
    if not isinstance(data, bytes):
        raise ValidationError(
            f"{what} must be bytes-like, got {type(data).__name__}"
        )
    return data


def check_messages(
    messages: Sequence[bytes], what: str = "messages"
) -> List[bytes]:
    try:
        items = list(messages)
    except TypeError:
        raise ValidationError(
            f"{what} must be a sequence of byte strings, got {messages!r}"
        ) from None
    return [check_message(m, what=f"{what}[{i}]") for i, m in enumerate(items)]
