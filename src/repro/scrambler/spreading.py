"""Direct-sequence spreading (the paper's scrambling-vs-spreading split).

§1: a bitstream can be randomized by an LFSR sequence running *at the same
rate* (scrambling) or at a higher chip rate (**spreading**) — 802.11b,
802.15.4 and CDMA systems do the latter.  Each data bit is expanded into
``factor`` chips by XOR with a PN-sequence segment; the despreader
correlates the received chips against the same segment, which tolerates
chip errors up to (just under) half the spreading factor — the processing
gain.

:class:`DirectSequenceSpreader` is deterministic and synchronous (frame-
aligned), matching the standards the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.lfsr.reference import GaloisLFSR
from repro.scrambler.specs import ScramblerSpec


@dataclass(frozen=True)
class DespreadResult:
    """Recovered bits plus per-bit correlation confidence."""

    bits: List[int]
    correlations: List[int]  # matching chips per bit, 0..factor

    def min_confidence(self) -> float:
        if not self.correlations:
            return 0.0
        return min(self.correlations) / max(self.correlations[0], 1)


class DirectSequenceSpreader:
    """Spread/despread a bit stream with an LFSR chip sequence."""

    def __init__(self, spec: ScramblerSpec, factor: int, seed: Optional[int] = None):
        if factor < 1:
            raise ValueError("spreading factor must be >= 1")
        self._spec = spec
        self._factor = factor
        self._seed = spec.seed if seed is None else seed
        if self._seed == 0 or self._seed >> spec.degree:
            raise ValueError("seed must be non-zero and fit the register")

    @property
    def spec(self) -> ScramblerSpec:
        return self._spec

    @property
    def factor(self) -> int:
        return self._factor

    def chip_sequence(self, nchips: int) -> List[int]:
        return GaloisLFSR(self._spec.poly, self._seed).keystream(nchips)

    # ------------------------------------------------------------------
    def spread(self, bits: Sequence[int]) -> List[int]:
        """Each data bit becomes ``factor`` chips: chip = bit XOR pn."""
        chips = self.chip_sequence(len(bits) * self._factor)
        out: List[int] = []
        for i, bit in enumerate(bits):
            base = i * self._factor
            out.extend((bit ^ chips[base + j]) & 1 for j in range(self._factor))
        return out

    def despread(self, chips: Sequence[int]) -> DespreadResult:
        """Majority-correlate chips against the local PN sequence.

        Returns the decoded bits and, per bit, how many chips agreed —
        ``factor`` for a clean channel, lower with chip errors.
        """
        if len(chips) % self._factor:
            raise ValueError(f"chip count must be a multiple of {self._factor}")
        pn = self.chip_sequence(len(chips))
        bits: List[int] = []
        correlations: List[int] = []
        for base in range(0, len(chips), self._factor):
            votes = sum(
                1 for j in range(self._factor) if (chips[base + j] ^ pn[base + j]) & 1
            )
            bit = 1 if 2 * votes > self._factor else 0
            bits.append(bit)
            correlations.append(votes if bit else self._factor - votes)
        return DespreadResult(bits=bits, correlations=correlations)

    def processing_gain_db(self) -> float:
        """10·log10(factor) — the standard DSSS figure."""
        from math import log10

        return 10.0 * log10(self._factor)
