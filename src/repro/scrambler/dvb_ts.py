"""DVB/MPEG-2 transport-stream energy dispersal (ETSI EN 300 429 / DVB).

The paper's §1 names Digital Video Broadcasting among the standards whose
randomizers motivate reconfigurable LFSR hardware.  DVB's layer has real
protocol structure beyond the raw LFSR:

* the PRBS generator is ``1 + x^14 + x^15`` seeded with ``100101010000000``;
* it is re-initialized every **8 transport packets** (an 8-packet
  superframe);
* the first sync byte of the superframe is transmitted *inverted*
  (0x47 -> 0xB8) to mark the re-initialization point;
* sync bytes themselves are never scrambled, but the PRBS **keeps
  clocking** during them (the generator output is discarded for those
  8 bit periods... except on the sync byte of the first packet, where the
  generator has just been reloaded and only starts after it).

This module implements that framing over :class:`AdditiveScrambler`'s
polynomial machinery, giving the library a faithful broadcast-chain
workload.  The descrambler is the same operation (XOR involution) plus
sync-byte restoration.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.lfsr.reference import GaloisLFSR
from repro.scrambler.specs import DVB

TS_PACKET_BYTES = 188
SYNC_BYTE = 0x47
INVERTED_SYNC_BYTE = 0xB8
SUPERFRAME_PACKETS = 8
#: DVB loads the shift register with the fixed word 100101010000000.
DVB_SEED = DVB.seed


class TransportStreamScrambler:
    """Energy-dispersal scrambler/descrambler for 188-byte TS packets."""

    def __init__(self):
        self._lfsr = GaloisLFSR(DVB.poly, DVB_SEED)
        self._packet_in_superframe = 0

    # ------------------------------------------------------------------
    def _prbs_byte(self, use: bool) -> int:
        """Eight generator clocks; returns the byte when ``use`` else 0.

        The generator always advances — DVB keeps the PRBS running during
        sync bytes so the packet payloads stay aligned to the sequence.
        """
        value = 0
        for i in range(8):
            bit = (self._lfsr.state >> (self._lfsr.width - 1)) & 1
            self._lfsr.clock(0)
            value |= bit << (7 - i)
        return value if use else 0

    def _reset_superframe(self) -> None:
        self._lfsr.state = DVB_SEED
        self._packet_in_superframe = 0

    # ------------------------------------------------------------------
    def scramble_packet(self, packet: bytes) -> bytes:
        """Scramble one 188-byte TS packet (call in stream order)."""
        if len(packet) != TS_PACKET_BYTES:
            raise ValueError(f"TS packets are {TS_PACKET_BYTES} bytes")
        if packet[0] != SYNC_BYTE:
            raise ValueError(f"packet must start with sync byte 0x{SYNC_BYTE:02X}")
        first = self._packet_in_superframe == 0
        if first:
            self._reset_superframe()
        out = bytearray(packet)
        if first:
            out[0] = INVERTED_SYNC_BYTE  # marks the re-initialization
            # Generator starts with the first payload byte.
        else:
            self._prbs_byte(use=False)  # clock through the sync byte
        for i in range(1, TS_PACKET_BYTES):
            out[i] ^= self._prbs_byte(use=True)
        self._packet_in_superframe = (self._packet_in_superframe + 1) % SUPERFRAME_PACKETS
        return bytes(out)

    def scramble_stream(self, packets: Sequence[bytes]) -> List[bytes]:
        return [self.scramble_packet(p) for p in packets]


class TransportStreamDescrambler:
    """Self-aligning receiver: synchronizes on the inverted sync byte."""

    def __init__(self):
        self._lfsr = GaloisLFSR(DVB.poly, DVB_SEED)
        self._packet_in_superframe = None  # unsynchronized until 0xB8 seen

    def _prbs_byte(self, use: bool) -> int:
        value = 0
        for i in range(8):
            bit = (self._lfsr.state >> (self._lfsr.width - 1)) & 1
            self._lfsr.clock(0)
            value |= bit << (7 - i)
        return value if use else 0

    @property
    def synchronized(self) -> bool:
        return self._packet_in_superframe is not None

    def descramble_packet(self, packet: bytes) -> bytes:
        if len(packet) != TS_PACKET_BYTES:
            raise ValueError(f"TS packets are {TS_PACKET_BYTES} bytes")
        if packet[0] == INVERTED_SYNC_BYTE:
            self._lfsr.state = DVB_SEED
            self._packet_in_superframe = 0
        elif not self.synchronized:
            return packet  # cannot descramble before the superframe marker
        out = bytearray(packet)
        if self._packet_in_superframe == 0:
            out[0] = SYNC_BYTE  # restore the inverted sync
        else:
            self._prbs_byte(use=False)
        for i in range(1, TS_PACKET_BYTES):
            out[i] ^= self._prbs_byte(use=True)
        self._packet_in_superframe = (
            self._packet_in_superframe + 1
        ) % SUPERFRAME_PACKETS
        return bytes(out)

    def descramble_stream(self, packets: Sequence[bytes]) -> List[bytes]:
        return [self.descramble_packet(p) for p in packets]


def make_transport_stream(payloads: Sequence[bytes]) -> List[bytes]:
    """Frame raw 187-byte payloads into sync-byte-prefixed TS packets."""
    packets = []
    for payload in payloads:
        if len(payload) != TS_PACKET_BYTES - 1:
            raise ValueError(f"payloads must be {TS_PACKET_BYTES - 1} bytes")
        packets.append(bytes([SYNC_BYTE]) + payload)
    return packets
