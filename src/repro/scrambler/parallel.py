"""M-bit block-parallel additive scrambler (paper §5, Fig. 8).

The additive scrambler parallelizes more gently than the CRC: the register
is autonomous, so the block update is just ``x(n+M) = A^M x(n)`` and the M
keystream bits of a block are ``Y x(n)`` with row *j* of ``Y`` equal to
``C A^j``.  There is no input-dependent feedback at all — a single PGAOP
suffices on PiCoGA (no anti-transformation, no configuration switch), which
is why the paper's scrambler reaches the full output bandwidth at every
block length.

For completeness the module also exposes the Derby-transformed variant of
the autonomous update, used by the mapper ablation benches; for the
scrambler it is optional because ``A^M`` never sits in an input feedback
path (outputs can be pipelined).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.gf2.matrix import GF2Matrix
from repro.lfsr.lookahead import scrambler_output_matrix
from repro.lfsr.statespace import scrambler_statespace
from repro.scrambler.additive import AdditiveScrambler
from repro.scrambler.specs import ScramblerSpec


class ParallelScrambler:
    """Generates/applies the keystream M bits per block step."""

    def __init__(self, spec: ScramblerSpec, M: int, seed: Optional[int] = None):
        if M < 1:
            raise ValueError("block factor M must be >= 1")
        self._spec = spec
        self._M = M
        self._seed = spec.seed if seed is None else seed
        self._statespace = scrambler_statespace(spec.poly)
        self._A_M: GF2Matrix = self._statespace.A ** M
        self._Y: GF2Matrix = scrambler_output_matrix(self._statespace, M)
        self._serial = AdditiveScrambler(spec, self._seed)

    @property
    def spec(self) -> ScramblerSpec:
        return self._spec

    @property
    def M(self) -> int:
        return self._M

    @property
    def state_update(self) -> GF2Matrix:
        """``A^M`` — the autonomous block state update."""
        return self._A_M

    @property
    def output_matrix(self) -> GF2Matrix:
        """``Y`` (M×k): block keystream = ``Y @ state``."""
        return self._Y

    # ------------------------------------------------------------------
    def initial_state(self) -> np.ndarray:
        return self._statespace.state_from_int(self._seed)

    def keystream(self, nbits: int) -> List[int]:
        """Block-generated keystream, identical to the serial scrambler's."""
        out: List[int] = []
        state = self.initial_state()
        while len(out) < nbits:
            block = self._Y @ state
            out.extend(int(b) for b in block)
            state = (self._A_M @ state).astype(np.uint8)
        return out[:nbits]

    def scramble_bits(self, bits: Sequence[int]) -> List[int]:
        ks = self.keystream(len(bits))
        return [(b ^ k) & 1 for b, k in zip(bits, ks)]

    def descramble_bits(self, bits: Sequence[int]) -> List[int]:
        return self.scramble_bits(bits)

    # ------------------------------------------------------------------
    def serial_reference(self) -> AdditiveScrambler:
        """The bit-serial engine this block engine must match."""
        return self._serial

    def logic_complexity(self) -> int:
        """Total XOR taps of the block circuit (state update + output)."""
        return self._A_M.nnz() + self._Y.nnz()
