"""Catalog of published scrambler / randomizer parameter sets.

The paper's second application domain (§1): digital broadcasting and
communication standards randomize their bit streams with LFSR-generated
pseudo-random sequences — frame-synchronously (*scrambling*) or at chip
rate (*spreading*).  The Fig. 8 test case is the IEEE 802.16e randomizer
(generator ``1 + x^14 + x^15``).

Seeds are given in the library's state convention: state bit *i* of the
register integer is ``x_i``, with ``x_{k-1}`` (the MSB) feeding both the
feedback and — by default — the keystream output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import SpecError
from repro.gf2.polynomial import GF2Polynomial


@dataclass(frozen=True)
class ScramblerSpec:
    """Parameters of one additive (frame-synchronous) scrambler."""

    name: str
    poly: GF2Polynomial
    seed: int
    description: str = ""

    def __post_init__(self):
        if self.poly.degree < 1:
            raise SpecError("scrambler polynomial must have degree >= 1")
        if self.seed >> self.poly.degree:
            raise SpecError(
                f"seed {self.seed:#x} wider than degree {self.poly.degree}"
            )
        if self.seed == 0:
            raise SpecError("an all-zero seed locks the LFSR at zero")

    @property
    def degree(self) -> int:
        return self.poly.degree


def _poly(*exponents: int) -> GF2Polynomial:
    return GF2Polynomial.from_exponents(list(exponents))


IEEE80216E = ScramblerSpec(
    name="IEEE-802.16e",
    poly=_poly(15, 14, 0),
    seed=(1 << 15) - 1,  # per-burst initialization vector; all-ones default
    description="WiMax PHY randomizer, 1 + x^14 + x^15 — the paper's Fig. 8 case",
)

DVB = ScramblerSpec(
    name="DVB",
    poly=_poly(15, 14, 0),
    seed=0b100101010000000,
    description="DVB/MPEG-2 transport randomizer, same generator as 802.16",
)

IEEE80211 = ScramblerSpec(
    name="IEEE-802.11",
    poly=_poly(7, 4, 0),
    seed=(1 << 7) - 1,
    description="WiFi PHY data scrambler, 1 + x^4 + x^7",
)

SONET = ScramblerSpec(
    name="SONET",
    poly=_poly(7, 6, 0),
    seed=(1 << 7) - 1,
    description="SONET/SDH frame-synchronous scrambler, 1 + x^6 + x^7",
)

# ITU-T O.150 pseudo-random binary sequences (test patterns).
PRBS7 = ScramblerSpec("PRBS7", _poly(7, 6, 0), 0x7F, "ITU-T O.150 2^7-1 pattern")
PRBS9 = ScramblerSpec("PRBS9", _poly(9, 5, 0), 0x1FF, "ITU-T O.150 2^9-1 pattern")
PRBS11 = ScramblerSpec("PRBS11", _poly(11, 9, 0), 0x7FF, "ITU-T O.150 2^11-1 pattern")
PRBS15 = ScramblerSpec("PRBS15", _poly(15, 14, 0), 0x7FFF, "ITU-T O.150 2^15-1 pattern")
PRBS23 = ScramblerSpec("PRBS23", _poly(23, 18, 0), 0x7FFFFF, "ITU-T O.150 2^23-1 pattern")
PRBS31 = ScramblerSpec("PRBS31", _poly(31, 28, 0), 0x7FFFFFFF, "ITU-T O.150 2^31-1 pattern")

CATALOG: List[ScramblerSpec] = [
    IEEE80216E,
    DVB,
    IEEE80211,
    SONET,
    PRBS7,
    PRBS9,
    PRBS11,
    PRBS15,
    PRBS23,
    PRBS31,
]

BY_NAME: Dict[str, ScramblerSpec] = {spec.name: spec for spec in CATALOG}


def get(name: str) -> ScramblerSpec:
    try:
        return BY_NAME[name]
    except KeyError:
        raise SpecError(
            f"unknown scrambler {name!r}; known: {sorted(BY_NAME)}"
        ) from None
