"""Shallow-feedback (Galois-form) scramblers, bit-exact vs the Fibonacci
reference.

The scrambler standards in :mod:`repro.scrambler.specs` draw *Fibonacci*
registers: a many-to-one XOR tree feeding one flip-flop.  Dubrova's
equivalence-preserving transformation (see :mod:`repro.lfsr.galois`)
rewrites each of them as a *Galois* register — the feedback fans out as
2-input XORs, the software analogue of the Derby shallow-feedback trick
the paper plays in hardware (§2).  Same output, shallower loop.

The output sequence only stays identical if the initial state is mapped
through the observability matrices; the classes here wrap that bookkeeping
so callers keep thinking in the standards' Fibonacci terms:

* :class:`FibonacciAdditiveScrambler` — the literal standards diagram:
  keystream straight from :class:`~repro.lfsr.reference.FibonacciLFSR`.
  Slow, auditable, the reference the Galois form is tested against.
* :class:`GaloisFormAdditiveScrambler` — same spec, same seed semantics,
  but the keystream engine is ``GaloisLFSR(poly.reciprocal(), ·)`` seeded
  with :func:`~repro.lfsr.galois.fibonacci_to_galois_state`.  Bit-exact
  vs the Fibonacci reference for every catalog spec (property-tested in
  ``tests/test_scrambler_galois.py`` and fuzzed by the
  ``galois:fibonacci-vs-galois`` oracle).
* :class:`GaloisMultiplicativeScrambler` — the self-synchronizing
  scrambler run in Galois form.  The constructor accepts the *Fibonacci
  delay-line* preset of :class:`~repro.scrambler.multiplicative.MultiplicativeScrambler`
  and converts it with
  :func:`~repro.lfsr.galois.multiplicative_fibonacci_to_galois_state`,
  making the two drop-in interchangeable mid-stream.

For the word-oriented (one machine word per clock) keystream engine see
:class:`repro.scrambler.additive.WordAdditiveScrambler`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import SpecError
from repro.gf2.bits import bits_to_bytes, bytes_to_bits
from repro.gf2.polynomial import GF2Polynomial
from repro.lfsr.galois import (
    fibonacci_to_galois_state,
    multiplicative_fibonacci_to_galois_state,
    multiplicative_galois_to_fibonacci_state,
)
from repro.lfsr.reference import FibonacciLFSR, GaloisLFSR
from repro.scrambler.specs import ScramblerSpec
from repro.validation import check_bits, check_register, check_seed

__all__ = [
    "FibonacciAdditiveScrambler",
    "GaloisFormAdditiveScrambler",
    "GaloisMultiplicativeScrambler",
]


class _AdditiveBase:
    """Shared XOR plumbing for the two additive forms."""

    def __init__(self, spec: ScramblerSpec, seed: Optional[int] = None):
        self._spec = spec
        self._seed = check_seed(
            spec.seed if seed is None else seed, spec.degree, allow_zero=False
        )

    @property
    def spec(self) -> ScramblerSpec:
        """The scrambler standard (polynomial + default seed)."""
        return self._spec

    @property
    def seed(self) -> int:
        """The Fibonacci-register seed (the standards' framing word)."""
        return self._seed

    def keystream(self, nbits: int) -> List[int]:
        """The raw pseudo-random sequence XORed onto the data."""
        raise NotImplementedError

    def scramble_bits(self, bits: Sequence[int]) -> List[int]:
        """XOR the data bits with the keystream from the seeded register."""
        checked = check_bits(bits, what="bits")
        ks = self.keystream(len(checked))
        return [(int(b) ^ k) & 1 for b, k in zip(checked, ks)]

    def descramble_bits(self, bits: Sequence[int]) -> List[int]:
        """Identical to scrambling — XOR with the same keystream."""
        return self.scramble_bits(bits)

    def scramble_bytes(self, data: bytes, lsb_first: bool = True) -> bytes:
        """Byte-stream convenience wrapper (serial order selectable)."""
        bits = bytes_to_bits(data, reflect=lsb_first)
        return bits_to_bytes(self.scramble_bits(bits), reflect=lsb_first)

    def descramble_bytes(self, data: bytes, lsb_first: bool = True) -> bytes:
        """Identical to :meth:`scramble_bytes` (XOR is an involution)."""
        return self.scramble_bytes(data, lsb_first)


class FibonacciAdditiveScrambler(_AdditiveBase):
    """The standards diagram taken literally: a Fibonacci keystream register.

    This is the many-to-one form the 802.16e / DVB / PRBS figures draw.
    It exists as the auditable reference for
    :class:`GaloisFormAdditiveScrambler`; production code should use
    :class:`~repro.scrambler.additive.AdditiveScrambler` (blockwise) or the
    Galois form below.
    """

    def keystream(self, nbits: int) -> List[int]:
        """Bit-serial keystream from ``FibonacciLFSR(spec.poly, seed)``."""
        return FibonacciLFSR(self._spec.poly, self._seed).keystream(nbits)


class GaloisFormAdditiveScrambler(_AdditiveBase):
    """The same scrambler run on a shallow-feedback Galois register.

    The engine is ``GaloisLFSR(spec.poly.reciprocal(), g)`` — the register
    conventions of this library pair reciprocal polynomials across the two
    forms (see :mod:`repro.lfsr.galois`) — with ``g`` the matching initial
    state computed from the Fibonacci seed.  Output is bit-for-bit the
    sequence of :class:`FibonacciAdditiveScrambler` with the same seed.
    """

    def __init__(self, spec: ScramblerSpec, seed: Optional[int] = None):
        super().__init__(spec, seed)
        self._galois_poly = spec.poly.reciprocal()
        self._galois_seed = fibonacci_to_galois_state(spec.poly, self._seed)

    @property
    def galois_seed(self) -> int:
        """The matched Galois-register state actually clocked."""
        return self._galois_seed

    def keystream(self, nbits: int) -> List[int]:
        """Keystream from the matched shallow-feedback register."""
        return GaloisLFSR(self._galois_poly, self._galois_seed).keystream(nbits)


class GaloisMultiplicativeScrambler:
    """Self-synchronizing scrambler in one-to-many (Galois) form.

    A drop-in twin of :class:`~repro.scrambler.multiplicative.MultiplicativeScrambler`:
    same generator ``poly``, same delay-line ``state`` semantics, same
    transfer functions (``1/g(x)`` scrambling, ``g(x)`` descrambling) — but
    each clock is one shift plus one conditional XOR of the tap word
    instead of a tap-by-tap XOR fan-in.  The constructor converts the
    Fibonacci delay-line preset to the matching Galois register, so both
    engines emit identical bits for *every* input stream.
    """

    def __init__(self, poly: GF2Polynomial, state: int = 0):
        if poly.degree < 1:
            raise SpecError("polynomial degree must be >= 1")
        self._poly = poly
        self._k = poly.degree
        self._mask = (1 << self._k) - 1
        galois_poly = poly.reciprocal()
        self._taps = galois_poly.coeffs & self._mask
        self.state = state

    @property
    def poly(self) -> GF2Polynomial:
        """The generator polynomial ``g(x)`` (Fibonacci-side convention)."""
        return self._poly

    @property
    def degree(self) -> int:
        """Register length ``k`` (= the resynchronization horizon)."""
        return self._k

    @property
    def state(self) -> int:
        """Equivalent Fibonacci delay-line state (converted on read)."""
        return multiplicative_galois_to_fibonacci_state(
            self._poly.reciprocal(), self._galois_state
        )

    @state.setter
    def state(self, value: int) -> None:
        value = check_register(value, self._k, what="state")
        self._galois_state = multiplicative_fibonacci_to_galois_state(
            self._poly, value
        )

    @property
    def galois_state(self) -> int:
        """The raw Galois-register contents actually clocked."""
        return self._galois_state

    # ------------------------------------------------------------------
    def _clock(self, scrambled_bit: int) -> None:
        """Shift once; the scrambled stream bit drives the tap injection."""
        self._galois_state = ((self._galois_state << 1) & self._mask) ^ (
            self._taps if scrambled_bit else 0
        )

    def scramble_bits(self, bits: Sequence[int]) -> List[int]:
        """``s = u ^ msb(state)``, feeding back ``s`` (1/g(x) transfer)."""
        out = []
        msb = self._k - 1
        for u in check_bits(bits, what="bits").tolist():
            s = u ^ ((self._galois_state >> msb) & 1)
            self._clock(s)
            out.append(s)
        return out

    def descramble_bits(self, bits: Sequence[int]) -> List[int]:
        """``u = s ^ msb(state)``, feeding forward ``s`` (g(x) transfer)."""
        out = []
        msb = self._k - 1
        for s in check_bits(bits, what="bits").tolist():
            u = s ^ ((self._galois_state >> msb) & 1)
            self._clock(s)
            out.append(u)
        return out

    def sync_length(self) -> int:
        """Bits of correct input after which a descrambler with arbitrary
        initial state produces correct output."""
        return self._k
