"""SONET/SDH frame-synchronous section scrambling (GR-253 / G.707).

The paper's §1 lists SONET among the CRC/scrambler protocol family.  Its
section scrambler has frame structure worth modelling:

* the scrambler is the 7-bit LFSR ``1 + x^6 + x^7``, reset to all-ones at
  the first byte *after* the framing overhead of each frame;
* the first row's framing bytes — A1s (0xF6), A2s (0x28) and the J0/Z0
  section-trace bytes — are transmitted **unscrambled** so receivers can
  hunt for frame alignment on the wire;
* everything else in the frame (9 rows x 90·N columns for STS-N) is XORed
  with the keystream, MSB-first per byte.

:class:`SonetFrameScrambler` implements both directions plus the receiver
alignment hunt on the A1/A2 boundary.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.lfsr.reference import GaloisLFSR
from repro.scrambler.specs import SONET

A1 = 0xF6
A2 = 0x28
ROWS = 9
COLUMNS_PER_STS1 = 90


def frame_bytes(sts_n: int) -> int:
    return ROWS * COLUMNS_PER_STS1 * sts_n


def framing_overhead_bytes(sts_n: int) -> int:
    """A1 x N, A2 x N, J0/Z0 x N — the unscrambled prefix of row 1."""
    return 3 * sts_n


def build_frame(sts_n: int, payload: bytes) -> bytes:
    """Assemble one STS-N frame: framing bytes + payload."""
    size = frame_bytes(sts_n)
    overhead = framing_overhead_bytes(sts_n)
    if len(payload) != size - overhead:
        raise ValueError(f"payload must be {size - overhead} bytes for STS-{sts_n}")
    framing = bytes([A1] * sts_n + [A2] * sts_n + list(range(1, sts_n + 1)))
    return framing + payload


class SonetFrameScrambler:
    """Scramble/descramble STS-N frames with the section scrambler."""

    def __init__(self, sts_n: int = 1):
        if sts_n < 1:
            raise ValueError("STS level must be >= 1")
        self.sts_n = sts_n

    # ------------------------------------------------------------------
    def _keystream_bytes(self, count: int) -> List[int]:
        lfsr = GaloisLFSR(SONET.poly, SONET.seed)  # reset to all-ones
        out = []
        for _ in range(count):
            value = 0
            for i in range(8):
                bit = (lfsr.state >> (SONET.degree - 1)) & 1
                lfsr.clock(0)
                value |= bit << (7 - i)
            out.append(value)
        return out

    def process_frame(self, frame: bytes) -> bytes:
        """Scramble or descramble (self-inverse) one frame."""
        size = frame_bytes(self.sts_n)
        if len(frame) != size:
            raise ValueError(f"STS-{self.sts_n} frames are {size} bytes")
        overhead = framing_overhead_bytes(self.sts_n)
        ks = self._keystream_bytes(size - overhead)
        out = bytearray(frame)
        for i, k in enumerate(ks):
            out[overhead + i] ^= k
        return bytes(out)

    scramble_frame = process_frame
    descramble_frame = process_frame

    # ------------------------------------------------------------------
    def find_frame_alignment(self, stream: Sequence[int]) -> Optional[int]:
        """Receiver hunt: locate the A1->A2 transition in a byte stream.

        Returns the offset of the first A1 byte of a full framing pattern,
        or None.  Works on scrambled streams because framing bytes are
        transmitted in the clear."""
        n = self.sts_n
        pattern = [A1] * n + [A2] * n
        limit = len(stream) - len(pattern)
        for off in range(limit + 1):
            if all(stream[off + i] == pattern[i] for i in range(len(pattern))):
                return off
        return None
