"""Multiplicative (self-synchronizing) scrambler.

Unlike the additive scrambler, the shift register is fed by the *scrambled*
bit stream itself, so the descrambler resynchronizes automatically after
``degree`` correct bits — no frame alignment needed.  Used by SONET/SDH
payload scrambling (x^43 + 1) and V-series modems.

Scrambler:   s(n) = u(n) ^ taps(state);  state <- shift in s(n)
Descrambler: u(n) = s(n) ^ taps(state);  state <- shift in s(n)

Taps read the state at delay t for every generator exponent t >= 1, i.e.
the transfer function is 1/g(x) on the scramble side and g(x) on the
descramble side.

The descramble direction is pure feed-forward (``u(n) = s(n) ^ sum_t
s(n-t)``), so on the packed GF(2) backends it runs as a handful of
big-integer shift/XOR operations over the whole stream at once.  The
scramble direction has a data-dependent feedback loop and always runs
serially, whatever the backend.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import SpecError
from repro.gf2.backend import GF2Backend, resolve_backend
from repro.gf2.bits import bits_to_int, int_to_bits, reflect_bits
from repro.gf2.polynomial import GF2Polynomial
from repro.lfsr.lookahead import BackendLike
from repro.validation import check_bits, check_register


class MultiplicativeScrambler:
    """Self-synchronizing scrambler/descrambler pair."""

    def __init__(self, poly: GF2Polynomial, state: int = 0, backend: BackendLike = None):
        if poly.degree < 1:
            raise SpecError("polynomial degree must be >= 1")
        self._poly = poly
        self._k = poly.degree
        self._mask = (1 << self._k) - 1
        # Delay-line positions read by the feedback: exponent t -> bit t-1
        # (bit j holds the stream bit from j+1 clocks ago).
        self._taps = [t - 1 for t in range(1, self._k + 1) if t == self._k or poly.coefficient(t)]
        self._backend = resolve_backend(backend)
        self.state = state

    @property
    def poly(self) -> GF2Polynomial:
        return self._poly

    @property
    def degree(self) -> int:
        return self._k

    @property
    def backend(self) -> GF2Backend:
        """The GF(2) kernel backend the descramble direction runs on."""
        return self._backend

    @property
    def state(self) -> int:
        return self._state

    @state.setter
    def state(self, value: int) -> None:
        self._state = check_register(value, self._k, what="state")

    # ------------------------------------------------------------------
    def _feedback(self) -> int:
        fb = 0
        for pos in self._taps:
            fb ^= (self._state >> pos) & 1
        return fb

    def _shift_in(self, bit: int) -> None:
        self._state = ((self._state << 1) & self._mask) | (bit & 1)

    def scramble_bits(self, bits: Sequence[int]) -> List[int]:
        out = []
        for u in check_bits(bits, what="bits").tolist():
            s = u ^ self._feedback()
            self._shift_in(s)
            out.append(s)
        return out

    def descramble_bits(self, bits: Sequence[int]) -> List[int]:
        checked = check_bits(bits, what="bits").tolist()
        if self._backend.name == "reference":
            out = []
            for s in checked:
                u = s ^ self._feedback()
                self._shift_in(s)
                out.append(u)
            return out
        return self._descramble_packed(checked)

    def _descramble_packed(self, bits: List[int]) -> List[int]:
        """Feed-forward descramble as big-integer shift/XOR operations.

        The scrambled stream (bit ``n`` = ``s(n)``) is extended below bit 0
        with the delay line (``ext`` bit ``j < k`` holds ``s(j-k)``, i.e. the
        reflected register), so every tap read becomes one right shift of
        ``ext``; the final register is read back off the top of ``ext``.
        """
        n = len(bits)
        k = self._k
        ext = (bits_to_int(bits) << k) | reflect_bits(self._state, k)
        out = ext >> k  # the s(n) term itself
        for pos in self._taps:
            out ^= ext >> (k - (pos + 1))
        self._state = reflect_bits((ext >> n) & self._mask, k)
        return int_to_bits(out & ((1 << n) - 1), n)

    # ------------------------------------------------------------------
    def sync_length(self) -> int:
        """Bits of correct input after which a descrambler with arbitrary
        initial state produces correct output."""
        return self._k
