"""Bluetooth data whitening (Core spec Vol 6, Part B §3.2 style).

Bluetooth whitens packet headers and payloads with the 7-bit LFSR
``1 + x^4 + x^7`` — the same generator as 802.11's scrambler — seeded from
the channel/clock so both ends derive it independently: position 6 is set
to 1 and positions 5..0 carry the channel index (BLE) or clock bits
(BR/EDR).  A thin, protocol-flavoured layer over the additive scrambler.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.lfsr.reference import GaloisLFSR
from repro.scrambler.specs import IEEE80211 as _WHITENING_SPEC  # same polynomial


def whitening_seed(channel: int) -> int:
    """BLE rule: register = 1 at position 6, channel index in 5..0."""
    if not 0 <= channel <= 39:
        raise ValueError("BLE channel index is 0..39")
    return (1 << 6) | channel


def whitening_sequence(channel: int, nbits: int) -> List[int]:
    return GaloisLFSR(_WHITENING_SPEC.poly, whitening_seed(channel)).keystream(nbits)


def whiten_bits(bits: Sequence[int], channel: int) -> List[int]:
    ks = whitening_sequence(channel, len(bits))
    return [(b ^ k) & 1 for b, k in zip(bits, ks)]


def dewhiten_bits(bits: Sequence[int], channel: int) -> List[int]:
    """Identical to whitening (XOR involution)."""
    return whiten_bits(bits, channel)


def whiten_bytes(data: bytes, channel: int) -> bytes:
    """Byte interface, LSB-first per byte (the air order)."""
    ks = whitening_sequence(channel, 8 * len(data))
    out = bytearray(len(data))
    for i, byte in enumerate(data):
        value = 0
        for j in range(8):
            value |= ((byte >> j) & 1 ^ ks[8 * i + j]) << j
        out[i] = value
    return bytes(out)


def dewhiten_bytes(data: bytes, channel: int) -> bytes:
    return whiten_bytes(data, channel)
