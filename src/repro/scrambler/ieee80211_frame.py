"""IEEE 802.11 PPDU scrambling with receiver-side seed recovery.

802.11 (DSSS/OFDM PHYs) scrambles the PSDU with the self-seeding LFSR
``1 + x^4 + x^7``.  The transmitter picks a (pseudo-)random non-zero
7-bit initial state per frame; the receiver never learns it out of band —
instead the frame starts with the all-zero 16-bit SERVICE field: the first
7 scrambled bits *are* the keystream prefix (zero XOR keystream), from
which the receiver reconstructs the scrambler state; the remaining 9
reserved SERVICE bits must then descramble to zero, which doubles as an
integrity check on the synchronization.

This module implements both sides, giving the library a protocol-complete
scrambler workload (and a neat demonstration of the state-recovery duality
the receiver exploits).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.lfsr.reference import GaloisLFSR
from repro.scrambler.specs import IEEE80211

SEED_BITS = 7  # scrambler-init portion of the SERVICE field
SERVICE_BITS = 16  # 7 seed bits + 9 reserved zero bits (802.11 OFDM)


class Ieee80211Scrambler:
    """Transmit side: scramble SERVICE + PSDU bits with a chosen seed."""

    def __init__(self, seed: int):
        if not 0 < seed < (1 << 7):
            raise ValueError("seed must be a non-zero 7-bit value")
        self._seed = seed

    @property
    def seed(self) -> int:
        return self._seed

    def keystream(self, nbits: int) -> List[int]:
        return GaloisLFSR(IEEE80211.poly, self._seed).keystream(nbits)

    def scramble_frame(self, psdu_bits: Sequence[int]) -> List[int]:
        """Prepend the zero SERVICE bits and scramble everything."""
        frame = [0] * SERVICE_BITS + [b & 1 for b in psdu_bits]
        ks = self.keystream(len(frame))
        return [(b ^ k) & 1 for b, k in zip(frame, ks)]


def recover_seed(scrambled_frame: Sequence[int]) -> int:
    """Receiver: the first 7 scrambled bits *are* the keystream prefix
    (SERVICE field is zero).  Reconstruct the LFSR state from them."""
    if len(scrambled_frame) < SEED_BITS:
        raise ValueError(f"need at least {SEED_BITS} bits")
    prefix = [b & 1 for b in scrambled_frame[:SEED_BITS]]
    # Our Galois LFSR emits its MSB (bit 6) each clock and the companion
    # dynamics are invertible, so search the 127 possible states for the
    # one reproducing the prefix.  (7 bits -> tiny; a closed form exists
    # via the inverse state map, but exhaustive matching is clearer and
    # exact.)
    for state in range(1, 1 << 7):
        if GaloisLFSR(IEEE80211.poly, state).keystream(SEED_BITS) == prefix:
            return state
    raise ValueError("no scrambler state reproduces the SERVICE prefix (all-zero seed?)")


def descramble_frame(scrambled_frame: Sequence[int]) -> Tuple[int, List[int]]:
    """Recover (seed, psdu_bits) from a scrambled frame."""
    seed = recover_seed(scrambled_frame)
    ks = GaloisLFSR(IEEE80211.poly, seed).keystream(len(scrambled_frame))
    clear = [(b ^ k) & 1 for b, k in zip(scrambled_frame, ks)]
    service, psdu = clear[:SERVICE_BITS], clear[SERVICE_BITS:]
    if any(service):
        # The 9 reserved SERVICE bits beyond the seed must descramble to
        # zero; a non-zero bit means corruption or a sync failure.
        raise ValueError("descrambled SERVICE field is not zero; bad sync")
    return seed, psdu
