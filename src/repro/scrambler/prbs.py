"""PRBS pattern generation and checking (ITU-T O.150 family).

Test-pattern generators are the third face of the same LFSR: the catalog's
PRBS7..PRBS31 sequences are used to qualify serial links.  The checker
implements the standard trick of seeding itself from the received stream
(self-synchronization), then counting mismatches — giving the library a
realistic BER-test workload for the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.lfsr.reference import FibonacciLFSR
from repro.scrambler.specs import ScramblerSpec


def prbs_sequence(spec: ScramblerSpec, nbits: int, seed: int = None) -> List[int]:
    """``nbits`` of the PRBS pattern (Fibonacci form, per O.150)."""
    start = spec.seed if seed is None else seed
    return FibonacciLFSR(spec.poly, start).keystream(nbits)


@dataclass
class PRBSCheckResult:
    """Outcome of checking a received stream against a PRBS pattern."""

    synchronized: bool
    checked_bits: int
    error_bits: int

    @property
    def bit_error_rate(self) -> float:
        return self.error_bits / self.checked_bits if self.checked_bits else 0.0


class PRBSChecker:
    """Self-synchronizing PRBS verifier."""

    def __init__(self, spec: ScramblerSpec):
        self._spec = spec
        self._k = spec.degree

    @property
    def spec(self) -> ScramblerSpec:
        return self._spec

    def check(self, received: Sequence[int]) -> PRBSCheckResult:
        """Seed a local generator from the first k received bits, then
        compare the remainder of the stream against the local pattern."""
        k = self._k
        if len(received) <= k:
            return PRBSCheckResult(synchronized=False, checked_bits=0, error_bits=0)
        # The Fibonacci register is a sliding window of the sequence: the
        # first k received bits *are* the state (newest at position 0).
        state = 0
        for i, bit in enumerate(received[:k]):
            state |= (bit & 1) << (k - 1 - i)
        if state == 0:
            return PRBSCheckResult(synchronized=False, checked_bits=0, error_bits=0)
        gen = FibonacciLFSR(self._spec.poly, state)
        for _ in range(k):  # replay the seed window; outputs are the seed bits
            gen.clock()
        errors = 0
        checked = 0
        for bit in received[k:]:
            expected = gen.clock()
            errors += (bit ^ expected) & 1
            checked += 1
        return PRBSCheckResult(synchronized=True, checked_bits=checked, error_bits=errors)
