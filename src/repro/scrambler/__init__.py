"""Scramblers, randomizers and PRBS generators on the LFSR substrate.

* :class:`AdditiveScrambler` — frame-synchronous (the paper's Fig. 1 right).
* :class:`MultiplicativeScrambler` — self-synchronizing variant.
* :class:`ParallelScrambler` — M-bit block engine (paper §5 / Fig. 8).
* :mod:`repro.scrambler.prbs` — ITU-T O.150 pattern generation/checking.
* :mod:`repro.scrambler.specs` — 802.16e, 802.11, DVB, SONET, PRBS catalog.
"""

from repro.scrambler.additive import AdditiveScrambler
from repro.scrambler.multiplicative import MultiplicativeScrambler
from repro.scrambler.parallel import ParallelScrambler
from repro.scrambler.spreading import DespreadResult, DirectSequenceSpreader
from repro.scrambler.prbs import PRBSChecker, PRBSCheckResult, prbs_sequence
from repro.scrambler.specs import (
    BY_NAME,
    CATALOG,
    DVB,
    IEEE80211,
    IEEE80216E,
    PRBS7,
    PRBS9,
    PRBS11,
    PRBS15,
    PRBS23,
    PRBS31,
    SONET,
    ScramblerSpec,
    get,
)

__all__ = [
    "AdditiveScrambler",
    "BY_NAME",
    "DespreadResult",
    "DirectSequenceSpreader",
    "CATALOG",
    "DVB",
    "IEEE80211",
    "IEEE80216E",
    "MultiplicativeScrambler",
    "PRBS11",
    "PRBS15",
    "PRBS23",
    "PRBS31",
    "PRBS7",
    "PRBS9",
    "PRBSCheckResult",
    "PRBSChecker",
    "ParallelScrambler",
    "SONET",
    "ScramblerSpec",
    "get",
    "prbs_sequence",
]
