"""Scramblers, randomizers and PRBS generators on the LFSR substrate.

* :class:`AdditiveScrambler` — frame-synchronous (the paper's Fig. 1 right).
* :class:`MultiplicativeScrambler` — self-synchronizing variant.
* :class:`ParallelScrambler` — M-bit block engine (paper §5 / Fig. 8).
* :mod:`repro.scrambler.galois` — the same scramblers in shallow-feedback
  Galois form, bit-exact via Dubrova's matching initial states.
* :class:`WordAdditiveScrambler` — word-oriented (σ-LFSR) keystream path.
* :mod:`repro.scrambler.prbs` — ITU-T O.150 pattern generation/checking.
* :mod:`repro.scrambler.specs` — 802.16e, 802.11, DVB, SONET, PRBS catalog.
"""

from repro.scrambler.additive import AdditiveScrambler, WordAdditiveScrambler
from repro.scrambler.galois import (
    FibonacciAdditiveScrambler,
    GaloisFormAdditiveScrambler,
    GaloisMultiplicativeScrambler,
)
from repro.scrambler.multiplicative import MultiplicativeScrambler
from repro.scrambler.parallel import ParallelScrambler
from repro.scrambler.spreading import DespreadResult, DirectSequenceSpreader
from repro.scrambler.prbs import PRBSChecker, PRBSCheckResult, prbs_sequence
from repro.scrambler.specs import (
    BY_NAME,
    CATALOG,
    DVB,
    IEEE80211,
    IEEE80216E,
    PRBS7,
    PRBS9,
    PRBS11,
    PRBS15,
    PRBS23,
    PRBS31,
    SONET,
    ScramblerSpec,
    get,
)

__all__ = [
    "AdditiveScrambler",
    "BY_NAME",
    "DespreadResult",
    "DirectSequenceSpreader",
    "CATALOG",
    "DVB",
    "FibonacciAdditiveScrambler",
    "GaloisFormAdditiveScrambler",
    "GaloisMultiplicativeScrambler",
    "IEEE80211",
    "IEEE80216E",
    "MultiplicativeScrambler",
    "PRBS11",
    "PRBS15",
    "PRBS23",
    "PRBS31",
    "PRBS7",
    "PRBS9",
    "PRBSCheckResult",
    "PRBSChecker",
    "ParallelScrambler",
    "SONET",
    "ScramblerSpec",
    "WordAdditiveScrambler",
    "get",
    "prbs_sequence",
]
