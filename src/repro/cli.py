"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``standards``
    List the CRC standards in the catalog (name, width, polynomial, check).
``crc``
    Compute a CRC over hex/file/string input with any engine.
``map``
    Compile a CRC onto PiCoGA and print the placement report.
``explore``
    Sweep look-ahead factors for a standard (the paper's §4 study).
``perf``
    Predict DREAM throughput for a message length across factors.
``batch-bench``
    Time the vectorized batch engine against the per-message Derby loop
    (``--auto`` additionally runs the execution planner's pick and
    reports predicted vs actual throughput).
``plan``
    Run the adaptive execution planner for a workload: probe (or load)
    the host cost profile and print the chosen backend x workers x M
    with its decision trace (``--json`` writes the full artifact).
``cache``
    Inspect (or clear) the persistent compile-cache directory.
``stats``
    Dump the telemetry registry as JSON, JSON lines, Prometheus text or
    a Chrome trace (``--format chrome``); ``--spans`` prints the
    recorded span tree instead.
``serve``
    Run the async digest server: many client connections multiplexed
    onto one shared sharded pipeline (planner-sized unless ``-m`` /
    ``--workers`` pin the shape); SIGTERM drains gracefully.
``loadgen``
    Replay an IMIX frame-size mix against a running server and report
    msgs/s + p50/p99 latency, verifying every digest against a serial
    oracle (``--min-msgs-per-s`` turns it into a gate).
``dump``
    Print the flight-recorder event ring (live, or a dump saved by an
    earlier ``--telemetry`` run).

``crc``, ``perf`` and ``batch-bench`` accept ``--telemetry``: the run is
traced, a span-tree summary prints afterwards, the metrics registry and
span trees are snapshotted to ``$REPRO_TELEMETRY_PATH`` (default
``.repro-telemetry.jsonl``) where a later ``stats`` invocation finds
them, and the flight-recorder ring is saved to ``$REPRO_FLIGHTREC_PATH``
(default ``.repro-flightrec.jsonl``) for ``dump``.

``crc``, ``batch-bench`` and ``fuzz`` accept ``--backend`` to pick the
GF(2) kernel set (``reference``, ``packed``, ...) for the whole run; it
sets the process default, so it also covers engines built internally by
the fuzzer.  The ``REPRO_GF2_BACKEND`` environment variable does the same
without a flag.

``batch-bench`` and ``fuzz`` accept ``--workers`` to shard work across a
pool (``$REPRO_WORKERS`` without a flag; ``auto`` = cpu count) and
``--cache-dir`` to persist compiled artifacts across runs
(``$REPRO_CACHE_DIR`` without a flag) — both flags set the process
default, so engines built internally inherit them.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import format_table
from repro.crc import (
    BitwiseCRC,
    CATALOG,
    DerbyCRC,
    GFMACCRC,
    SlicingCRC,
    TableCRC,
    get,
)

def _batch_engine(spec):
    from repro.engine import BatchCRC

    return BatchCRC(spec, 32)


ENGINES = {
    "bitwise": BitwiseCRC,
    "table": TableCRC,
    "slicing": lambda spec: SlicingCRC(spec, 8),
    "gfmac": lambda spec: GFMACCRC(spec, 32),
    "derby": lambda spec: DerbyCRC(spec, 32),
    "batch": _batch_engine,
}


def _read_payload(args: argparse.Namespace) -> bytes:
    if args.hex is not None:
        return bytes.fromhex(args.hex)
    if args.file is not None:
        with open(args.file, "rb") as handle:
            return handle.read()
    if args.text is not None:
        return args.text.encode()
    return b"123456789"  # the standard check input


def cmd_standards(args: argparse.Namespace) -> int:
    rows = [
        [s.name, s.width, f"0x{s.poly:X}", "yes" if s.refin else "no",
         f"0x{s.check:X}" if s.check is not None else "-"]
        for s in CATALOG
    ]
    print(format_table(["name", "width", "poly", "reflected", "check"], rows,
                       title=f"{len(CATALOG)} cataloged CRC standards"))
    return 0


def cmd_crc(args: argparse.Namespace) -> int:
    spec = get(args.standard)
    engine = ENGINES[args.engine](spec)
    payload = _read_payload(args)
    crc = engine.compute(payload)
    digits = (spec.width + 3) // 4
    print(f"{spec.name}({len(payload)} bytes) = 0x{crc:0{digits}X}")
    if args.verify is not None:
        expected = int(args.verify, 0)
        ok = crc == expected
        print("verify: OK" if ok else f"verify: MISMATCH (expected 0x{expected:X})")
        return 0 if ok else 1
    return 0


def cmd_map(args: argparse.Namespace) -> int:
    from repro.mapping import map_crc
    from repro.picoga.report import describe

    spec = get(args.standard)
    mapped = map_crc(spec, args.m, method=args.method)
    r = mapped.report
    print(
        f"{spec.name} @ M={r.M} ({r.method}): {r.total_cells} cells, "
        f"II={r.update_ii}, CSE saved {r.cse_savings} taps "
        f"({r.shared_patterns} shared patterns)"
    )
    if args.report:
        print()
        print(describe(mapped.update_op))
        if mapped.output_op is not None:
            print()
            print(describe(mapped.output_op))
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    from repro.mapping import DesignSpaceExplorer

    explorer = DesignSpaceExplorer(get(args.standard))
    rows = []
    for point in explorer.sweep(tuple(args.factors)):
        if point.feasible:
            rows.append([point.M, point.cells, point.rows,
                         point.initiation_interval, f"{point.kernel_gbps:.1f}"])
        else:
            rows.append([point.M, "-", "-", "-", "infeasible"])
    print(format_table(["M", "cells", "rows", "II", "kernel Gbit/s"], rows,
                       title=f"Design space: {args.standard}"))
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    from repro.dream import DreamSystem

    system = DreamSystem()
    rows = []
    for M in args.factors:
        mapped = system.compile_crc(get(args.standard), M)
        single = system.crc_single_performance(mapped, args.bits)
        batch = system.crc_interleaved_performance(mapped, args.bits, 32)
        rows.append([M, single.total_cycles, f"{single.throughput_gbps:.2f}",
                     f"{batch.throughput_gbps:.2f}"])
    print(format_table(
        ["M", "cycles", "single Gbit/s", "interleaved-32 Gbit/s"], rows,
        title=f"{args.standard}, {args.bits}-bit messages on DREAM",
    ))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.crc.properties import generator_report

    names = args.standards or [s.name for s in CATALOG if s.width <= 32]
    rows = []
    for name in names:
        r = generator_report(get(name))
        rows.append(
            [r.name, r.width,
             "+".join(str(d) for d in r.factor_degrees),
             "yes" if r.primitive else "no",
             "yes" if r.has_parity_factor else "no",
             r.period]
        )
    print(format_table(
        ["standard", "width", "factor degrees", "primitive", "parity", "period"],
        rows,
        title="Generator structure (factorization over GF(2))",
    ))
    return 0


def cmd_batch_bench(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.engine import BatchCRC, default_cache

    spec = get(args.standard)
    rng = np.random.default_rng(args.seed)
    messages = [
        bytes(rng.integers(0, 256, size=args.bytes).tolist()) for _ in range(args.batch)
    ]
    cache = default_cache()

    derby = DerbyCRC(spec, args.m)
    sample = messages[: min(args.baseline_sample, len(messages))]
    t0 = time.perf_counter()
    expected = [derby.compute(m) for m in sample]
    loop_rate = len(sample) / (time.perf_counter() - t0)

    engine = BatchCRC(spec, args.m, method=args.method)
    backend_name = engine.backend.name
    engine.compute_batch(messages[:2])  # warm the compile cache and numpy
    best = float("inf")
    for _ in range(args.repeats):
        t0 = time.perf_counter()
        crcs = engine.compute_batch(messages)
        best = min(best, time.perf_counter() - t0)
    batch_rate = len(messages) / best

    if crcs[: len(sample)] != expected:
        print("MISMATCH: batch engine disagrees with DerbyCRC")
        return 1
    rows = [
        [f"DerbyCRC loop (x{len(sample)})", f"{loop_rate:,.0f}", "1.0x"],
        [
            f"BatchCRC[{args.method}] (B={args.batch})",
            f"{batch_rate:,.0f}",
            f"{batch_rate / loop_rate:.1f}x",
        ],
    ]

    from repro.engine import ParallelBatchCRC, resolve_workers

    workers = resolve_workers(getattr(args, "workers", None))
    if workers > 1:
        with ParallelBatchCRC(
            spec, args.m, method=args.method, workers=workers, min_shard_bits=1
        ) as par:
            par.compute_batch(messages[:2])  # start the pool off-clock
            par_best = float("inf")
            for _ in range(args.repeats):
                t0 = time.perf_counter()
                par_crcs = par.compute_batch(messages)
                par_best = min(par_best, time.perf_counter() - t0)
            par_mode = par.mode
        if par_crcs != crcs:
            print("MISMATCH: sharded engine disagrees with serial batch engine")
            return 1
        par_rate = len(messages) / par_best
        rows.append(
            [
                f"ParallelBatchCRC x{workers} [{par_mode}]",
                f"{par_rate:,.0f}",
                f"{par_rate / loop_rate:.1f}x",
            ]
        )

    if getattr(args, "auto", False):
        from repro.engine import ParallelBatchCRC
        from repro.engine.planner import WorkloadDescriptor, default_planner

        planner = default_planner()
        workload = WorkloadDescriptor(
            kind="crc-batch",
            standard=spec.name,
            message_bits=8 * args.bytes,
            batch=args.batch,
            M=args.m,
        )
        plan = planner.plan(workload)
        with ParallelBatchCRC(spec, args.m, method=args.method, plan=plan) as auto_eng:
            auto_eng.compute_batch(messages[:2])  # pool + compile off-clock
            auto_best = float("inf")
            for _ in range(args.repeats):
                t0 = time.perf_counter()
                auto_crcs = auto_eng.compute_batch(messages)
                auto_best = min(auto_best, time.perf_counter() - t0)
        if auto_crcs != crcs:
            print("MISMATCH: planned engine disagrees with serial batch engine")
            return 1
        auto_rate = len(messages) / auto_best
        ratio = planner.record_actual(plan, auto_best)
        rows.append(
            [
                f"auto plan [{plan.strategy} x{plan.workers}]",
                f"{auto_rate:,.0f}",
                f"{auto_rate / loop_rate:.1f}x",
            ]
        )
        print(
            f"planner: {plan.strategy} backend={plan.backend} "
            f"workers={plan.workers} (predicted {plan.predicted_speedup:.2f}x "
            f"vs serial; model accuracy {ratio:.2f})"
        )

    print(format_table(
        ["engine", "messages/s", "speedup"], rows,
        title=(
            f"{spec.name}, {args.bytes}-byte messages, M={args.m}, "
            f"backend={backend_name}"
        ),
    ))
    stats = cache.stats
    print(f"compile cache: {stats.hits} hits / {stats.misses} misses "
          f"({stats.hit_rate:.0%} hit rate, {len(cache)}/{cache.capacity} entries)")
    if cache.disk is not None:
        dstats = cache.disk.stats.snapshot()
        print(f"disk cache [{cache.disk.root}]: {dstats['hits']} hits / "
              f"{dstats['misses']} misses / {dstats['stores']} stores "
              f"({len(cache.disk)} entries, {cache.disk.size_bytes():,} bytes)")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    import json as _json

    from repro.engine import DiskCompileCache, default_cache_dir
    from repro.engine.planner import Planner, WorkloadDescriptor, get_profile

    spec = get(args.standard)
    workload = WorkloadDescriptor(
        kind=args.kind,
        standard=spec.name,
        message_bits=8 * args.bytes,
        batch=args.batch,
        streams=args.streams,
        M=args.m,
    )
    root = args.cache_dir or default_cache_dir()
    disk = DiskCompileCache(root) if root is not None else None
    profile = get_profile(disk=disk, refresh=args.refresh)
    planner = Planner(profile=profile, disk=disk)
    plan = planner.plan(workload)
    print(f"host:      {profile.describe()}")
    for line in plan.describe():
        print(line)
    if args.trace:
        rows = [
            [c.strategy, c.backend, c.workers, c.mode, c.M,
             f"{1e3 * c.predicted_s:.4f}"]
            for c in planner.candidates(workload)
        ]
        print(format_table(
            ["strategy", "backend", "workers", "mode", "M", "predicted ms"],
            rows, title=f"{len(rows)} candidates explored",
        ))
    if args.json:
        payload = {
            "plan": plan.to_dict(),
            "profile": profile.to_dict(),
            "candidates": [c.to_dict() for c in planner.candidates(workload)],
        }
        with open(args.json, "w") as handle:
            _json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"decision trace written to {args.json}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.engine import DiskCompileCache, default_cache_dir

    root = args.cache_dir or default_cache_dir()
    if root is None:
        print("no cache directory: pass --cache-dir or set $REPRO_CACHE_DIR")
        return 1
    disk = DiskCompileCache(root)
    if args.clear:
        removed = disk.clear()
        print(f"cleared {removed} entries from {disk.root}")
        return 0
    print(f"compile cache at {disk.root} (format v{disk.version}): "
          f"{len(disk)} entries, {disk.size_bytes():,} bytes")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.telemetry import (
        default_registry,
        default_tracer,
        format_span_tree,
        read_json_lines,
        read_spans,
        render_chrome_trace,
        render_prometheus,
        to_json_lines,
    )
    from repro.telemetry.export import default_snapshot_path

    path = Path(args.input) if args.input else default_snapshot_path()
    if path.exists():
        registry = read_json_lines(path)
        spans = read_spans(path)
    else:
        # No snapshot on disk: fall back to this process's live state.
        registry = default_registry()
        spans = default_tracer().roots()
    if getattr(args, "spans", False):
        print(format_span_tree(spans))
        return 0
    if args.format == "prometheus":
        text = render_prometheus(registry)
        print(text if text else "# (no metrics recorded)")
    elif args.format == "jsonl":
        print(to_json_lines(registry), end="")
    elif args.format == "chrome":
        print(render_chrome_trace(spans), end="")
    else:
        print(_json.dumps(registry.snapshot(), indent=2, sort_keys=True))
    return 0


def cmd_dump(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.telemetry import (
        FlightRecorder,
        default_dump_path,
        default_flight_recorder,
        format_events,
    )

    path = Path(args.input) if args.input else default_dump_path()
    if path.exists():
        events = FlightRecorder.load(path)
        if args.limit is not None:
            events = events[-args.limit:]
    else:
        # No dump on disk: fall back to this process's live recorder.
        events = default_flight_recorder().events(limit=args.limit)
    if args.format == "json":
        print(_json.dumps(events, indent=2, sort_keys=True, default=str))
    else:
        print(format_events(events))
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.verify import run_fuzz

    seconds = args.seconds
    if seconds is None and args.cases is None:
        seconds = 5.0
    report = run_fuzz(
        seed=args.seed,
        seconds=seconds,
        max_cases=args.cases,
        max_failures=args.max_failures,
        shrink_failures=not args.no_shrink,
    )
    for line in report.summary_lines():
        print(line)
    if args.json:
        report.save(args.json)
        print(f"report written to {args.json}")
    return 0 if report.ok else 1


def cmd_keystream(args: argparse.Namespace) -> int:
    import json as _json

    from repro.engine import DiskCompileCache, default_cache_dir
    from repro.engine.planner import (
        KIND_KEYSTREAM,
        Planner,
        WorkloadDescriptor,
        get_profile,
    )
    from repro.gf2.polynomial import GF2Polynomial
    from repro.lfsr.reference import GaloisLFSR
    from repro.lfsr.wordlfsr import WordLFSR, WordLFSRReference
    from repro.lfsr.wordlfsr import get as get_wordspec
    from repro.lfsr.wordlfsr import seed_words_from_bytes

    nbytes = args.bytes
    material = args.seed.encode()
    source = args.source
    plan = None
    if source == "auto":
        root = args.cache_dir or default_cache_dir()
        disk = DiskCompileCache(root) if root is not None else None
        profile = get_profile(disk=disk)
        planner = Planner(profile=profile, disk=disk)
        plan = planner.plan(WorkloadDescriptor(
            kind=KIND_KEYSTREAM, standard="keystream", message_bits=8 * nbytes,
        ))
        source = plan.backend
        print(f"planner picked {source} "
              f"(predicted {1e3 * plan.predicted_s:.3f} ms for {nbytes} bytes)")
    if source == "galois-bitserial":
        # The PRBS-31 generator, MSB-first bits packed to bytes — the
        # bit-serial baseline the word engines are gated against.
        poly = GF2Polynomial.from_exponents([31, 28, 0])
        seed_int = int.from_bytes(material, "big") % ((1 << 31) - 1) + 1
        bits = GaloisLFSR(poly, seed_int).keystream(8 * nbytes)
        data = bytes(
            int("".join(map(str, bits[i:i + 8])), 2)
            for i in range(0, len(bits), 8)
        )
    else:
        wspec = get_wordspec(source)
        seed = seed_words_from_bytes(wspec, material)
        data = WordLFSR(wspec, seed).keystream_bytes(nbytes)
        if args.verify:
            check = min(nbytes, 64)
            want = WordLFSRReference(wspec, seed).keystream_bytes(check)
            if data[:check] != want:
                print(f"VERIFY FAILED: fast engine diverges from the "
                      f"state-matrix reference within {check} bytes")
                return 1
            print(f"verified: first {check} bytes match the bit-serial "
                  f"state-matrix reference")
    print(data.hex())
    if args.json:
        payload = {
            "source": source,
            "bytes": nbytes,
            "hex": data.hex(),
            "plan": plan.to_dict() if plan is not None else None,
        }
        with open(args.json, "w") as handle:
            _json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"keystream report written to {args.json}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from repro.serve import ReproServer
    from repro.telemetry.export import TELEMETRY_PATH_ENV
    from repro.telemetry.flightrec import FLIGHTREC_PATH_ENV

    spec = get(args.standard)
    telemetry_path = args.telemetry_snapshot or os.environ.get(TELEMETRY_PATH_ENV)
    flightrec_path = args.flight_dump or os.environ.get(FLIGHTREC_PATH_ENV)
    server = ReproServer(
        spec,
        M=args.m,
        host=args.host,
        port=args.port,
        workers=args.workers,
        auto=not args.no_auto,
        batching=False if args.no_batch else None,
        batch_max=args.batch_max,
        batch_linger_s=(
            args.batch_linger_us * 1e-6
            if args.batch_linger_us is not None else None
        ),
        drain_timeout_s=args.drain_timeout,
        telemetry_path=telemetry_path,
        flightrec_path=flightrec_path,
    )

    async def run_server() -> None:
        await server.start()
        batch_note = (
            f"batch<={server.batcher.max_batch}" if server.batching
            else "no-batch"
        )
        print(
            f"serving {spec.name} on {server.host}:{server.port} "
            f"(M={server.pipeline.M}, workers={server.pipeline.workers}, "
            f"{batch_note}) — SIGTERM drains gracefully",
            flush=True,
        )
        server.install_signal_handlers()
        if args.drain_after is not None:
            await asyncio.sleep(args.drain_after)
            server.request_drain()
        await server.serve_until_closed()
        print(
            f"drained: {server.counters['digests_total']} digests served, "
            f"{server.counters['protocol_errors_total']} protocol errors",
            flush=True,
        )

    asyncio.run(run_server())
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json as _json

    from repro.serve import run_loadgen

    report = asyncio.run(run_loadgen(
        args.host,
        args.port,
        duration_s=args.duration,
        connections=args.connections,
        seed=args.seed,
        chunk_bytes=args.chunk_bytes,
    ))
    for line in report.describe():
        print(line)
    if args.json:
        with open(args.json, "w") as handle:
            _json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    healthy = report.errors == 0 and report.digest_mismatches == 0
    if args.min_msgs_per_s is not None and report.msgs_per_s < args.min_msgs_per_s:
        print(
            f"FAIL: {report.msgs_per_s:,.0f} msgs/s below the "
            f"{args.min_msgs_per_s:,.0f} msgs/s floor"
        )
        healthy = False
    return 0 if healthy else 1


def _run_with_telemetry(args: argparse.Namespace) -> int:
    """Enable metrics + tracing + flight recording, run the command, print
    the span tree and persist the snapshot and event ring for later
    ``stats`` / ``dump`` invocations."""
    from repro.telemetry import (
        default_dump_path,
        default_flight_recorder,
        default_registry,
        default_tracer,
        format_span_tree,
        write_json_lines,
    )
    from repro.telemetry.export import default_snapshot_path

    registry, tracer = default_registry(), default_tracer()
    recorder = default_flight_recorder()
    registry.enable()
    tracer.enable()
    recorder.enable()
    with tracer.span(f"cli.{args.command}"):
        rc = args.func(args)
    print("\ntelemetry spans:")
    print(format_span_tree(tracer.roots()))
    path = write_json_lines(registry, default_snapshot_path(), tracer=tracer)
    print(f"telemetry: metrics snapshot written to {path}")
    if len(recorder):
        dump = recorder.save(default_dump_path())
        print(f"telemetry: flight-recorder dump written to {dump}")
    return rc


def _add_backend_option(p: argparse.ArgumentParser) -> None:
    from repro.gf2.backend import available_backends

    p.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="GF(2) kernel backend for this run (default: "
        "$REPRO_GF2_BACKEND or 'packed')",
    )


def _add_parallel_options(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--workers",
        default=None,
        metavar="N",
        help="shard work across N workers; 'auto' = cpu count "
        "(default: $REPRO_WORKERS or 1)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist compiled artifacts under DIR across runs "
        "(default: $REPRO_CACHE_DIR or no persistence)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel LFSR applications on the DREAM/PiCoGA model (DATE 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("standards", help="list cataloged CRC standards").set_defaults(
        func=cmd_standards
    )

    p = sub.add_parser("crc", help="compute a CRC")
    p.add_argument("--standard", default="CRC-32")
    p.add_argument("--engine", choices=sorted(ENGINES), default="table")
    p.add_argument("--hex", help="payload as hex digits")
    p.add_argument("--file", help="payload from a file")
    p.add_argument("--text", help="payload as UTF-8 text")
    p.add_argument("--verify", help="expected CRC (exit 1 on mismatch)")
    _add_backend_option(p)
    p.add_argument("--telemetry", action="store_true",
                   help="trace the run and snapshot the metrics registry")
    p.set_defaults(func=cmd_crc)

    p = sub.add_parser("map", help="compile a CRC onto PiCoGA")
    p.add_argument("--standard", default="CRC-32")
    p.add_argument("-m", "--m", type=int, default=128, help="look-ahead factor")
    p.add_argument("--method", choices=("derby", "direct"), default="derby")
    p.add_argument("--report", action="store_true", help="print the placement report")
    p.set_defaults(func=cmd_map)

    p = sub.add_parser("explore", help="sweep look-ahead factors")
    p.add_argument("--standard", default="CRC-32")
    p.add_argument("--factors", type=int, nargs="+", default=[8, 16, 32, 64, 128, 256])
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser("analyze", help="factor and characterize CRC generators")
    p.add_argument("--standards", nargs="*", help="catalog names (default: all <= 32 bit)")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("perf", help="predict DREAM throughput")
    p.add_argument("--standard", default="CRC-32")
    p.add_argument("--bits", type=int, default=12144)
    p.add_argument("--factors", type=int, nargs="+", default=[32, 64, 128])
    p.add_argument("--telemetry", action="store_true",
                   help="trace the run and snapshot the metrics registry")
    p.set_defaults(func=cmd_perf)

    p = sub.add_parser("batch-bench", help="time the vectorized batch engine")
    p.add_argument("--standard", default="CRC-32")
    p.add_argument("-m", "--m", type=int, default=32, help="look-ahead factor")
    p.add_argument("--method", choices=("lookahead", "derby"), default="lookahead")
    p.add_argument("--batch", type=int, default=1024, help="messages per batch")
    p.add_argument("--bytes", type=int, default=64, help="message size in bytes")
    p.add_argument("--baseline-sample", type=int, default=32,
                   help="messages timed through the per-message Derby loop")
    p.add_argument("--repeats", type=int, default=3, help="batch timing repeats")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--auto", action="store_true",
                   help="also run the execution planner's chosen configuration "
                   "and report predicted vs actual throughput")
    _add_backend_option(p)
    _add_parallel_options(p)
    p.add_argument("--telemetry", action="store_true",
                   help="trace the run and snapshot the metrics registry")
    p.set_defaults(func=cmd_batch_bench)

    p = sub.add_parser(
        "plan", help="pick backend x workers x M for a workload (design-space mapper)"
    )
    p.add_argument("--standard", default="CRC-32")
    p.add_argument("--kind", choices=("crc-batch", "crc-stream", "scrambler-batch"),
                   default="crc-batch", help="workload shape to plan for")
    p.add_argument("--bytes", type=int, default=256, help="message size in bytes")
    p.add_argument("--batch", type=int, default=1024, help="messages per batch")
    p.add_argument("--streams", type=int, default=1,
                   help="concurrent streams (crc-stream workloads)")
    p.add_argument("-m", "--m", type=int, default=None,
                   help="pin the look-ahead factor (default: solver picks)")
    p.add_argument("--refresh", action="store_true",
                   help="re-probe the host even if a cached profile matches")
    p.add_argument("--trace", action="store_true",
                   help="print every candidate the solver explored")
    p.add_argument("--json", metavar="PATH",
                   help="write the full decision trace (plan + profile + "
                   "candidates) to PATH")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persist the host profile and plans under DIR "
                   "(default: $REPRO_CACHE_DIR)")
    p.add_argument("--telemetry", action="store_true",
                   help="trace the run and snapshot the metrics registry")
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser(
        "fuzz", help="cross-check all engines with differential fuzzing"
    )
    p.add_argument("--seconds", type=float, default=None,
                   help="wall-clock budget (default: 5s unless --cases given)")
    p.add_argument("--cases", type=int, default=None,
                   help="case budget (combined with --seconds: first exhausted wins)")
    p.add_argument("--seed", type=int, default=0,
                   help="generator seed; same seed + --cases replays exactly")
    p.add_argument("--json", metavar="PATH",
                   help="write the machine-readable report to PATH")
    p.add_argument("--max-failures", type=int, default=5,
                   help="stop after this many confirmed mismatches")
    _add_backend_option(p)
    _add_parallel_options(p)
    p.add_argument("--no-shrink", action="store_true",
                   help="skip minimizing failing cases")
    p.add_argument("--telemetry", action="store_true",
                   help="trace the run and snapshot the metrics registry")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "keystream",
        help="generate keystream bytes from a word-oriented or bit-serial LFSR",
    )
    p.add_argument("--source",
                   choices=("auto", "word8", "word32", "word64",
                            "galois-bitserial"),
                   default="auto",
                   help="keystream engine (auto = planner cost-table pick)")
    p.add_argument("--bytes", type=int, default=64,
                   help="keystream bytes to emit")
    p.add_argument("--seed", default="repro",
                   help="seed material (stretched across the register words)")
    p.add_argument("--verify", action="store_true",
                   help="cross-check the fast word engine against the "
                   "bit-serial state-matrix reference")
    p.add_argument("--json", metavar="PATH",
                   help="write source, hex keystream and plan to PATH")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persist the host profile under DIR for --source auto "
                   "(default: $REPRO_CACHE_DIR)")
    p.set_defaults(func=cmd_keystream)

    p = sub.add_parser("cache", help="inspect the persistent compile cache")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache directory (default: $REPRO_CACHE_DIR)")
    p.add_argument("--clear", action="store_true", help="delete every entry")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("stats", help="dump the telemetry registry")
    p.add_argument(
        "--format", choices=("json", "jsonl", "prometheus", "chrome"), default="json",
        help="json = pretty snapshot, jsonl = lossless snapshot lines, "
        "prometheus = text exposition, chrome = trace-event JSON "
        "(load in chrome://tracing or Perfetto)",
    )
    p.add_argument("--spans", action="store_true",
                   help="print the recorded span tree instead of metrics")
    p.add_argument("--input", help="metrics snapshot to read "
                   "(default: $REPRO_TELEMETRY_PATH or .repro-telemetry.jsonl)")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "serve", help="run the async digest server (repro.serve front door)"
    )
    p.add_argument("--standard", default="CRC-32")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7326,
                   help="listen port (0 = ephemeral)")
    p.add_argument("-m", "--m", type=int, default=None,
                   help="pin the look-ahead factor (default: planner picks)")
    p.add_argument("--workers", default=None, metavar="N",
                   help="pipeline shards; 'auto' = cpu count "
                   "(default: planner picks)")
    p.add_argument("--no-auto", action="store_true",
                   help="skip the planner; use M=32 unless -m is given")
    p.add_argument("--no-batch", action="store_true",
                   help="disable cross-connection micro-batching "
                        "(serial per-op executor path)")
    p.add_argument("--batch-max", type=int, default=None, metavar="B",
                   help="pin the micro-batch occupancy cap "
                        "(default: planner picks)")
    p.add_argument("--batch-linger-us", type=float, default=None, metavar="US",
                   help="pin the micro-batch straggler window in "
                        "microseconds (default: planner picks)")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="seconds to wait for open streams on drain")
    p.add_argument("--drain-after", type=float, default=None, metavar="S",
                   help="self-drain after S seconds (CI smoke runs)")
    p.add_argument("--telemetry-snapshot", default=None, metavar="PATH",
                   help="write a metrics snapshot here on drain "
                        "(default: $REPRO_TELEMETRY_PATH if set)")
    p.add_argument("--flight-dump", default=None, metavar="PATH",
                   help="write the flight-recorder ring here on drain "
                        "(default: $REPRO_FLIGHTREC_PATH if set)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen", help="replay an IMIX frame mix against a running server"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7326)
    p.add_argument("--duration", type=float, default=5.0,
                   help="seconds of sustained load")
    p.add_argument("--connections", type=int, default=4,
                   help="concurrent client connections")
    p.add_argument("--seed", type=int, default=0,
                   help="message-population seed (reproducible)")
    p.add_argument("--chunk-bytes", type=int, default=0,
                   help="split each message into feeds of this size")
    p.add_argument("--min-msgs-per-s", type=float, default=None,
                   help="exit 1 if the sustained rate falls below this floor")
    p.add_argument("--json", metavar="PATH",
                   help="write the machine-readable report to PATH")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser("dump", help="print the flight-recorder event ring")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--limit", type=int, default=None, metavar="N",
                   help="only the newest N events")
    p.add_argument("--input", help="event dump to read "
                   "(default: $REPRO_FLIGHTREC_PATH or .repro-flightrec.jsonl)")
    p.set_defaults(func=cmd_dump)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "backend", None):
        import os

        from repro.gf2.backend import BACKEND_ENV, set_default_backend

        set_default_backend(args.backend)
        # The flag must also beat an inherited REPRO_GF2_BACKEND setting.
        os.environ[BACKEND_ENV] = args.backend
    if getattr(args, "workers", None) is not None:
        import os

        from repro.engine.parallel import WORKERS_ENV, resolve_workers

        resolve_workers(args.workers)  # fail fast on bad input
        os.environ[WORKERS_ENV] = str(args.workers)
    # --cache-dir persists compiles; export it so worker processes and
    # the lazily-attached default cache all see the same directory.
    if getattr(args, "cache_dir", None) and args.command != "cache":
        import os

        from repro.engine.diskcache import CACHE_DIR_ENV

        os.environ[CACHE_DIR_ENV] = str(args.cache_dir)
    if getattr(args, "telemetry", False):
        return _run_with_telemetry(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
