""":class:`ServeClient` — the asyncio client for the ``repro.serve`` protocol.

A thin, honest mapping of the wire verbs onto coroutines: one method per
verb, errors from the server re-raised as the matching
:mod:`repro.errors` class (the ``code`` field selects it), and the
server's hello recorded so callers can discover the standard, digest
width and pipeline shape they connected to.  The load generator and the
test suite both drive the server exclusively through this class, so it
doubles as the protocol's reference client.

The client is a single-connection, single-caller object: requests and
responses strictly alternate on the one TCP stream (the protocol has no
request ids to correlate pipelined replies).  Open several clients for
concurrency — that is exactly what the server's multiplexing is for.

Frames are consumed by one background **reader task** per connection
rather than inline in each request: the task parks on the socket
permanently, resolves the in-flight request's future when its response
lands, and surfaces connection loss or an unsolicited server frame
*immediately* — including between requests, when an inline read would
not be running — so a dropped server fails the next request with the
real cause instead of a timeout.  A ``draining`` refusal raises the
dedicated :class:`~repro.errors.DrainingError` (retryable; see its
``retryable`` attribute) rather than a generic stream error.

>>> # doctest-style sketch (the real round-trip needs a running server):
>>> # async with await ServeClient.connect("127.0.0.1", port) as client:
>>> #     sid = await client.open_stream()
>>> #     await client.feed(sid, b"123456789")
>>> #     digest = await client.read_digest(sid)
"""

from __future__ import annotations

import asyncio
from typing import Optional, Type

from repro.errors import (
    DrainingError,
    ProtocolError,
    ReproError,
    StreamError,
    ValidationError,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    read_frame,
    write_frame,
)

#: Wire error code -> exception class raised client-side.
ERROR_CLASSES = {
    "protocol": ProtocolError,
    "stream": StreamError,
    "validation": ValidationError,
    "draining": DrainingError,
    "internal": ReproError,
}


class ServeClient:
    """One connection to a :class:`~repro.serve.server.ReproServer`.

    Build with :meth:`connect`; use as an async context manager (or call
    :meth:`aclose`).  Attributes :attr:`standard`, :attr:`width`,
    :attr:`M` and :attr:`workers` are filled from the server hello.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        hello: dict,
        max_frame: int = MAX_FRAME_BYTES,
    ):
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._pending: Optional[asyncio.Future] = None
        self._conn_exc: Optional[BaseException] = None
        self._reader_task: Optional[asyncio.Task] = None
        self.hello = hello
        self.standard: str = hello.get("standard", "")
        self.width: int = hello.get("width", 0)
        self.M: int = hello.get("M", 0)
        self.workers: int = hello.get("workers", 0)
        #: pipeline-wide pending bits reported by the last feed ack — the
        #: client-visible backpressure signal.
        self.last_pending_bits: int = 0

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> "ServeClient":
        """Open a connection and consume the server hello."""
        reader, writer = await asyncio.open_connection(host, port)
        hello, _ = await read_frame(reader, max_frame)
        if hello.get("op") != "hello" or not hello.get("ok"):
            writer.close()
            raise ProtocolError(f"expected server hello, got {hello!r}")
        version = hello.get("version")
        if version != PROTOCOL_VERSION:
            writer.close()
            raise ProtocolError(
                f"server speaks protocol version {version!r}, "
                f"client speaks {PROTOCOL_VERSION}"
            )
        client = cls(reader, writer, hello, max_frame)
        client._start_reader()
        return client

    # ------------------------------------------------------------------
    def _start_reader(self) -> None:
        """Arm the per-connection reader task (idempotent)."""
        if self._reader_task is None:
            self._reader_task = asyncio.get_running_loop().create_task(
                self._read_loop()
            )

    async def _read_loop(self) -> None:
        """Pull every frame off the socket; route it to the in-flight
        request.

        Because requests and responses strictly alternate, exactly one
        future can be pending; a frame with no pending request means the
        server broke the protocol.  Any read failure (EOF from a server
        drain, a reset, an oversized frame) is recorded so the current
        *and* every subsequent request fail fast with the root cause.
        """
        try:
            while True:
                response, payload = await read_frame(
                    self._reader, self._max_frame
                )
                future, self._pending = self._pending, None
                if future is None or future.done():
                    raise ProtocolError(
                        f"unsolicited frame from server: {response!r}"
                    )
                future.set_result((response, payload))
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 — recorded, re-raised
            self._conn_exc = exc
            future, self._pending = self._pending, None
            if future is not None and not future.done():
                future.set_exception(exc)

    async def _request(self, header: dict, payload: bytes = b"") -> dict:
        """One request/response round trip; raises on error responses."""
        if self._conn_exc is not None:
            raise ProtocolError(
                f"connection is closed: {self._conn_exc}"
            ) from self._conn_exc
        if self._pending is not None:
            raise ProtocolError(
                "a request is already in flight on this connection "
                "(ServeClient is single-caller; open one client per task)"
            )
        if self._reader_task is None:
            # Constructed directly (not via connect()): inline round trip.
            await write_frame(self._writer, header, payload)
            response, _ = await read_frame(self._reader, self._max_frame)
            return self._check_response(response)
        future = asyncio.get_running_loop().create_future()
        self._pending = future
        try:
            await write_frame(self._writer, header, payload)
            response, _ = await future
        finally:
            if self._pending is future:
                self._pending = None
        return self._check_response(response)

    def _check_response(self, response: dict) -> dict:
        if not response.get("ok"):
            code = response.get("code", "internal")
            exc_class: Type[ReproError] = ERROR_CLASSES.get(code, ReproError)
            message = response.get("error", f"server error ({code})")
            if exc_class is DrainingError:
                message += " (retryable: reconnect or try another replica)"
            exc = exc_class(message)
            exc.code = code  # surface the wire code for callers that branch
            raise exc
        return response

    async def open_stream(
        self,
        stream_id: Optional[str] = None,
        register: Optional[int] = None,
    ) -> str:
        """Open a stream (server assigns an id if none given)."""
        header = {"op": "open-stream"}
        if stream_id is not None:
            header["id"] = stream_id
        if register is not None:
            header["register"] = register
        response = await self._request(header)
        return response["id"]

    async def feed(self, stream_id: str, data: bytes) -> int:
        """Append message bytes; returns the server's pending-bits gauge.

        Chunked calls compose — chunk boundaries are invisible to the
        digest, so callers may split a message any way they like.  Any
        bytes-like object works (``memoryview`` slices travel to the wire
        without copying).
        """
        response = await self._request(
            {"op": "feed-chunk", "id": stream_id}, payload=data
        )
        self.last_pending_bits = response.get("pending_bits", 0)
        return self.last_pending_bits

    async def read_digest(self, stream_id: str) -> int:
        """Finalize the stream and return its digest (closes the stream)."""
        response = await self._request({"op": "read-digest", "id": stream_id})
        return response["digest"]

    async def close_stream(self, stream_id: str) -> None:
        """Abort a stream without computing a digest."""
        await self._request({"op": "close-stream", "id": stream_id})

    async def stats(self) -> dict:
        """The server's state snapshot (see the ``stats`` verb)."""
        return await self._request({"op": "stats"})

    async def compute(self, data: bytes, chunk_bytes: int = 0) -> int:
        """Convenience: open, feed (optionally chunked), read digest."""
        stream_id = await self.open_stream()
        if chunk_bytes and chunk_bytes > 0:
            view = memoryview(data)  # chunk without copying the message
            for start in range(0, len(data), chunk_bytes):
                await self.feed(stream_id, view[start:start + chunk_bytes])
            if not data:
                await self.feed(stream_id, b"")
        else:
            await self.feed(stream_id, data)
        return await self.read_digest(stream_id)

    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Close the connection (server aborts any streams left open)."""
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.aclose()
