"""IMIX load generator for :mod:`repro.serve` — msgs/s and latency tails.

Real packet populations are not uniform: the classic "Internet mix"
(IMIX) models the bimodal reality of tiny ACK-sized frames dominating by
count while near-MTU frames dominate by bytes.  :data:`IMIX_MIX` is the
standard simple IMIX — 64-byte frames with weight 7, 594-byte with
weight 4, 1518-byte with weight 1 — and :func:`run_loadgen` replays that
mix over N concurrent client connections against a running server.

Every message is verified: the generator computes the expected digest
locally with :class:`~repro.crc.TableCRC` (a deliberately independent
serial oracle — none of the look-ahead/sharding machinery under test)
and counts any disagreement in ``digest_mismatches``.  A load test that
does not check answers only measures how fast a server can be wrong.

Latency is per-message wall time (open → feed × chunks → digest), taken
with ``perf_counter``; the report carries p50/p99 plus the aggregate
message and byte rates, and :meth:`LoadgenReport.to_dict` feeds the
bench artifact the CI smoke gates on.  Latencies are also kept **per
connection** (:meth:`LoadgenReport.per_connection`): aggregate tails
hide unfairness — a scheduler that starves one connection while racing
the rest can post a healthy aggregate p99 — so the report exposes each
connection's own p50/p99 and message count.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.crc import TableCRC, get
from repro.serve.client import ServeClient

#: The simple IMIX: (frame bytes, weight).  Weighted mean ~340 bytes.
IMIX_MIX: Tuple[Tuple[int, int], ...] = ((64, 7), (594, 4), (1518, 1))


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Matches ``numpy.percentile`` for the default interpolation; kept
    dependency-free so the loadgen works wherever the client does.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    frac = rank - lower
    return ordered[lower] * (1.0 - frac) + ordered[upper] * frac


@dataclass
class LoadgenReport:
    """What one load-generation run measured.

    ``errors`` counts protocol/transport failures (any exception out of
    a client call); ``digest_mismatches`` counts answers that disagreed
    with the serial oracle.  Both must be zero for a healthy run — the
    CI smoke gates on exactly that.
    """

    standard: str
    duration_s: float
    connections: int
    messages: int = 0
    bytes: int = 0
    errors: int = 0
    digest_mismatches: int = 0
    latencies_s: List[float] = field(default_factory=list)
    #: one latency series per connection index (sums to latencies_s)
    connection_latencies_s: List[List[float]] = field(default_factory=list)

    @property
    def msgs_per_s(self) -> float:
        """Aggregate verified-message rate."""
        return self.messages / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def bytes_per_s(self) -> float:
        """Aggregate payload byte rate."""
        return self.bytes / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def p50_ms(self) -> float:
        """Median per-message latency in milliseconds."""
        return 1e3 * percentile(self.latencies_s, 50.0)

    @property
    def p99_ms(self) -> float:
        """99th-percentile per-message latency in milliseconds."""
        return 1e3 * percentile(self.latencies_s, 99.0)

    def per_connection(self) -> List[dict]:
        """Each connection's own latency summary.

        One dict per connection index: message count, p50 and p99 in
        milliseconds.  A healthy scheduler keeps these mutually close;
        a starved connection shows up here while staying invisible in
        the aggregate tail.
        """
        return [
            {
                "connection": index,
                "messages": len(series),
                "p50_ms": 1e3 * percentile(series, 50.0),
                "p99_ms": 1e3 * percentile(series, 99.0),
            }
            for index, series in enumerate(self.connection_latencies_s)
        ]

    def to_dict(self) -> dict:
        """Flat scalar summary (feeds the bench-report artifact)."""
        return {
            "standard": self.standard,
            "duration_s": self.duration_s,
            "connections": self.connections,
            "messages": self.messages,
            "bytes": self.bytes,
            "errors": self.errors,
            "digest_mismatches": self.digest_mismatches,
            "msgs_per_s": self.msgs_per_s,
            "bytes_per_s": self.bytes_per_s,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "per_connection": self.per_connection(),
        }

    def describe(self) -> List[str]:
        """Human-readable summary lines for the CLI."""
        lines = [
            f"{self.messages} messages / {self.bytes:,} bytes over "
            f"{self.duration_s:.2f}s on {self.connections} connection(s)",
            f"rate: {self.msgs_per_s:,.0f} msgs/s ({self.bytes_per_s:,.0f} B/s)",
            f"latency: p50 {self.p50_ms:.3f} ms, p99 {self.p99_ms:.3f} ms",
            f"errors: {self.errors}, digest mismatches: {self.digest_mismatches}",
        ]
        for row in self.per_connection():
            lines.append(
                f"  conn {row['connection']}: {row['messages']} msgs, "
                f"p50 {row['p50_ms']:.3f} ms, p99 {row['p99_ms']:.3f} ms"
            )
        return lines


def _expand_mix(mix: Sequence[Tuple[int, int]]) -> List[int]:
    """The mix as a flat population to sample from uniformly."""
    population: List[int] = []
    for size, weight in mix:
        population.extend([size] * weight)
    return population


async def _drive_connection(
    host: str,
    port: int,
    deadline: float,
    rng: random.Random,
    oracle: TableCRC,
    sizes: List[int],
    chunk_bytes: int,
    report: LoadgenReport,
    latencies: List[float],
) -> None:
    """One connection's closed loop: generate, send, verify, repeat."""
    try:
        client = await ServeClient.connect(host, port)
    except Exception:  # noqa: BLE001 — count, don't crash the run
        report.errors += 1
        return
    try:
        while time.perf_counter() < deadline:
            size = rng.choice(sizes)
            payload = rng.randbytes(size)
            expected = oracle.compute(payload)
            t0 = time.perf_counter()
            try:
                digest = await client.compute(payload, chunk_bytes=chunk_bytes)
            except Exception:  # noqa: BLE001 — any failure is a counted error
                report.errors += 1
                break
            elapsed = time.perf_counter() - t0
            latencies.append(elapsed)
            report.latencies_s.append(elapsed)
            report.messages += 1
            report.bytes += size
            if digest != expected:
                report.digest_mismatches += 1
    finally:
        await client.aclose()


async def run_loadgen(
    host: str,
    port: int,
    duration_s: float = 5.0,
    connections: int = 4,
    seed: int = 0,
    mix: Sequence[Tuple[int, int]] = IMIX_MIX,
    chunk_bytes: int = 0,
    standard: Optional[str] = None,
) -> LoadgenReport:
    """Replay the IMIX against a server; returns the measured report.

    ``connections`` clients run concurrently, each with its own
    deterministic RNG (``seed + index``), so a given seed reproduces the
    same message population.  ``standard`` defaults to whatever the
    server's hello announces; ``chunk_bytes > 0`` splits each message
    into chunked feeds to exercise reassembly.
    """
    if standard is None:
        probe = await ServeClient.connect(host, port)
        try:
            standard = probe.standard
        finally:
            await probe.aclose()
    oracle = TableCRC(get(standard))
    sizes = _expand_mix(mix)
    report = LoadgenReport(
        standard=standard, duration_s=duration_s, connections=connections
    )
    report.connection_latencies_s = [[] for _ in range(connections)]
    deadline = time.perf_counter() + duration_s
    await asyncio.gather(*(
        _drive_connection(
            host, port, deadline, random.Random(seed + index),
            oracle, sizes, chunk_bytes, report,
            report.connection_latencies_s[index],
        )
        for index in range(connections)
    ))
    return report
