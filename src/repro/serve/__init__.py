"""repro.serve — the async network service layer over the engines.

Everything below this package runs in-process: batch kernels, packed
GF(2) backends, sharded worker pools, the adaptive planner.  This
package is the "millions of users" front door: a long-running asyncio
server that multiplexes many client connections onto one shared
:class:`~repro.engine.parallel.ShardedCRCPipeline`, exactly the shape
the paper's datapath has — a fixed parallel LFSR kept saturated by many
independent message streams arriving interleaved off the wire.

* :mod:`repro.serve.protocol` — the framed, length-prefixed JSON+binary
  wire format and its verbs (``open-stream`` / ``feed-chunk`` /
  ``read-digest`` / ``close-stream`` / ``stats``).
* :mod:`repro.serve.server` — :class:`ReproServer`: connection
  multiplexing, per-connection backpressure tied to the pipeline's
  pending-bits gauges, and graceful drain (finish open streams, refuse
  new ones, flush a final telemetry snapshot + flight-recorder dump).
* :mod:`repro.serve.client` — :class:`ServeClient`, the asyncio client
  library (also the mock client the tests and load generator use).
* :mod:`repro.serve.loadgen` — an IMIX-style load generator replaying a
  realistic frame-size mix and reporting msgs/s + p50/p99 latency.

The protocol is deliberately workload-agnostic — verbs name streams and
digests, not CRCs — so future parallel binary machines (scramblers,
NLFSR keystream generators; see ROADMAP item 5) can serve through the
same front door.  ``python -m repro serve`` / ``python -m repro
loadgen`` are the command-line surface; the tour lives in
``docs/SERVE.md``.
"""

from repro.serve.client import ServeClient
from repro.serve.loadgen import IMIX_MIX, LoadgenReport, run_loadgen
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    encode_frame_parts,
    read_frame,
    write_frame,
)
from repro.serve.server import ReproServer

__all__ = [
    "IMIX_MIX",
    "LoadgenReport",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ReproServer",
    "ServeClient",
    "decode_frame",
    "encode_frame",
    "encode_frame_parts",
    "read_frame",
    "run_loadgen",
    "write_frame",
]
