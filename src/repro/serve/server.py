""":class:`ReproServer` — the asyncio front door over a shared pipeline.

One server process owns one :class:`~repro.engine.parallel.ShardedCRCPipeline`
and multiplexes every client connection onto it, which is exactly the
paper's operating point: a fixed parallel datapath kept saturated by many
independent message streams arriving interleaved off the wire.  Three
design rules keep the asyncio layer honest about that shared mutable
pipeline:

* **One pipeline thread.**  Every pipeline call — open, feed, pump,
  finalize, abort — runs on a single-worker executor, so the event loop
  never blocks on GF(2) math and pipeline operations have a total order
  regardless of how many connections interleave.  (The pipeline's own
  re-entrant lock stays as defense-in-depth for direct library users.)
* **Micro-batched dispatch.**  Stream ops from all connections funnel
  through a :class:`~repro.engine.microbatch.MicroBatcher` that
  coalesces up to B queued ops into *one* executor round (the
  continuous-batching pattern).  The round runner then *regroups* the
  ops into wide engine calls — every feed applies with its pump
  deferred, every digest finalizes through
  :meth:`~repro.engine.parallel.ShardedCRCPipeline.finalize_many`
  behind a single packed pump, and every feed ack shares one
  pending-bits reading — so both the loop→thread handoff *and* the
  full-width matrix products amortize over the round.  That
  cross-stream reordering is legal because each connection awaits
  every response before its next request: all ops in one round belong
  to distinct streams.  The planner chooses B and the linger window
  per host (``batching=None``); ``batching=False`` (CLI ``--no-batch``)
  keeps the serial per-op path, which also remains the path during
  drain.
* **Backpressure, not buffering.**  Each ``feed-chunk`` ack carries the
  pipeline-wide pending-bits gauge.  When it crosses the high watermark
  the connection handler *stops reading frames* until the pump loop
  drains below the low watermark — unread bytes then back-pressure the
  client through TCP itself, so a fast client cannot balloon server
  memory.
* **Drain, don't drop.**  On :meth:`ReproServer.drain` (wired to
  ``SIGTERM`` by the CLI) the listener closes, new ``open-stream``
  requests are refused with code ``"draining"``, open streams may keep
  feeding and finalize normally, and once the last stream closes (or the
  drain timeout aborts stragglers) the server flushes a telemetry
  snapshot and a flight-recorder dump, then closes the pipeline.

Stream ids are namespaced per connection (connection 3's stream ``"a"``
and connection 7's stream ``"a"`` are distinct pipeline streams), so
clients never need to coordinate id choice.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from itertools import count
from pathlib import Path
from typing import Dict, Optional, Set, Union

from repro.crc.spec import CRCSpec
from repro.engine.microbatch import BatcherClosed, MicroBatcher
from repro.engine.parallel import ShardedCRCPipeline
from repro.errors import ProtocolError, ReproError, StreamError, ValidationError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    REQUEST_OPS,
    error_response,
    read_frame,
    write_frame,
)
from repro.telemetry import (
    bind_families,
    default_flight_recorder,
    default_registry,
    default_tracer,
    write_json_lines,
)

#: Pause reading a connection once pipeline-wide pending bits exceed this.
DEFAULT_HIGH_WATERMARK_BITS = 1 << 22  # 512 KiB of buffered message data
#: Resume paused connections once pending bits fall back below this.
DEFAULT_LOW_WATERMARK_BITS = 1 << 20

#: Pause reading a connection once the micro-batch queue holds this many
#: ops per allowed round (i.e. ``high = factor * max_batch``) ...
BATCH_QUEUE_HIGH_FACTOR = 4
#: ... and resume once depth falls below ``max_batch`` rounds again.
BATCH_QUEUE_LOW_FACTOR = 1

#: Default expectations fed to the planner when ``auto`` sizing is on and
#: the caller pinned neither M nor workers: an IMIX-weighted mean frame
#: (~340 bytes) across a moderate stream population.
AUTO_PLAN_MESSAGE_BITS = 8 * 340
AUTO_PLAN_STREAMS = 64

# Bound lazily (see repro.telemetry.bind_families) so a registry swapped
# in after import is still observed.
_METRICS = bind_families(lambda reg: {
    "messages": reg.counter(
        "serve_messages_total", "Request frames handled, by verb",
        labels=("op",),
    ),
    "errors": reg.counter(
        "serve_errors_total", "Error responses sent, by error code",
        labels=("code",),
    ),
    "connections": reg.gauge(
        "serve_connections", "Client connections currently open",
    ),
    "backpressure": reg.counter(
        "serve_backpressure_pauses_total",
        "Times a connection paused reading on the pending-bits watermark",
    ),
})


class _Connection:
    """Per-connection book-keeping: id, owned streams, writer."""

    __slots__ = ("conn_id", "writer", "streams", "auto_ids")

    def __init__(self, conn_id: int, writer: asyncio.StreamWriter):
        self.conn_id = conn_id
        self.writer = writer
        #: client-visible stream id -> namespaced pipeline stream id
        self.streams: Dict[str, str] = {}
        self.auto_ids = count()


class ReproServer:
    """Serve one shared :class:`ShardedCRCPipeline` over the framed protocol.

    ``auto=True`` (the default) asks the adaptive planner to size the
    pipeline (workers and block factor M) for a stream workload on this
    host; pass explicit ``M``/``workers`` to pin either.  ``port=0``
    binds an ephemeral port (read it back from :attr:`port` after
    :meth:`start` — the pattern every test uses).

    Lifecycle: :meth:`start` → serve → :meth:`drain` (graceful, what
    SIGTERM triggers) or :meth:`aclose` (drain with no grace period).
    :meth:`serve_until_closed` parks until a drain completes.
    """

    def __init__(
        self,
        spec: CRCSpec,
        M: Optional[int] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: Union[None, int, str] = None,
        auto: bool = True,
        batching: Optional[bool] = None,
        batch_max: Optional[int] = None,
        batch_linger_s: Optional[float] = None,
        high_watermark_bits: int = DEFAULT_HIGH_WATERMARK_BITS,
        low_watermark_bits: int = DEFAULT_LOW_WATERMARK_BITS,
        drain_timeout_s: float = 30.0,
        telemetry_path: Union[None, str, Path] = None,
        flightrec_path: Union[None, str, Path] = None,
        max_frame: int = MAX_FRAME_BYTES,
    ):
        if low_watermark_bits > high_watermark_bits:
            raise ValidationError(
                f"low watermark ({low_watermark_bits}) must not exceed the "
                f"high watermark ({high_watermark_bits})"
            )
        self._spec = spec
        self._host = host
        self._requested_port = port
        self._auto = auto
        self._M = M
        self._workers = workers
        self._batching = batching
        self._batch_max = batch_max
        self._batch_linger_s = batch_linger_s
        self._high = high_watermark_bits
        self._low = low_watermark_bits
        self._drain_timeout = drain_timeout_s
        self._telemetry_path = Path(telemetry_path) if telemetry_path else None
        self._flightrec_path = Path(flightrec_path) if flightrec_path else None
        self._max_frame = max_frame

        self._pipeline: Optional[ShardedCRCPipeline] = None
        self._batcher: Optional[MicroBatcher] = None
        self._batch_plan = None
        self._batch_queue_high = 0
        self._batch_queue_low = 0
        self._direct_ops = 0  # fast-path stream ops currently in flight
        self._bound_port = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._state = "new"  # new -> serving -> draining -> closed
        self._conn_ids = count(1)
        self._connections: Set[_Connection] = set()
        self._pending_bits = 0
        self._work = asyncio.Event()
        self._drained = asyncio.Event()
        self._drained.set()
        self._no_streams = asyncio.Event()
        self._no_streams.set()
        self._closed_event = asyncio.Event()
        self._pump_task: Optional[asyncio.Task] = None
        self._drain_task: Optional[asyncio.Task] = None
        # Deterministic counters mirrored into the stats verb (the
        # telemetry registry may be disabled; these always count).
        self.counters = {
            "connections_total": 0,
            "messages_total": 0,
            "bytes_in_total": 0,
            "digests_total": 0,
            "protocol_errors_total": 0,
            "stream_errors_total": 0,
            "refused_draining_total": 0,
            "backpressure_pauses_total": 0,
            "batches_total": 0,
            "batched_ops_total": 0,
        }

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``new`` / ``serving`` / ``draining`` / ``closed``."""
        return self._state

    @property
    def spec(self) -> CRCSpec:
        """The CRC standard every served stream computes."""
        return self._spec

    @property
    def pipeline(self) -> Optional[ShardedCRCPipeline]:
        """The shared pipeline (``None`` before :meth:`start`)."""
        return self._pipeline

    @property
    def host(self) -> str:
        """The bind host."""
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        return self._bound_port if self._bound_port else self._requested_port

    @property
    def stream_count(self) -> int:
        """Streams currently open across all connections."""
        return sum(len(conn.streams) for conn in self._connections)

    @property
    def batching(self) -> bool:
        """True when stream ops route through the micro-batcher."""
        return self._batcher is not None and self._batcher.running

    @property
    def batcher(self) -> Optional[MicroBatcher]:
        """The micro-batcher (``None`` when batching is disabled)."""
        return self._batcher

    @property
    def batch_plan(self):
        """The planner's :class:`~repro.engine.planner.MicroBatchPlan`
        in force (``None`` when batching is off or pinned manually)."""
        return self._batch_plan

    # ------------------------------------------------------------------
    def _build_pipeline(self) -> ShardedCRCPipeline:
        """Size and construct the shared pipeline (runs off the loop)."""
        plan = None
        M = self._M
        if self._auto and (M is None or self._workers is None):
            from repro.engine.planner import (
                KIND_CRC_STREAM,
                WorkloadDescriptor,
                default_planner,
            )

            workload = WorkloadDescriptor(
                kind=KIND_CRC_STREAM,
                standard=self._spec.name,
                message_bits=AUTO_PLAN_MESSAGE_BITS,
                streams=AUTO_PLAN_STREAMS,
                M=self._M,
            )
            plan = default_planner().plan(workload)
            if M is None:
                M = plan.M
            if self._workers is None and plan is not None:
                return ShardedCRCPipeline(self._spec, M, plan=plan)
        if M is None:
            M = 32
        return ShardedCRCPipeline(self._spec, M, workers=self._workers, plan=plan)

    def _resolve_batching(self):
        """Decide the micro-batch shape: pins, then the planner.

        Returns ``(enabled, max_batch, linger_s, crossover)``.  With
        ``batching=None`` and ``auto`` on, the planner's
        :meth:`~repro.engine.planner.Planner.plan_serve_batch` decision
        rules (including its serial fallback for engine-bound message
        sizes); pinned servers (``auto=False``) default to batching with
        static defaults, since no host profile is available without
        probing.  Explicit ``batching=True/False`` always wins.
        """
        from repro.engine.microbatch import DEFAULT_MAX_BATCH

        enabled = self._batching
        max_batch = self._batch_max or DEFAULT_MAX_BATCH
        linger_s = self._batch_linger_s if self._batch_linger_s is not None else 0.0
        crossover = 2
        if enabled is False:
            return False, max_batch, linger_s, crossover
        if self._auto:
            from repro.engine.planner import (
                KIND_CRC_STREAM,
                WorkloadDescriptor,
                default_planner,
            )

            workload = WorkloadDescriptor(
                kind=KIND_CRC_STREAM,
                standard=self._spec.name,
                message_bits=AUTO_PLAN_MESSAGE_BITS,
                streams=AUTO_PLAN_STREAMS,
                M=self._M,
            )
            plan = default_planner().plan_serve_batch(workload)
            self._batch_plan = plan
            if enabled is None:
                enabled = plan.enabled
            if plan.enabled:
                if self._batch_max is None:
                    max_batch = plan.max_batch
                if self._batch_linger_s is None:
                    linger_s = plan.linger_s
                crossover = max(1, plan.crossover_occupancy)
        elif enabled is None:
            enabled = True
        return bool(enabled), max_batch, linger_s, crossover

    async def start(self) -> None:
        """Build the pipeline, bind the listener, start the pump loop."""
        if self._state != "new":
            raise ValidationError(f"cannot start a server in state {self._state!r}")
        loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-pipeline"
        )
        self._pipeline = await loop.run_in_executor(
            self._executor, self._build_pipeline
        )
        enabled, max_batch, linger_s, crossover = self._resolve_batching()
        if enabled:
            self._batcher = MicroBatcher(
                self._executor,
                max_batch=max_batch,
                linger_s=linger_s,
                linger_min_depth=crossover,
            )
            self._batcher.register(self._spec.name, self._run_stream_ops)
            self._batch_queue_high = BATCH_QUEUE_HIGH_FACTOR * max_batch
            self._batch_queue_low = BATCH_QUEUE_LOW_FACTOR * max_batch
            self._batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self._host, port=self._requested_port
        )
        self._bound_port = self._server.sockets[0].getsockname()[1]
        self._state = "serving"
        self._pump_task = asyncio.create_task(self._pump_loop())
        recorder = default_flight_recorder()
        if recorder.enabled:
            recorder.record(
                "serve-start",
                f"listening on {self._host}:{self.port}",
                standard=self._spec.name,
                M=self._pipeline.M,
                workers=self._pipeline.workers,
                batching=enabled,
                batch_max=max_batch if enabled else 0,
            )

    async def _call(self, fn, *args):
        """Run one pipeline operation on the dedicated pipeline thread."""
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    async def _call_op(self, op, serial_fn):
        """Run one *stream* op — batched while serving, serial otherwise.

        ``op`` is the tagged tuple :meth:`_run_stream_ops` understands;
        ``serial_fn`` is the zero-argument equivalent for the per-op
        path.  The batcher shares the pipeline executor, so batched and
        serial ops keep one total order; during drain (or with batching
        off) every op takes the serial path.  Results and exceptions
        come back exactly as the serial path would deliver them — the
        batch runner contains failures per op.

        Depth-zero fast path: with at most one connection open there is
        nothing to coalesce with, so — provided the batcher is idle and
        no other fast-path op is in flight — the op runs directly on
        the pipeline executor and the lone connection keeps the serial
        path's latency instead of paying the batcher handoff.  The
        connection-count guard matters: gating on batcher idleness
        alone would let the first waiter woken after each round sneak
        onto the direct path and fragment the next round's occupancy.
        Ordering is safe either way because the single pipeline thread
        serializes direct calls and rounds into one total order, and
        each connection awaits every response before sending its next
        op.
        """
        if self._batcher is not None and self._state == "serving":
            if (
                len(self._connections) <= 1
                and self._direct_ops == 0
                and self._batcher.idle
            ):
                self._direct_ops += 1
                try:
                    return await self._call(serial_fn)
                finally:
                    self._direct_ops -= 1
            try:
                return await self._batcher.submit(self._spec.name, op)
            except BatcherClosed:
                pass  # drain raced the submit; fall through to serial
        return await self._call(serial_fn)

    def _run_stream_ops(self, ops):
        """Execute one micro-batch round of tagged stream ops (pipeline
        thread).

        The round regroups ops into wide engine calls instead of
        replaying them one by one: opens and closes apply in submission
        order, feeds apply with their pumps deferred, then every digest
        finalizes through :meth:`ShardedCRCPipeline.finalize_many` —
        whose single pump also advances the streams just fed — and all
        feed acks share one post-round ``pending_bits`` reading.
        Cross-stream reordering is safe because every op in a round
        belongs to a distinct stream (each connection awaits its
        response before sending the next request); per-op failure
        containment matches the serial path (an exception instance in a
        result slot fails only that op's future).
        """
        pipeline = self._pipeline
        results = [None] * len(ops)
        feed_slots = []
        digest_slots = []
        for i, op in enumerate(ops):
            kind = op[0]
            try:
                if kind == "feed":
                    pipeline.feed(op[1], op[2], pump=False)
                    feed_slots.append(i)
                elif kind == "digest":
                    digest_slots.append(i)
                elif kind == "open":
                    results[i] = pipeline.open(op[1], op[2])
                elif kind == "close":
                    pipeline.abort(op[1])
                    results[i] = True
                else:
                    results[i] = ValidationError(
                        f"unknown batched op kind {kind!r}"
                    )
            except Exception as exc:  # noqa: BLE001 — contained per op
                results[i] = exc
        if digest_slots:
            try:
                digests = pipeline.finalize_many(
                    [ops[i][1] for i in digest_slots]
                )
                for i, digest in zip(digest_slots, digests):
                    results[i] = digest
            except Exception:  # noqa: BLE001 — all-or-nothing group call
                # failed validation (e.g. one unknown stream): retry per
                # stream so only the offending op carries the error.
                for i in digest_slots:
                    try:
                        results[i] = pipeline.finalize(ops[i][1])
                    except Exception as exc:  # noqa: BLE001
                        results[i] = exc
        if feed_slots:
            pending = pipeline.pending_bits()
            for i in feed_slots:
                results[i] = pending
        return results

    # ------------------------------------------------------------------
    # Pump loop: coalesces feed signals into pump rounds and maintains
    # the pending-bits gauge that drives backpressure.
    # ------------------------------------------------------------------
    async def _pump_loop(self) -> None:
        pipeline = self._pipeline
        while self._state != "closed":
            await self._work.wait()
            self._work.clear()
            if self._state == "closed":
                return
            while True:
                pumped = await self._call(pipeline.pump)
                self._pending_bits = await self._call(pipeline.pending_bits)
                if pumped == 0:
                    break
            if self._pending_bits <= self._low:
                self._drained.set()

    def _note_pending(self, pending: int) -> None:
        """Update the backpressure gauge after a feed's ack round-trip."""
        self._pending_bits = pending
        if pending > self._high:
            self._drained.clear()
        self._work.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(next(self._conn_ids), writer)
        self._connections.add(conn)
        self.counters["connections_total"] += 1
        if default_registry().enabled:
            _METRICS()["connections"].inc()
        try:
            await write_frame(writer, {
                "op": "hello",
                "ok": True,
                "version": PROTOCOL_VERSION,
                "standard": self._spec.name,
                "width": self._spec.width,
                "M": self._pipeline.M,
                "workers": self._pipeline.workers,
            })
            await self._serve_frames(conn, reader, writer)
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError):
            pass  # peer went away; cleanup below
        finally:
            self._connections.discard(conn)
            if default_registry().enabled:
                _METRICS()["connections"].dec()
            for pipeline_id in list(conn.streams.values()):
                try:
                    await self._call(self._pipeline.abort, pipeline_id)
                except ReproError:
                    pass
            conn.streams.clear()
            self._check_no_streams()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_frames(
        self,
        conn: _Connection,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            try:
                header, payload = await read_frame(reader, self._max_frame)
            except ProtocolError as exc:
                # After a framing error the byte stream has no safe
                # resynchronization point: answer once, then hang up.
                self._count_error("protocol")
                await self._safe_write(
                    writer, error_response(None, "protocol", str(exc))
                )
                return
            response, pause = await self._dispatch(conn, header, payload)
            await write_frame(writer, response)
            if not response.get("ok") and response.get("code") == "protocol":
                return
            if pause:
                # Stop reading until the pump loop drains below the low
                # watermark (and, when batching, the submission queue
                # falls back under a round's worth of ops); unread
                # frames back-pressure the client via TCP flow control.
                self.counters["backpressure_pauses_total"] += 1
                if default_registry().enabled:
                    _METRICS()["backpressure"].inc()
                await self._drained.wait()
                if self.batching:
                    await self._batcher.wait_depth_below(self._batch_queue_low)

    async def _dispatch(self, conn, header: dict, payload: bytes):
        """Route one request; returns ``(response_header, pause_reading)``."""
        op = header.get("op")
        self.counters["messages_total"] += 1
        if default_registry().enabled:
            _METRICS()["messages"].labels(op=str(op)).inc()
        try:
            if op == "open-stream":
                return await self._op_open(conn, header), False
            if op == "feed-chunk":
                return await self._op_feed(conn, header, payload)
            if op == "read-digest":
                return await self._op_digest(conn, header), False
            if op == "close-stream":
                return await self._op_close(conn, header), False
            if op == "stats":
                return self._op_stats(), False
            self._count_error("protocol")
            return error_response(
                op, "protocol",
                f"unknown verb {op!r} (expected one of {', '.join(REQUEST_OPS)})",
            ), False
        except StreamError as exc:
            self._count_error("stream")
            return error_response(op, "stream", str(exc)), False
        except (ValidationError, ValueError) as exc:
            self._count_error("validation")
            return error_response(op, "validation", str(exc)), False
        except ReproError as exc:
            self._count_error("internal")
            return error_response(op, "internal", str(exc)), False

    async def _op_open(self, conn: _Connection, header: dict) -> dict:
        if self._state != "serving":
            self.counters["refused_draining_total"] += 1
            self._count_error("draining")
            return error_response(
                "open-stream", "draining",
                "server is draining: no new streams accepted",
            )
        client_id = header.get("id")
        if client_id is None:
            client_id = f"auto-{next(conn.auto_ids)}"
        client_id = str(client_id)
        if client_id in conn.streams:
            raise StreamError(f"stream {client_id!r} is already open")
        register = header.get("register")
        if register is not None and not isinstance(register, int):
            raise ValidationError(f"register must be an integer, got {register!r}")
        pipeline_id = f"c{conn.conn_id}:{client_id}"
        pipeline = self._pipeline
        await self._call_op(
            ("open", pipeline_id, register),
            lambda: pipeline.open(pipeline_id, register),
        )
        conn.streams[client_id] = pipeline_id
        self._no_streams.clear()
        return {"op": "open-stream", "ok": True, "id": client_id}

    def _stream_of(self, conn: _Connection, header: dict) -> str:
        client_id = str(header.get("id"))
        try:
            return conn.streams[client_id]
        except KeyError:
            raise StreamError(
                f"unknown stream {client_id!r} on this connection "
                f"({len(conn.streams)} open)"
            ) from None

    async def _op_feed(self, conn: _Connection, header: dict, payload: bytes):
        pipeline_id = self._stream_of(conn, header)
        pipeline = self._pipeline

        def _feed() -> int:
            pipeline.feed(pipeline_id, payload, pump=False)
            return pipeline.pending_bits()

        pending = await self._call_op(("feed", pipeline_id, payload), _feed)
        self.counters["bytes_in_total"] += len(payload)
        self._note_pending(pending)
        response = {
            "op": "feed-chunk",
            "ok": True,
            "id": str(header.get("id")),
            "pending_bits": pending,
        }
        pause = pending > self._high or (
            self.batching and self._batcher.depth > self._batch_queue_high
        )
        return response, pause

    async def _op_digest(self, conn: _Connection, header: dict) -> dict:
        client_id = str(header.get("id"))
        pipeline_id = self._stream_of(conn, header)
        pipeline = self._pipeline
        digest = await self._call_op(
            ("digest", pipeline_id), lambda: pipeline.finalize(pipeline_id)
        )
        del conn.streams[client_id]
        self.counters["digests_total"] += 1
        self._check_no_streams()
        return {
            "op": "read-digest",
            "ok": True,
            "id": client_id,
            "digest": digest,
            "width": self._spec.width,
        }

    async def _op_close(self, conn: _Connection, header: dict) -> dict:
        client_id = str(header.get("id"))
        pipeline_id = self._stream_of(conn, header)
        pipeline = self._pipeline
        await self._call_op(
            ("close", pipeline_id), lambda: pipeline.abort(pipeline_id)
        )
        del conn.streams[client_id]
        self._check_no_streams()
        return {"op": "close-stream", "ok": True, "id": client_id}

    def _op_stats(self) -> dict:
        self._sync_batch_counters()
        response = {
            "op": "stats",
            "ok": True,
            "state": self._state,
            "standard": self._spec.name,
            "M": self._pipeline.M,
            "workers": self._pipeline.workers,
            "connections": len(self._connections),
            "streams": self.stream_count,
            "pending_bits": self._pending_bits,
            "batching": self.batching,
            "counters": dict(self.counters),
        }
        if self._batcher is not None:
            response["batch"] = dict(
                self._batcher.stats.to_dict(),
                depth=self._batcher.depth,
                max_batch=self._batcher.max_batch,
                linger_s=self._batcher.linger_s,
            )
        return response

    def _sync_batch_counters(self) -> None:
        """Mirror the batcher's round counters into :attr:`counters`."""
        if self._batcher is not None:
            self.counters["batches_total"] = self._batcher.stats.batches
            self.counters["batched_ops_total"] = self._batcher.stats.ops

    async def _safe_write(
        self, writer: asyncio.StreamWriter, header: dict
    ) -> None:
        """Best-effort write for error frames (the peer may be gone)."""
        try:
            await write_frame(writer, header)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    def _count_error(self, code: str) -> None:
        if code == "protocol":
            self.counters["protocol_errors_total"] += 1
        elif code == "stream":
            self.counters["stream_errors_total"] += 1
        if default_registry().enabled:
            _METRICS()["errors"].labels(code=code).inc()

    def _check_no_streams(self) -> None:
        if self.stream_count == 0:
            self._no_streams.set()

    # ------------------------------------------------------------------
    # Drain / shutdown
    # ------------------------------------------------------------------
    def install_signal_handlers(self) -> bool:
        """Wire SIGTERM/SIGINT to :meth:`drain`; False where unsupported."""
        import signal

        loop = asyncio.get_running_loop()
        try:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self.request_drain)
        except (NotImplementedError, RuntimeError):
            return False
        return True

    def request_drain(self) -> None:
        """Schedule :meth:`drain` from sync context (signal handlers)."""
        if self._drain_task is None and self._state in ("serving", "draining"):
            self._drain_task = asyncio.get_running_loop().create_task(self.drain())

    async def drain(self, timeout_s: Optional[float] = None) -> None:
        """Graceful shutdown: finish open streams, refuse new ones, flush.

        Blocks until every open stream has finalized or been closed (or
        ``timeout_s`` elapses, at which point stragglers are aborted),
        then writes the telemetry snapshot and flight-recorder dump if
        paths were configured, closes all connections and the pipeline.
        Idempotent: a second call awaits the first drain's completion.
        """
        if self._state == "closed":
            return
        if self._state == "draining":
            await self._closed_event.wait()
            return
        self._state = "draining"
        recorder = default_flight_recorder()
        if recorder.enabled:
            recorder.record(
                "serve-drain",
                f"drain requested with {self.stream_count} open stream(s)",
                connections=len(self._connections),
            )
        # Stop accepting new connections; existing ones keep their frames
        # flowing so open streams can finish.
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Flush and retire the batcher: queued ops complete as batches,
        # then every remaining drain-phase op takes the serial path (an
        # idle batcher records an empty flush — also legal).
        if self._batcher is not None:
            await self._batcher.aclose()
            self._sync_batch_counters()
        self._check_no_streams()
        timeout = self._drain_timeout if timeout_s is None else timeout_s
        try:
            await asyncio.wait_for(self._no_streams.wait(), timeout)
        except asyncio.TimeoutError:
            for conn in list(self._connections):
                for pipeline_id in list(conn.streams.values()):
                    try:
                        await self._call(self._pipeline.abort, pipeline_id)
                    except ReproError:
                        pass
                conn.streams.clear()
            self._no_streams.set()
        self._state = "closed"
        # Unblock any handler parked on backpressure so connections close.
        self._drained.set()
        self._work.set()
        if self._pump_task is not None:
            await self._pump_task
        for conn in list(self._connections):
            conn.writer.close()
        self._flush_observability()
        await self._call(self._pipeline.close)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self._closed_event.set()

    def _flush_observability(self) -> None:
        """Write the final telemetry snapshot + flight-recorder dump."""
        if self._telemetry_path is not None:
            write_json_lines(
                default_registry(), self._telemetry_path, tracer=default_tracer()
            )
        recorder = default_flight_recorder()
        if recorder.enabled:
            recorder.record(
                "serve-stop",
                "server closed",
                counters=dict(self.counters),
            )
        if self._flightrec_path is not None and recorder.enabled:
            recorder.save(self._flightrec_path)

    async def serve_until_closed(self) -> None:
        """Park until a drain (signal- or call-triggered) completes."""
        await self._closed_event.wait()

    async def aclose(self) -> None:
        """Drain with no grace period (open streams are aborted)."""
        await self.drain(timeout_s=0)

    async def __aenter__(self) -> "ReproServer":
        if self._state == "new":
            await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.aclose()
