"""The ``repro.serve`` wire format: length-prefixed JSON + binary frames.

One frame is::

    +----------------+----------------------+------------------+
    | header length  |  JSON header (UTF-8) |  binary payload  |
    |  4 bytes, !I   |  header-length bytes |  header["blen"]  |
    +----------------+----------------------+------------------+

The header is a flat JSON object; when a frame carries binary data
(``feed-chunk`` payloads), the header's ``blen`` field declares exactly
how many payload bytes follow.  Keeping the bulk bytes *outside* the
JSON keeps the hot path copy-cheap: a 1500-byte Ethernet frame travels
as 1500 raw bytes plus a ~60-byte header, not as 2000+ base64
characters inside a JSON string.

Verbs (the ``op`` header field) are deliberately workload-agnostic —
they name streams and digests, never CRCs — so any engine a future
parallel binary machine compiles to can serve through the same frames:

``open-stream``
    Start a stream: optional client-chosen ``id``, optional initial
    ``register``.  Response echoes the id.
``feed-chunk``
    Append the frame's binary payload to stream ``id``; chunked calls
    compose (chunk boundaries are invisible to the digest).  The ack
    carries the server's total pending-bits gauge, which is also the
    client-visible backpressure signal.
``read-digest``
    Finalize stream ``id``: drains its shard and returns the digest
    (the stream is closed by this call).
``close-stream``
    Abort stream ``id`` without computing a digest.
``stats``
    Server-state snapshot: connections, open streams, pending bits,
    message counters, drain state.

Responses always carry ``ok`` (bool); failures add ``error`` (message)
and ``code`` — one of ``protocol`` / ``validation`` / ``stream`` /
``draining`` / ``internal`` — mirroring the :mod:`repro.errors`
taxonomy across the wire.

Malformed frames raise :class:`~repro.errors.ProtocolError` on the
reading side; the server answers one error frame where it still can and
drops the connection, because after a framing error the byte stream has
no trustworthy resynchronization point.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Optional, Tuple

from repro.errors import ProtocolError

#: Protocol version announced in the server hello and checked by clients.
PROTOCOL_VERSION = 1

#: Hard ceiling on header-JSON bytes and on binary payload bytes alike;
#: a frame can therefore never demand more than ~2 MiB of buffering.
MAX_FRAME_BYTES = 1 << 20

#: The length prefix: 4 bytes, network byte order, unsigned.
_PREFIX = struct.Struct("!I")

#: Verbs a client may send.
REQUEST_OPS = ("open-stream", "feed-chunk", "read-digest", "close-stream", "stats")


def encode_frame_parts(header: dict, payload: bytes = b"") -> Tuple[bytes, bytes]:
    """Serialize one frame as ``(prefix + header, payload)`` — no payload copy.

    The payload rides through untouched (bytes, bytearray and memoryview
    all work), so writers that support vectored output
    (:meth:`asyncio.StreamWriter.writelines`) never concatenate the bulk
    bytes with the framing.  Raises
    :class:`~repro.errors.ProtocolError` on oversized headers/payloads
    rather than emitting a frame no peer would accept.
    """
    if len(payload):
        header = dict(header)
        header["blen"] = len(payload)
    raw = json.dumps(header, separators=(",", ":"), sort_keys=True).encode()
    if len(raw) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame header too large ({len(raw)} bytes)")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame payload too large ({len(payload)} bytes)")
    return _PREFIX.pack(len(raw)) + raw, payload


def encode_frame(header: dict, payload: bytes = b"") -> bytes:
    """Serialize one frame; declares ``blen`` when a payload rides along.

    The returned bytes are prefix + header + payload, ready for a single
    ``write``.  Hot paths should prefer :func:`encode_frame_parts`, which
    skips this concatenation copy.
    """
    head, body = encode_frame_parts(header, payload)
    return head + bytes(body) if len(body) else head


def decode_frame(buffer: bytes) -> Tuple[dict, bytes, int]:
    """Parse one frame from ``buffer``; returns ``(header, payload, used)``.

    A synchronous counterpart to :func:`read_frame` for tests and
    non-asyncio consumers.  Raises :class:`~repro.errors.ProtocolError`
    if the buffer does not hold one complete well-formed frame.
    """
    if len(buffer) < _PREFIX.size:
        raise ProtocolError("incomplete frame: missing length prefix")
    (header_len,) = _PREFIX.unpack_from(buffer)
    _check_header_len(header_len)
    end = _PREFIX.size + header_len
    if len(buffer) < end:
        raise ProtocolError("incomplete frame: truncated header")
    header = _parse_header(buffer[_PREFIX.size:end])
    blen = _payload_len(header)
    if len(buffer) < end + blen:
        raise ProtocolError("incomplete frame: truncated payload")
    return header, bytes(buffer[end:end + blen]), end + blen


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame: int = MAX_FRAME_BYTES,
) -> Tuple[dict, bytes]:
    """Read one complete frame off an asyncio stream.

    Returns ``(header, payload)``.  Raises
    :class:`~asyncio.IncompleteReadError` on clean EOF mid-frame (and
    plain EOF before any byte), :class:`~repro.errors.ProtocolError` on
    malformed or oversized frames.
    """
    prefix = await reader.readexactly(_PREFIX.size)
    (header_len,) = _PREFIX.unpack(prefix)
    _check_header_len(header_len, max_frame)
    header = _parse_header(await reader.readexactly(header_len))
    blen = _payload_len(header, max_frame)
    payload = await reader.readexactly(blen) if blen else b""
    return header, payload


async def write_frame(
    writer: asyncio.StreamWriter, header: dict, payload: bytes = b""
) -> None:
    """Encode and send one frame, honouring transport flow control.

    The framing bytes and the payload go out as separate buffers
    (``writelines``), so the payload — bytes, bytearray or memoryview —
    is never copied into a concatenated frame.  ``await writer.drain()``
    is part of the contract: a slow peer back-pressures the sender
    instead of ballooning the write buffer.
    """
    head, body = encode_frame_parts(header, payload)
    if len(body):
        writer.writelines((head, body))
    else:
        writer.write(head)
    await writer.drain()


def _check_header_len(header_len: int, max_frame: int = MAX_FRAME_BYTES) -> None:
    if header_len == 0:
        raise ProtocolError("empty frame header")
    if header_len > max_frame:
        raise ProtocolError(
            f"frame header of {header_len} bytes exceeds the {max_frame}-byte limit"
        )


def _parse_header(raw: bytes) -> dict:
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame header is not valid JSON ({exc})") from None
    if not isinstance(header, dict):
        raise ProtocolError(
            f"frame header must be a JSON object, got {type(header).__name__}"
        )
    return header


def _payload_len(header: dict, max_frame: int = MAX_FRAME_BYTES) -> int:
    blen = header.get("blen", 0)
    if not isinstance(blen, int) or isinstance(blen, bool) or blen < 0:
        raise ProtocolError(f"invalid payload length {blen!r}")
    if blen > max_frame:
        raise ProtocolError(
            f"frame payload of {blen} bytes exceeds the {max_frame}-byte limit"
        )
    return blen


def error_response(op: Optional[str], code: str, message: str) -> dict:
    """The standard failure response header for a request ``op``."""
    header = {"ok": False, "code": code, "error": message}
    if op:
        header["op"] = op
    return header
